#include "baselines/tetris.h"

#include <algorithm>

#include "util/log.h"

namespace dsp {

double TetrisScheduler::alignment(const Resources& available,
                                  const Resources& demand,
                                  const Resources& capacity) {
  // Normalize each dimension by capacity so the score is scale-free; a
  // zero-capacity dimension contributes nothing.
  auto norm = [](double a, double c) { return c > 0.0 ? a / c : 0.0; };
  return norm(available.cpu, capacity.cpu) * norm(demand.cpu, capacity.cpu) +
         norm(available.mem, capacity.mem) * norm(demand.mem, capacity.mem) +
         norm(available.disk, capacity.disk) * norm(demand.disk, capacity.disk) +
         norm(available.bw, capacity.bw) * norm(demand.bw, capacity.bw);
}

std::vector<TaskPlacement> TetrisScheduler::schedule(
    const std::vector<JobId>& jobs, Engine& engine) {
  std::vector<TaskPlacement> placements;
  const std::size_t n_nodes = engine.node_count();

  // Local backlog estimate (MI) seeded from live state.
  std::vector<double> backlog(n_nodes);
  for (std::size_t k = 0; k < n_nodes; ++k)
    backlog[k] = engine.node_backlog_mi(static_cast<int>(k));

  SimTime seq = 0;
  for (JobId j : jobs) {
    const Job& job = engine.job(j);
    // W/SimDep queues precedents ahead of dependents (topological order);
    // W/oDep keeps raw submission order.
    std::vector<TaskIndex> order;
    if (dep_ == Dependency::kSimple) {
      const auto topo = job.graph().topo_order();
      order.assign(topo.begin(), topo.end());
    } else {
      order.resize(job.task_count());
      for (TaskIndex t = 0; t < job.task_count(); ++t) order[t] = t;
    }
    for (TaskIndex t : order) {
      const Task& task = job.task(t);
      int best = -1;
      for (std::size_t k = 0; k < n_nodes; ++k) {
        if (!engine.cluster().node(k).capacity.fits(task.demand)) continue;
        if (best < 0 || backlog[k] < backlog[static_cast<std::size_t>(best)])
          best = static_cast<int>(k);
      }
      if (best < 0) {
        DSP_ERROR("tetris: task %u fits no node", engine.gid(j, t));
        continue;
      }
      backlog[static_cast<std::size_t>(best)] += task.size_mi;
      placements.push_back(
          TaskPlacement{engine.gid(j, t), best, engine.now() + seq});
      ++seq;  // 1 us steps preserve order without colliding keys
    }
  }
  return placements;
}

Gid TetrisScheduler::select_next(int node, Engine& engine,
                                 const std::vector<std::uint8_t>& excluded) {
  const Resources& avail = engine.available(node);
  const Resources& cap =
      engine.cluster().node(static_cast<std::size_t>(node)).capacity;
  Gid best = kInvalidGid;
  double best_score = -1.0;
  for (Gid g : engine.waiting(node)) {
    if (excluded[g]) continue;
    if (engine.launch_blocked(g)) continue;  // failed input check earlier
    const Resources& demand = engine.task_info(g).demand;
    if (!avail.fits(demand)) continue;
    if (dep_ == Dependency::kSimple && !engine.is_ready(g)) continue;
    const double score = alignment(avail, demand, cap);
    if (score > best_score) {
      best_score = score;
      best = g;
    }
  }
  return best;
}

}  // namespace dsp
