#include "baselines/preempt_baselines.h"

#include <algorithm>

namespace dsp {

void QueueScanPreemption::on_epoch(Engine& engine) {
  std::vector<Gid> victims;
  for (int node = 0; node < static_cast<int>(engine.node_count()); ++node) {
    const std::vector<Gid>& waiting_ref = engine.waiting(node);
    if (waiting_ref.empty()) continue;

    victims.clear();
    for (Gid r : engine.running(node))
      if (eligible_victim(engine, r)) victims.push_back(r);
    if (victims.empty()) continue;
    std::sort(victims.begin(), victims.end(), [&](Gid a, Gid b) {
      return victim_order(engine, a, b);
    });

    // Snapshot: preemption mutates the queue. Every running task is evicted
    // at most once per epoch (victims are consumed), which bounds the
    // per-node work. Failed preempt-in attempts (e.g. unready tasks under
    // these dependency-blind policies) also cost real scheduler time, so
    // they share a per-node budget.
    int attempt_budget = 8 * static_cast<int>(victims.size());
    const std::vector<Gid> waiting = waiting_ref;
    for (Gid w : waiting) {
      if (victims.empty() || attempt_budget <= 0) break;
      const TaskState s = engine.state(w);
      if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
      if (engine.launch_blocked(w)) continue;  // failed input check earlier
      if (!eligible_preemptor(engine, w)) continue;

      for (auto it = victims.begin(); it != victims.end();) {
        const Gid v = *it;
        if (engine.state(v) != TaskState::kRunning) {
          it = victims.erase(it);
          continue;
        }
        if (!should_preempt(engine, w, v)) {
          // Victims are sorted best-first; if the best remaining victim is
          // not preemptable by w, none is.
          it = victims.end();
          break;
        }
        // NOTE: no dependency/readiness check — these baselines neglect
        // dependency; the engine records a disorder when w is not ready.
        --attempt_budget;
        const PreemptResult res = engine.try_preempt(node, v, w);
        if (res == PreemptResult::kOk) {
          victims.erase(it);
          break;
        }
        if (res == PreemptResult::kNoResources) {
          ++it;  // a bigger victim may free enough
          continue;
        }
        // kIncomingNotReady (disorder counted) or invalid: drop this
        // waiting task.
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Amoeba
// ---------------------------------------------------------------------

bool AmoebaPolicy::victim_order(const Engine& engine, Gid a, Gid b) const {
  // Most resources ~ longest remaining time first (lowest priority).
  const SimTime ra = engine.remaining_time(a);
  const SimTime rb = engine.remaining_time(b);
  return ra != rb ? ra > rb : a < b;
}

bool AmoebaPolicy::should_preempt(const Engine& engine, Gid waiting,
                                  Gid victim) const {
  // A waiting task displaces a running task that needs strictly more
  // resources (longer remaining time) than itself.
  return engine.remaining_time(waiting) < engine.remaining_time(victim);
}

// ---------------------------------------------------------------------
// Natjam
// ---------------------------------------------------------------------

namespace {

/// Scalar "resource usage" for Natjam's most-resources-first rule.
double resource_magnitude(const Engine& engine, Gid g) {
  const Resources& d = engine.task_info(g).demand;
  return d.cpu + d.mem;  // disk/bw are constant per §V, so they don't rank
}

}  // namespace

bool NatjamPolicy::victim_order(const Engine& engine, Gid a, Gid b) const {
  // Most resources first, then maximum deadline, then shortest remaining.
  const double ra = resource_magnitude(engine, a);
  const double rb = resource_magnitude(engine, b);
  if (ra != rb) return ra > rb;
  const SimTime da = engine.job(engine.job_of(a)).deadline();
  const SimTime db = engine.job(engine.job_of(b)).deadline();
  if (da != db) return da > db;
  const SimTime rta = engine.remaining_time(a);
  const SimTime rtb = engine.remaining_time(b);
  if (rta != rtb) return rta < rtb;
  return a < b;
}

bool NatjamPolicy::should_preempt(const Engine& engine, Gid waiting,
                                  Gid victim) const {
  (void)engine;
  (void)waiting;
  (void)victim;
  // Tier eligibility (production preempts research) is enforced by the
  // eligible_* hooks; any eligible pair proceeds.
  return true;
}

bool NatjamPolicy::eligible_preemptor(const Engine& engine, Gid waiting) const {
  return engine.job(engine.job_of(waiting)).tier() == JobTier::kProduction;
}

bool NatjamPolicy::eligible_victim(const Engine& engine, Gid running) const {
  return engine.job(engine.job_of(running)).tier() == JobTier::kResearch;
}

// ---------------------------------------------------------------------
// SRPT
// ---------------------------------------------------------------------

double SrptPolicy::priority(const Engine& engine, Gid g) const {
  const double t_w = engine.accumulated_wait_s(g);
  const double t_rem = std::max(0.001, to_seconds(engine.remaining_time(g)));
  return alpha_ * t_w + beta_ / t_rem;
}

bool SrptPolicy::victim_order(const Engine& engine, Gid a, Gid b) const {
  // Lowest priority (longest remaining) evicted first.
  const double pa = priority(engine, a);
  const double pb = priority(engine, b);
  return pa != pb ? pa < pb : a < b;
}

bool SrptPolicy::should_preempt(const Engine& engine, Gid waiting,
                                Gid victim) const {
  // Core SRPT semantics: only a strictly shorter-remaining task evicts.
  // Without this guard, SRPT's restart-from-scratch checkpointless mode
  // livelocks: waiting time alone eventually outranks any running task,
  // every epoch swaps, and all progress resets (see DESIGN.md deviations).
  // The linear-combination priority still orders victims and preemptors.
  return engine.remaining_time(waiting) < engine.remaining_time(victim) &&
         priority(engine, waiting) > priority(engine, victim);
}

}  // namespace dsp
