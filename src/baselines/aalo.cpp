#include "baselines/aalo.h"

#include "util/log.h"

namespace dsp {

int AaloScheduler::queue_level(double serviced_mi) const {
  double threshold = options_.first_threshold_mi;
  for (int level = 0; level < options_.queue_count - 1; ++level) {
    if (serviced_mi < threshold) return level;
    threshold *= options_.threshold_factor;
  }
  return options_.queue_count - 1;
}

std::vector<TaskPlacement> AaloScheduler::schedule(
    const std::vector<JobId>& jobs, Engine& engine) {
  std::vector<TaskPlacement> placements;
  const std::size_t n_nodes = engine.node_count();
  std::vector<double> backlog(n_nodes);
  for (std::size_t k = 0; k < n_nodes; ++k)
    backlog[k] = engine.node_backlog_mi(static_cast<int>(k));

  SimTime seq = 0;
  for (JobId j : jobs) {
    const Job& job = engine.job(j);
    // Queue each job's tasks in topological order (all flows of a coflow
    // share a queue; precedence inside the job is preserved FIFO).
    for (TaskIndex t : job.graph().topo_order()) {
      const Task& task = job.task(t);
      int best = -1;
      for (std::size_t k = 0; k < n_nodes; ++k) {
        if (!engine.cluster().node(k).capacity.fits(task.demand)) continue;
        if (best < 0 || backlog[k] < backlog[static_cast<std::size_t>(best)])
          best = static_cast<int>(k);
      }
      if (best < 0) {
        DSP_ERROR("aalo: task %u fits no node", engine.gid(j, t));
        continue;
      }
      backlog[static_cast<std::size_t>(best)] += task.size_mi;
      placements.push_back(
          TaskPlacement{engine.gid(j, t), best, engine.now() + seq});
      ++seq;
    }
  }
  return placements;
}

Gid AaloScheduler::select_next(int node, Engine& engine,
                               const std::vector<std::uint8_t>& excluded) {
  const Resources& avail = engine.available(node);
  Gid best = kInvalidGid;
  int best_level = options_.queue_count;
  // The waiting queue is already FIFO (planned_start order), so the first
  // qualifying task at the lowest level wins.
  for (Gid g : engine.waiting(node)) {
    if (excluded[g]) continue;
    if (!engine.is_ready(g)) continue;
    if (!avail.fits(engine.task_info(g).demand)) continue;
    const int level = queue_level(engine.job_serviced_mi(engine.job_of(g)));
    if (level < best_level) {
      best_level = level;
      best = g;
      if (level == 0) break;  // cannot do better
    }
  }
  return best;
}

}  // namespace dsp
