// Tetris baseline (Grandl et al., SIGCOMM 2014): multi-resource packing.
//
// When a machine frees resources, Tetris launches the waiting task with the
// highest *alignment score* — the dot product between the machine's
// available resource vector and the task's peak demand — packing
// complementary tasks together to maximize utilization.
//
// Two variants, matching the paper's §V comparison:
//  - TetrisW/oDep ("without any dependency consideration"): packs purely by
//    score; it may select tasks whose precedents have not finished, which
//    the engine rejects and counts as disorders.
//  - TetrisW/SimDep ("simple dependency-aware"): precedent tasks complete
//    before dependent tasks start — i.e. the packer only considers
//    currently-runnable tasks.
#pragma once

#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp {

/// Tetris packing scheduler.
class TetrisScheduler : public Scheduler {
 public:
  enum class Dependency {
    kNone,    ///< TetrisW/oDep
    kSimple,  ///< TetrisW/SimDep
  };

  explicit TetrisScheduler(Dependency dep) : dep_(dep) {}

  const char* name() const override {
    return dep_ == Dependency::kNone ? "TetrisW/oDep" : "TetrisW/SimDep";
  }

  /// Placement: spread tasks over the least-loaded feasible nodes (Tetris'
  /// packing intelligence acts at dispatch time, not placement time).
  /// Queue order preserves submission order; the W/SimDep variant orders
  /// each job's tasks topologically so precedents queue first.
  std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                      Engine& engine) override;

  /// Dispatch: highest alignment score among fitting waiting tasks
  /// (restricted to runnable tasks for W/SimDep).
  Gid select_next(int node, Engine& engine,
                  const std::vector<std::uint8_t>& excluded) override;

  /// The blind variant launches tasks whose inputs are missing; they hold
  /// their slot until the inputs appear (classic slot hoarding).
  bool hoards_slots() const override { return dep_ == Dependency::kNone; }

  /// Alignment score of demand against an available-resource vector,
  /// normalized per dimension by the node capacity so no single resource
  /// dominates (Tetris §4.1's weighted dot product).
  static double alignment(const Resources& available, const Resources& demand,
                          const Resources& capacity);

 private:
  Dependency dep_;
};

}  // namespace dsp
