// Preemption baselines (paper §V): Amoeba, Natjam and SRPT.
//
// All three run on top of DSP's initial schedule ("we use our initial
// schedule for all preemption methods") and, unlike DSP, are blind to task
// dependency when choosing which waiting task to bring in — so they can
// select tasks whose precedents have not finished, which the engine counts
// as *disorders* (Fig. 6(a)/7(a)).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp {

/// Shared scaffolding: per-epoch, per-node scan where every waiting task
/// (the whole queue — these baselines have no delta window) may preempt a
/// running victim chosen by the subclass.
class QueueScanPreemption : public PreemptionPolicy {
 public:
  void on_epoch(Engine& engine) override;

 protected:
  /// Ascending victim order: the first victim in this order is tried first.
  /// Return value: strict-weak-order "a is a better victim than b".
  virtual bool victim_order(const Engine& engine, Gid a, Gid b) const = 0;

  /// Whether `waiting` may preempt `victim` (priority comparison only; the
  /// engine enforces mechanics, and dependency is deliberately NOT checked
  /// — these baselines neglect it).
  virtual bool should_preempt(const Engine& engine, Gid waiting,
                              Gid victim) const = 0;

  /// Whether this waiting task participates at all (Natjam restricts the
  /// preemptors to production-job tasks).
  virtual bool eligible_preemptor(const Engine& engine, Gid waiting) const {
    (void)engine;
    (void)waiting;
    return true;
  }

  /// Whether this running task may be evicted (Natjam only evicts
  /// research-job tasks).
  virtual bool eligible_victim(const Engine& engine, Gid running) const {
    (void)engine;
    (void)running;
    return true;
  }
};

/// Amoeba (Ananthanarayanan et al., SoCC 2012): the task consuming the most
/// resources — i.e. with the longest remaining time — has the lowest
/// priority; preempted tasks resume from checkpoints.
class AmoebaPolicy : public QueueScanPreemption {
 public:
  const char* name() const override { return "Amoeba"; }
  CheckpointMode checkpoint_mode() const override {
    return CheckpointMode::kCheckpoint;
  }

 protected:
  bool victim_order(const Engine& engine, Gid a, Gid b) const override;
  bool should_preempt(const Engine& engine, Gid waiting,
                      Gid victim) const override;
};

/// Natjam (Cho et al., SoCC 2013): production jobs preempt research jobs;
/// eviction picks the research task using the most resources first, the
/// maximum deadline second, the shortest remaining time third. Uses
/// on-demand checkpointing.
class NatjamPolicy : public QueueScanPreemption {
 public:
  const char* name() const override { return "Natjam"; }
  CheckpointMode checkpoint_mode() const override {
    return CheckpointMode::kCheckpoint;
  }

 protected:
  bool victim_order(const Engine& engine, Gid a, Gid b) const override;
  bool should_preempt(const Engine& engine, Gid waiting,
                      Gid victim) const override;
  bool eligible_preemptor(const Engine& engine, Gid waiting) const override;
  bool eligible_victim(const Engine& engine, Gid running) const override;
};

/// SRPT (Balasubramanian et al., JSSPP 2013): priority is the linear
/// combination alpha * waiting time + beta * (1 / remaining time)
/// (Table II: alpha = 0.5, beta = 1). No checkpointing — preempted tasks
/// restart from scratch, which is why SRPT shows the most preemptions in
/// Fig. 6(d).
class SrptPolicy : public QueueScanPreemption {
 public:
  SrptPolicy() = default;
  SrptPolicy(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  const char* name() const override { return "SRPT"; }
  CheckpointMode checkpoint_mode() const override {
    return CheckpointMode::kRestart;
  }

  /// The SRPT priority of a task given current engine state.
  double priority(const Engine& engine, Gid g) const;

 protected:
  bool victim_order(const Engine& engine, Gid a, Gid b) const override;
  bool should_preempt(const Engine& engine, Gid waiting,
                      Gid victim) const override;

 private:
  double alpha_ = 0.5;  ///< Weight of waiting time (Table II).
  double beta_ = 1.0;   ///< Weight of remaining time (Table II).
};

}  // namespace dsp
