// Aalo baseline (Chowdhury & Stoica, SIGCOMM 2015): information-agnostic
// coflow scheduling via discretized multi-level feedback queues.
//
// Aalo keeps K priority queues with exponentially spaced service
// thresholds; a coflow starts in the highest-priority queue and is demoted
// as its cumulative service grows, approximating
// shortest-coflow-first without prior knowledge. Within a queue, FIFO.
//
// Following the paper's adaptation (§V: "we consider a job as a coflow and
// the task as the flows in the coflow"), our Aalo dispatches the runnable
// waiting task whose *job* sits in the lowest-numbered queue (least
// cumulative serviced work), FIFO within a queue. All tasks of a job share
// the job's queue level, which respects dependency batching; deadlines are
// ignored (Aalo has none).
#pragma once

#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp {

/// Aalo multi-level-feedback-queue scheduler.
class AaloScheduler : public Scheduler {
 public:
  struct Options {
    int queue_count = 5;          ///< K queues.
    double first_threshold_mi = 1.0e5;  ///< Service ceiling of queue 0.
    double threshold_factor = 10.0;     ///< E: exponential spacing.
  };

  AaloScheduler() = default;
  explicit AaloScheduler(Options options) : options_(options) {}

  const char* name() const override { return "Aalo"; }

  /// Placement: least-backlog spread (Aalo itself schedules flows over
  /// fixed endpoints; placement is outside its scope).
  std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                      Engine& engine) override;

  /// Dispatch: runnable fitting task whose job has the lowest queue level;
  /// FIFO (queue position) within a level.
  Gid select_next(int node, Engine& engine,
                  const std::vector<std::uint8_t>& excluded) override;

  /// Queue level for a job that has received `serviced_mi` of service.
  int queue_level(double serviced_mi) const;

 private:
  Options options_;
};

}  // namespace dsp
