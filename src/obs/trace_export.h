// Chrome trace-event exporter.
//
// Converts a TimelineRecorder's slot intervals plus scheduler rounds,
// preemption epochs and job completions into the Trace Event Format that
// chrome://tracing (and https://ui.perfetto.dev) load directly: one JSON
// object with a "traceEvents" array, one event per line (JSONL-style
// inside the array, so the file also greps/streams well).
//
// Mapping:
//   pid        = cluster node (with a process_name metadata record), plus
//                one extra pid (node_count) for cluster-wide instants
//   tid        = slot lane within the node (greedy interval packing, so
//                concurrent tasks of a multi-slot node land on separate rows)
//   "X" events = run / overhead / hoard intervals (ts/dur in microseconds,
//                matching SimTime's unit)
//   "i" events = scheduling rounds, preemption epochs, job completions
#pragma once

#include <iosfwd>

#include "sim/recorder.h"

namespace dsp::obs {

/// Writes the whole recorded run as a chrome://tracing-loadable trace.
/// `node_count` sizes the per-node process metadata (pass
/// engine.node_count()).
void write_chrome_trace(std::ostream& out, const TimelineRecorder& recorder,
                        std::size_t node_count);

}  // namespace dsp::obs
