// Minimal JSON parser for validating the observability layer's own
// output (bench --json files, Chrome trace exports) in tests and the
// json_check smoke tool.
//
// Full RFC 8259 syntax minus \uXXXX surrogate-pair decoding (escapes are
// preserved literally enough for validation). Not a general-purpose JSON
// library: no serialization (writers hand-roll their output), no DOM
// mutation — parse, inspect, discard.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsp::obs::json {

/// A parsed JSON value. Object member order is preserved.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Walks a dot-separated path of object keys ("registry.counters");
  /// nullptr when any step is missing. Array elements are not addressable.
  const Value* at_path(std::string_view dotted) const;
};

/// Parses `text` into `out`. On failure returns false and, when `error`
/// is non-null, stores a message with the byte offset of the problem.
/// Trailing non-whitespace after the top-level value is an error, and
/// containers nested deeper than 256 levels are rejected (the parser
/// recurses, so unbounded nesting would exhaust the stack).
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

}  // namespace dsp::obs::json

namespace dsp::obs {

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes): ", \ and control characters become their escape sequences.
/// Every hand-rolled JSON writer in the observability layer (metrics,
/// audit trail, Chrome traces, the event-log JSONL sink) routes string
/// content through this, so names containing quotes/backslashes/control
/// characters always produce valid JSON.
void json_escape_append(std::string& out, std::string_view s);

/// Returns `s` escaped for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace dsp::obs
