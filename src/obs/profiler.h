// Scoped wall-clock profiler feeding the metrics registry.
//
// DSP_PROFILE("lp.simplex_solve_s"); at the top of a scope records the
// scope's wall-clock duration (in seconds) into the named histogram of
// the default registry, so bench --json dumps carry p50/p95/p99 solve and
// epoch timings. With DSP_OBS_DISABLED the macro compiles to nothing.
//
// Instrumented hot paths (see DESIGN.md "Observability"):
//   lp.simplex_solve_s       one simplex solve
//   lp.milp_solve_s          one branch-and-bound solve
//   priority.compute_all_s   one Formula 12/13 recomputation over all jobs
//   engine.epoch_s           one online-preemption epoch tick
//   sched.round_s            one offline scheduling round
//   engine.run_s             one whole simulation run
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace dsp::obs {

/// RAII timer: records the elapsed wall-clock seconds between
/// construction and destruction into `sink` (no-op when sink is null).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histo* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_)
      sink_->add(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }

 private:
  Histo* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dsp::obs

#ifndef DSP_OBS_DISABLED

/// Times the enclosing scope into histogram `name` of the default
/// registry. The histogram pointer is resolved once per call site.
#define DSP_PROFILE(name)                                              \
  static ::dsp::obs::Histo* DSP_OBS_CONCAT(_dsp_prof_h, __LINE__) =    \
      ::dsp::obs::default_registry().histogram(name);                  \
  ::dsp::obs::ScopedTimer DSP_OBS_CONCAT(_dsp_prof_t, __LINE__)(       \
      DSP_OBS_CONCAT(_dsp_prof_h, __LINE__))

#else

#define DSP_PROFILE(name) ((void)0)

#endif  // DSP_OBS_DISABLED
