// Preemption decision audit trail.
//
// Every Algorithm-1 candidate evaluation (paper §IV) produces one
// PreemptDecision record: who wanted to preempt, which victim was
// examined, the raw priorities, the normalized gap P-tilde = P-hat/P-bar
// the PP filter tested, the rho/epsilon/tau/delta in effect, and how the
// evaluation ended. The engine forwards records to an attached
// PreemptionAuditTrail (Engine::set_audit) and to the observer hook
// SimObserver::on_preempt_decision, and tallies per-outcome counters into
// RunMetrics — this is how throughput changes are attributed to specific
// preemption mechanisms (urgent preemption, the delta window, PP
// suppression, C2 dependency blocking).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace dsp::obs {

/// How one Algorithm-1 candidate evaluation ended.
enum class PreemptOutcome : std::uint8_t {
  kFired,                ///< A victim was preempted.
  kSuppressedPP,         ///< The normalized-priority gap failed P-tilde > rho.
  kBlockedByDependency,  ///< Every viable victim failed C2 (candidate depends on it).
  kNoVictim,             ///< No running task passed C1 / nothing preemptable.
};

inline constexpr std::size_t kPreemptOutcomeCount = 4;

const char* to_string(PreemptOutcome o);

/// Inverse of to_string; false when `s` names no outcome.
bool parse_outcome(const std::string& s, PreemptOutcome& out);

/// One Algorithm-1 evaluation record.
struct PreemptDecision {
  SimTime time = 0;            ///< Engine time of the evaluation.
  int node = -1;               ///< Node whose queue was scanned.
  Gid candidate = kInvalidGid; ///< Waiting task that wanted the slot.
  Gid victim = kInvalidGid;    ///< Victim fired on / gap-tested (if any).
  double candidate_priority = 0.0;  ///< P-hat term: waiting task's priority.
  double victim_priority = 0.0;     ///< Victim's priority (0 when no victim).
  /// P-tilde = (candidate - victim priority) / P-bar; 0 when PP was not
  /// evaluated (no victim, PP disabled, or P-bar == 0).
  double normalized_gap = 0.0;
  // Parameters in effect at the evaluation.
  double rho = 0.0;
  double delta = 0.0;   ///< Current (possibly adapted) preempting-window fraction.
  SimTime epsilon = 0;
  SimTime tau = 0;
  bool urgent = false;  ///< True for the urgent pass (t^a <= epsilon or t^w >= tau).
  bool pp = false;      ///< True when the normalized-priority filter was enabled.
  PreemptOutcome outcome = PreemptOutcome::kNoVictim;
};

/// Accumulates the decisions of one run; queryable per outcome and
/// exportable as CSV. Attach before Engine::run via Engine::set_audit.
/// Thread-safe: record() may be called from concurrent policy passes;
/// the internal mutex keeps the trail's record order consistent with
/// whatever order the callers serialize on (DSP's mutating passes stay
/// serial, so the order is deterministic).
class PreemptionAuditTrail {
 public:
  void record(const PreemptDecision& d);

  /// Snapshot of the recorded decisions, in record order.
  std::vector<PreemptDecision> decisions() const {
    MutexLock lock(mu_);
    return decisions_;
  }
  std::uint64_t count(PreemptOutcome o) const {
    MutexLock lock(mu_);
    return counts_[static_cast<std::size_t>(o)];
  }
  std::uint64_t total() const {
    MutexLock lock(mu_);
    return decisions_.size();
  }

  /// Decisions with the given outcome, in record order.
  std::vector<PreemptDecision> with_outcome(PreemptOutcome o) const;

  /// Writes the trail as CSV with a header row:
  ///   time_us,node,candidate,victim,candidate_priority,victim_priority,
  ///   normalized_gap,rho,delta,epsilon_us,tau_us,urgent,pp,outcome
  void write_csv(std::ostream& out) const;

  /// Writes the trail as JSON:
  ///   {"audit": {"total": N, "counts": {"fired": n, ...}},
  ///    "decisions": [{"time_us": ..., "node": ..., "candidate": ...,
  ///      "victim": -1|gid, "candidate_priority": ..., "victim_priority": ...,
  ///      "normalized_gap": ..., "rho": ..., "delta": ..., "epsilon_us": ...,
  ///      "tau_us": ..., "urgent": bool, "pp": bool, "outcome": "fired"}]}
  /// Doubles print with enough digits to round-trip through
  /// read_audit_json bit-exactly.
  void write_json(std::ostream& out) const;

  void clear();

 private:
  mutable Mutex mu_;
  std::vector<PreemptDecision> decisions_ DSP_GUARDED_BY(mu_);
  std::array<std::uint64_t, kPreemptOutcomeCount> counts_ DSP_GUARDED_BY(mu_) =
      {};
};

/// Result of parsing an audit-trail JSON file.
struct AuditParseResult {
  std::vector<PreemptDecision> decisions;
  std::string error;  ///< Empty on success.

  bool ok() const { return error.empty(); }
};

/// Reads a trail previously written by write_json. Static analysis
/// (src/analysis audit replay) and external tooling consume this; a
/// malformed document or a record with missing/ill-typed fields yields a
/// non-empty `error`.
AuditParseResult read_audit_json(std::istream& in);
AuditParseResult read_audit_json(const std::string& path);

}  // namespace dsp::obs
