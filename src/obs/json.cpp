#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dsp::obs::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const Value* Value::at_path(std::string_view dotted) const {
  const Value* cur = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view key =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    cur = cur->find(key);
    if (!cur) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_)
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Containers nest by recursion, so a hostile "[[[[..." document would
  // otherwise turn into a stack overflow instead of a parse error.
  static constexpr int kMaxDepth = 256;

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.string);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return fail("bad \\u escape");
          // Validation-only decoding: non-ASCII code points are replaced.
          const unsigned long cp =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          pos_ += 4;
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    out.kind = Value::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(Value& out) {
    out.kind = Value::Kind::kNull;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = Value::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  out = Value{};
  return Parser(text, error).run(out);
}

}  // namespace dsp::obs::json

namespace dsp::obs {

void json_escape_append(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape_append(out, s);
  return out;
}

}  // namespace dsp::obs
