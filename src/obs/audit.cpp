#include "obs/audit.h"

#include <cstdio>
#include <ostream>

namespace dsp::obs {

const char* to_string(PreemptOutcome o) {
  switch (o) {
    case PreemptOutcome::kFired: return "fired";
    case PreemptOutcome::kSuppressedPP: return "suppressed-pp";
    case PreemptOutcome::kBlockedByDependency: return "blocked-c2";
    case PreemptOutcome::kNoVictim: return "no-victim";
  }
  return "?";
}

void PreemptionAuditTrail::record(const PreemptDecision& d) {
  decisions_.push_back(d);
  ++counts_[static_cast<std::size_t>(d.outcome)];
}

std::vector<PreemptDecision> PreemptionAuditTrail::with_outcome(
    PreemptOutcome o) const {
  std::vector<PreemptDecision> out;
  for (const auto& d : decisions_)
    if (d.outcome == o) out.push_back(d);
  return out;
}

void PreemptionAuditTrail::write_csv(std::ostream& out) const {
  out << "time_us,node,candidate,victim,candidate_priority,victim_priority,"
         "normalized_gap,rho,delta,epsilon_us,tau_us,urgent,outcome\n";
  char buf[96];
  for (const auto& d : decisions_) {
    out << d.time << ',' << d.node << ',' << d.candidate << ',';
    if (d.victim == kInvalidGid)
      out << '-';
    else
      out << d.victim;
    std::snprintf(buf, sizeof buf, ",%.6g,%.6g,%.6g,%.6g,%.6g,",
                  d.candidate_priority, d.victim_priority, d.normalized_gap,
                  d.rho, d.delta);
    out << buf << d.epsilon << ',' << d.tau << ',' << (d.urgent ? 1 : 0) << ','
        << to_string(d.outcome) << '\n';
  }
}

void PreemptionAuditTrail::clear() {
  decisions_.clear();
  counts_.fill(0);
}

}  // namespace dsp::obs
