#include "obs/audit.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace dsp::obs {

const char* to_string(PreemptOutcome o) {
  switch (o) {
    case PreemptOutcome::kFired: return "fired";
    case PreemptOutcome::kSuppressedPP: return "suppressed-pp";
    case PreemptOutcome::kBlockedByDependency: return "blocked-c2";
    case PreemptOutcome::kNoVictim: return "no-victim";
  }
  return "?";
}

bool parse_outcome(const std::string& s, PreemptOutcome& out) {
  for (std::size_t i = 0; i < kPreemptOutcomeCount; ++i) {
    const auto o = static_cast<PreemptOutcome>(i);
    if (s == to_string(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

void PreemptionAuditTrail::record(const PreemptDecision& d) {
  MutexLock lock(mu_);
  decisions_.push_back(d);
  ++counts_[static_cast<std::size_t>(d.outcome)];
}

std::vector<PreemptDecision> PreemptionAuditTrail::with_outcome(
    PreemptOutcome o) const {
  MutexLock lock(mu_);
  std::vector<PreemptDecision> out;
  for (const auto& d : decisions_)
    if (d.outcome == o) out.push_back(d);
  return out;
}

void PreemptionAuditTrail::write_csv(std::ostream& out) const {
  MutexLock lock(mu_);
  out << "time_us,node,candidate,victim,candidate_priority,victim_priority,"
         "normalized_gap,rho,delta,epsilon_us,tau_us,urgent,pp,outcome\n";
  char buf[96];
  for (const auto& d : decisions_) {
    out << d.time << ',' << d.node << ',' << d.candidate << ',';
    if (d.victim == kInvalidGid)
      out << '-';
    else
      out << d.victim;
    std::snprintf(buf, sizeof buf, ",%.6g,%.6g,%.6g,%.6g,%.6g,",
                  d.candidate_priority, d.victim_priority, d.normalized_gap,
                  d.rho, d.delta);
    out << buf << d.epsilon << ',' << d.tau << ',' << (d.urgent ? 1 : 0) << ','
        << (d.pp ? 1 : 0) << ',' << to_string(d.outcome) << '\n';
  }
}

namespace {

/// Shortest decimal representation that round-trips a double.
void write_double(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) {
    // Try progressively shorter forms; keep the first that round-trips.
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
        out << shorter;
        return;
      }
    }
  }
  out << buf;
}

}  // namespace

void PreemptionAuditTrail::write_json(std::ostream& out) const {
  MutexLock lock(mu_);
  out << "{\n  \"audit\": {\"total\": " << decisions_.size()
      << ", \"counts\": {";
  for (std::size_t i = 0; i < kPreemptOutcomeCount; ++i) {
    if (i) out << ", ";
    out << '"' << json_escape(to_string(static_cast<PreemptOutcome>(i)))
        << "\": " << counts_[i];
  }
  out << "}},\n  \"decisions\": [";
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const PreemptDecision& d = decisions_[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"time_us\": " << d.time << ", \"node\": " << d.node
        << ", \"candidate\": " << d.candidate << ", \"victim\": ";
    if (d.victim == kInvalidGid)
      out << -1;
    else
      out << d.victim;
    out << ", \"candidate_priority\": ";
    write_double(out, d.candidate_priority);
    out << ", \"victim_priority\": ";
    write_double(out, d.victim_priority);
    out << ", \"normalized_gap\": ";
    write_double(out, d.normalized_gap);
    out << ", \"rho\": ";
    write_double(out, d.rho);
    out << ", \"delta\": ";
    write_double(out, d.delta);
    out << ", \"epsilon_us\": " << d.epsilon << ", \"tau_us\": " << d.tau
        << ", \"urgent\": " << (d.urgent ? "true" : "false") << ", \"pp\": "
        << (d.pp ? "true" : "false") << ", \"outcome\": \""
        << json_escape(to_string(d.outcome)) << "\"}";
  }
  out << "\n  ]\n}\n";
}

void PreemptionAuditTrail::clear() {
  MutexLock lock(mu_);
  decisions_.clear();
  counts_.fill(0);
}

namespace {

/// Extracts a required member into `out`; returns false and sets `error`
/// when the member is missing or has the wrong type.
bool number_field(const json::Value& rec, const char* key, std::size_t index,
                  double& out, std::string& error) {
  const json::Value* v = rec.find(key);
  if (!v || !v->is_number()) {
    error = "decision " + std::to_string(index) + ": missing or non-numeric \"" +
            key + "\"";
    return false;
  }
  out = v->number;
  return true;
}

bool bool_field(const json::Value& rec, const char* key, std::size_t index,
                bool& out, std::string& error) {
  const json::Value* v = rec.find(key);
  if (!v || v->kind != json::Value::Kind::kBool) {
    error = "decision " + std::to_string(index) + ": missing or non-boolean \"" +
            key + "\"";
    return false;
  }
  out = v->boolean;
  return true;
}

}  // namespace

AuditParseResult read_audit_json(std::istream& in) {
  AuditParseResult result;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  json::Value root;
  std::string parse_error;
  if (!json::parse(text, root, &parse_error)) {
    result.error = "invalid JSON: " + parse_error;
    return result;
  }
  const json::Value* decisions = root.find("decisions");
  if (!decisions || !decisions->is_array()) {
    result.error = "missing \"decisions\" array";
    return result;
  }
  result.decisions.reserve(decisions->array.size());
  for (std::size_t i = 0; i < decisions->array.size(); ++i) {
    const json::Value& rec = decisions->array[i];
    if (!rec.is_object()) {
      result.error = "decision " + std::to_string(i) + ": not an object";
      return result;
    }
    PreemptDecision d;
    double time = 0, node = 0, candidate = 0, victim = 0, eps = 0, tau = 0;
    if (!number_field(rec, "time_us", i, time, result.error) ||
        !number_field(rec, "node", i, node, result.error) ||
        !number_field(rec, "candidate", i, candidate, result.error) ||
        !number_field(rec, "victim", i, victim, result.error) ||
        !number_field(rec, "candidate_priority", i, d.candidate_priority,
                      result.error) ||
        !number_field(rec, "victim_priority", i, d.victim_priority,
                      result.error) ||
        !number_field(rec, "normalized_gap", i, d.normalized_gap,
                      result.error) ||
        !number_field(rec, "rho", i, d.rho, result.error) ||
        !number_field(rec, "delta", i, d.delta, result.error) ||
        !number_field(rec, "epsilon_us", i, eps, result.error) ||
        !number_field(rec, "tau_us", i, tau, result.error) ||
        !bool_field(rec, "urgent", i, d.urgent, result.error) ||
        !bool_field(rec, "pp", i, d.pp, result.error))
      return result;
    d.time = static_cast<SimTime>(time);
    d.node = static_cast<int>(node);
    d.candidate = static_cast<Gid>(candidate);
    d.victim = victim < 0 ? kInvalidGid : static_cast<Gid>(victim);
    d.epsilon = static_cast<SimTime>(eps);
    d.tau = static_cast<SimTime>(tau);
    const json::Value* outcome = rec.find("outcome");
    if (!outcome || !outcome->is_string() ||
        !parse_outcome(outcome->string, d.outcome)) {
      result.error =
          "decision " + std::to_string(i) + ": missing or unknown \"outcome\"";
      return result;
    }
    result.decisions.push_back(d);
  }
  return result;
}

AuditParseResult read_audit_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    AuditParseResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  return read_audit_json(in);
}

}  // namespace dsp::obs
