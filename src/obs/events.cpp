#include "obs/events.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "util/env.h"
#include "util/log.h"

namespace dsp::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kRunInfo: return "run_info";
    case EventKind::kJobArrival: return "job_arrival";
    case EventKind::kJobPlanned: return "job_planned";
    case EventKind::kJobComplete: return "job_complete";
    case EventKind::kTaskEnqueue: return "task_enqueue";
    case EventKind::kTaskDispatch: return "task_dispatch";
    case EventKind::kTaskFinish: return "task_finish";
    case EventKind::kTaskPreempt: return "task_preempt";
    case EventKind::kTaskMigrate: return "task_migrate";
    case EventKind::kHoardStart: return "hoard_start";
    case EventKind::kHoardEvict: return "hoard_evict";
    case EventKind::kPreemptDecision: return "preempt_decision";
    case EventKind::kNodeDown: return "node_down";
    case EventKind::kNodeUp: return "node_up";
    case EventKind::kNodeRate: return "node_rate";
    case EventKind::kEpoch: return "epoch";
    case EventKind::kScheduleRound: return "schedule_round";
    case EventKind::kDeltaAdapt: return "delta_adapt";
  }
  return "?";
}

bool parse_event_kind(std::string_view s, EventKind& out) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto k = static_cast<EventKind>(i);
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

namespace {

/// Ids serialize as -1 when unset so the JSONL stays integer-typed.
long long id_or_minus1(std::uint32_t v) {
  return v == ~std::uint32_t{0} ? -1 : static_cast<long long>(v);
}

}  // namespace

void EventLog::append_jsonl(const Event& e, std::string& out) {
  // One line lands in a stack buffer first, then appends to `out` in a
  // single call: at ~10^5-10^7 events per run the dozen per-field
  // std::string grow checks are measurable against the <5% end-to-end
  // overhead budget. Worst case per line is ~290 bytes (12 field names,
  // two 24-char integers, two 32-char doubles).
  char buf[384];
  char* p = buf;
  const auto lit = [&p](std::string_view s) {
    std::memcpy(p, s.data(), s.size());
    p += s.size();
  };
  const auto num = [&p](long long v) {
    p = std::to_chars(p, p + 24, v).ptr;
  };
  const auto dbl = [&](double v) {
    if (!std::isfinite(v)) {
      lit("null");  // matches write_json_number's convention
      return;
    }
    if (v >= -9.0e15 && v <= 9.0e15) {  // in long long range: cast defined
      const auto i = static_cast<long long>(v);
      if (static_cast<double>(i) == v) {
        num(i);  // integral payloads (counts, ordinals) print as integers
        return;
      }
    }
    p = std::to_chars(p, p + 32, v).ptr;  // shortest round-trip
  };
  lit("{\"t\":");
  num(static_cast<long long>(e.time));
  lit(",\"seq\":");
  num(static_cast<long long>(e.seq));
  lit(",\"epoch\":");
  num(static_cast<long long>(e.epoch));
  lit(",\"kind\":\"");
  lit(to_string(e.kind));  // fixed [a-z_] identifiers: nothing to escape
  lit("\",\"flags\":");
  num(static_cast<long long>(e.flags));
  lit(",\"job\":");
  num(id_or_minus1(e.job));
  lit(",\"task\":");
  num(id_or_minus1(e.task));
  lit(",\"task2\":");
  num(id_or_minus1(e.task2));
  lit(",\"node\":");
  num(e.node);
  lit(",\"node2\":");
  num(e.node2);
  lit(",\"a\":");
  dbl(e.a);
  lit(",\"b\":");
  dbl(e.b);
  lit("}\n");
  out.append(buf, static_cast<std::size_t>(p - buf));
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  MutexLock lock(mu_);
  ring_.resize(capacity_);
  sample_every_.fill(1);
  seen_.fill(0);
}

EventLog::~EventLog() { close_sink(); }

void EventLog::flush_sink_locked() {
  if (sink_ != nullptr && !line_buf_.empty())
    std::fwrite(line_buf_.data(), 1, line_buf_.size(), sink_);
  line_buf_.clear();
}

bool EventLog::open_sink(const std::string& path) {
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    flush_sink_locked();
    std::fclose(sink_);
    sink_ = nullptr;
  }
  line_buf_.clear();
  sink_ = std::fopen(path.c_str(), "wb");
  if (sink_ == nullptr) {
    DSP_ERROR("event log: cannot open sink %s", path.c_str());
    return false;
  }
  return true;
}

void EventLog::close_sink() {
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    flush_sink_locked();
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

void EventLog::set_sample_every(EventKind kind, std::uint32_t n) {
  MutexLock lock(mu_);
  sample_every_[static_cast<std::size_t>(kind)] = n == 0 ? 1 : n;
}

bool EventLog::configure_sampling(std::string_view spec, std::string* error) {
  std::array<std::pair<EventKind, std::uint32_t>, kEventKindCount> parsed;
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding spaces.
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    EventKind kind;
    if (eq == std::string_view::npos ||
        !parse_event_kind(item.substr(0, eq), kind)) {
      if (error) *error = "unknown event kind in \"" + std::string(item) + "\"";
      return false;
    }
    const std::string num(item.substr(eq + 1));
    char* end = nullptr;
    const unsigned long n = std::strtoul(num.c_str(), &end, 10);
    if (num.empty() || end == nullptr || *end != '\0' || n == 0) {
      if (error) *error = "bad sample count in \"" + std::string(item) + "\"";
      return false;
    }
    if (count < parsed.size())
      parsed[count++] = {kind, static_cast<std::uint32_t>(n)};
  }
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < count; ++i)
    sample_every_[static_cast<std::size_t>(parsed[i].first)] =
        parsed[i].second;
  return true;
}

void EventLog::emit(const Event& input) {
  MutexLock lock(mu_);
  const auto ki = static_cast<std::size_t>(input.kind);
  if (ki < kEventKindCount) {
    const std::uint32_t every = sample_every_[ki];
    if (every > 1 && seen_[ki]++ % every != 0) {
      ++sampled_out_;
      return;
    }
    if (every <= 1) ++seen_[ki];
  }
  Event e = input;
  e.seq = accepted_;
  ring_[static_cast<std::size_t>(accepted_ % capacity_)] = e;
  ++accepted_;
  if (sink_ != nullptr) {
    // Lines accumulate in line_buf_ and flush in ~32 KiB batches: one
    // fwrite per few hundred events instead of one per event keeps the
    // recorder-on overhead of an end-to-end run in the low percent.
    append_jsonl(e, line_buf_);
    if (line_buf_.size() >= kSinkFlushBytes) flush_sink_locked();
  }
}

std::vector<Event> EventLog::snapshot() const {
  MutexLock lock(mu_);
  const std::uint64_t n =
      std::min<std::uint64_t>(accepted_, static_cast<std::uint64_t>(capacity_));
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = accepted_ - n; i < accepted_; ++i)
    out.push_back(ring_[static_cast<std::size_t>(i % capacity_)]);
  return out;
}

void EventLog::write_jsonl(std::ostream& out) const {
  // Snapshot first: no stream I/O happens under the emit mutex.
  std::string buf;
  for (const Event& e : snapshot()) {
    buf.clear();
    append_jsonl(e, buf);
    out << buf;
  }
}

std::uint64_t EventLog::accepted() const {
  MutexLock lock(mu_);
  return accepted_;
}

std::uint64_t EventLog::sampled_out() const {
  MutexLock lock(mu_);
  return sampled_out_;
}

std::unique_ptr<EventLog> EventLog::from_env() {
  const std::string path = env_string("DSP_EVENT_LOG", "");
  if (path.empty()) return nullptr;
  const auto ring = static_cast<std::size_t>(env_int_min(
      "DSP_EVENT_RING", static_cast<std::int64_t>(kDefaultCapacity), 1));
  auto log = std::make_unique<EventLog>(ring);
  const std::string spec = env_string("DSP_EVENT_SAMPLE", "");
  std::string error;
  if (!spec.empty() && !log->configure_sampling(spec, &error))
    DSP_WARN("DSP_EVENT_SAMPLE ignored: %s", error.c_str());
  if (!log->open_sink(path)) return nullptr;
  return log;
}

namespace {

bool event_number(const json::Value& rec, const char* key, std::size_t line,
                  double& out, std::string& error) {
  const json::Value* v = rec.find(key);
  if (v != nullptr && v->kind == json::Value::Kind::kNull) {
    out = 0.0;  // non-finite payloads serialize as null
    return true;
  }
  if (v == nullptr || !v->is_number()) {
    error = "line " + std::to_string(line) + ": missing or non-numeric \"" +
            key + "\"";
    return false;
  }
  out = v->number;
  return true;
}

std::uint32_t id_from(double v) {
  return v < 0 ? ~std::uint32_t{0} : static_cast<std::uint32_t>(v);
}

}  // namespace

EventParseResult read_event_log(std::istream& in) {
  EventParseResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value rec;
    std::string parse_error;
    if (!json::parse(line, rec, &parse_error)) {
      result.error =
          "line " + std::to_string(line_no) + ": invalid JSON: " + parse_error;
      return result;
    }
    const json::Value* kind = rec.find("kind");
    Event e;
    if (kind == nullptr || !kind->is_string() ||
        !parse_event_kind(kind->string, e.kind)) {
      result.error =
          "line " + std::to_string(line_no) + ": missing or unknown \"kind\"";
      return result;
    }
    double t = 0, seq = 0, epoch = 0, flags = 0, job = 0, task = 0, task2 = 0,
           node = 0, node2 = 0;
    if (!event_number(rec, "t", line_no, t, result.error) ||
        !event_number(rec, "seq", line_no, seq, result.error) ||
        !event_number(rec, "epoch", line_no, epoch, result.error) ||
        !event_number(rec, "flags", line_no, flags, result.error) ||
        !event_number(rec, "job", line_no, job, result.error) ||
        !event_number(rec, "task", line_no, task, result.error) ||
        !event_number(rec, "task2", line_no, task2, result.error) ||
        !event_number(rec, "node", line_no, node, result.error) ||
        !event_number(rec, "node2", line_no, node2, result.error) ||
        !event_number(rec, "a", line_no, e.a, result.error) ||
        !event_number(rec, "b", line_no, e.b, result.error))
      return result;
    e.time = static_cast<SimTime>(t);
    e.seq = static_cast<std::uint64_t>(seq);
    e.epoch = static_cast<std::uint32_t>(epoch);
    e.flags = static_cast<std::uint8_t>(flags);
    e.job = id_from(job);
    e.task = id_from(task);
    e.task2 = id_from(task2);
    e.node = static_cast<std::int16_t>(node);
    e.node2 = static_cast<std::int16_t>(node2);
    result.events.push_back(e);
  }
  return result;
}

EventParseResult read_event_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    EventParseResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  return read_event_log(in);
}

}  // namespace dsp::obs
