// Flight recorder: a low-overhead, fixed-size ring of POD event records
// covering every externally meaningful transition of a simulation run —
// job arrivals and completions, task dispatch/finish/preempt/migrate,
// hoarding, Algorithm-1 preempt decisions, node failures and rate
// changes, scheduling rounds, epoch boundaries and delta adaptation.
//
// The engine (and, through Engine::emit_event, the policies) emit into an
// EventLog; the last `capacity` events are always available in memory via
// snapshot(), and when a JSONL sink is open (open_sink / DSP_EVENT_LOG)
// every accepted event is also streamed as one JSON object per line.
// Because every emit point sits in the engine's serial event loop or in a
// policy's serial mutating pass, the stream is bit-identical across
// DSP_THREADS settings — tools/dsp_report's first-divergence diff turns
// that determinism guarantee into a debuggable property.
//
// Knobs (read by EventLog::from_env, applied by Engine::run when no log
// was attached explicitly):
//   DSP_EVENT_LOG=<path>    stream accepted events to <path> as JSONL
//   DSP_EVENT_RING=<n>      in-memory ring capacity (default 65536)
//   DSP_EVENT_SAMPLE=spec   per-kind sampling, e.g.
//                           "task_dispatch=10,preempt_decision=100"
//                           keeps every 10th dispatch / 100th decision
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace dsp::obs {

/// What happened. Names (to_string) are the `kind` strings of the JSONL
/// schema and of DSP_EVENT_SAMPLE specs.
enum class EventKind : std::uint8_t {
  kRunInfo,          ///< First event of a run: cluster + workload shape.
  kJobArrival,       ///< A job arrived (payload a: task count).
  kJobPlanned,       ///< The offline scheduler placed a job's tasks.
  kJobComplete,      ///< Every task of the job finished.
  kTaskEnqueue,      ///< Task entered a node's waiting queue.
  kTaskDispatch,     ///< Task began executing (payload a: overhead us).
  kTaskFinish,       ///< Task completed.
  kTaskPreempt,      ///< Task was suspended (preemption or node failure).
  kTaskMigrate,      ///< Task moved node -> node2 while queued.
  kHoardStart,       ///< Unready task blindly launched; slot hoarded.
  kHoardEvict,       ///< Hoarding task evicted by the timeout / failure.
  kPreemptDecision,  ///< One Algorithm-1 candidate evaluation.
  kNodeDown,         ///< Node failed.
  kNodeUp,           ///< Node recovered.
  kNodeRate,         ///< Node speed factor changed (payload a: factor).
  kEpoch,            ///< Online-preemption epoch boundary.
  kScheduleRound,    ///< Offline scheduling round (a: jobs, b: placements).
  kDeltaAdapt,       ///< Adaptive delta moved (a: old, b: new).
};

inline constexpr std::size_t kEventKindCount = 18;

const char* to_string(EventKind k);

/// Inverse of to_string; false when `s` names no kind.
bool parse_event_kind(std::string_view s, EventKind& out);

// Flag bits, meaningful per kind (stored in Event::flags).
inline constexpr std::uint8_t kEventFlagRequeue = 1;        ///< kTaskEnqueue: re-entry, not first placement.
inline constexpr std::uint8_t kEventFlagHoardActivate = 1;  ///< kTaskDispatch: a hoarded slot went live.
inline constexpr std::uint8_t kEventFlagKeptProgress = 1;   ///< kTaskPreempt: checkpointed work survives.
inline constexpr std::uint8_t kEventFlagFailover = 1;       ///< kTaskMigrate: forced by a node failure.
inline constexpr std::uint8_t kEventFlagDeadlineMet = 1;    ///< kJobComplete: finished by its deadline.
inline constexpr std::uint8_t kEventFlagUrgent = 1;         ///< kPreemptDecision: urgent pass.
inline constexpr std::uint8_t kEventFlagPP = 2;             ///< kPreemptDecision: PP filter enabled.
/// kPreemptDecision: PreemptOutcome stored in bits 2-3 (flags >> 2).
inline constexpr std::uint8_t kEventFlagOutcomeShift = 2;

/// One recorded event. POD by design: emit copies it into the ring with
/// no allocation. Field semantics vary by kind (see EventKind); unused
/// ids stay at their invalid defaults and serialize as -1.
struct Event {
  SimTime time = 0;          ///< Simulation time of the event (us).
  std::uint64_t seq = 0;     ///< Dense per-log sequence number (assigned by emit).
  std::uint32_t epoch = 0;   ///< Epoch ordinal at emit time (0 before the first).
  EventKind kind = EventKind::kRunInfo;
  std::uint8_t flags = 0;    ///< Per-kind flag bits (kEventFlag*).
  std::uint32_t job = ~std::uint32_t{0};  ///< JobId, or ~0 when n/a.
  Gid task = kInvalidGid;    ///< Primary task (candidate for decisions).
  Gid task2 = kInvalidGid;   ///< Secondary task (decision victim).
  std::int16_t node = -1;    ///< Primary node.
  std::int16_t node2 = -1;   ///< Secondary node (migration target).
  double a = 0.0;            ///< Per-kind payload (see EventKind).
  double b = 0.0;            ///< Per-kind payload (see EventKind).
};

/// Thread-safe fixed-capacity recorder with an optional JSONL sink.
/// emit() is the only hot operation: one short Mutex hold covering the
/// sampling decision, the ring store and (when a sink is open) a single
/// buffered fwrite of the pre-formatted line.
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Streams every subsequently accepted event to `path` (truncates).
  /// Returns false (and logs) when the file cannot be opened.
  bool open_sink(const std::string& path);
  void close_sink();

  /// Keep only every `n`-th event of `kind` (n <= 1 keeps all).
  void set_sample_every(EventKind kind, std::uint32_t n);

  /// Parses a "kind=N,kind=N" spec (see DSP_EVENT_SAMPLE). Unknown kinds
  /// or malformed counts fail the whole spec; nothing is applied then.
  bool configure_sampling(std::string_view spec, std::string* error = nullptr);

  /// Records `e` (stamping its seq). Sampled-out events are dropped
  /// before touching the ring or the sink.
  void emit(const Event& e);

  /// The retained events, oldest first (at most capacity()).
  std::vector<Event> snapshot() const;

  /// Writes the retained events as JSONL, oldest first.
  void write_jsonl(std::ostream& out) const;

  std::size_t capacity() const { return capacity_; }
  /// Events accepted (post-sampling) since construction.
  std::uint64_t accepted() const;
  /// Events dropped by per-kind sampling.
  std::uint64_t sampled_out() const;

  /// Appends `e` as one JSONL line (including the trailing newline).
  static void append_jsonl(const Event& e, std::string& out);

  /// Builds a log from the environment: returns null when DSP_EVENT_LOG
  /// is unset or the sink cannot be opened; otherwise applies
  /// DSP_EVENT_RING and DSP_EVENT_SAMPLE (malformed specs are logged and
  /// ignored).
  static std::unique_ptr<EventLog> from_env();

 private:
  /// Sink lines batch in line_buf_ up to this size before one fwrite.
  static constexpr std::size_t kSinkFlushBytes = 32 * 1024;

  void flush_sink_locked() DSP_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<Event> ring_ DSP_GUARDED_BY(mu_);
  std::uint64_t accepted_ DSP_GUARDED_BY(mu_) = 0;
  std::uint64_t sampled_out_ DSP_GUARDED_BY(mu_) = 0;
  std::array<std::uint32_t, kEventKindCount> sample_every_ DSP_GUARDED_BY(mu_);
  std::array<std::uint32_t, kEventKindCount> seen_ DSP_GUARDED_BY(mu_);
  std::FILE* sink_ DSP_GUARDED_BY(mu_) = nullptr;
  std::string line_buf_ DSP_GUARDED_BY(mu_);
};

/// Result of parsing a JSONL event log.
struct EventParseResult {
  std::vector<Event> events;
  std::string error;  ///< Empty on success.

  bool ok() const { return error.empty(); }
};

/// Reads a log written by the JSONL sink / write_jsonl. Blank lines are
/// skipped; a malformed line or a record with missing/ill-typed fields
/// yields a non-empty `error` naming the line.
EventParseResult read_event_log(std::istream& in);
EventParseResult read_event_log(const std::string& path);

}  // namespace dsp::obs
