#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dsp::obs {
namespace {

const char* kind_category(IntervalKind k) {
  switch (k) {
    case IntervalKind::kOverhead: return "overhead";
    case IntervalKind::kRun: return "run";
    case IntervalKind::kHoard: return "hoard";
  }
  return "?";
}

const char* outcome_name(Interval::End e) {
  switch (e) {
    case Interval::End::kFinished: return "finished";
    case Interval::End::kPreempted: return "preempted";
    case Interval::End::kEvicted: return "evicted";
  }
  return "?";
}

void write_instant(std::ostream& out, bool& first, const char* name,
                   SimTime ts, std::size_t pid, const char* args_json) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":";
  write_json_string(out, name);
  out << ",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << ts << ",\"pid\":" << pid
      << ",\"tid\":0,\"args\":" << args_json << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TimelineRecorder& recorder,
                        std::size_t node_count) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Process metadata: one "process" per node plus one for cluster-wide
  // instants (rounds/epochs/job completions).
  for (std::size_t k = 0; k <= node_count; ++k) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << k
        << ",\"tid\":0,\"args\":{\"name\":";
    if (k < node_count)
      write_json_string(out, "node " + std::to_string(k));
    else
      write_json_string(out, "cluster");
    out << "}}";
  }

  // Slot intervals, packed into per-node lanes so concurrent tasks of a
  // multi-slot node render on separate rows.
  std::vector<Interval> sorted = recorder.intervals();
  std::sort(sorted.begin(), sorted.end(), [](const Interval& a, const Interval& b) {
    if (a.node != b.node) return a.node < b.node;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.end < b.end;
  });
  std::vector<SimTime> lane_end;  // per lane of the current node
  int current_node = -2;
  for (const Interval& iv : sorted) {
    if (iv.node != current_node) {
      current_node = iv.node;
      lane_end.clear();
    }
    std::size_t lane = 0;
    while (lane < lane_end.size() && lane_end[lane] > iv.begin) ++lane;
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = iv.end;

    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":";
    write_json_string(out, "task " + std::to_string(iv.task));
    out << ",\"cat\":";
    write_json_string(out, kind_category(iv.kind));
    out << ",\"ph\":\"X\",\"ts\":" << iv.begin << ",\"dur\":" << iv.duration()
        << ",\"pid\":" << iv.node << ",\"tid\":" << lane
        << ",\"args\":{\"task\":" << iv.task << ",\"kind\":";
    write_json_string(out, kind_category(iv.kind));
    out << ",\"outcome\":";
    write_json_string(out, outcome_name(iv.outcome));
    out << "}}";
  }

  // Cluster-wide instants on the extra pid.
  char args[96];
  for (const auto& r : recorder.rounds()) {
    std::snprintf(args, sizeof args, "{\"jobs\":%zu,\"placements\":%zu}",
                  r.jobs, r.placements);
    write_instant(out, first, "schedule round", r.time, node_count, args);
  }
  for (SimTime t : recorder.epochs())
    write_instant(out, first, "preemption epoch", t, node_count, "{}");
  for (const auto& [t, job] : recorder.job_completions()) {
    std::snprintf(args, sizeof args, "{\"job\":%u}", job);
    write_instant(out, first, "job complete", t, node_count, args);
  }

  out << "\n]}\n";
}

}  // namespace dsp::obs
