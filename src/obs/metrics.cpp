#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.h"

namespace dsp::obs {

void write_json_string(std::ostream& out, std::string_view s) {
  std::string buf;
  buf.reserve(s.size() + 2);
  buf += '"';
  json_escape_append(buf, s);
  buf += '"';
  out << buf;
}

void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out << buf;
}

void Histo::add(double x) {
  // A NaN sample would poison min/max/sum and sort unpredictably in the
  // percentile pass; non-finite samples are dropped instead.
  if (!std::isfinite(x)) return;
  MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  if (samples_.size() < max_samples_)
    samples_.push_back(x);
  else
    samples_[static_cast<std::size_t>(count_ % max_samples_)] = x;
  ++count_;
}

namespace {

// p-quantile with linear interpolation over a sorted vector (the same
// convention as util/stats percentile()).
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Histo::Snapshot Histo::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = sorted_percentile(sorted, 0.50);
  s.p95 = sorted_percentile(sorted, 0.95);
  s.p99 = sorted_percentile(sorted, 0.99);
  return s;
}

void Histo::reset() {
  MutexLock lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return it->second.get();
}

Histo* MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histo>()).first;
  return it->second.get();
}

void MetricsRegistry::to_json(std::ostream& out) const {
  MutexLock lock(mu_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, name);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, name);
    out << ':';
    write_json_number(out, g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, name);
    const Histo::Snapshot s = h->snapshot();
    out << ":{\"count\":" << s.count << ",\"sum\":";
    write_json_number(out, s.sum);
    out << ",\"min\":";
    write_json_number(out, s.min);
    out << ",\"max\":";
    write_json_number(out, s.max);
    out << ",\"mean\":";
    write_json_number(out, s.mean);
    out << ",\"p50\":";
    write_json_number(out, s.p50);
    out << ",\"p95\":";
    write_json_number(out, s.p95);
    out << ",\"p99\":";
    write_json_number(out, s.p99);
    out << '}';
  }
  out << "}}";
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dsp::obs
