// Metrics registry: named counters, gauges and histograms with cheap,
// macro-guarded recording and JSON serialization.
//
// This is the accounting backbone of the observability layer (see
// DESIGN.md "Observability"): the engine, the preemption policy, the LP
// solvers and the scoped profiler all record into the process-wide
// default_registry(), and every bench binary can dump it with --json to
// seed the perf trajectory.
//
// Recording is thread-safe: counters and gauges are single atomics,
// histograms take a short mutex. The DSP_COUNT / DSP_GAUGE / DSP_OBSERVE
// macros cache the metric pointer in a function-local static so the
// steady-state cost of a hot-path counter is one relaxed atomic add; with
// DSP_OBS_DISABLED defined (CMake -DDSP_OBS=OFF) they compile to nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace dsp::obs {

/// Writes `s` as a JSON string literal (quotes + escapes) to `out`.
void write_json_string(std::ostream& out, std::string_view s);

/// Writes a double as a JSON number; non-finite values become null.
void write_json_number(std::ostream& out, double v);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with count/sum/min/max and p50/p95/p99.
///
/// Keeps up to `max_samples` raw samples for percentile estimation; once
/// full, new samples overwrite the oldest slot (ring buffer), so
/// percentiles over very long streams are computed from a recent window
/// while count/sum/min/max stay exact. Non-finite samples (NaN/inf) are
/// rejected: they would poison min/max/sum and percentile sorting.
class Histo {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 8192;

  explicit Histo(std::size_t max_samples = kDefaultMaxSamples)
      : max_samples_(max_samples ? max_samples : 1) {}

  void add(double x);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  mutable Mutex mu_;
  std::uint64_t count_ DSP_GUARDED_BY(mu_) = 0;
  double sum_ DSP_GUARDED_BY(mu_) = 0.0;
  double min_ DSP_GUARDED_BY(mu_) = 0.0;
  double max_ DSP_GUARDED_BY(mu_) = 0.0;
  std::vector<double> samples_ DSP_GUARDED_BY(mu_);
  std::size_t max_samples_;  // immutable after construction
};

/// Named metric store. Metric objects live as long as the registry and
/// their addresses are stable, so callers may cache the returned pointers
/// (the recording macros rely on this). reset() zeroes values in place
/// without invalidating pointers.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histo* histogram(std::string_view name);

  /// Serializes the registry as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}
  /// Keys are sorted, so output is deterministic for a given state.
  void to_json(std::ostream& out) const;

  /// Zeroes every metric in place; cached pointers remain valid.
  void reset();

 private:
  mutable Mutex mu_;
  // The maps are guarded; the pointed-to metrics are internally
  // synchronized (atomics / their own mutex), which is what lets callers
  // cache the returned pointers lock-free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DSP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DSP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histo>, std::less<>> histograms_
      DSP_GUARDED_BY(mu_);
};

/// The process-wide registry the recording macros feed.
MetricsRegistry& default_registry();

}  // namespace dsp::obs

#define DSP_OBS_CONCAT_INNER(a, b) a##b
#define DSP_OBS_CONCAT(a, b) DSP_OBS_CONCAT_INNER(a, b)

#ifndef DSP_OBS_DISABLED

/// Adds `n` to the named counter in the default registry.
#define DSP_COUNT_N(name, n)                                          \
  do {                                                                \
    static ::dsp::obs::Counter* DSP_OBS_CONCAT(_dsp_obs_c, __LINE__) = \
        ::dsp::obs::default_registry().counter(name);                 \
    DSP_OBS_CONCAT(_dsp_obs_c, __LINE__)->add(n);                     \
  } while (0)

/// Sets the named gauge in the default registry.
#define DSP_GAUGE_SET(name, v)                                        \
  do {                                                                \
    static ::dsp::obs::Gauge* DSP_OBS_CONCAT(_dsp_obs_g, __LINE__) =  \
        ::dsp::obs::default_registry().gauge(name);                   \
    DSP_OBS_CONCAT(_dsp_obs_g, __LINE__)->set(v);                     \
  } while (0)

/// Records one sample into the named histogram in the default registry.
#define DSP_OBSERVE(name, v)                                          \
  do {                                                                \
    static ::dsp::obs::Histo* DSP_OBS_CONCAT(_dsp_obs_h, __LINE__) =  \
        ::dsp::obs::default_registry().histogram(name);               \
    DSP_OBS_CONCAT(_dsp_obs_h, __LINE__)->add(v);                     \
  } while (0)

#else  // DSP_OBS_DISABLED: recording compiles to nothing.

#define DSP_COUNT_N(name, n) do {} while (0)
#define DSP_GAUGE_SET(name, v) do {} while (0)
#define DSP_OBSERVE(name, v) do {} while (0)

#endif  // DSP_OBS_DISABLED

#define DSP_COUNT(name) DSP_COUNT_N(name, 1)
