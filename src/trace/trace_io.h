// Trace file I/O: serialize workloads to CSV and load them back.
//
// Format (one row per task, header row required):
//   job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,
//   size_class,tier,parents[,input_mb,input_nodes]
// where `parents` is a ';'-separated list of task indices within the same
// job (empty for root tasks), and the optional trailing pair carries the
// data-locality extension: input dataset size in MB plus a ';'-separated
// list of the cluster nodes holding replicas. Rows of one job must be
// contiguous and carry identical job-level fields. Lines starting with
// '#' are comments.
//
// This is the hook for replaying *real* cluster traces (e.g. a Google-trace
// extraction) through the simulator in place of the synthetic generator.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "dag/job.h"

namespace dsp {

/// Writes a workload as CSV. Jobs need not be finalized.
void write_trace_csv(std::ostream& out, const JobSet& jobs);

/// Convenience overload writing to a file path; returns false on I/O error.
bool write_trace_csv(const std::string& path, const JobSet& jobs);

/// Result of parsing a trace.
struct TraceParseResult {
  JobSet jobs;
  std::vector<std::string> errors;  ///< Parse/validation problems; empty = ok.

  bool ok() const { return errors.empty(); }
};

/// Reads a workload from CSV and finalizes every job at `reference_rate`
/// MIPS (used to derive per-level task deadlines).
TraceParseResult read_trace_csv(std::istream& in, double reference_rate);

/// Convenience overload reading from a file path.
TraceParseResult read_trace_csv(const std::string& path, double reference_rate);

}  // namespace dsp
