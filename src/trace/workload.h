// Synthetic workload generation following the paper's evaluation recipe.
//
// The paper (§V) replays jobs from the Google cluster trace (May 2011):
// three job size classes (large = 2000 tasks, medium = 1000, small =
// several hundred) in equal proportion, Poisson arrivals at x jobs/minute
// with x drawn uniformly from [2, 5], per-task CPU/memory/duration taken
// from the trace, disk = 0.02 MB and bandwidth = 0.02 MB/s fixed, and
// dependency DAGs derived from execution-time overlap, constrained to at
// most 5 levels and at most 15 dependents per task.
//
// We do not have the proprietary trace, so WorkloadGenerator synthesizes
// the same marginals: heavy-tailed (log-normal) task sizes and resource
// demands with parameters matched to published Google-trace statistics, and
// DAGs built level-by-level under the same depth/fan-out caps. A CSV reader
// (trace_io.h) accepts real traces in place of the generator.
#pragma once

#include <cstdint>

#include "dag/job.h"
#include "util/rng.h"

namespace dsp {

/// Tunable workload parameters; defaults reproduce the paper's setup at
/// `task_scale` = 1. Benches run a scaled-down default (see DESIGN.md).
struct WorkloadConfig {
  std::size_t job_count = 150;  ///< h in the paper (150..750, 500..2500).

  /// Multiplies the per-class task counts (1.0 = paper scale: 2000/1000/
  /// several hundred). Benches default to 0.1 via the DSP_SCALE env var.
  double task_scale = 1.0;

  /// Arrival rate bounds in jobs/minute; the realized rate is drawn
  /// uniformly from this range once per workload (paper: [2, 5]).
  double min_arrival_rate = 2.0;
  double max_arrival_rate = 5.0;

  /// DAG shape caps from the paper.
  int max_levels = 5;
  std::size_t max_fanout = 15;

  /// Mean number of parents for a non-root task (each parent drawn from
  /// the previous level, subject to max_fanout).
  double mean_parents = 1.6;

  /// Task size distribution: log-normal over Millions of Instructions.
  /// Median exp(size_mu) MI; at a 2660 MIPS node exp(10.8) MI ~= 18.5 s,
  /// matching the tens-of-seconds median of Google-trace task durations.
  double size_mu = 10.8;
  double size_sigma = 1.0;
  double size_min_mi = 1.0e3;
  double size_max_mi = 2.0e6;

  /// Resource demand distributions (log-normal, clamped). The clamps keep
  /// every task runnable on the smallest evaluated node (the EC2 profile:
  /// 2 cores, 4 GB).
  double cpu_mu = -0.7, cpu_sigma = 0.6;   ///< cores; median ~0.5
  double cpu_min = 0.1, cpu_max = 2.0;
  double mem_mu = -1.0, mem_sigma = 0.8;   ///< GB; median ~0.37
  double mem_min = 0.05, mem_max = 3.5;
  double disk_mb = 0.02;                   ///< fixed per paper §V
  double bw_mbps = 0.02;                   ///< fixed per paper §V

  /// Deadline = arrival + slack * critical-path time at reference_rate.
  /// Production jobs (Natjam's high tier) get the tight range, research
  /// jobs the loose range.
  double production_fraction = 0.5;
  double prod_slack_min = 2.0, prod_slack_max = 3.5;
  double res_slack_min = 4.0, res_slack_max = 7.0;

  /// MIPS rate used for critical-path estimation when deriving deadlines
  /// and per-level task deadlines (the paper's EC2 instances: 2660 MIPS).
  double reference_rate = 2660.0;

  /// Data locality (§VI future work): when `locality_nodes` > 0, each
  /// root task gets, with probability `locality_fraction`, an input
  /// dataset of log-normal size replicated on `locality_replicas` random
  /// nodes of a cluster with that many nodes. Non-root tasks read their
  /// parents' outputs and carry no placement constraint.
  std::size_t locality_nodes = 0;
  double locality_fraction = 0.8;
  int locality_replicas = 3;
  double input_mb_mu = 5.5, input_mb_sigma = 1.0;  ///< median ~245 MB
};

/// Number of tasks for each size class at the given scale (paper values
/// times scale, minimum 2). "Small" draws uniformly from several hundred
/// (200..800) before scaling, so it is randomized per job.
std::size_t tasks_for_class(JobSize size_class, double scale, Rng& rng);

/// Synthesizes deadline-constrained DAG jobs per the recipe above.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config, std::uint64_t seed = 42)
      : config_(config), rng_(seed) {}

  /// Generates `config.job_count` finalized jobs with Poisson arrivals
  /// starting at time 0. Job size classes cycle small/medium/large so the
  /// three classes appear in equal proportion (paper §V).
  JobSet generate();

  /// Generates a single job of the given class arriving at `arrival`.
  Job make_job(JobId id, JobSize size_class, SimTime arrival);

  const WorkloadConfig& config() const { return config_; }

 private:
  void build_dag(Job& job);
  void fill_tasks(Job& job);
  void assign_deadline(Job& job);
  void assign_input_locations(Job& job);

  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace dsp
