#include "trace/stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/stats.h"

namespace dsp {

WorkloadStats analyze_workload(const JobSet& jobs) {
  WorkloadStats out;
  out.jobs = jobs.size();
  if (jobs.empty()) return out;

  std::vector<double> sizes;
  RunningStat size_stat;
  RunningStat depth_stat;
  std::size_t dependent = 0;
  out.first_arrival = jobs.front().arrival();
  out.last_arrival = jobs.front().arrival();

  for (const auto& job : jobs) {
    out.tasks += job.task_count();
    out.dependency_edges += job.graph().edge_count();
    out.total_work_mi += job.total_work_mi();
    out.first_arrival = std::min(out.first_arrival, job.arrival());
    out.last_arrival = std::max(out.last_arrival, job.arrival());
    ++out.jobs_by_class[static_cast<std::size_t>(job.size_class())];
    if (job.tier() == JobTier::kProduction) ++out.production_jobs;
    if (job.finalized()) {
      depth_stat.add(static_cast<double>(job.graph().depth()));
      out.max_depth = std::max(out.max_depth, job.graph().depth());
    }
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      const double size = job.task(t).size_mi;
      sizes.push_back(size);
      size_stat.add(size);
      if (job.finalized()) {
        out.max_fanout = std::max(out.max_fanout, job.graph().children(t).size());
        if (!job.graph().parents(t).empty()) ++dependent;
      }
    }
  }
  out.size_min = size_stat.min();
  out.size_max = size_stat.max();
  out.size_mean = size_stat.mean();
  out.size_median = median_of(sizes);
  out.mean_depth = depth_stat.mean();
  out.dependent_fraction =
      out.tasks ? static_cast<double>(dependent) / static_cast<double>(out.tasks)
                : 0.0;
  return out;
}

std::string WorkloadStats::render() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "jobs: %zu (small %zu / medium %zu / large %zu; %zu production)\n"
      "tasks: %zu, dependency edges: %zu (%.0f%% of tasks dependent)\n"
      "task size MI: min %.3g / median %.3g / mean %.3g / max %.3g\n"
      "total work: %.3g MI\n"
      "DAG depth: mean %.1f, max %d; max fan-out %zu\n"
      "arrivals: %s span\n",
      jobs, jobs_by_class[0], jobs_by_class[1], jobs_by_class[2],
      production_jobs, tasks, dependency_edges, dependent_fraction * 100.0,
      size_min, size_median, size_mean, size_max, total_work_mi, mean_depth,
      max_depth, max_fanout, format_time(last_arrival - first_arrival).c_str());
  return buf;
}

}  // namespace dsp
