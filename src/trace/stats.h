// Workload statistics: summarize a JobSet the way the paper characterizes
// its trace (§I/§V): task counts, size distribution, DAG depth and
// fan-out, per-class composition, total work.
//
// Used by trace_replay's --stats mode and by tests validating that the
// synthetic generator matches the paper's workload shape.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "dag/job.h"

namespace dsp {

/// Aggregate shape statistics of a workload.
struct WorkloadStats {
  std::size_t jobs = 0;
  std::size_t tasks = 0;
  std::size_t dependency_edges = 0;
  double total_work_mi = 0.0;

  // Task size distribution (MI).
  double size_min = 0.0, size_median = 0.0, size_mean = 0.0, size_max = 0.0;

  // DAG shape.
  int max_depth = 0;
  double mean_depth = 0.0;
  std::size_t max_fanout = 0;
  /// Fraction of tasks with at least one parent (dependency-bound work).
  double dependent_fraction = 0.0;

  // Composition.
  std::array<std::size_t, 3> jobs_by_class{};  // small / medium / large
  std::size_t production_jobs = 0;

  // Arrival window.
  SimTime first_arrival = 0;
  SimTime last_arrival = 0;

  /// Renders a compact multi-line report.
  std::string render() const;
};

/// Computes statistics over a (finalized) workload.
WorkloadStats analyze_workload(const JobSet& jobs);

}  // namespace dsp
