#include "trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/csv.h"

namespace dsp {
namespace {

constexpr const char* kHeader =
    "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
    "size_class,tier,parents,input_mb,input_nodes";

std::optional<double> parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (!end || *end != '\0' || end == s.c_str()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(const std::string& s) {
  long long v = 0;
  const auto* b = s.data();
  const auto* e = s.data() + s.size();
  const auto res = std::from_chars(b, e, v);
  if (res.ec != std::errc{} || res.ptr != e) return std::nullopt;
  return v;
}

std::optional<JobSize> parse_size_class(const std::string& s) {
  if (s == "small") return JobSize::kSmall;
  if (s == "medium") return JobSize::kMedium;
  if (s == "large") return JobSize::kLarge;
  return std::nullopt;
}

std::optional<JobTier> parse_tier(const std::string& s) {
  if (s == "production") return JobTier::kProduction;
  if (s == "research") return JobTier::kResearch;
  return std::nullopt;
}

/// Raw rows of one job before assembly.
struct PendingTask {
  TaskIndex index;
  Task task;
  std::vector<TaskIndex> parents;
};

struct PendingJob {
  JobId id = kInvalidJob;
  SimTime arrival = 0;
  SimTime deadline = kMaxTime;
  JobSize size_class = JobSize::kSmall;
  JobTier tier = JobTier::kProduction;
  std::vector<PendingTask> tasks;
};

void assemble(PendingJob&& pending, double reference_rate, JobSet& jobs,
              std::vector<std::string>& errors) {
  Job job(pending.id, pending.tasks.size());
  job.set_arrival(pending.arrival);
  job.set_deadline(pending.deadline);
  job.set_size_class(pending.size_class);
  job.set_tier(pending.tier);
  for (const auto& pt : pending.tasks) {
    if (pt.index >= job.task_count()) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "job %u: task index %u out of range [0,%zu)",
                    pending.id, pt.index, job.task_count());
      errors.emplace_back(buf);
      return;
    }
    Task& t = job.task(pt.index);
    t.size_mi = pt.task.size_mi;
    t.demand = pt.task.demand;
    t.input_mb = pt.task.input_mb;
    t.input_nodes = pt.task.input_nodes;
    for (TaskIndex p : pt.parents) {
      if (p >= job.task_count() || p == pt.index) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "job %u: bad parent %u for task %u",
                      pending.id, p, pt.index);
        errors.emplace_back(buf);
        return;
      }
      job.add_dependency(p, pt.index);
    }
  }
  if (!job.finalize(reference_rate)) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "job %u: dependency graph is cyclic", pending.id);
    errors.emplace_back(buf);
    return;
  }
  jobs.push_back(std::move(job));
}

}  // namespace

void write_trace_csv(std::ostream& out, const JobSet& jobs) {
  out << kHeader << '\n';
  CsvWriter writer(out);
  char buf[64];
  for (const auto& job : jobs) {
    for (TaskIndex j = 0; j < job.task_count(); ++j) {
      const Task& t = job.task(j);
      std::vector<std::string> row;
      row.push_back(std::to_string(job.id()));
      row.push_back(std::to_string(j));
      std::snprintf(buf, sizeof buf, "%.6g", t.size_mi);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.6g", t.demand.cpu);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.6g", t.demand.mem);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.6g", t.demand.disk);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.6g", t.demand.bw);
      row.emplace_back(buf);
      row.push_back(std::to_string(job.arrival()));
      row.push_back(std::to_string(job.deadline()));
      row.emplace_back(to_string(job.size_class()));
      row.emplace_back(to_string(job.tier()));
      std::string parents;
      for (TaskIndex p : job.graph().finalized()
                             ? job.graph().parents(j)
                             : std::span<const TaskIndex>{}) {
        if (!parents.empty()) parents += ';';
        parents += std::to_string(p);
      }
      row.push_back(std::move(parents));
      std::snprintf(buf, sizeof buf, "%.6g", t.input_mb);
      row.emplace_back(buf);
      std::string input_nodes;
      for (int n : t.input_nodes) {
        if (!input_nodes.empty()) input_nodes += ';';
        input_nodes += std::to_string(n);
      }
      row.push_back(std::move(input_nodes));
      writer.write(row);
    }
  }
}

bool write_trace_csv(const std::string& path, const JobSet& jobs) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_csv(out, jobs);
  return static_cast<bool>(out);
}

TraceParseResult read_trace_csv(std::istream& in, double reference_rate) {
  TraceParseResult result;
  CsvReader reader(in);
  std::vector<std::string> fields;
  bool saw_header = false;
  std::optional<PendingJob> current;

  auto fail = [&](const char* what) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "line %zu: %s", reader.line_number(), what);
    result.errors.emplace_back(buf);
  };

  while (reader.next(fields)) {
    if (!saw_header) {
      saw_header = true;
      if (!fields.empty() && fields[0] == "job_id") continue;  // header row
      // else: headerless file; fall through and parse as data.
    }
    // 12 fields = legacy format; 14 adds the locality extension.
    if (fields.size() != 12 && fields.size() != 14) {
      fail("expected 12 or 14 fields");
      continue;
    }
    const auto job_id = parse_int(fields[0]);
    const auto task_index = parse_int(fields[1]);
    const auto size_mi = parse_double(fields[2]);
    const auto cpu = parse_double(fields[3]);
    const auto mem = parse_double(fields[4]);
    const auto disk = parse_double(fields[5]);
    const auto bw = parse_double(fields[6]);
    const auto arrival = parse_int(fields[7]);
    const auto deadline = parse_int(fields[8]);
    const auto size_class = parse_size_class(fields[9]);
    const auto tier = parse_tier(fields[10]);
    if (!job_id || !task_index || !size_mi || !cpu || !mem || !disk || !bw ||
        !arrival || !deadline || !size_class || !tier) {
      fail("malformed field");
      continue;
    }
    const auto id = static_cast<JobId>(*job_id);
    if (!current || current->id != id) {
      if (current)
        assemble(std::move(*current), reference_rate, result.jobs, result.errors);
      current.emplace();
      current->id = id;
      current->arrival = *arrival;
      current->deadline = *deadline;
      current->size_class = *size_class;
      current->tier = *tier;
    }
    PendingTask pt;
    pt.index = static_cast<TaskIndex>(*task_index);
    pt.task.size_mi = *size_mi;
    pt.task.demand = Resources{*cpu, *mem, *disk, *bw};
    // Parse ';'-separated parent list.
    const std::string& plist = fields[11];
    std::size_t pos = 0;
    bool bad_parent = false;
    while (pos < plist.size()) {
      const auto next_sep = plist.find(';', pos);
      const auto token = plist.substr(pos, next_sep == std::string::npos
                                               ? std::string::npos
                                               : next_sep - pos);
      const auto p = parse_int(token);
      if (!p) {
        fail("malformed parent list");
        bad_parent = true;
        break;
      }
      pt.parents.push_back(static_cast<TaskIndex>(*p));
      if (next_sep == std::string::npos) break;
      pos = next_sep + 1;
    }
    if (bad_parent) continue;
    if (fields.size() == 14) {
      const auto input_mb = parse_double(fields[12]);
      if (!input_mb) {
        fail("malformed input_mb");
        continue;
      }
      pt.task.input_mb = *input_mb;
      const std::string& nlist = fields[13];
      std::size_t npos = 0;
      bool bad_node = false;
      while (npos < nlist.size()) {
        const auto sep = nlist.find(';', npos);
        const auto token = nlist.substr(
            npos, sep == std::string::npos ? std::string::npos : sep - npos);
        const auto node = parse_int(token);
        if (!node) {
          fail("malformed input_nodes");
          bad_node = true;
          break;
        }
        pt.task.input_nodes.push_back(static_cast<int>(*node));
        if (sep == std::string::npos) break;
        npos = sep + 1;
      }
      if (bad_node) continue;
    }
    current->tasks.push_back(std::move(pt));
  }
  if (current)
    assemble(std::move(*current), reference_rate, result.jobs, result.errors);
  return result;
}

TraceParseResult read_trace_csv(const std::string& path, double reference_rate) {
  std::ifstream in(path);
  if (!in) {
    TraceParseResult result;
    result.errors.push_back("cannot open file: " + path);
    return result;
  }
  return read_trace_csv(in, reference_rate);
}

}  // namespace dsp
