#include "trace/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "dag/validate.h"
#include "util/log.h"

namespace dsp {

std::size_t tasks_for_class(JobSize size_class, double scale, Rng& rng) {
  double base = 0.0;
  switch (size_class) {
    case JobSize::kLarge: base = 2000.0; break;
    case JobSize::kMedium: base = 1000.0; break;
    case JobSize::kSmall: base = static_cast<double>(rng.uniform_int(200, 800)); break;
  }
  return static_cast<std::size_t>(std::max(2.0, std::round(base * scale)));
}

JobSet WorkloadGenerator::generate() {
  JobSet jobs;
  jobs.reserve(config_.job_count);

  // One realized arrival rate per workload, drawn from [min, max] (paper:
  // "x was randomly chosen from [2,5]").
  const double rate_per_min =
      rng_.uniform(config_.min_arrival_rate, config_.max_arrival_rate);
  const double rate_per_sec = rate_per_min / 60.0;

  static constexpr JobSize kCycle[] = {JobSize::kSmall, JobSize::kMedium,
                                       JobSize::kLarge};
  SimTime arrival = 0;
  for (std::size_t i = 0; i < config_.job_count; ++i) {
    arrival += from_seconds(rng_.exponential(rate_per_sec));
    jobs.push_back(make_job(static_cast<JobId>(i), kCycle[i % 3], arrival));
  }
  return jobs;
}

Job WorkloadGenerator::make_job(JobId id, JobSize size_class, SimTime arrival) {
  const std::size_t n = tasks_for_class(size_class, config_.task_scale, rng_);
  Job job(id, n);
  job.set_size_class(size_class);
  job.set_arrival(arrival);
  job.set_tier(rng_.chance(config_.production_fraction) ? JobTier::kProduction
                                                        : JobTier::kResearch);
  fill_tasks(job);
  build_dag(job);
  const bool ok = job.finalize(config_.reference_rate);
  assert(ok && "generated DAG must be acyclic");
  (void)ok;
  assign_deadline(job);
  assign_input_locations(job);
  // Re-finalize deadline-dependent per-task deadlines now that the job
  // deadline is known (finalize computes levels; deadlines need the final
  // job deadline).
  const bool ok2 = job.finalize(config_.reference_rate);
  assert(ok2);
  (void)ok2;
  return job;
}

void WorkloadGenerator::fill_tasks(Job& job) {
  for (TaskIndex j = 0; j < job.task_count(); ++j) {
    Task& t = job.task(j);
    t.size_mi = std::clamp(rng_.lognormal(config_.size_mu, config_.size_sigma),
                           config_.size_min_mi, config_.size_max_mi);
    t.demand.cpu = std::clamp(rng_.lognormal(config_.cpu_mu, config_.cpu_sigma),
                              config_.cpu_min, config_.cpu_max);
    t.demand.mem = std::clamp(rng_.lognormal(config_.mem_mu, config_.mem_sigma),
                              config_.mem_min, config_.mem_max);
    t.demand.disk = config_.disk_mb;
    t.demand.bw = config_.bw_mbps;
  }
}

void WorkloadGenerator::assign_input_locations(Job& job) {
  if (config_.locality_nodes == 0) return;
  const auto n_nodes = static_cast<std::int64_t>(config_.locality_nodes);
  for (TaskIndex root : job.graph().roots()) {
    if (!rng_.chance(config_.locality_fraction)) continue;
    Task& t = job.task(root);
    t.input_mb = rng_.lognormal(config_.input_mb_mu, config_.input_mb_sigma);
    const int replicas =
        std::min<int>(config_.locality_replicas, static_cast<int>(n_nodes));
    while (static_cast<int>(t.input_nodes.size()) < replicas) {
      const int node = static_cast<int>(rng_.uniform_int(0, n_nodes - 1));
      if (std::find(t.input_nodes.begin(), t.input_nodes.end(), node) ==
          t.input_nodes.end())
        t.input_nodes.push_back(node);
    }
  }
}

void WorkloadGenerator::build_dag(Job& job) {
  // Assign every task a level in [1, max_levels], then draw parents from
  // the immediately preceding level. This reproduces the paper's DAG
  // construction invariants (depth <= 5, direct dependents <= 15) while
  // producing the diverse shapes of Fig. 1 (wide fans, diamonds, chains).
  const std::size_t n = job.task_count();
  const int levels = std::min<int>(config_.max_levels,
                                   std::max<int>(1, static_cast<int>(n / 2)));

  // Level occupancy: gentle geometric decay — level 1 (the map stage) is
  // widest, but deeper levels stay well populated, matching the "median
  // DAG has a depth of five and thousands of tasks" characterization the
  // paper cites from Graphene. A flatter profile makes dependencies bind:
  // a large share of tasks must wait for upstream stages.
  std::vector<std::vector<TaskIndex>> by_level(static_cast<std::size_t>(levels));
  std::vector<double> level_weights(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l)
    level_weights[static_cast<std::size_t>(l)] = std::pow(0.85, l);
  // Seed each level with one task to guarantee full depth when possible.
  TaskIndex next = 0;
  for (int l = 0; l < levels && next < n; ++l)
    by_level[static_cast<std::size_t>(l)].push_back(next++);
  for (; next < n; ++next) {
    const auto l = rng_.weighted_index(level_weights);
    by_level[l].push_back(next);
  }

  // Fan-out bookkeeping to respect the <= 15 dependents cap.
  std::vector<std::size_t> fanout(n, 0);
  for (int l = 1; l < levels; ++l) {
    const auto& prev = by_level[static_cast<std::size_t>(l - 1)];
    for (TaskIndex child : by_level[static_cast<std::size_t>(l)]) {
      // Number of parents: at least 1, geometric-ish around mean_parents.
      std::size_t want = 1;
      while (want < 4 && rng_.chance((config_.mean_parents - 1.0) / 3.0)) ++want;
      std::size_t added = 0;
      // Random probes into the previous level; skip saturated parents.
      for (std::size_t attempt = 0; attempt < prev.size() * 2 && added < want;
           ++attempt) {
        const TaskIndex p =
            prev[static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(prev.size()) - 1))];
        if (fanout[p] >= config_.max_fanout) continue;
        job.add_dependency(p, child);
        ++fanout[p];
        ++added;
      }
      // If every candidate parent was saturated, the task becomes a root of
      // its level — allowed (Fig. 1 shows disconnected components).
    }
  }
}

void WorkloadGenerator::assign_deadline(Job& job) {
  const SimTime cp = job.critical_path_time(config_.reference_rate);
  const bool production = job.tier() == JobTier::kProduction;
  const double slack =
      production ? rng_.uniform(config_.prod_slack_min, config_.prod_slack_max)
                 : rng_.uniform(config_.res_slack_min, config_.res_slack_max);
  job.set_deadline(job.arrival() +
                   static_cast<SimTime>(static_cast<double>(cp) * slack));
}

}  // namespace dsp
