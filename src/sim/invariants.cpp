#include "sim/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace dsp {
namespace {

std::string violation(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string violation(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// Flat gid addressing mirroring the engine's.
struct GidMap {
  std::vector<Gid> offsets;
  explicit GidMap(const JobSet& jobs) {
    offsets.resize(jobs.size());
    Gid next = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      offsets[j] = next;
      next += static_cast<Gid>(jobs[j].task_count());
    }
    total = next;
  }
  Gid gid(JobId j, TaskIndex t) const { return offsets[j] + t; }
  Gid total = 0;
};

}  // namespace

std::vector<std::string> check_run_invariants(const TimelineRecorder& recorder,
                                              const JobSet& jobs,
                                              const ClusterSpec& cluster,
                                              const InvariantOptions& options) {
  std::vector<std::string> problems;
  const GidMap gids(jobs);

  // ---- Rules 1, 2 & 4: sweep each node's intervals. --------------------
  for (std::size_t k = 0; k < cluster.size(); ++k) {
    const auto node_ivs = recorder.intervals_on_node(static_cast<int>(k));
    // Event sweep: +demand at begin, -demand at end. Ends sort before
    // begins at the same instant (a slot freed at t is reusable at t).
    struct Edge {
      SimTime t;
      int delta;  // +1 begin, -1 end
      const Interval* iv;
    };
    std::vector<Edge> edges;
    edges.reserve(node_ivs.size() * 2);
    for (const auto& iv : node_ivs) {
      edges.push_back({iv.begin, +1, &iv});
      edges.push_back({iv.end, -1, &iv});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.delta < b.delta;  // ends first
    });
    int concurrency = 0;
    Resources in_use;
    const NodeSpec& spec = cluster.node(k);
    for (const auto& e : edges) {
      concurrency += e.delta;
      // Resolve the interval's task demand (offsets are sorted, so the
      // owning job is found by binary search).
      const Gid g = e.iv->task;
      const auto job_it =
          std::upper_bound(gids.offsets.begin(), gids.offsets.end(), g) - 1;
      const auto j = static_cast<std::size_t>(job_it - gids.offsets.begin());
      const auto t = static_cast<TaskIndex>(g - *job_it);
      const Resources& demand = jobs[j].task(t).demand;
      if (e.delta > 0) in_use += demand;
      else in_use -= demand;

      if (concurrency > spec.slots) {
        problems.push_back(violation(
            "node %zu: %d concurrent tasks exceed %d slots at t=%lld", k,
            concurrency, spec.slots, static_cast<long long>(e.t)));
        break;  // one report per node suffices
      }
      if (!spec.capacity.fits(in_use)) {
        problems.push_back(violation(
            "node %zu: resource overcommit at t=%lld (%s over %s)", k,
            static_cast<long long>(e.t), in_use.to_string().c_str(),
            spec.capacity.to_string().c_str()));
        break;
      }
    }
  }

  // ---- Per-task checks. -------------------------------------------------
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      const Gid g = gids.gid(static_cast<JobId>(j), t);
      const SimTime finish = recorder.finish_time(g);
      if (finish == kNoTime) {
        problems.push_back(
            violation("job %zu task %u never finished", j, t));
        continue;
      }

      // Rule 4: a task's own intervals must not overlap.
      const auto ivs = recorder.intervals_for_task(g);
      for (std::size_t i = 1; i < ivs.size(); ++i) {
        if (ivs[i].begin + options.time_tol < ivs[i - 1].end) {
          problems.push_back(violation(
              "job %zu task %u occupies two slots at once (t=%lld)", j, t,
              static_cast<long long>(ivs[i].begin)));
          break;
        }
      }

      // Rule 3: dependency order against every parent's finish.
      const SimTime first_run = recorder.first_run_start(g);
      for (TaskIndex p : job.graph().parents(t)) {
        const SimTime parent_finish =
            recorder.finish_time(gids.gid(static_cast<JobId>(j), p));
        if (parent_finish == kNoTime) continue;  // reported separately
        if (first_run + options.time_tol < parent_finish) {
          problems.push_back(violation(
              "job %zu task %u ran at %lld before parent %u finished at %lld",
              j, t, static_cast<long long>(first_run), p,
              static_cast<long long>(parent_finish)));
        }
      }

      // Rule 6: productive run time ~= size / rate on the executing node.
      if (options.check_work_conservation) {
        double executed_mi = 0.0;
        for (const auto& iv : ivs)
          if (iv.kind == IntervalKind::kRun)
            executed_mi += to_seconds(iv.duration()) *
                           cluster.rate(static_cast<std::size_t>(iv.node));
        const double size = job.task(t).size_mi;
        if (std::abs(executed_mi - size) >
            std::max(1.0, size * options.work_rel_tol)) {
          problems.push_back(violation(
              "job %zu task %u executed %.1f MI but its size is %.1f MI", j, t,
              executed_mi, size));
        }
      }
    }
  }

  // ---- Rule 5: job completion records. ----------------------------------
  std::map<JobId, SimTime> completion;
  for (const auto& [time, job] : recorder.job_completions())
    completion[job] = time;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto it = completion.find(static_cast<JobId>(j));
    if (it == completion.end()) {
      problems.push_back(violation("job %zu has no completion record", j));
      continue;
    }
    SimTime last_finish = 0;
    for (TaskIndex t = 0; t < jobs[j].task_count(); ++t)
      last_finish = std::max(
          last_finish, recorder.finish_time(gids.gid(static_cast<JobId>(j), t)));
    if (std::abs(it->second - last_finish) > options.time_tol)
      problems.push_back(violation(
          "job %zu completion %lld != last task finish %lld", j,
          static_cast<long long>(it->second),
          static_cast<long long>(last_finish)));
  }
  return problems;
}

}  // namespace dsp
