// Policy interfaces: offline scheduling and online preemption.
//
// The paper's DSP splits cluster control into an offline phase (ILP
// scheduling every period) and an online phase (priority preemption every
// epoch). The engine drives both through these interfaces; DSP and every
// baseline implement one or both.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/task.h"
#include "sim/types.h"
#include "util/time.h"

namespace dsp {

class Engine;

/// One placement decision: task -> node, with the planned start time that
/// orders the node's waiting queue (DSP's ILP emits t^s_ij; heuristic
/// schedulers emit a rank-preserving surrogate).
struct TaskPlacement {
  Gid task = kInvalidGid;
  int node = -1;
  SimTime planned_start = 0;
};

/// Offline scheduler: invoked at each scheduling period for the jobs that
/// arrived since the previous period (paper §III: "periodically executed
/// offline after each unit of time period").
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Display name used in bench tables.
  virtual const char* name() const = 0;

  /// Places every task of `jobs` onto cluster nodes. The engine inserts
  /// each task into its node's waiting queue ordered by planned_start.
  virtual std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                              Engine& engine) = 0;

  /// Dispatch rule: when node `node` has a free slot, returns the next
  /// waiting task to launch, or kInvalidGid when none qualifies.
  /// `excluded[gid] != 0` marks tasks already rejected in this fill round
  /// (not ready / does not fit); implementations must skip them.
  ///
  /// The default walks the waiting queue in planned-start order and picks
  /// the first ready task whose demand fits — the behaviour of a
  /// dependency-respecting launch check. Packing schedulers (Tetris)
  /// override this with their alignment score; dependency-blind variants
  /// may return a non-ready task, which the engine records as a *disorder*.
  virtual Gid select_next(int node, Engine& engine,
                          const std::vector<std::uint8_t>& excluded);

  /// Dependency-blind executors launch a selected task even when its
  /// inputs do not exist yet; the task then *hoards* its slot without
  /// progressing until the precedents finish (or the engine's hoard
  /// timeout evicts it). Return true to model that behaviour — the engine
  /// then starts unready selections in the hoarding state instead of
  /// refusing them. Either way the selection counts as a disorder.
  virtual bool hoards_slots() const { return false; }
};

/// Online preemption policy: invoked at each epoch tick.
class PreemptionPolicy {
 public:
  virtual ~PreemptionPolicy() = default;

  /// Display name used in bench tables.
  virtual const char* name() const = 0;

  /// Whether preempted tasks keep their progress (checkpoint-restart, as
  /// DSP/Amoeba/Natjam do) or restart from scratch (SRPT).
  virtual CheckpointMode checkpoint_mode() const {
    return CheckpointMode::kCheckpoint;
  }

  /// Examines every node's waiting/running sets via the engine's read API
  /// and issues Engine::try_preempt calls.
  virtual void on_epoch(Engine& engine) = 0;
};

}  // namespace dsp
