#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/log.h"

namespace dsp {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kUnscheduled: return "unscheduled";
    case TaskState::kWaiting: return "waiting";
    case TaskState::kRunning: return "running";
    case TaskState::kHoarding: return "hoarding";
    case TaskState::kSuspended: return "suspended";
    case TaskState::kFinished: return "finished";
  }
  return "?";
}

const char* to_string(PreemptResult r) {
  switch (r) {
    case PreemptResult::kOk: return "ok";
    case PreemptResult::kIncomingNotReady: return "incoming-not-ready";
    case PreemptResult::kIncomingNotWaiting: return "incoming-not-waiting";
    case PreemptResult::kVictimNotRunning: return "victim-not-running";
    case PreemptResult::kNoResources: return "no-resources";
  }
  return "?";
}

namespace {

// Node ids are small; the flight recorder stores them as int16 to keep
// obs::Event compact.
std::int16_t n16(int node) { return static_cast<std::int16_t>(node); }

}  // namespace

// Default dispatch rule: first ready, fitting task in planned-start order.
Gid Scheduler::select_next(int node, Engine& engine,
                           const std::vector<std::uint8_t>& excluded) {
  for (Gid g : engine.waiting(node)) {
    if (excluded[g]) continue;
    if (!engine.is_ready(g)) continue;
    if (!engine.available(node).fits(engine.task_info(g).demand)) continue;
    return g;
  }
  return kInvalidGid;
}

Engine::Engine(ClusterSpec cluster, JobSet jobs, Scheduler& scheduler,
               PreemptionPolicy* preempt, EngineParams params)
    : cluster_(std::move(cluster)),
      jobs_(std::move(jobs)),
      scheduler_(scheduler),
      preempt_(preempt),
      params_(params) {
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    assert(jobs_[j].finalized() && "jobs must be finalized before simulation");
    // Engine addresses jobs by their position; keep ids consistent.
    jobs_[j].set_id(static_cast<JobId>(j));
  }
  tasks_.init(jobs_);
  dispatch_excluded_.assign(tasks_.task_count(), 0);
  nodes_.init(cluster_);

  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    push_event(jobs_[j].arrival(), EventCalendar::Kind::kArrival,
               static_cast<Gid>(j), 0);
    first_arrival_ = std::min(first_arrival_, jobs_[j].arrival());
  }
  if (jobs_.empty()) first_arrival_ = 0;

  // Period ticks start with the first arrival; epoch ticks only when an
  // online policy is installed.
  push_event(first_arrival_, EventCalendar::Kind::kPeriod, kInvalidGid, 0);
  if (preempt_)
    push_event(first_arrival_ + params_.epoch, EventCalendar::Kind::kEpoch,
               kInvalidGid, 0);
}

double Engine::remaining_mi(Gid g) const {
  const TaskRt& r = tasks_.rt(g);
  double executed = r.executed_mi;
  // A running task's progress advances continuously; account for the
  // portion executed since its last dispatch.
  if (r.state == TaskState::kRunning) {
    const SimTime worked = now_ - r.last_dispatch - r.current_overhead;
    if (worked > 0)
      executed += to_seconds(worked) * node_rate(r.node);
  }
  return std::max(0.0, task_info(g).size_mi - executed);
}

SimTime Engine::remaining_time(Gid g) const {
  const int node = tasks_.rt(g).node;
  const double rate = node >= 0 ? node_rate(node) : cluster_.mean_rate();
  // A fully-degraded node (speed factor 0) or an empty cluster offers no
  // progress: remaining time saturates instead of from_seconds(inf).
  if (rate <= 0.0) return kMaxTime;
  return from_seconds(remaining_mi(g) / rate);
}

SimTime Engine::waiting_time(Gid g) const {
  const TaskRt& r = tasks_.rt(g);
  if ((r.state == TaskState::kWaiting || r.state == TaskState::kSuspended) &&
      r.waiting_since != kNoTime)
    return now_ - r.waiting_since;
  return 0;
}

Engine::LeafInputs Engine::leaf_inputs(Gid g) const {
  const TaskRt& r = tasks_.rt(g);
  const Task& info = task_info(g);
  double executed = r.executed_mi;
  double wait_s = r.total_wait_s;
  if (r.state == TaskState::kRunning) {
    const SimTime worked = now_ - r.last_dispatch - r.current_overhead;
    if (worked > 0) executed += to_seconds(worked) * node_rate(r.node);
  } else if ((r.state == TaskState::kWaiting ||
              r.state == TaskState::kSuspended) &&
             r.waiting_since != kNoTime) {
    wait_s += to_seconds(now_ - r.waiting_since);
  }
  const double rate = r.node >= 0 ? node_rate(r.node) : cluster_.mean_rate();
  const double rem_mi = std::max(0.0, info.size_mi - executed);
  // Round through SimTime exactly as remaining_time does, so the fused
  // inputs are bit-identical to the three separate accessors. Zero rate
  // saturates t_rem the same way remaining_time does; the allowance then
  // saturates negative instead of wrapping deadline - now - kMaxTime
  // below INT64_MIN.
  const SimTime t_rem = rate > 0.0 ? from_seconds(rem_mi / rate) : kMaxTime;
  const SimTime t_allow =
      t_rem == kMaxTime ? -kMaxTime : info.deadline - now_ - t_rem;
  return {to_seconds(t_rem), wait_s, to_seconds(t_allow)};
}

bool Engine::depends_on(Gid dependent, Gid precedent) const {
  const JobId j = tasks_.job_of(dependent);
  if (j != tasks_.job_of(precedent)) return false;
  assert(j < jobs_.size());
  return jobs_[j].graph().depends_on(tasks_.index_of(dependent),
                                     tasks_.index_of(precedent));
}

RunMetrics Engine::run() {
  if (lifecycle_ != Lifecycle::kIdle) {
    // Re-running would replay arrivals against consumed calendar/runtime
    // state and silently corrupt every metric. Fail loudly instead.
    DSP_ERROR(
        "Engine::run() called on a %s engine: an Engine instance is "
        "single-shot. Construct a fresh Engine (or use run_scenario) for "
        "each run.",
        lifecycle_ == Lifecycle::kRunning ? "still-running" : "finished");
    std::abort();
  }
  lifecycle_ = Lifecycle::kRunning;
  if (events_log_ == nullptr) {
    // DSP_EVENT_LOG turns the recorder on for any run without code
    // changes (examples, benches, the report-smoke CI stage).
    owned_events_ = obs::EventLog::from_env();
    events_log_ = owned_events_.get();
  }
  emit_event({.kind = obs::EventKind::kRunInfo,
              .job = static_cast<std::uint32_t>(jobs_.size()),
              .task = static_cast<Gid>(tasks_.task_count()),
              .a = static_cast<double>(cluster_.size()),
              .b = static_cast<double>(cluster_.total_slots())});
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t events_processed = 0;

  while (!calendar_.empty()) {
    const EventCalendar::Entry e = calendar_.pop();
    if (e.time > params_.horizon) {
      DSP_WARN("engine: horizon %lld us exceeded; aborting with %zu/%zu jobs done",
               static_cast<long long>(params_.horizon), finished_jobs_,
               jobs_.size());
      break;
    }
    assert(e.time >= now_);
    now_ = e.time;
    ++events_processed;
    switch (e.kind) {
      case EventCalendar::Kind::kArrival:
        on_arrival(static_cast<JobId>(e.gid));
        break;
      case EventCalendar::Kind::kPeriod: on_period(); break;
      case EventCalendar::Kind::kEpoch: on_epoch(); break;
      case EventCalendar::Kind::kFinish: on_finish(e.gid, e.token); break;
      case EventCalendar::Kind::kHoardTimeout:
        on_hoard_timeout(e.gid, e.token);
        break;
      case EventCalendar::Kind::kNodeEvent: on_node_event(e.gid); break;
    }
    if (all_jobs_finished()) break;
  }

  if (!all_jobs_finished())
    DSP_WARN("engine: finished with %zu/%zu jobs incomplete",
             jobs_.size() - finished_jobs_, jobs_.size());

  metrics_.makespan = std::max<SimTime>(0, last_finish_ - first_arrival_);
  double busy = 0.0;
  for (std::size_t k = 0; k < nodes_.size(); ++k)
    busy += nodes_.node(static_cast<int>(k)).busy_us;
  const double slot_time = static_cast<double>(metrics_.makespan) *
                           static_cast<double>(cluster_.total_slots());
  metrics_.slot_utilization = slot_time > 0.0 ? busy / slot_time : 0.0;
  metrics_.sim_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  DSP_COUNT_N("engine.events", events_processed);
  DSP_COUNT("engine.runs");
  DSP_OBSERVE("engine.run_s", metrics_.sim_wall_s);
  lifecycle_ = Lifecycle::kDone;
  return metrics_;
}

void Engine::record_preempt_decision(obs::PreemptDecision d) {
  d.time = now_;
  ++metrics_.preempt_evaluations;
  switch (d.outcome) {
    case obs::PreemptOutcome::kFired:
      // The successful try_preempt already counted metrics_.preemptions.
      DSP_COUNT("preempt.fired");
      break;
    case obs::PreemptOutcome::kSuppressedPP:
      ++metrics_.suppressed_preemptions;
      DSP_COUNT("preempt.suppressed_pp");
      break;
    case obs::PreemptOutcome::kBlockedByDependency:
      ++metrics_.preempt_blocked_dependency;
      DSP_COUNT("preempt.blocked_c2");
      break;
    case obs::PreemptOutcome::kNoVictim:
      ++metrics_.preempt_no_victim;
      DSP_COUNT("preempt.no_victim");
      break;
  }
  if (audit_) audit_->record(d);
  if (observer_) observer_->on_preempt_decision(d);
  emit_event({.kind = obs::EventKind::kPreemptDecision,
              .flags = static_cast<std::uint8_t>(
                  (d.urgent ? obs::kEventFlagUrgent : 0) |
                  (d.pp ? obs::kEventFlagPP : 0) |
                  (static_cast<std::uint8_t>(d.outcome)
                   << obs::kEventFlagOutcomeShift)),
              .job = d.candidate == kInvalidGid ? ~std::uint32_t{0}
                                                : tasks_.job_of(d.candidate),
              .task = d.candidate,
              .task2 = d.victim,
              .node = n16(d.node),
              .a = d.candidate_priority,
              .b = d.victim_priority});
}

void Engine::on_arrival(JobId job) {
  pending_jobs_.push_back(job);
  emit_event({.kind = obs::EventKind::kJobArrival,
              .job = job,
              .a = static_cast<double>(jobs_[job].task_count())});
}

bool Engine::add_job_dependency(JobId predecessor, JobId successor) {
  assert(lifecycle_ == Lifecycle::kIdle &&
         "declare job dependencies before run()");
  if (predecessor >= jobs_.size() || successor >= jobs_.size() ||
      predecessor == successor) {
    DSP_ERROR("invalid job dependency %u -> %u", predecessor, successor);
    return false;
  }
  // Cycle check: DFS from `successor` along existing successor edges must
  // not reach `predecessor`'s... (i.e. predecessor must not be reachable
  // FROM successor).
  std::vector<JobId> stack{successor};
  std::vector<std::uint8_t> seen(jobs_.size(), 0);
  seen[successor] = 1;
  while (!stack.empty()) {
    const JobId j = stack.back();
    stack.pop_back();
    if (j == predecessor) {
      DSP_WARN("job dependency %u -> %u would create a cycle; ignored",
               predecessor, successor);
      return false;
    }
    for (JobId s : tasks_.job_rt(j).successor_jobs)
      if (!seen[s]) {
        seen[s] = 1;
        stack.push_back(s);
      }
  }
  tasks_.job_rt(predecessor).successor_jobs.push_back(successor);
  ++tasks_.job_rt(successor).pred_jobs_remaining;
  return true;
}

void Engine::set_failure_plan(const FailurePlan& plan) {
  assert(lifecycle_ == Lifecycle::kIdle &&
         "install the failure plan before run()");
  for (const NodeEvent& event : plan.sorted_events()) {
    if (event.node < 0 || static_cast<std::size_t>(event.node) >= cluster_.size()) {
      DSP_ERROR("failure plan references unknown node %d", event.node);
      continue;
    }
    failure_events_.push_back(event);
    push_event(event.at, EventCalendar::Kind::kNodeEvent,
               static_cast<Gid>(failure_events_.size() - 1), 0);
  }
}

void Engine::on_node_event(std::size_t index) {
  const NodeEvent& event = failure_events_[index];
  ClusterState::Node& n = nodes_.node_mut(event.node);
  switch (event.kind) {
    case NodeEvent::Kind::kFail:
      if (n.up) fail_node(event.node);
      break;
    case NodeEvent::Kind::kRecover:
      if (!n.up) recover_node(event.node);
      break;
    case NodeEvent::Kind::kSlowdown:
      if (n.up && n.speed_factor != event.factor) {
        rebase_running(event.node);
        n.speed_factor = event.factor;
        rebase_running(event.node);  // reschedule finishes at the new rate
      }
      break;
    case NodeEvent::Kind::kRestoreSpeed:
      if (n.up && n.speed_factor != 1.0) {
        rebase_running(event.node);
        n.speed_factor = 1.0;
        rebase_running(event.node);
      }
      break;
  }
  // Any node event can change the effective rate seen by tasks placed on
  // the node (including waiting ones), shifting their t_rem. The recorder
  // logs the event as applied: the post-event speed factor travels in `a`.
  emit_event({.kind = recorder_event_kind(event.kind),
              .node = n16(event.node),
              .a = n.speed_factor});
  tasks_.touch_priority_all();
}

void Engine::rebase_running(int node) {
  ClusterState::Node& n = nodes_.node_mut(node);
  for (Gid g : n.running) {
    TaskRt& r = tasks_.rt(g);
    if (r.state != TaskState::kRunning) continue;  // hoarders have no event
    // Bank progress at the *current* effective rate, then re-arm the
    // finish event for the remaining work.
    const SimTime elapsed = now_ - r.last_dispatch;
    const SimTime worked = std::max<SimTime>(0, elapsed - r.current_overhead);
    r.executed_mi += to_seconds(worked) * node_rate(node);
    r.executed_mi = std::min(r.executed_mi, task_info(g).size_mi);
    n.busy_us += static_cast<double>(elapsed);
    const SimTime overhead_left =
        std::max<SimTime>(0, r.current_overhead - elapsed);
    r.last_dispatch = now_;
    r.current_overhead = overhead_left;
    ++r.token;
    const double remaining =
        std::max(0.0, task_info(g).size_mi - r.executed_mi);
    push_event(now_ + overhead_left + from_seconds(remaining / node_rate(node)),
               EventCalendar::Kind::kFinish, g, r.token);
  }
}

void Engine::fail_node(int node) {
  ClusterState::Node& n = nodes_.node_mut(node);
  ++metrics_.node_failures;
  n.up = false;
  if (observer_) observer_->on_node_failure(now_, node, /*failed=*/true);

  // Kill occupants. With surviving checkpoints a task keeps the progress
  // it had checkpointed; otherwise everything re-executes.
  const std::vector<Gid> occupants = n.running;
  for (Gid g : occupants) {
    TaskRt& r = tasks_.rt(g);
    ++metrics_.tasks_killed_by_failure;
    if (r.state == TaskState::kRunning) {
      const SimTime elapsed = now_ - r.last_dispatch;
      const SimTime worked = std::max<SimTime>(0, elapsed - r.current_overhead);
      const double progress = to_seconds(worked) * node_rate(node);
      if (params_.checkpoints_survive_failure) {
        r.executed_mi = std::min(r.executed_mi + progress,
                                 task_info(g).size_mi);
        // The un-checkpointed tail since the last event is conservatively
        // kept: continuous checkpointing.
      } else {
        metrics_.work_lost_mi += r.executed_mi + progress;
        r.executed_mi = 0.0;
      }
      n.busy_us += static_cast<double>(elapsed);
      if (observer_)
        observer_->on_task_suspend(now_, g, node,
                                   params_.checkpoints_survive_failure);
      emit_event({.kind = obs::EventKind::kTaskPreempt,
                  .flags = params_.checkpoints_survive_failure
                               ? obs::kEventFlagKeptProgress
                               : std::uint8_t{0},
                  .job = tasks_.job_of(g),
                  .task = g,
                  .node = n16(node)});
    } else if (r.state == TaskState::kHoarding) {
      if (observer_) observer_->on_hoard_evict(now_, g, node);
      emit_event({.kind = obs::EventKind::kHoardEvict,
                  .job = tasks_.job_of(g),
                  .task = g,
                  .node = n16(node)});
    }
    ++r.token;
    ++r.preemptions;
    r.state = TaskState::kSuspended;
    n.available += task_info(g).demand;
    ++n.free_slots;
    enqueue_waiting(node, g);
  }
  n.running.clear();

  // Re-place everything queued on the dead node onto live nodes.
  const std::vector<Gid> stranded = n.waiting;
  for (Gid g : stranded) replace_waiting_task(g);
}

void Engine::recover_node(int node) {
  ClusterState::Node& n = nodes_.node_mut(node);
  n.up = true;
  n.speed_factor = 1.0;
  if (observer_) observer_->on_node_failure(now_, node, /*failed=*/false);
  fill_slots(node);
}

void Engine::replace_waiting_task(Gid g) {
  TaskRt& r = tasks_.rt(g);
  const int old_node = r.node;
  int best = -1;
  double best_backlog = 0.0;
  for (std::size_t k = 0; k < cluster_.size(); ++k) {
    const int kn = static_cast<int>(k);
    if (!nodes_.node(kn).up || kn == old_node) continue;
    if (!cluster_.node(k).capacity.fits(task_info(g).demand)) continue;
    if (best < 0 || nodes_.node(kn).backlog_mi < best_backlog) {
      best = kn;
      best_backlog = nodes_.node(kn).backlog_mi;
    }
  }
  if (best < 0) return;  // no live node fits: wait for recovery
  nodes_.remove_waiting(old_node, g);
  ClusterState::Node& old_n = nodes_.node_mut(old_node);
  old_n.backlog_mi = std::max(0.0, old_n.backlog_mi - task_info(g).size_mi);
  r.node = best;
  tasks_.touch_priority(g);
  nodes_.node_mut(best).backlog_mi += task_info(g).size_mi;
  nodes_.insert_waiting(best, g, tasks_);
  emit_event({.kind = obs::EventKind::kTaskMigrate,
              .flags = obs::kEventFlagFailover,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(old_node),
              .node2 = n16(best)});
  if (nodes_.node(best).free_slots > 0) fill_slots(best);
}

void Engine::on_period() {
  if (!pending_jobs_.empty()) {
    std::vector<JobId> pending;
    pending.swap(pending_jobs_);
    std::vector<TaskPlacement> placements;
    {
      DSP_PROFILE("sched.round_s");
      placements = scheduler_.schedule(pending, *this);
    }
    if (observer_)
      observer_->on_schedule_round(now_, pending.size(), placements.size());
    emit_event({.kind = obs::EventKind::kScheduleRound,
                .a = static_cast<double>(pending.size()),
                .b = static_cast<double>(placements.size())});
    apply_placements(placements, pending);
    fill_all_slots();
  }
  if (!all_jobs_finished())
    push_event(now_ + params_.period, EventCalendar::Kind::kPeriod,
               kInvalidGid, 0);
}

void Engine::on_epoch() {
  if (preempt_) {
    if (observer_) observer_->on_epoch(now_);
    // Bump the ordinal before emitting so every event of this epoch —
    // the boundary marker included — carries the new index.
    ++epoch_index_;
    emit_event({.kind = obs::EventKind::kEpoch,
                .a = static_cast<double>(epoch_index_)});
    {
      DSP_PROFILE("engine.epoch_s");
      preempt_->on_epoch(*this);
    }
    fill_all_slots();
    if (!all_jobs_finished())
      push_event(now_ + params_.epoch, EventCalendar::Kind::kEpoch,
                 kInvalidGid, 0);
  }
}

void Engine::apply_placements(const std::vector<TaskPlacement>& placements,
                              const std::vector<JobId>& pending) {
  // Mark expected tasks.
  for (JobId j : pending) tasks_.job_rt(j).scheduled = true;

  std::vector<std::uint8_t> placed(tasks_.task_count(), 0);
  for (const auto& p : placements) {
    if (p.task >= tasks_.task_count() || p.node < 0 ||
        static_cast<std::size_t>(p.node) >= cluster_.size()) {
      DSP_ERROR("scheduler %s produced an invalid placement (task %u node %d)",
                scheduler_.name(), p.task, p.node);
      continue;
    }
    if (tasks_.rt(p.task).state != TaskState::kUnscheduled || placed[p.task]) {
      DSP_ERROR("scheduler %s placed task %u twice", scheduler_.name(), p.task);
      continue;
    }
    const auto& cap = cluster_.node(static_cast<std::size_t>(p.node)).capacity;
    if (!cap.fits(task_info(p.task).demand)) {
      DSP_WARN("placement of task %u exceeds node %d capacity; re-placing",
               p.task, p.node);
      continue;  // falls through to the fallback pass below
    }
    if (!nodes_.node(p.node).up) {
      DSP_DEBUG("placement of task %u targets down node %d; re-placing",
                p.task, p.node);
      continue;  // fallback pass places it on a live node
    }
    placed[p.task] = 1;
    tasks_.rt(p.task).node = p.node;
    tasks_.rt(p.task).planned_start = p.planned_start;
    enqueue_waiting(p.node, p.task);
  }

  // Fallback: any unplaced task of a pending job goes to the least-loaded
  // node that can hold it. Keeps runs comparable even when a scheduler
  // mis-places (logged above).
  for (JobId j : pending) {
    for (TaskIndex t = 0; t < jobs_[j].task_count(); ++t) {
      const Gid g = gid(j, t);
      if (placed[g] || tasks_.rt(g).state != TaskState::kUnscheduled) continue;
      int best = -1;
      double best_backlog = 0.0;
      for (std::size_t k = 0; k < cluster_.size(); ++k) {
        if (!nodes_.node(static_cast<int>(k)).up) continue;
        if (!cluster_.node(k).capacity.fits(task_info(g).demand)) continue;
        const double backlog = nodes_.node(static_cast<int>(k)).backlog_mi;
        if (best < 0 || backlog < best_backlog) {
          best = static_cast<int>(k);
          best_backlog = backlog;
        }
      }
      if (best < 0) {
        DSP_ERROR("task %u fits no node; it will never run", g);
        continue;
      }
      DSP_DEBUG("fallback placement: task %u -> node %d", g, best);
      tasks_.rt(g).node = best;
      tasks_.rt(g).planned_start = now_;
      enqueue_waiting(best, g);
    }
  }
}

void Engine::enqueue_waiting(int node, Gid g) {
  TaskRt& r = tasks_.rt(g);
  const bool first_entry = r.state == TaskState::kUnscheduled;
  if (first_entry) {
    r.state = TaskState::kWaiting;
    nodes_.node_mut(node).backlog_mi += task_info(g).size_mi;
  }
  emit_event({.kind = obs::EventKind::kTaskEnqueue,
              .flags = first_entry ? std::uint8_t{0} : obs::kEventFlagRequeue,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(node)});
  r.waiting_since = now_;
  tasks_.touch_priority(g);
  nodes_.insert_waiting(node, g, tasks_);
}

void Engine::fill_all_slots() {
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const ClusterState::Node& n = nodes_.node(static_cast<int>(k));
    if (n.up && n.free_slots > 0 && !n.waiting.empty())
      fill_slots(static_cast<int>(k));
  }
}

void Engine::fill_slots(int node) {
  ClusterState::Node& n = nodes_.node_mut(node);
  if (!n.up) return;
  std::vector<Gid> touched;
  // A dependency-blind policy can nominate unready task after unready task.
  // Each rejection persistently blocks the task (launch_blocked_) so it is
  // not re-nominated until its inputs appear; the per-event budget is a
  // backstop against policies that ignore the blocked flag.
  int disorder_budget = 1024;
  while (n.free_slots > 0 && !n.waiting.empty()) {
    const Gid g = scheduler_.select_next(node, *this, dispatch_excluded_);
    if (g == kInvalidGid) break;
    if (g >= tasks_.task_count() || tasks_.rt(g).node != node ||
        (tasks_.rt(g).state != TaskState::kWaiting &&
         tasks_.rt(g).state != TaskState::kSuspended)) {
      DSP_ERROR("scheduler %s selected an invalid task %u for dispatch",
                scheduler_.name(), g);
      break;
    }
    if (dispatch_excluded_[g]) break;  // policy ignored the exclusion set
    if (!is_ready(g)) {
      // Dependency disorder. A slot-hoarding executor launches the task
      // anyway and it idles in the slot until its inputs appear; otherwise
      // the launch check rejects it and blocks re-nomination until its
      // precedents finish.
      ++metrics_.disorders;
      if (scheduler_.hoards_slots() &&
          n.available.fits(task_info(g).demand)) {
        nodes_.remove_waiting(node, g);
        start_hoarding(node, g);
        continue;
      }
      tasks_.set_launch_blocked(g);
      dispatch_excluded_[g] = 1;
      touched.push_back(g);
      if (--disorder_budget <= 0) break;
      continue;
    }
    if (!n.available.fits(task_info(g).demand)) {
      dispatch_excluded_[g] = 1;
      touched.push_back(g);
      continue;
    }
    SimTime overhead = 0;
    if (tasks_.rt(g).state == TaskState::kSuspended) {
      const bool checkpointed =
          !preempt_ ||
          preempt_->checkpoint_mode() == CheckpointMode::kCheckpoint;
      overhead = checkpointed ? params_.recovery + params_.ctx_switch
                              : params_.ctx_switch;
    }
    nodes_.remove_waiting(node, g);
    start_task(node, g, overhead);
  }
  for (Gid g : touched) dispatch_excluded_[g] = 0;
}

void Engine::start_hoarding(int node, Gid g) {
  TaskRt& r = tasks_.rt(g);
  ClusterState::Node& n = nodes_.node_mut(node);
  assert(n.free_slots > 0 && !is_ready(g));
  if (r.waiting_since != kNoTime) {
    r.total_wait_s += to_seconds(now_ - r.waiting_since);
    r.waiting_since = kNoTime;
  }
  r.state = TaskState::kHoarding;
  ++r.token;
  tasks_.touch_priority(g);
  n.available -= task_info(g).demand;
  --n.free_slots;
  n.running.push_back(g);
  push_event(now_ + params_.hoard_timeout, EventCalendar::Kind::kHoardTimeout,
             g, r.token);
  if (observer_) observer_->on_hoard_start(now_, g, node);
  emit_event({.kind = obs::EventKind::kHoardStart,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(node)});
}

void Engine::activate_hoarding(Gid g) {
  TaskRt& r = tasks_.rt(g);
  assert(r.state == TaskState::kHoarding && is_ready(g));
  // The slot and resources are already held; begin real execution now.
  // Hoarded time is deliberately NOT counted as busy slot time. No input
  // transfer is charged either: the task had the whole hoarding window to
  // prefetch its data.
  if (r.first_start == kNoTime) r.first_start = now_;
  r.state = TaskState::kRunning;
  r.last_dispatch = now_;
  r.current_overhead = 0;
  ++r.token;
  tasks_.touch_priority(g);
  const double remaining = std::max(0.0, task_info(g).size_mi - r.executed_mi);
  const SimTime run_time =
      from_seconds(remaining / node_rate(r.node));
  push_event(now_ + run_time, EventCalendar::Kind::kFinish, g, r.token);
  if (observer_) observer_->on_task_start(now_, g, r.node, /*overhead=*/0);
  emit_event({.kind = obs::EventKind::kTaskDispatch,
              .flags = obs::kEventFlagHoardActivate,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(r.node)});
}

void Engine::on_hoard_timeout(Gid g, std::uint32_t token) {
  TaskRt& r = tasks_.rt(g);
  if (r.token != token || r.state != TaskState::kHoarding) return;  // stale
  // Evict: the executor gives up on the missing inputs and requeues the
  // task, freeing the slot it was wasting.
  const int node = r.node;
  ClusterState::Node& n = nodes_.node_mut(node);
  ++r.token;
  r.state = TaskState::kWaiting;
  n.available += task_info(g).demand;
  ++n.free_slots;
  n.running.erase(std::find(n.running.begin(), n.running.end(), g));
  tasks_.set_launch_blocked(g);  // do not re-launch until inputs appear
  // Re-insert into the waiting queue; state must not look unscheduled.
  nodes_.insert_waiting(node, g, tasks_);
  r.waiting_since = now_;
  tasks_.touch_priority(g);
  if (observer_) observer_->on_hoard_evict(now_, g, node);
  emit_event({.kind = obs::EventKind::kHoardEvict,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(node)});
  fill_slots(node);
}

void Engine::start_task(int node, Gid g, SimTime resume_overhead) {
  TaskRt& r = tasks_.rt(g);
  ClusterState::Node& n = nodes_.node_mut(node);
  assert(n.free_slots > 0);
  assert(r.state == TaskState::kWaiting || r.state == TaskState::kSuspended);

  if (r.waiting_since != kNoTime) {
    r.total_wait_s += to_seconds(now_ - r.waiting_since);
    r.waiting_since = kNoTime;
  }
  if (r.first_start == kNoTime) {
    r.first_start = now_;
    // First launch fetches the input data; afterwards it is node-local.
    const Task& info = task_info(g);
    if (!info.input_nodes.empty()) {
      const SimTime fetch = transfer_time(g, node);
      resume_overhead += fetch;
      if (fetch > 0) ++metrics_.locality_remote;
      else ++metrics_.locality_local;
    }
  }
  r.state = TaskState::kRunning;
  r.last_dispatch = now_;
  r.current_overhead = resume_overhead;
  ++r.token;
  tasks_.touch_priority(g);
  metrics_.overhead_s += to_seconds(resume_overhead);

  n.available -= task_info(g).demand;
  --n.free_slots;
  n.running.push_back(g);

  const double remaining = std::max(0.0, task_info(g).size_mi - r.executed_mi);
  const SimTime run_time = from_seconds(remaining / node_rate(node));
  push_event(now_ + resume_overhead + run_time, EventCalendar::Kind::kFinish,
             g, r.token);
  if (observer_) observer_->on_task_start(now_, g, node, resume_overhead);
  emit_event({.kind = obs::EventKind::kTaskDispatch,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(node),
              .a = static_cast<double>(resume_overhead)});
}

void Engine::suspend_task(int node, Gid g) {
  TaskRt& r = tasks_.rt(g);
  ClusterState::Node& n = nodes_.node_mut(node);
  assert(r.state == TaskState::kRunning && r.node == node);

  // Accrue progress: time on slot minus the dispatch overhead window.
  const SimTime elapsed = now_ - r.last_dispatch;
  const SimTime worked = std::max<SimTime>(0, elapsed - r.current_overhead);
  r.executed_mi += to_seconds(worked) * node_rate(node);
  r.executed_mi = std::min(r.executed_mi, task_info(g).size_mi);
  n.busy_us += static_cast<double>(elapsed);

  const bool checkpointed =
      !preempt_ || preempt_->checkpoint_mode() == CheckpointMode::kCheckpoint;
  if (!checkpointed) {
    // Restart from scratch (SRPT): the progress is discarded.
    metrics_.work_lost_mi += r.executed_mi;
    r.executed_mi = 0.0;
  }

  ++r.token;  // invalidate the in-flight finish event
  ++r.preemptions;
  r.state = TaskState::kSuspended;

  n.available += task_info(g).demand;
  ++n.free_slots;
  n.running.erase(std::find(n.running.begin(), n.running.end(), g));
  emit_event({.kind = obs::EventKind::kTaskPreempt,
              .flags = checkpointed ? obs::kEventFlagKeptProgress
                                    : std::uint8_t{0},
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(node)});
  enqueue_waiting(node, g);
  if (observer_) observer_->on_task_suspend(now_, g, node, checkpointed);
}

PreemptResult Engine::try_preempt(int node, Gid victim, Gid incoming) {
  assert(nodes_.in_range(node));
  const ClusterState::Node& n = nodes_.node(node);
  if (tasks_.rt(victim).state != TaskState::kRunning ||
      tasks_.rt(victim).node != node)
    return PreemptResult::kVictimNotRunning;
  const TaskState in_state = tasks_.rt(incoming).state;
  if ((in_state != TaskState::kWaiting && in_state != TaskState::kSuspended) ||
      tasks_.rt(incoming).node != node)
    return PreemptResult::kIncomingNotWaiting;
  if (!is_ready(incoming)) {
    ++metrics_.disorders;
    tasks_.set_launch_blocked(incoming);
    return PreemptResult::kIncomingNotReady;
  }
  // Resource check with the victim's reservation returned.
  Resources freed = n.available + task_info(victim).demand;
  if (!freed.fits(task_info(incoming).demand))
    return PreemptResult::kNoResources;

  suspend_task(node, victim);
  ++metrics_.preemptions;

  SimTime overhead = params_.ctx_switch;
  if (in_state == TaskState::kSuspended) {
    const bool checkpointed =
        !preempt_ || preempt_->checkpoint_mode() == CheckpointMode::kCheckpoint;
    if (checkpointed) overhead += params_.recovery;
  }
  nodes_.remove_waiting(node, incoming);
  start_task(node, incoming, overhead);
  return PreemptResult::kOk;
}

bool Engine::evict_running(Gid g) {
  const TaskRt& r = tasks_.rt(g);
  if (r.state != TaskState::kRunning) return false;
  suspend_task(r.node, g);
  ++metrics_.preemptions;
  return true;
}

bool Engine::migrate_task(Gid g, int to_node) {
  TaskRt& r = tasks_.rt(g);
  if (r.state != TaskState::kWaiting && r.state != TaskState::kSuspended)
    return false;
  if (!nodes_.in_range(to_node) || to_node == r.node) return false;
  ClusterState::Node& dst = nodes_.node_mut(to_node);
  if (!dst.up || !cluster_.node(static_cast<std::size_t>(to_node))
                      .capacity.fits(task_info(g).demand))
    return false;

  const int from = r.node;
  nodes_.remove_waiting(from, g);
  ClusterState::Node& src = nodes_.node_mut(from);
  src.backlog_mi = std::max(0.0, src.backlog_mi - task_info(g).size_mi);
  r.node = to_node;
  tasks_.touch_priority(g);
  dst.backlog_mi += task_info(g).size_mi;
  nodes_.insert_waiting(to_node, g, tasks_);
  emit_event({.kind = obs::EventKind::kTaskMigrate,
              .job = tasks_.job_of(g),
              .task = g,
              .node = n16(from),
              .node2 = n16(to_node)});
  if (dst.free_slots > 0) fill_slots(to_node);
  return true;
}

void Engine::on_finish(Gid g, std::uint32_t token) {
  TaskRt& r = tasks_.rt(g);
  if (r.token != token || r.state != TaskState::kRunning) return;  // stale

  const int node = r.node;
  ClusterState::Node& n = nodes_.node_mut(node);
  r.state = TaskState::kFinished;
  r.finish = now_;
  r.executed_mi = task_info(g).size_mi;
  ++r.token;
  tasks_.touch_priority_topo(g);
  n.busy_us += static_cast<double>(now_ - r.last_dispatch);
  n.available += task_info(g).demand;
  ++n.free_slots;
  n.running.erase(std::find(n.running.begin(), n.running.end(), g));
  n.backlog_mi = std::max(0.0, n.backlog_mi - task_info(g).size_mi);

  last_finish_ = std::max(last_finish_, now_);
  ++metrics_.tasks_finished;

  // Wake children; a hoarding child whose last input just appeared starts
  // executing in place.
  const JobId j = tasks_.job_of(g);
  const TaskGraph& graph = jobs_[j].graph();
  for (TaskIndex child : graph.children(tasks_.index_of(g))) {
    const Gid cg = gid(j, child);
    TaskRt& c = tasks_.rt(cg);
    assert(c.unfinished_parents > 0);
    if (--c.unfinished_parents == 0 && c.state == TaskState::kHoarding)
      activate_hoarding(cg);
  }

  if (observer_) observer_->on_task_finish(now_, g, node);
  emit_event({.kind = obs::EventKind::kTaskFinish,
              .job = j,
              .task = g,
              .node = n16(node)});

  JobRt& jr = tasks_.job_rt(j);
  jr.serviced_mi += task_info(g).size_mi;
  assert(jr.unfinished_tasks > 0);
  if (--jr.unfinished_tasks == 0) complete_job(j);

  fill_slots(node);
  // A child that became ready may be queued on another idle node.
  for (TaskIndex child : graph.children(tasks_.index_of(g))) {
    const TaskRt& c = tasks_.rt(gid(j, child));
    if (c.node >= 0 && c.node != node && c.unfinished_parents == 0 &&
        nodes_.node(c.node).free_slots > 0)
      fill_slots(c.node);
  }
}

void Engine::complete_job(JobId j) {
  JobRt& jr = tasks_.job_rt(j);
  jr.finished = true;
  ++finished_jobs_;
  ++metrics_.jobs_finished;

  SimTime finish = 0;
  double wait_total = 0.0;
  for (TaskIndex t = 0; t < jobs_[j].task_count(); ++t) {
    const TaskRt& r = tasks_.rt(gid(j, t));
    finish = std::max(finish, r.finish);
    wait_total += r.total_wait_s;
  }
  const double mean_wait =
      wait_total / static_cast<double>(jobs_[j].task_count());
  metrics_.job_waiting_s.push_back(mean_wait);
  const bool met = finish <= jobs_[j].deadline();
  if (met)
    ++metrics_.jobs_met_deadline;
  else
    ++metrics_.deadline_misses;
  metrics_.job_records.push_back(JobRecord{j, jobs_[j].size_class(),
                                           jobs_[j].tier(), jobs_[j].arrival(),
                                           finish, mean_wait, met});
  if (observer_) observer_->on_job_complete(now_, j);
  emit_event({.kind = obs::EventKind::kJobComplete,
              .flags = met ? obs::kEventFlagDeadlineMet : std::uint8_t{0},
              .job = j,
              .a = mean_wait});

  // Unblock successor jobs (cross-job dependencies).
  bool unblocked = false;
  for (JobId s : jr.successor_jobs) {
    assert(tasks_.job_rt(s).pred_jobs_remaining > 0);
    if (--tasks_.job_rt(s).pred_jobs_remaining == 0) unblocked = true;
  }
  if (unblocked) fill_all_slots();
}

}  // namespace dsp
