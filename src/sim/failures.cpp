#include "sim/failures.h"

#include <algorithm>
#include <cassert>

namespace dsp {

const char* to_string(NodeEvent::Kind k) {
  switch (k) {
    case NodeEvent::Kind::kFail: return "fail";
    case NodeEvent::Kind::kRecover: return "recover";
    case NodeEvent::Kind::kSlowdown: return "slowdown";
    case NodeEvent::Kind::kRestoreSpeed: return "restore-speed";
  }
  return "?";
}

obs::EventKind recorder_event_kind(NodeEvent::Kind k) {
  switch (k) {
    case NodeEvent::Kind::kFail: return obs::EventKind::kNodeDown;
    case NodeEvent::Kind::kRecover: return obs::EventKind::kNodeUp;
    case NodeEvent::Kind::kSlowdown:
    case NodeEvent::Kind::kRestoreSpeed: return obs::EventKind::kNodeRate;
  }
  return obs::EventKind::kNodeRate;
}

void FailurePlan::add_outage(int node, SimTime at, SimTime duration) {
  assert(node >= 0 && duration >= 0);
  events_.push_back({at, node, NodeEvent::Kind::kFail, 1.0});
  events_.push_back({at + duration, node, NodeEvent::Kind::kRecover, 1.0});
  ++outages_;
}

void FailurePlan::add_slowdown(int node, SimTime at, SimTime duration,
                               double factor) {
  assert(node >= 0 && duration > 0 && factor > 0.0 && factor < 1.0);
  events_.push_back({at, node, NodeEvent::Kind::kSlowdown, factor});
  events_.push_back({at + duration, node, NodeEvent::Kind::kRestoreSpeed, 1.0});
  ++slowdowns_;
}

std::vector<NodeEvent> FailurePlan::sorted_events() const {
  std::vector<NodeEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const NodeEvent& a, const NodeEvent& b) { return a.at < b.at; });
  return sorted;
}

FailurePlan FailurePlan::random_outages(const ClusterSpec& cluster,
                                        SimTime horizon, double mtbf_hours,
                                        double mttr_minutes,
                                        std::uint64_t seed) {
  assert(mtbf_hours > 0 && mttr_minutes > 0);
  FailurePlan plan;
  Rng rng(seed);
  for (std::size_t k = 0; k < cluster.size(); ++k) {
    SimTime t = 0;
    for (;;) {
      t += from_seconds(rng.exponential(1.0 / (mtbf_hours * 3600.0)));
      if (t >= horizon) break;
      const SimTime down =
          std::max<SimTime>(kSecond, from_seconds(rng.exponential(
                                         1.0 / (mttr_minutes * 60.0))));
      plan.add_outage(static_cast<int>(k), t, down);
      t += down;
    }
  }
  return plan;
}

FailurePlan FailurePlan::random_stragglers(const ClusterSpec& cluster,
                                           SimTime horizon, SimTime mean_gap,
                                           SimTime mean_duration, double factor,
                                           std::uint64_t seed) {
  assert(mean_gap > 0 && mean_duration > 0);
  FailurePlan plan;
  Rng rng(seed ^ 0x5747524147ULL);
  for (std::size_t k = 0; k < cluster.size(); ++k) {
    SimTime t = 0;
    for (;;) {
      t += from_seconds(rng.exponential(1.0 / to_seconds(mean_gap)));
      if (t >= horizon) break;
      const SimTime duration = std::max<SimTime>(
          kSecond, from_seconds(rng.exponential(1.0 / to_seconds(mean_duration))));
      plan.add_slowdown(static_cast<int>(k), t, duration, factor);
      t += duration;
    }
  }
  return plan;
}

}  // namespace dsp
