// Node failure and straggler injection (the paper's §VI future work:
// "handle node failures/crashes or straggler").
//
// A FailurePlan is a deterministic list of node events — outages (the node
// goes down, killing its running tasks, and later recovers) and slowdowns
// (the node's effective rate drops by a factor for a while, modelling
// stragglers). Install it on an Engine before run(); the engine then
//   - marks the node down/up and blocks dispatch while down,
//   - kills running/hoarding tasks at failure (progress survives when
//     EngineParams::checkpoints_survive_failure, modelling checkpoints on
//     shared storage; otherwise the work is lost),
//   - re-places the failed node's queued tasks onto live nodes,
//   - rebases running tasks' completion times across rate changes.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/events.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/time.h"

namespace dsp {

/// One scheduled node event.
struct NodeEvent {
  enum class Kind : std::uint8_t {
    kFail,          ///< Node goes down.
    kRecover,       ///< Node comes back up (empty, full speed).
    kSlowdown,      ///< Node rate multiplied by `factor` (< 1).
    kRestoreSpeed,  ///< Node rate back to nominal.
  };
  SimTime at = 0;
  int node = -1;
  Kind kind = Kind::kFail;
  double factor = 1.0;  ///< Slowdown factor (kSlowdown only).
};

const char* to_string(NodeEvent::Kind k);

/// Flight-recorder kind for an injected node event: kFail -> kNodeDown,
/// kRecover -> kNodeUp, and both rate changes -> kNodeRate (the factor
/// travels in the event's `a` payload). The engine uses this to emit one
/// recorder event per applied NodeEvent.
obs::EventKind recorder_event_kind(NodeEvent::Kind k);

/// An injection schedule: outages and slowdowns over the run.
class FailurePlan {
 public:
  /// Node `node` is down during [at, at + duration). A zero duration is
  /// legal: kFail and kRecover land on the same timestamp (stable sort
  /// keeps fail-before-recover), modelling an instantaneous bounce that
  /// kills running tasks but leaves the node up.
  void add_outage(int node, SimTime at, SimTime duration);

  /// Node `node` runs at `factor` x nominal rate during [at, at+duration).
  void add_slowdown(int node, SimTime at, SimTime duration, double factor);

  /// Events sorted by time (stable for equal times).
  std::vector<NodeEvent> sorted_events() const;

  std::size_t outage_count() const { return outages_; }
  std::size_t slowdown_count() const { return slowdowns_; }
  bool empty() const { return events_.empty(); }

  /// Random plan: each node independently fails following an exponential
  /// MTBF (hours) with exponential MTTR (minutes), across [0, horizon).
  static FailurePlan random_outages(const ClusterSpec& cluster, SimTime horizon,
                                    double mtbf_hours, double mttr_minutes,
                                    std::uint64_t seed);

  /// Random stragglers: each node independently degrades to `factor` for
  /// exponential durations (mean `mean_duration`), with exponential gaps
  /// (mean `mean_gap`).
  static FailurePlan random_stragglers(const ClusterSpec& cluster,
                                       SimTime horizon, SimTime mean_gap,
                                       SimTime mean_duration, double factor,
                                       std::uint64_t seed);

 private:
  std::vector<NodeEvent> events_;
  std::size_t outages_ = 0;
  std::size_t slowdowns_ = 0;
};

}  // namespace dsp
