// Timeline recording: builds a Gantt-style execution trace from engine
// observer hooks.
//
// Every slot occupation becomes an interval {task, node, kind, begin, end}:
// productive execution, dispatch overhead (context switch / checkpoint
// recovery), or slot hoarding. The recorder powers the run-invariant
// checker (invariants.h), per-node utilization reports, and CSV export for
// external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/observer.h"
#include "sim/types.h"
#include "util/time.h"

namespace dsp {

/// What a recorded slot interval represents.
enum class IntervalKind : std::uint8_t {
  kOverhead,  ///< Context-switch / checkpoint-recovery time.
  kRun,       ///< Productive execution.
  kHoard,     ///< Slot held by a task whose inputs do not exist yet.
};

const char* to_string(IntervalKind k);

/// One slot occupation.
struct Interval {
  Gid task = kInvalidGid;
  int node = -1;
  IntervalKind kind = IntervalKind::kRun;
  SimTime begin = 0;
  SimTime end = 0;
  /// How the occupation ended.
  enum class End : std::uint8_t { kFinished, kPreempted, kEvicted } outcome =
      End::kFinished;

  SimTime duration() const { return end - begin; }
};

/// Records the full execution timeline of one simulation run.
///
/// Usage:
///   TimelineRecorder recorder;
///   engine.set_observer(&recorder);
///   engine.run();
///   auto problems = check_run_invariants(recorder, ...);
class TimelineRecorder : public SimObserver {
 public:
  void on_task_start(SimTime t, Gid g, int node, SimTime overhead) override;
  void on_task_finish(SimTime t, Gid g, int node) override;
  void on_task_suspend(SimTime t, Gid g, int node, bool kept_progress) override;
  void on_hoard_start(SimTime t, Gid g, int node) override;
  void on_hoard_evict(SimTime t, Gid g, int node) override;
  void on_job_complete(SimTime t, JobId j) override;
  void on_schedule_round(SimTime t, std::size_t jobs,
                         std::size_t placements) override;
  void on_epoch(SimTime t) override;

  /// All closed intervals, in completion order.
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Intervals of one task, in time order.
  std::vector<Interval> intervals_for_task(Gid g) const;

  /// Intervals on one node, in time order.
  std::vector<Interval> intervals_on_node(int node) const;

  /// Completion time of task `g`, or kNoTime if it never finished.
  SimTime finish_time(Gid g) const;

  /// First productive start of task `g`, or kNoTime.
  SimTime first_run_start(Gid g) const;

  /// Job completion times recorded via on_job_complete.
  const std::vector<std::pair<SimTime, JobId>>& job_completions() const {
    return job_completions_;
  }

  /// One offline scheduling round as observed via on_schedule_round.
  struct ScheduleRound {
    SimTime time = 0;
    std::size_t jobs = 0;
    std::size_t placements = 0;
  };

  /// Number of scheduling rounds observed.
  std::size_t schedule_rounds() const { return rounds_.size(); }

  /// Every scheduling round, in time order (the Chrome trace exporter
  /// renders these as instant events).
  const std::vector<ScheduleRound>& rounds() const { return rounds_; }

  /// Every preemption epoch tick, in time order.
  const std::vector<SimTime>& epochs() const { return epochs_; }

  /// Total productive seconds on a node.
  double busy_seconds_on_node(int node) const;

  /// Writes the timeline as CSV: task,node,kind,begin_us,end_us,outcome.
  void write_csv(std::ostream& out) const;

  /// Renders an ASCII Gantt chart: one row per node, time bucketed into
  /// `width` columns. '#' = running, '%' = overhead, '~' = hoarding,
  /// '.' = idle. Useful in examples and for eyeballing schedules.
  std::string render_gantt(std::size_t node_count, std::size_t width = 72) const;

 private:
  struct Open {
    int node = -1;
    IntervalKind kind = IntervalKind::kRun;
    SimTime begin = 0;
    SimTime overhead = 0;
    bool active = false;
  };
  void close(Gid g, SimTime t, Interval::End outcome);
  Open& open_slot(Gid g);

  std::vector<Open> open_;  // indexed by gid, grown on demand
  std::vector<Interval> intervals_;
  std::vector<std::pair<SimTime, Gid>> finish_times_;
  std::vector<std::pair<SimTime, JobId>> job_completions_;
  std::vector<ScheduleRound> rounds_;
  std::vector<SimTime> epochs_;
};

}  // namespace dsp
