// TaskRuntime: per-task and per-job mutable state of the simulation kernel.
//
// One of the four layers of the simulation kernel (see DESIGN.md §16).
// TaskRuntime owns the flat Gid index over all tasks of all jobs, each
// task's lifecycle record (progress, checkpoint/recovery bookkeeping,
// preemption counts, waiting clocks), per-job completion tracking and the
// incremental-priority cache. It holds no cluster or calendar state: time
// and node rates are passed in where a computation needs them, so the
// layer stays independently testable.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "dag/job.h"
#include "sim/types.h"
#include "util/time.h"

namespace dsp {

/// Mutable per-task record.
struct TaskRt {
  TaskState state = TaskState::kUnscheduled;
  int node = -1;
  SimTime planned_start = 0;
  double executed_mi = 0.0;
  SimTime waiting_since = kNoTime;
  SimTime first_start = kNoTime;
  SimTime finish = kNoTime;
  SimTime last_dispatch = kNoTime;
  SimTime current_overhead = 0;
  double total_wait_s = 0.0;
  std::uint32_t token = 0;
  std::int32_t preemptions = 0;
  std::uint32_t unfinished_parents = 0;
};

/// Mutable per-job record.
struct JobRt {
  std::uint32_t unfinished_tasks = 0;
  std::uint32_t pred_jobs_remaining = 0;  // cross-job dependencies
  std::vector<JobId> successor_jobs;
  double serviced_mi = 0.0;
  bool scheduled = false;
  bool finished = false;
};

/// Per-job bookkeeping for the incremental priority engine. The lazy
/// members are rebuilt inside const accessors; distinct jobs own distinct
/// entries, so parallel per-job priority computation never races on them.
struct JobPrioCache {
  std::uint64_t version = 1;            // see priority_version()
  mutable std::vector<Gid> live_rtopo;  // unfinished tasks, reverse topo
  mutable bool topo_valid = false;
};

/// The kernel's task/job state store. Initialized once from a finalized
/// JobSet (which must outlive it); mutated only by the Engine orchestrator.
class TaskRuntime {
 public:
  /// Builds the flat index and zeroed runtime records. Every job must be
  /// finalized and ids must equal positions (the engine enforces both).
  void init(const JobSet& jobs);

  // ---- Flat indexing -------------------------------------------------
  std::size_t task_count() const { return rt_.size(); }
  std::size_t job_count() const { return job_rt_.size(); }
  Gid gid(JobId j, TaskIndex t) const {
    assert(j < job_offset_.size());
    return job_offset_[j] + t;
  }
  JobId job_of(Gid g) const {
    assert(g < task_job_.size());
    return task_job_[g];
  }
  TaskIndex index_of(Gid g) const {
    assert(g < task_index_.size());
    return task_index_[g];
  }
  const Task& task_info(Gid g) const {
    assert(g < task_job_.size());
    return (*jobs_)[task_job_[g]].task(task_index_[g]);
  }

  // ---- Per-task records ----------------------------------------------
  TaskRt& rt(Gid g) {
    assert(g < rt_.size());
    return rt_[g];
  }
  const TaskRt& rt(Gid g) const {
    assert(g < rt_.size());
    return rt_[g];
  }

  /// True when a previous launch attempt failed the input check and the
  /// block has not been cleared since (see Engine::launch_blocked).
  bool launch_blocked_flag(Gid g) const {
    assert(g < launch_blocked_.size());
    return launch_blocked_[g] != 0;
  }
  void set_launch_blocked(Gid g) {
    assert(g < launch_blocked_.size());
    launch_blocked_[g] = 1;
  }

  // ---- Per-job records -----------------------------------------------
  JobRt& job_rt(JobId j) {
    assert(j < job_rt_.size());
    return job_rt_[j];
  }
  const JobRt& job_rt(JobId j) const {
    assert(j < job_rt_.size());
    return job_rt_[j];
  }

  // ---- Incremental-priority cache (core/priority.h) ------------------
  std::uint64_t priority_version(JobId j) const {
    assert(j < prio_cache_.size());
    return prio_cache_[j].version;
  }
  /// Marks `g`'s job dirty for the priority engine.
  void touch_priority(Gid g) { ++prio_cache_[task_job_[g]].version; }
  /// Same, plus invalidates the job's live-topo cache (a task finished).
  void touch_priority_topo(Gid g) {
    JobPrioCache& c = prio_cache_[task_job_[g]];
    ++c.version;
    c.topo_valid = false;
  }
  /// Marks every job dirty (node events move t_rem across jobs).
  void touch_priority_all() {
    for (JobPrioCache& c : prio_cache_) ++c.version;
  }
  /// The job's unfinished tasks in reverse topological order as gids.
  /// Cached; rebuilt lazily after a task of the job finishes.
  const std::vector<Gid>& live_reverse_topo(JobId j) const;

 private:
  const JobSet* jobs_ = nullptr;

  std::vector<Gid> job_offset_;        // per job: first gid
  std::vector<JobId> task_job_;        // per gid
  std::vector<TaskIndex> task_index_;  // per gid

  std::vector<TaskRt> rt_;
  std::vector<JobRt> job_rt_;
  std::vector<JobPrioCache> prio_cache_;
  std::vector<std::uint8_t> launch_blocked_;  // failed input checks
};

}  // namespace dsp
