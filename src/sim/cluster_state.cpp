#include "sim/cluster_state.h"

#include <algorithm>
#include <utility>

namespace dsp {

void ClusterState::init(const ClusterSpec& spec) {
  spec_ = &spec;
  nodes_.assign(spec.size(), Node{});
  for (std::size_t k = 0; k < spec.size(); ++k) {
    nodes_[k].available = spec.node(k).capacity;
    nodes_[k].free_slots = spec.node(k).slots;
  }
}

void ClusterState::insert_waiting(int node, Gid g, const TaskRuntime& tasks) {
  Node& n = node_mut(node);
  const auto key = std::make_pair(tasks.rt(g).planned_start, g);
  auto it = std::lower_bound(
      n.waiting.begin(), n.waiting.end(), key,
      [&tasks](Gid a, const std::pair<SimTime, Gid>& k) {
        return std::make_pair(tasks.rt(a).planned_start, a) < k;
      });
  n.waiting.insert(it, g);
}

void ClusterState::remove_waiting(int node, Gid g) {
  Node& n = node_mut(node);
  auto it = std::find(n.waiting.begin(), n.waiting.end(), g);
  assert(it != n.waiting.end());
  n.waiting.erase(it);
}

}  // namespace dsp
