// Declarative simulation scenarios and the parallel grid runner.
//
// The paper's evaluation (§V) is a grid: two testbeds × five baselines ×
// ablation knobs × seeds. A ScenarioSpec captures one cell of that grid as
// data — cluster profile, workload recipe, policy pair, knobs, seed — so
// experiment drivers (bench/fig*, tools/dsp_sweep) enumerate specs instead
// of hand-rolling private loops. run_scenario() turns one spec into a
// RunMetrics via a fresh Engine (the kernel stack is re-entrant: nothing
// survives a run except the returned metrics); run_scenario_grid() fans a
// spec list over a util::ThreadPool, one independent Engine per scenario,
// with results in grid order regardless of thread interleaving.
//
// Policy construction is behind the abstract ScenarioFactory so this layer
// stays below core/ and baselines/ in the link order; the standard factory
// for the paper's methods lives in scenarios/standard.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cluster.h"
#include "sim/engine.h"
#include "sim/failures.h"
#include "sim/run_metrics.h"
#include "trace/workload.h"
#include "util/time.h"

namespace dsp {

// ------------------------------------------------------------------
// Cluster recipe.
// ------------------------------------------------------------------

/// Which testbed profile to instantiate (§V).
enum class ClusterProfile : std::uint8_t {
  kRealCluster,  ///< Palmetto-style servers (default 50 nodes).
  kEc2,          ///< EC2 instances (default 30 nodes).
  kUniform,      ///< Homogeneous test cluster (explicit node shape).
};

const char* to_string(ClusterProfile p);
/// Inverse of to_string over CLI tokens ("real", "ec2", "uniform");
/// false when `s` names no profile.
bool parse_cluster_profile(std::string_view s, ClusterProfile& out);

/// Declarative cluster description; make_cluster() instantiates it.
struct ClusterRecipe {
  ClusterProfile profile = ClusterProfile::kRealCluster;
  /// Node count; 0 uses the profile's paper default (50 / 30 / 8).
  std::size_t nodes = 0;
  // kUniform shape (ignored by the paper profiles):
  double cpu_mips = 2660.0;
  double mem_gb = 4.0;
  int slots = 2;
};

ClusterSpec make_cluster(const ClusterRecipe& recipe);

// ------------------------------------------------------------------
// Policy pair.
// ------------------------------------------------------------------

/// Scheduler identifiers (Fig. 5 methods).
enum class SchedKind : std::uint8_t { kDsp, kAalo, kTetrisSimDep, kTetrisNoDep };
const char* to_string(SchedKind k);
/// Parses CLI tokens "dsp", "aalo", "tetris-simdep", "tetris-nodep".
bool parse_sched_kind(std::string_view s, SchedKind& out);

/// Preemption-policy identifiers (Fig. 6/7 methods); kNone = offline
/// scheduling only, as for the Fig. 5 scheduler baselines.
enum class PolicyKind : std::uint8_t {
  kDsp,
  kDspNoPp,
  kAmoeba,
  kNatjam,
  kSrpt,
  kNone,
};
const char* to_string(PolicyKind k);
/// Parses CLI tokens "dsp", "dsp-nopp", "amoeba", "natjam", "srpt", "none".
bool parse_policy_kind(std::string_view s, PolicyKind& out);

// ------------------------------------------------------------------
// Knobs and failure injection.
// ------------------------------------------------------------------

/// The ablation surface of the paper, normalized into one struct. The
/// defaults equal the Table II settings, so a default-constructed knob
/// set reproduces the headline configuration exactly.
struct ScenarioKnobs {
  double gamma = 0.5;        ///< Formula 12 level weighting (sched + policy).
  double delta = 0.35;       ///< Algorithm 1 preemptor window.
  bool adaptive_delta = true;
  bool normalized_pp = true; ///< PP filter on/off (DSPW/oPP = off).
  double rho = 200.0;        ///< PP rank-distance threshold.
  bool straggler_mitigation = false;
  bool locality_aware = true;  ///< Scheduler placement uses input locations.
};

/// Declarative failure/straggler injection (sim/failures.h plans).
struct FailureRecipe {
  enum class Kind : std::uint8_t { kNone, kOutages, kStragglers };
  Kind kind = Kind::kNone;
  SimTime horizon = 40 * kHour;  ///< Injection window [0, horizon).
  /// Seed for the random plan; 0 derives one from the scenario seed.
  std::uint64_t seed = 0;
  // kOutages:
  double mtbf_hours = 4.0;
  double mttr_minutes = 5.0;
  // kStragglers:
  SimTime mean_gap = 2 * kHour;
  SimTime mean_duration = 10 * kMinute;
  double factor = 0.4;
};

/// Instantiates the recipe against `cluster`. `fallback_seed` is used when
/// the recipe does not pin its own plan seed.
FailurePlan make_failure_plan(const FailureRecipe& recipe,
                              const ClusterSpec& cluster,
                              std::uint64_t fallback_seed);

// ------------------------------------------------------------------
// The scenario.
// ------------------------------------------------------------------

/// One cell of an evaluation grid. Everything an Engine run needs, as
/// plain data: two specs with equal fields produce bit-identical runs.
struct ScenarioSpec {
  /// Stable identity: names per-scenario outputs (sweep JSON, event-log
  /// sinks) and orders merged reports. Keep it filesystem-safe.
  std::string name;
  ClusterRecipe cluster;
  /// Workload recipe (job_count, task_scale, locality fields, ...).
  WorkloadConfig workload;
  SchedKind sched = SchedKind::kDsp;
  PolicyKind policy = PolicyKind::kDsp;
  ScenarioKnobs knobs;
  EngineParams engine;  ///< Defaults already match the paper's §V timing.
  FailureRecipe failures;
  std::uint64_t seed = 42;  ///< Workload seed.
};

/// Builds the Scheduler/PreemptionPolicy pair for a spec. Abstract so the
/// sim layer needs no link to core/ or baselines/; scenarios/standard.h
/// provides the factory covering the paper's methods.
class ScenarioFactory {
 public:
  virtual ~ScenarioFactory() = default;
  virtual std::unique_ptr<Scheduler> make_scheduler(
      const ScenarioSpec& spec) const = 0;
  /// May return null (spec.policy == PolicyKind::kNone).
  virtual std::unique_ptr<PreemptionPolicy> make_policy(
      const ScenarioSpec& spec) const = 0;
};

/// Derives a per-scenario seed from a base seed and the scenario's name
/// (splitmix64 over an FNV-1a name hash). Stable across grid order and
/// thread count: the same (base, name) always yields the same seed.
std::uint64_t scenario_seed(std::uint64_t base, std::string_view name);

/// Runs one scenario to completion on a fresh Engine. When `event_log` is
/// non-null it is attached for the run (otherwise the engine falls back
/// to the DSP_EVENT_LOG environment, as always).
RunMetrics run_scenario(const ScenarioSpec& spec,
                        const ScenarioFactory& factory,
                        obs::EventLog* event_log = nullptr);

/// Grid-runner options.
struct GridOptions {
  /// Worker threads; 0 reads DSP_THREADS (default 1).
  unsigned threads = 0;
  /// When non-empty, each scenario streams its flight recorder to
  /// `<event_log_dir>/<name>.jsonl`. Empty = no recorder (the env sink is
  /// deliberately NOT consulted: parallel runs sharing one file would
  /// corrupt it).
  std::string event_log_dir;
};

/// Runs every spec of `grid`, fanned over a thread pool. Each scenario
/// gets its own Engine, workload and (optional) event log, so runs are
/// independent; results come back in grid order. The per-scenario output
/// is a pure function of the spec — thread count and grid order change
/// only the wall-clock fields of the returned metrics.
std::vector<RunMetrics> run_scenario_grid(const std::vector<ScenarioSpec>& grid,
                                          const ScenarioFactory& factory,
                                          const GridOptions& options = {});

}  // namespace dsp
