#include "sim/task_runtime.h"

namespace dsp {

void TaskRuntime::init(const JobSet& jobs) {
  jobs_ = &jobs;
  job_offset_.resize(jobs.size());
  Gid next = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    job_offset_[j] = next;
    next += static_cast<Gid>(jobs[j].task_count());
  }
  task_job_.resize(next);
  task_index_.resize(next);
  rt_.resize(next);
  launch_blocked_.assign(next, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (TaskIndex t = 0; t < jobs[j].task_count(); ++t) {
      const Gid g = job_offset_[j] + t;
      task_job_[g] = static_cast<JobId>(j);
      task_index_[g] = t;
      rt_[g].unfinished_parents =
          static_cast<std::uint32_t>(jobs[j].graph().parents(t).size());
    }
  }

  job_rt_.resize(jobs.size());
  prio_cache_.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j)
    job_rt_[j].unfinished_tasks =
        static_cast<std::uint32_t>(jobs[j].task_count());
}

const std::vector<Gid>& TaskRuntime::live_reverse_topo(JobId j) const {
  const JobPrioCache& c = prio_cache_[j];
  if (!c.topo_valid) {
    c.live_rtopo.clear();
    const auto topo = (*jobs_)[j].graph().topo_order();
    const Gid base = job_offset_[j];
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Gid g = base + *it;
      if (rt_[g].state != TaskState::kFinished) c.live_rtopo.push_back(g);
    }
    c.topo_valid = true;
  }
  return c.live_rtopo;
}

}  // namespace dsp
