#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace dsp {

ClusterSpec::ClusterSpec(std::vector<NodeSpec> nodes, double theta1,
                         double theta2, double mem_mips_equiv)
    : nodes_(std::move(nodes)),
      theta1_(theta1),
      theta2_(theta2),
      mem_mips_equiv_(mem_mips_equiv) {
  const std::string error = validate();
  if (!error.empty()) throw std::invalid_argument(error);
}

std::string ClusterSpec::validate() const {
  if (theta1_ < 0.0 || theta2_ < 0.0)
    return "ClusterSpec: θ weights must be non-negative (theta1=" +
           std::to_string(theta1_) + ", theta2=" + std::to_string(theta2_) +
           "); Eq. (1) rates would turn negative";
  if (mem_mips_equiv_ <= 0.0)
    return "ClusterSpec: mem_mips_equiv=" + std::to_string(mem_mips_equiv_) +
           " must be positive (MIPS-equivalent of 1 GB/s memory bandwidth)";
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const NodeSpec& n = nodes_[k];
    if (n.slots <= 0)
      return "ClusterSpec: node " + std::to_string(k) + " has slots=" +
             std::to_string(n.slots) +
             "; every node needs at least one run slot";
    if (n.cpu_mips <= 0.0)
      return "ClusterSpec: node " + std::to_string(k) + " has cpu_mips=" +
             std::to_string(n.cpu_mips) + "; the CPU rating must be positive";
    if (n.mem_gb <= 0.0)
      return "ClusterSpec: node " + std::to_string(k) + " has mem_gb=" +
             std::to_string(n.mem_gb) + "; the memory size must be positive";
    if (n.capacity.cpu <= 0.0 || n.capacity.mem <= 0.0 ||
        n.capacity.disk <= 0.0 || n.capacity.bw <= 0.0)
      return "ClusterSpec: node " + std::to_string(k) +
             " has a non-positive capacity component (cpu=" +
             std::to_string(n.capacity.cpu) +
             ", mem=" + std::to_string(n.capacity.mem) +
             ", disk=" + std::to_string(n.capacity.disk) +
             ", bw=" + std::to_string(n.capacity.bw) +
             "); no task demand could ever fit";
    if (rate(k) <= 0.0)
      return "ClusterSpec: node " + std::to_string(k) +
             " has processing rate g(k)=" + std::to_string(rate(k)) +
             " <= 0 (check theta1/theta2 against cpu_mips/mem_gb); tasks "
             "placed there would never finish";
  }
  return {};
}

double ClusterSpec::mean_rate() const {
  if (nodes_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) total += rate(k);
  return total / static_cast<double>(nodes_.size());
}

double ClusterSpec::max_rate() const {
  double best = 0.0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) best = std::max(best, rate(k));
  return best;
}

int ClusterSpec::total_slots() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.slots;
  return total;
}

ClusterSpec ClusterSpec::real_cluster(std::size_t n) {
  // Sun X2200 (AMD Opteron 2356, 4 cores @ 2.3 GHz, 16 GB RAM); 1 GB/s
  // network, 720 GB disk per §V. A 2.3 GHz Opteron core is roughly
  // 2300 MIPS-equivalent in the paper's accounting.
  NodeSpec spec;
  spec.cpu_mips = 2300.0;
  spec.mem_gb = 16.0;
  spec.capacity = Resources{/*cpu=*/4.0, /*mem=*/16.0, /*disk=*/720000.0,
                            /*bw=*/1000.0};
  spec.slots = 4;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

ClusterSpec ClusterSpec::ec2(std::size_t n) {
  // HP ProLiant ML110 G5: 2660 MIPS, 4 GB RAM (paper §V), dual-core era.
  NodeSpec spec;
  spec.cpu_mips = 2660.0;
  spec.mem_gb = 4.0;
  spec.capacity = Resources{/*cpu=*/2.0, /*mem=*/4.0, /*disk=*/720000.0,
                            /*bw=*/1000.0};
  spec.slots = 2;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

ClusterSpec ClusterSpec::uniform(std::size_t n, double cpu_mips, double mem_gb,
                                 int slots) {
  NodeSpec spec;
  spec.cpu_mips = cpu_mips;
  spec.mem_gb = mem_gb;
  spec.capacity = Resources{static_cast<double>(slots), mem_gb, 720000.0, 1000.0};
  spec.slots = slots;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

}  // namespace dsp
