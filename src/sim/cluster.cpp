#include "sim/cluster.h"

#include <algorithm>

namespace dsp {

double ClusterSpec::mean_rate() const {
  if (nodes_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) total += rate(k);
  return total / static_cast<double>(nodes_.size());
}

double ClusterSpec::max_rate() const {
  double best = 0.0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) best = std::max(best, rate(k));
  return best;
}

int ClusterSpec::total_slots() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.slots;
  return total;
}

ClusterSpec ClusterSpec::real_cluster(std::size_t n) {
  // Sun X2200 (AMD Opteron 2356, 4 cores @ 2.3 GHz, 16 GB RAM); 1 GB/s
  // network, 720 GB disk per §V. A 2.3 GHz Opteron core is roughly
  // 2300 MIPS-equivalent in the paper's accounting.
  NodeSpec spec;
  spec.cpu_mips = 2300.0;
  spec.mem_gb = 16.0;
  spec.capacity = Resources{/*cpu=*/4.0, /*mem=*/16.0, /*disk=*/720000.0,
                            /*bw=*/1000.0};
  spec.slots = 4;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

ClusterSpec ClusterSpec::ec2(std::size_t n) {
  // HP ProLiant ML110 G5: 2660 MIPS, 4 GB RAM (paper §V), dual-core era.
  NodeSpec spec;
  spec.cpu_mips = 2660.0;
  spec.mem_gb = 4.0;
  spec.capacity = Resources{/*cpu=*/2.0, /*mem=*/4.0, /*disk=*/720000.0,
                            /*bw=*/1000.0};
  spec.slots = 2;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

ClusterSpec ClusterSpec::uniform(std::size_t n, double cpu_mips, double mem_gb,
                                 int slots) {
  NodeSpec spec;
  spec.cpu_mips = cpu_mips;
  spec.mem_gb = mem_gb;
  spec.capacity = Resources{static_cast<double>(slots), mem_gb, 720000.0, 1000.0};
  spec.slots = slots;
  return ClusterSpec(std::vector<NodeSpec>(n, spec));
}

}  // namespace dsp
