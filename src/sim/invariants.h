// Whole-run invariant checking over recorded execution timelines.
//
// Validates that a completed simulation obeyed the physical and logical
// rules of the model, independent of the engine's internal bookkeeping:
//   1. Slot capacity — at no instant does a node run more concurrent
//      intervals than it has slots.
//   2. Resource capacity — at no instant do concurrent tasks' demands
//      exceed the node's capacity in any dimension.
//   3. Dependency order — a task's first productive run begins no earlier
//      than the completion of every precedent task.
//   4. Task serialization — a task never occupies two slots at once.
//   5. Completion — every task of every job has a finish record, and job
//      completion times equal their last task's finish.
//   6. Work conservation (checkpointed runs only) — the productive run
//      time of a finished task matches its size at the node's rate.
//
// The property-test suite runs every scheduler x policy combination
// through this checker.
#pragma once

#include <string>
#include <vector>

#include "dag/job.h"
#include "sim/cluster.h"
#include "sim/recorder.h"

namespace dsp {

/// Options for check_run_invariants.
struct InvariantOptions {
  /// Verify work conservation (rule 6). Disable for restart-mode policies
  /// (SRPT), whose preempted tasks legitimately re-execute work.
  bool check_work_conservation = true;
  /// Tolerance for time comparisons, in microseconds.
  SimTime time_tol = 2;
  /// Relative tolerance for work-conservation checks.
  double work_rel_tol = 1e-3;
};

/// Validates a recorded run. `jobs` must be the same (finalized) workload
/// that was simulated, in the same order, and `cluster` the same cluster.
/// Returns human-readable violations; empty means the run was sound.
std::vector<std::string> check_run_invariants(
    const TimelineRecorder& recorder, const JobSet& jobs,
    const ClusterSpec& cluster, const InvariantOptions& options = {});

}  // namespace dsp
