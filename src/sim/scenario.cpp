#include "sim/scenario.h"

#include <cassert>
#include <utility>

#include "obs/events.h"
#include "util/env.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace dsp {

const char* to_string(ClusterProfile p) {
  switch (p) {
    case ClusterProfile::kRealCluster:
      return "real";
    case ClusterProfile::kEc2:
      return "ec2";
    case ClusterProfile::kUniform:
      return "uniform";
  }
  return "?";
}

bool parse_cluster_profile(std::string_view s, ClusterProfile& out) {
  if (s == "real" || s == "real-cluster") {
    out = ClusterProfile::kRealCluster;
  } else if (s == "ec2") {
    out = ClusterProfile::kEc2;
  } else if (s == "uniform") {
    out = ClusterProfile::kUniform;
  } else {
    return false;
  }
  return true;
}

ClusterSpec make_cluster(const ClusterRecipe& recipe) {
  switch (recipe.profile) {
    case ClusterProfile::kRealCluster:
      return ClusterSpec::real_cluster(recipe.nodes == 0 ? 50 : recipe.nodes);
    case ClusterProfile::kEc2:
      return ClusterSpec::ec2(recipe.nodes == 0 ? 30 : recipe.nodes);
    case ClusterProfile::kUniform:
      return ClusterSpec::uniform(recipe.nodes == 0 ? 8 : recipe.nodes,
                                  recipe.cpu_mips, recipe.mem_gb,
                                  recipe.slots);
  }
  return ClusterSpec::real_cluster();
}

const char* to_string(SchedKind k) {
  // Display names are load-bearing: bench series and published figure
  // labels key on them.
  switch (k) {
    case SchedKind::kDsp:
      return "DSP";
    case SchedKind::kAalo:
      return "Aalo";
    case SchedKind::kTetrisSimDep:
      return "TetrisW/SimDep";
    case SchedKind::kTetrisNoDep:
      return "TetrisW/oDep";
  }
  return "?";
}

bool parse_sched_kind(std::string_view s, SchedKind& out) {
  if (s == "dsp") {
    out = SchedKind::kDsp;
  } else if (s == "aalo") {
    out = SchedKind::kAalo;
  } else if (s == "tetris-simdep") {
    out = SchedKind::kTetrisSimDep;
  } else if (s == "tetris-nodep") {
    out = SchedKind::kTetrisNoDep;
  } else {
    return false;
  }
  return true;
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kDsp:
      return "DSP";
    case PolicyKind::kDspNoPp:
      return "DSPW/oPP";
    case PolicyKind::kAmoeba:
      return "Amoeba";
    case PolicyKind::kNatjam:
      return "Natjam";
    case PolicyKind::kSrpt:
      return "SRPT";
    case PolicyKind::kNone:
      return "none";
  }
  return "?";
}

bool parse_policy_kind(std::string_view s, PolicyKind& out) {
  if (s == "dsp") {
    out = PolicyKind::kDsp;
  } else if (s == "dsp-nopp") {
    out = PolicyKind::kDspNoPp;
  } else if (s == "amoeba") {
    out = PolicyKind::kAmoeba;
  } else if (s == "natjam") {
    out = PolicyKind::kNatjam;
  } else if (s == "srpt") {
    out = PolicyKind::kSrpt;
  } else if (s == "none") {
    out = PolicyKind::kNone;
  } else {
    return false;
  }
  return true;
}

FailurePlan make_failure_plan(const FailureRecipe& recipe,
                              const ClusterSpec& cluster,
                              std::uint64_t fallback_seed) {
  const std::uint64_t seed = recipe.seed != 0 ? recipe.seed : fallback_seed;
  switch (recipe.kind) {
    case FailureRecipe::Kind::kNone:
      return {};
    case FailureRecipe::Kind::kOutages:
      return FailurePlan::random_outages(cluster, recipe.horizon,
                                         recipe.mtbf_hours,
                                         recipe.mttr_minutes, seed);
    case FailureRecipe::Kind::kStragglers:
      return FailurePlan::random_stragglers(cluster, recipe.horizon,
                                            recipe.mean_gap,
                                            recipe.mean_duration,
                                            recipe.factor, seed);
  }
  return {};
}

std::uint64_t scenario_seed(std::uint64_t base, std::string_view name) {
  // FNV-1a over the name, mixed with the base through one splitmix64
  // round. Depends only on (base, name): re-ordering the grid or changing
  // the thread count cannot move a scenario's seed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t z = base + h + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RunMetrics run_scenario(const ScenarioSpec& spec,
                        const ScenarioFactory& factory,
                        obs::EventLog* event_log) {
  ClusterSpec cluster = make_cluster(spec.cluster);
  JobSet jobs = WorkloadGenerator(spec.workload, spec.seed).generate();

  std::unique_ptr<Scheduler> scheduler = factory.make_scheduler(spec);
  assert(scheduler != nullptr);
  std::unique_ptr<PreemptionPolicy> policy = factory.make_policy(spec);

  Engine engine(std::move(cluster), std::move(jobs), *scheduler, policy.get(),
                spec.engine);
  if (event_log != nullptr) engine.set_event_log(event_log);
  if (spec.failures.kind != FailureRecipe::Kind::kNone) {
    engine.set_failure_plan(
        make_failure_plan(spec.failures, engine.cluster(), spec.seed));
  }
  return engine.run();
}

std::vector<RunMetrics> run_scenario_grid(const std::vector<ScenarioSpec>& grid,
                                          const ScenarioFactory& factory,
                                          const GridOptions& options) {
  const unsigned threads =
      options.threads != 0
          ? options.threads
          : static_cast<unsigned>(env_int_min("DSP_THREADS", 1, 1));

  std::vector<RunMetrics> results(grid.size());
  ThreadPool pool(threads);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    // One private recorder per scenario: concurrent runs sharing the
    // DSP_EVENT_LOG sink would interleave their streams, so the grid
    // runner never consults the environment.
    std::unique_ptr<obs::EventLog> log;
    if (!options.event_log_dir.empty()) {
      log = std::make_unique<obs::EventLog>();
      const std::string path =
          options.event_log_dir + "/" + grid[i].name + ".jsonl";
      if (!log->open_sink(path)) {
        DSP_WARN("scenario grid: cannot open event-log sink %s; running "
                 "scenario '%s' without a recorder",
                 path.c_str(), grid[i].name.c_str());
        log.reset();
      }
    }
    if (log == nullptr) {
      // Sink-less stub (minimal ring): emits cost a mutex hold and a ring
      // store, and the engine's DSP_EVENT_LOG fallback stays disarmed.
      log = std::make_unique<obs::EventLog>(/*capacity=*/1);
    }
    results[i] = run_scenario(grid[i], factory, log.get());
  });
  return results;
}

}  // namespace dsp
