// Shared simulator types: global task ids, lifecycle states, preemption
// mechanics results.
#pragma once

#include <cstdint>

namespace dsp {

/// Global task id: a flat index over all tasks of all jobs in one run.
/// The engine maps Gid <-> (JobId, TaskIndex).
using Gid = std::uint32_t;

inline constexpr Gid kInvalidGid = ~Gid{0};

/// Task lifecycle within a simulation run.
enum class TaskState : std::uint8_t {
  kUnscheduled,  ///< Job arrived but not yet placed by the offline scheduler.
  kWaiting,      ///< In a node's waiting queue (ready or not).
  kRunning,      ///< Occupying a slot.
  kHoarding,     ///< Launched before its inputs exist: occupies a slot but
                 ///< makes no progress (dependency-blind dispatch only).
  kSuspended,    ///< Preempted; back in the waiting queue with saved state.
  kFinished,     ///< Completed execution.
};

const char* to_string(TaskState s);

/// What happens to a task's completed work when it is preempted.
enum class CheckpointMode : std::uint8_t {
  kCheckpoint,  ///< Resume from the last checkpoint (DSP, Amoeba, Natjam).
  kRestart,     ///< Lose all progress; restart from scratch (SRPT).
};

/// Outcome of Engine::try_preempt.
enum class PreemptResult : std::uint8_t {
  kOk,                 ///< Victim suspended, incoming started.
  kIncomingNotReady,   ///< Incoming has unfinished precedents (a *disorder*).
  kIncomingNotWaiting, ///< Incoming is not waiting on that node.
  kVictimNotRunning,   ///< Victim is not running on that node.
  kNoResources,        ///< Incoming's demand does not fit even after evicting the victim.
};

const char* to_string(PreemptResult r);

}  // namespace dsp
