// EventCalendar: the simulation kernel's pending-event min-heap.
//
// One of the four layers of the simulation kernel (see DESIGN.md §16):
// the calendar owns *when* things happen, nothing else. Entries order by
// (time, insertion sequence), so simultaneous events replay in exactly
// the order they were scheduled — the property every determinism test
// and flight-recorder diff in this repo leans on.
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/types.h"
#include "util/time.h"

namespace dsp {

/// Min-heap of scheduled simulation events with a stable tie-break.
class EventCalendar {
 public:
  /// What kind of kernel event fires.
  enum class Kind : std::uint8_t {
    kArrival,       ///< A job arrives (entry.gid holds the JobId).
    kPeriod,        ///< Offline scheduling period tick.
    kEpoch,         ///< Online preemption epoch tick.
    kFinish,        ///< A running task's completion (token-validated).
    kHoardTimeout,  ///< A hoarding task's eviction deadline.
    kNodeEvent,     ///< Failure-plan event (gid indexes the plan).
  };

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Kind kind;
    Gid gid;              // task for kFinish; job id for kArrival
    std::uint32_t token;  // validity check for kFinish/kHoardTimeout

    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// Schedules an event. Entries pushed at the same `t` pop in push order.
  void push(SimTime t, Kind kind, Gid gid, std::uint32_t token) {
    heap_.push(Entry{t, seq_++, kind, gid, token});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Removes and returns the earliest entry.
  Entry pop() {
    assert(!heap_.empty());
    Entry e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace dsp
