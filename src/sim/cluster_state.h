// ClusterState: the simulation kernel's mutable view of the cluster.
//
// One of the four layers of the simulation kernel (see DESIGN.md §16).
// ClusterState owns per-node slot/resource occupancy, the planned-start
// ordered waiting queues, the running/hoarding occupant lists and the
// liveness/straggler factors. It is mutable only through the kernel: the
// Engine orchestrator (a friend) drives every transition, while policies
// see it exclusively through const accessors re-exported by the Engine
// read API.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "dag/task.h"
#include "sim/cluster.h"
#include "sim/task_runtime.h"
#include "sim/types.h"

namespace dsp {

class Engine;

/// Per-node mutable cluster state. Initialized from a ClusterSpec (which
/// must outlive it — effective rates read through the spec).
class ClusterState {
 public:
  struct Node {
    std::vector<Gid> waiting;  // sorted by (planned_start, gid)
    std::vector<Gid> running;  // running and hoarding occupants
    Resources available;
    int free_slots = 0;
    double backlog_mi = 0.0;
    double busy_us = 0.0;  // accumulated slot-busy microseconds
    bool up = true;
    double speed_factor = 1.0;
  };

  std::size_t size() const { return nodes_.size(); }
  bool in_range(int node) const {
    return node >= 0 && static_cast<std::size_t>(node) < nodes_.size();
  }
  const Node& node(int k) const {
    assert(in_range(k));
    return nodes_[static_cast<std::size_t>(k)];
  }
  /// Effective rate of `k`: nominal g(k) scaled by the straggler factor.
  double rate(int k) const {
    assert(in_range(k));
    return spec_->rate(static_cast<std::size_t>(k)) *
           nodes_[static_cast<std::size_t>(k)].speed_factor;
  }

 private:
  // Mutation is the kernel's privilege: only the Engine orchestrator may
  // move tasks between queues or touch slot accounting.
  friend class Engine;

  void init(const ClusterSpec& spec);
  Node& node_mut(int k) {
    assert(in_range(k));
    return nodes_[static_cast<std::size_t>(k)];
  }
  /// Inserts `g` into `node`'s waiting queue at its (planned_start, gid)
  /// position. The caller maintains waiting clocks and priority dirtying.
  void insert_waiting(int node, Gid g, const TaskRuntime& tasks);
  /// Removes `g` from `node`'s waiting queue (must be present).
  void remove_waiting(int node, Gid g);

  const ClusterSpec* spec_ = nullptr;
  std::vector<Node> nodes_;
};

}  // namespace dsp
