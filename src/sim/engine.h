// Discrete-event cluster simulator.
//
// Substitutes for the paper's physical testbeds (Palmetto, EC2): nodes with
// multi-resource capacities and run slots execute DAG jobs under an offline
// Scheduler and an online PreemptionPolicy. Single-threaded and
// deterministic: identical inputs produce identical runs.
//
// Kernel layering (DESIGN.md §16): the Engine is a thin orchestrator over
// three state components with explicit ownership —
//   - EventCalendar  when things happen (pending-event min-heap),
//   - ClusterState   where things run (nodes, slots, waiting queues),
//   - TaskRuntime    what progress was made (per-task/job records).
// Policies never touch the components directly: the Engine re-exports
// const-correct read views and owns every mutation.
//
// Execution model
//   - A node k runs up to `slots` tasks concurrently, each at rate g(k)
//     MIPS (Eq. (1)/(2)), provided their summed resource demands fit the
//     node's capacity.
//   - Scheduling periods (paper: 5 min): the Scheduler places all tasks of
//     the jobs that arrived during the previous period; tasks enter their
//     node's waiting queue ordered by planned start time.
//   - Epochs: the PreemptionPolicy runs and may suspend running tasks in
//     favour of waiting ones. A preempted task re-enters the queue; when it
//     later resumes it pays the recovery cost t^r + sigma (checkpoint
//     restore + context switch). Under CheckpointMode::kRestart all its
//     progress is lost instead (SRPT's behaviour in §V).
//   - Dispatch: whenever a slot frees, the Scheduler's select_next picks a
//     waiting task. Selecting a task whose precedents have not finished is
//     counted as a *disorder* (Fig. 6(a)) and the launch is refused.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "dag/job.h"
#include "obs/audit.h"
#include "obs/events.h"
#include "sim/cluster.h"
#include "sim/cluster_state.h"
#include "sim/event_calendar.h"
#include "sim/failures.h"
#include "sim/observer.h"
#include "sim/policy.h"
#include "sim/run_metrics.h"
#include "sim/task_runtime.h"
#include "sim/types.h"
#include "util/time.h"

namespace dsp {

/// Engine tuning knobs (defaults follow the paper's §V settings).
struct EngineParams {
  SimTime period = 5 * kMinute;        ///< Offline scheduling period.
  SimTime epoch = 30 * kSecond;        ///< Online preemption epoch.
  SimTime ctx_switch = 50 * kMillisecond;  ///< sigma (Table II: 0.05 s).
  SimTime recovery = 250 * kMillisecond;   ///< t^r: checkpoint restore cost.
  /// How long a hoarding task (launched without its inputs by a
  /// dependency-blind scheduler) may hold a slot before being evicted and
  /// requeued. Prevents whole-cluster hoarding deadlock.
  SimTime hoard_timeout = 30 * kSecond;
  /// Whether a failed node's tasks resume from their checkpoints (stored
  /// on shared storage) or restart from scratch after the failure.
  bool checkpoints_survive_failure = true;
  /// Effective bandwidth for reading a task's input data from a remote
  /// node (data locality, §VI future work). A task launched off its input
  /// nodes first fetches input_mb at this rate.
  double remote_read_bw_mbps = 100.0;
  SimTime horizon = 2000 * kHour;      ///< Hard stop for runaway runs.
};

/// The simulator. Construct with a cluster, a finalized workload and
/// policies, call run() once.
class Engine {
 public:
  /// `preempt` may be null (no online preemption, as for the Fig. 5
  /// scheduler baselines). Jobs must be finalized.
  Engine(ClusterSpec cluster, JobSet jobs, Scheduler& scheduler,
         PreemptionPolicy* preempt, EngineParams params = {});

  // ClusterState holds a pointer to cluster_ and TaskRuntime to jobs_;
  // moving an engine would dangle them. One engine, one place, one run.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the simulation to completion and returns the metrics.
  /// Single-shot: an Engine instance accumulates run state, so calling
  /// run() again would silently corrupt it — reuse is a fatal error
  /// (diagnostic + abort). Construct a fresh Engine per run.
  RunMetrics run();

  /// Where this engine is in its single-shot lifecycle.
  enum class Lifecycle : std::uint8_t { kIdle, kRunning, kDone };
  Lifecycle lifecycle() const { return lifecycle_; }

  /// Installs an observer receiving every engine state transition
  /// (timeline recording, invariant checking). Call before run().
  /// The engine does not own the observer.
  void set_observer(SimObserver* observer) { observer_ = observer; }

  /// Attaches a preemption-decision audit trail: every Algorithm-1
  /// evaluation reported via record_preempt_decision lands in `audit`.
  /// Call before run(). The engine does not own the trail.
  void set_audit(obs::PreemptionAuditTrail* audit) { audit_ = audit; }

  /// Attaches a flight recorder: every engine transition (arrivals,
  /// dispatches, preemptions, node events, epochs, ...) is emitted as an
  /// obs::Event. Call before run(); the engine does not own the log.
  /// When no log is attached, run() builds one from the environment
  /// (DSP_EVENT_LOG et al., see obs/events.h) and owns it for the run.
  void set_event_log(obs::EventLog* log) { events_log_ = log; }
  /// The attached recorder, if any (policies use this to emit their own
  /// events through emit_event).
  obs::EventLog* event_log() const { return events_log_; }

  /// Stamps `e` with the current simulation time and epoch ordinal and
  /// records it. No-op without an attached log. Policies and schedulers
  /// emit through this so their events interleave consistently with the
  /// engine's own.
  void emit_event(obs::Event e) {
    if (events_log_ == nullptr) return;
    e.time = now_;
    e.epoch = epoch_index_;
    events_log_->emit(e);
  }

  /// Installs a failure/straggler injection plan. Call before run().
  void set_failure_plan(const FailurePlan& plan);

  /// Declares a cross-job dependency (§VI future work): no task of
  /// `successor` may start before every task of `predecessor` has
  /// finished (e.g. a report job consuming an ETL job's output). Call
  /// before run(); returns false (and ignores the edge) if it would
  /// create a cycle among jobs.
  bool add_job_dependency(JobId predecessor, JobId successor);

  /// Number of predecessor jobs of `j` that have not completed yet.
  std::uint32_t unfinished_predecessor_jobs(JobId j) const {
    return tasks_.job_rt(j).pred_jobs_remaining;
  }

  /// True while node `k` is up (failed nodes accept no work).
  bool node_up(int node) const { return nodes_.node(node).up; }
  /// Current speed factor of `node` (1.0 nominal; < 1 while straggling).
  double node_speed_factor(int node) const {
    return nodes_.node(node).speed_factor;
  }

  // ------------------------------------------------------------------
  // Read API for policies.
  // ------------------------------------------------------------------
  SimTime now() const { return now_; }
  const EngineParams& params() const { return params_; }
  const ClusterSpec& cluster() const { return cluster_; }
  std::size_t node_count() const { return cluster_.size(); }
  std::size_t job_count() const { return jobs_.size(); }

  /// Const views of the kernel components (policies and tools may walk
  /// these directly; all mutation stays inside the Engine).
  const ClusterState& cluster_state() const { return nodes_; }
  const TaskRuntime& task_runtime() const { return tasks_; }
  const EventCalendar& calendar() const { return calendar_; }

  const Job& job(JobId j) const {
    assert(j < jobs_.size());
    return jobs_[j];
  }
  JobId job_of(Gid g) const { return tasks_.job_of(g); }
  TaskIndex index_of(Gid g) const { return tasks_.index_of(g); }
  Gid gid(JobId j, TaskIndex t) const { return tasks_.gid(j, t); }
  const Task& task_info(Gid g) const { return tasks_.task_info(g); }

  TaskState state(Gid g) const { return tasks_.rt(g).state; }
  /// True when every precedent task has finished and every predecessor
  /// *job* (cross-job dependency) has completed.
  bool is_ready(Gid g) const {
    return tasks_.rt(g).unfinished_parents == 0 &&
           tasks_.job_rt(tasks_.job_of(g)).pred_jobs_remaining == 0;
  }
  /// True when a previous launch/preempt-in attempt failed the input
  /// check and the task has not become ready since. Dependency-blind
  /// policies skip blocked tasks instead of re-attempting them every
  /// event (a real scheduler remembers the failed launch until the
  /// missing inputs appear).
  bool launch_blocked(Gid g) const {
    return tasks_.launch_blocked_flag(g) && !is_ready(g);
  }
  /// Work left in MI (size minus executed).
  double remaining_mi(Gid g) const;
  /// Remaining execution time at the task's assigned node's rate
  /// (falls back to the cluster mean rate while unassigned).
  SimTime remaining_time(Gid g) const;
  /// Time since the task last entered the waiting queue (0 if not waiting).
  SimTime waiting_time(Gid g) const;
  /// Total time the task has spent waiting across its whole life,
  /// including the current stretch. Priority formulas use this: a task
  /// that earned priority by waiting keeps it while running, which
  /// prevents preemption ping-pong between equal tasks.
  double accumulated_wait_s(Gid g) const {
    return tasks_.rt(g).total_wait_s + to_seconds(waiting_time(g));
  }
  /// Absolute per-task deadline t^d_ij (from the per-level rule).
  SimTime task_deadline(Gid g) const { return task_info(g).deadline; }
  /// Allowable waiting time t^a = t^d - now - t^rem (paper §IV-B).
  /// Saturates at -kMaxTime when t^rem itself saturated (zero-rate
  /// cluster) so the subtraction cannot wrap past INT64_MIN.
  SimTime allowable_waiting_time(Gid g) const {
    const SimTime t_rem = remaining_time(g);
    return t_rem == kMaxTime ? -kMaxTime : task_deadline(g) - now_ - t_rem;
  }
  int assigned_node(Gid g) const { return tasks_.rt(g).node; }
  int preemption_count(Gid g) const { return tasks_.rt(g).preemptions; }
  SimTime planned_start(Gid g) const { return tasks_.rt(g).planned_start; }

  /// True when `dependent` (transitively) depends on `precedent`.
  /// Tasks of different jobs never depend on each other.
  bool depends_on(Gid dependent, Gid precedent) const;

  /// Waiting queue of `node` in ascending planned-start order
  /// (includes suspended tasks awaiting resume).
  const std::vector<Gid>& waiting(int node) const {
    return nodes_.node(node).waiting;
  }
  /// Copies `node`'s waiting queue into `out` (cleared first). Policies
  /// that mutate the queue while iterating (try_preempt requeues the
  /// victim) snapshot into a reusable buffer instead of allocating a
  /// fresh vector per node per epoch.
  void waiting_snapshot(int node, std::vector<Gid>& out) const {
    const auto& w = nodes_.node(node).waiting;
    out.assign(w.begin(), w.end());
  }
  /// Tasks currently running on `node`.
  const std::vector<Gid>& running(int node) const {
    return nodes_.node(node).running;
  }
  /// Resources currently unreserved on `node`.
  const Resources& available(int node) const {
    return nodes_.node(node).available;
  }
  int free_slots(int node) const { return nodes_.node(node).free_slots; }
  /// Effective rate: nominal g(k) scaled by the current straggler factor.
  double node_rate(int node) const { return nodes_.rate(node); }
  /// Execution time of `g` on `node` ignoring preemption (Eq. (2)).
  SimTime exec_time(Gid g, int node) const {
    return from_seconds(task_info(g).size_mi / node_rate(node));
  }
  /// Time to fetch `g`'s input data when launched on `node`: zero when
  /// the data is node-local (or the task has no input constraint).
  SimTime transfer_time(Gid g, int node) const {
    const Task& t = task_info(g);
    if (t.input_local_to(node)) return 0;
    return from_seconds(t.input_mb / params_.remote_read_bw_mbps);
  }
  /// Outstanding work assigned to `node` in MI (waiting + running).
  double node_backlog_mi(int node) const {
    return nodes_.node(node).backlog_mi;
  }

  /// Count of successful preemptions so far (for adaptive controllers).
  std::uint64_t preemptions_so_far() const { return metrics_.preemptions; }

  // ------------------------------------------------------------------
  // Incremental-priority support (core/priority.h).
  // ------------------------------------------------------------------
  /// Version counter of `job`'s priority inputs. Bumped on every event
  /// that can change a Formula 12/13 priority of the job's tasks: state
  /// transitions (start/suspend/finish/hoard), queue entries that reset
  /// waiting clocks, migrations and node-rate changes. The priority
  /// engine recomputes a job only when its stored version is stale (or
  /// simulated time advanced, which moves every t^w/t^a input).
  std::uint64_t priority_version(JobId j) const {
    return tasks_.priority_version(j);
  }
  /// The job's unfinished tasks in reverse topological order (children
  /// before parents) as gids. Cached; rebuilt lazily after a task of the
  /// job finishes. Mostly-finished jobs walk only their live suffix
  /// instead of the whole DAG every epoch.
  const std::vector<Gid>& live_reverse_topo(JobId j) const {
    return tasks_.live_reverse_topo(j);
  }

  /// The three leaf-priority inputs of Formula 13, fused into one pass
  /// over the task's runtime record (times in seconds):
  ///   t_rem_s   remaining execution time at the assigned node's rate,
  ///   t_wait_s  accumulated waiting time including the current stretch,
  ///   t_allow_s allowable waiting time t^a = t^d - now - t^rem.
  /// Bit-identical to composing remaining_time / accumulated_wait_s /
  /// allowable_waiting_time, at a third of the lookups.
  struct LeafInputs {
    double t_rem_s;
    double t_wait_s;
    double t_allow_s;
  };
  LeafInputs leaf_inputs(Gid g) const;

  /// True once the offline scheduler has placed this job's tasks.
  bool job_scheduled(JobId j) const { return tasks_.job_rt(j).scheduled; }
  /// True when every task of the job has finished.
  bool job_finished(JobId j) const { return tasks_.job_rt(j).finished; }
  /// Number of this job's tasks that have not finished yet.
  std::uint32_t unfinished_task_count(JobId j) const {
    return tasks_.job_rt(j).unfinished_tasks;
  }
  /// Total number of tasks across all jobs (the Gid domain size).
  std::size_t total_task_count() const { return tasks_.task_count(); }
  /// Work (MI) of this job's finished tasks — the "service received so
  /// far" signal Aalo's multi-level queues demote on.
  double job_serviced_mi(JobId j) const {
    return tasks_.job_rt(j).serviced_mi;
  }

  // ------------------------------------------------------------------
  // Mutation API for preemption policies.
  // ------------------------------------------------------------------
  /// Suspends `victim` (running on `node`) and starts `incoming` (waiting
  /// on `node`) in its place. On kIncomingNotReady a disorder is recorded
  /// and nothing changes. Respects the policy's CheckpointMode.
  PreemptResult try_preempt(int node, Gid victim, Gid incoming);

  /// Records a preemption that was considered but suppressed (DSP's
  /// normalized-priority method reports these for Fig. 6(d) analysis).
  /// Prefer record_preempt_decision, which also tallies this metric for
  /// PreemptOutcome::kSuppressedPP.
  void note_suppressed_preemption() { ++metrics_.suppressed_preemptions; }

  /// Records one Algorithm-1 candidate evaluation: stamps the current
  /// engine time, tallies the per-outcome RunMetrics counters and the
  /// observability registry, and forwards the record to the attached
  /// audit trail and observer. Policies call this once per candidate.
  void record_preempt_decision(obs::PreemptDecision d);

  /// Evicts a running task back to its node's waiting queue (checkpoint
  /// semantics apply). Counts as a preemption. Policies use this for
  /// straggler mitigation: vacate a degraded node so the work can migrate.
  /// Returns false when `g` is not running.
  bool evict_running(Gid g);

  /// Moves a waiting/suspended task to another node's queue (keeps its
  /// planned start). Fails when the task is not waiting, the target is
  /// down, or the task does not fit the target's capacity.
  bool migrate_task(Gid g, int to_node);

 private:
  void push_event(SimTime t, EventCalendar::Kind kind, Gid gid,
                  std::uint32_t token) {
    calendar_.push(t, kind, gid, token);
  }
  void on_arrival(JobId job);
  void on_period();
  void on_epoch();
  void on_finish(Gid g, std::uint32_t token);
  void apply_placements(const std::vector<TaskPlacement>& placements,
                        const std::vector<JobId>& pending);
  void enqueue_waiting(int node, Gid g);
  /// Starts an unready task in the hoarding state (slot occupied, no
  /// progress) and arms its eviction timeout.
  void start_hoarding(int node, Gid g);
  /// A hoarding task's last precedent finished: begin real execution.
  void activate_hoarding(Gid g);
  void on_hoard_timeout(Gid g, std::uint32_t token);
  void on_node_event(std::size_t index);
  /// Kills every running/hoarding task on a failed node and re-places its
  /// queued tasks onto live nodes.
  void fail_node(int node);
  void recover_node(int node);
  /// Re-anchors the running tasks of `node` after a rate change: progress
  /// accrued so far is banked and fresh finish events are scheduled at the
  /// new effective rate.
  void rebase_running(int node);
  /// Moves a waiting/suspended task to the live node with the least
  /// backlog; stays put when no live node fits.
  void replace_waiting_task(Gid g);
  void fill_slots(int node);
  void fill_all_slots();
  /// Starts `g` on `node`; `resume_overhead` > 0 when restoring a
  /// checkpointed task.
  void start_task(int node, Gid g, SimTime resume_overhead);
  /// Suspends running task `g`; applies the checkpoint mode.
  void suspend_task(int node, Gid g);
  void complete_job(JobId j);
  bool all_jobs_finished() const { return finished_jobs_ == jobs_.size(); }

  ClusterSpec cluster_;
  JobSet jobs_;
  Scheduler& scheduler_;
  PreemptionPolicy* preempt_;
  EngineParams params_;
  SimObserver* observer_ = nullptr;
  obs::PreemptionAuditTrail* audit_ = nullptr;
  obs::EventLog* events_log_ = nullptr;
  std::unique_ptr<obs::EventLog> owned_events_;  // from_env() in run()
  std::uint32_t epoch_index_ = 0;  // epoch ordinal stamped onto events

  // The kernel components (DESIGN.md §16). tasks_ indexes into jobs_ and
  // nodes_ reads rates through cluster_; both are initialized after the
  // owning members above.
  TaskRuntime tasks_;
  ClusterState nodes_;
  EventCalendar calendar_;
  std::vector<std::uint8_t> dispatch_excluded_;  // scratch for fill_slots

  std::vector<NodeEvent> failure_events_;
  SimTime now_ = 0;
  SimTime first_arrival_ = kMaxTime;
  SimTime last_finish_ = 0;
  std::vector<JobId> pending_jobs_;
  std::size_t finished_jobs_ = 0;
  Lifecycle lifecycle_ = Lifecycle::kIdle;

  RunMetrics metrics_;
};

}  // namespace dsp
