// Per-run metrics: everything the paper's Figures 5-8 report.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/job.h"
#include "util/time.h"

namespace dsp {

/// Per-job outcome record, kept for post-run analysis (per-class
/// breakdowns, completion-time CDFs).
struct JobRecord {
  JobId id = kInvalidJob;
  JobSize size_class = JobSize::kSmall;
  JobTier tier = JobTier::kProduction;
  SimTime arrival = 0;
  SimTime finish = 0;
  double mean_task_wait_s = 0.0;
  bool met_deadline = false;

  SimTime completion_time() const { return finish - arrival; }
};

/// Aggregate results of one simulation run.
struct RunMetrics {
  // ---- Figure 5 / 8(a): makespan ----
  /// Time from the earliest job arrival to the last task completion.
  SimTime makespan = 0;

  // ---- Figure 6(b) / 7(b) / 8(b): throughput ----
  std::uint64_t tasks_finished = 0;
  std::uint64_t jobs_finished = 0;
  /// Jobs that completed by their deadline (the paper's throughput counts
  /// jobs finishing "within their job deadlines").
  std::uint64_t jobs_met_deadline = 0;

  /// Tasks per millisecond of makespan — the paper's Fig. 6(b) metric.
  double throughput_tasks_per_ms() const {
    const double ms = to_millis(makespan);
    return ms > 0.0 ? static_cast<double>(tasks_finished) / ms : 0.0;
  }

  /// Deadline-meeting jobs per hour — the paper's definition of throughput
  /// in §III ("jobs that complete ... within their job deadlines during a
  /// unit of time").
  double throughput_jobs_per_hour() const {
    const double h = to_seconds(makespan) / 3600.0;
    return h > 0.0 ? static_cast<double>(jobs_met_deadline) / h : 0.0;
  }

  // ---- Figure 6(a) / 7(a): dependency disorders ----
  /// Times a policy selected (dispatched or preempted-in) a task whose
  /// precedent tasks had not finished.
  std::uint64_t disorders = 0;

  // ---- Figure 6(c) / 7(c): job waiting time ----
  /// Per-job mean task waiting time (seconds), one entry per finished job.
  std::vector<double> job_waiting_s;

  double avg_job_waiting_s() const {
    if (job_waiting_s.empty()) return 0.0;
    double total = 0.0;
    for (double w : job_waiting_s) total += w;
    return total / static_cast<double>(job_waiting_s.size());
  }

  /// One record per finished job, in completion order.
  std::vector<JobRecord> job_records;

  /// Mean job completion time (finish - arrival) in seconds, optionally
  /// restricted to one size class (pass nullptr for all).
  double avg_completion_s(const JobSize* size_class = nullptr) const {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& r : job_records) {
      if (size_class && r.size_class != *size_class) continue;
      total += to_seconds(r.completion_time());
      ++n;
    }
    return n ? total / static_cast<double>(n) : 0.0;
  }

  // ---- Figure 6(d) / 7(d): preemptions ----
  std::uint64_t preemptions = 0;
  /// Preemption attempts suppressed by DSP's normalized-priority check.
  std::uint64_t suppressed_preemptions = 0;

  // ---- Preemption audit trail (Algorithm-1 outcomes, obs/audit.h) ----
  /// Candidate evaluations recorded via Engine::record_preempt_decision.
  /// Fired evaluations are counted by `preemptions`, PP suppressions by
  /// `suppressed_preemptions`; the two fields below cover the rest.
  std::uint64_t preempt_evaluations = 0;
  /// Evaluations where every C1-viable victim failed C2 (the candidate
  /// depends on it).
  std::uint64_t preempt_blocked_dependency = 0;
  /// Evaluations where no running task passed C1 at all.
  std::uint64_t preempt_no_victim = 0;

  // ---- Fault injection (failures.h) ----
  std::uint64_t node_failures = 0;          ///< Outages that took effect.
  std::uint64_t tasks_killed_by_failure = 0;
  double work_lost_mi = 0.0;  ///< Progress discarded by failures/restarts.

  // ---- Data locality (§VI future work) ----
  /// First launches of input-constrained tasks on a node holding their
  /// data vs. launches that had to fetch remotely.
  std::uint64_t locality_local = 0;
  std::uint64_t locality_remote = 0;

  double locality_hit_rate() const {
    const auto total = locality_local + locality_remote;
    return total ? static_cast<double>(locality_local) /
                       static_cast<double>(total)
                 : 1.0;
  }

  // ---- Supplementary ----
  std::uint64_t deadline_misses = 0;
  /// Busy slot-time divided by total slot-time over the makespan.
  double slot_utilization = 0.0;
  /// Total context-switch + checkpoint-recovery overhead paid (seconds).
  double overhead_s = 0.0;
  /// Wall-clock seconds the simulation itself took (for bench reporting).
  double sim_wall_s = 0.0;
};

}  // namespace dsp
