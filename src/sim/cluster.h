// Cluster model: node specifications and the two testbed profiles.
//
// The paper evaluates on (a) 50 servers of Clemson's Palmetto cluster
// (Sun X2200: AMD Opteron 2356, 16 GB RAM) and (b) 30 Amazon EC2 instances
// (HP ProLiant ML110 G5: 2660 MIPS CPU, 4 GB RAM), each with 1 GB/s
// bandwidth and 720 GB disk. `real_cluster()` and `ec2()` reproduce those
// two profiles for the simulator.
//
// Node processing rate follows the paper's Eq. (1):
//   g(k) = theta1 * s_cpu(k) + theta2 * s_mem(k)
// with s_cpu in MIPS and s_mem converted to a MIPS-equivalent via
// `mem_mips_equiv` (memory contributes bandwidth-bound throughput).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dag/task.h"

namespace dsp {

/// Static description of one server.
struct NodeSpec {
  double cpu_mips = 2660.0;  ///< s_cpu: per-core MIPS rating.
  double mem_gb = 4.0;       ///< s_mem: memory size in GB.
  Resources capacity;        ///< Schedulable resource capacity.
  int slots = 4;             ///< Concurrent task slots (cores).
};

/// A cluster: node list + the g(k) weighting parameters of Eq. (1).
class ClusterSpec {
 public:
  ClusterSpec() = default;
  /// Validates on construction: a malformed spec (zero/negative slot
  /// counts, non-positive capacities, rates or θ weights that yield
  /// g(k) <= 0) throws std::invalid_argument naming the offending node
  /// and field. An invalid cluster would otherwise surface as NaN rates
  /// or never-dispatched tasks deep inside a run.
  ClusterSpec(std::vector<NodeSpec> nodes, double theta1 = 0.5,
              double theta2 = 0.5, double mem_mips_equiv = 100.0);

  /// The constructor's validation as a query: returns an empty string for
  /// a well-formed spec, else a message describing the first defect.
  std::string validate() const;

  std::size_t size() const { return nodes_.size(); }
  const NodeSpec& node(std::size_t k) const { return nodes_.at(k); }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }

  double theta1() const { return theta1_; }
  double theta2() const { return theta2_; }

  /// Processing rate g(k) in MIPS (Eq. (1)); a task of size l MI runs for
  /// l / g(k) seconds on node k (Eq. (2)).
  double rate(std::size_t k) const {
    const NodeSpec& n = nodes_.at(k);
    return theta1_ * n.cpu_mips + theta2_ * n.mem_gb * mem_mips_equiv_;
  }

  /// Mean rate across nodes; the reference rate for deadline derivation.
  double mean_rate() const;

  /// Fastest node's rate.
  double max_rate() const;

  /// Total slot count across the cluster.
  int total_slots() const;

  /// The paper's "real cluster" testbed profile: `n` Sun X2200 servers
  /// (quad-core Opteron 2356 ~ 9200 MIPS aggregate, 16 GB RAM, 720 GB disk,
  /// 1 GB/s network). Default n = 50 as in §V.
  static ClusterSpec real_cluster(std::size_t n = 50);

  /// The paper's EC2 testbed profile: `n` HP ML110 G5 instances
  /// (2660 MIPS, 4 GB RAM, 720 GB disk, 1 GB/s). Default n = 30.
  static ClusterSpec ec2(std::size_t n = 30);

  /// A tiny uniform cluster for unit tests and the exact-ILP mode.
  static ClusterSpec uniform(std::size_t n, double cpu_mips, double mem_gb,
                             int slots);

 private:
  std::vector<NodeSpec> nodes_;
  double theta1_ = 0.5;
  double theta2_ = 0.5;
  double mem_mips_equiv_ = 100.0;
};

}  // namespace dsp
