// Observation hooks into the simulation engine.
//
// An observer sees every state transition the engine performs — task
// starts, finishes, suspensions, hoarding, job completions, scheduling
// rounds. The TimelineRecorder (recorder.h) builds Gantt-style execution
// traces from these hooks, and the invariant checker (invariants.h)
// validates whole runs in the test suite.
#pragma once

#include <cstddef>

#include "dag/task.h"
#include "obs/audit.h"
#include "sim/types.h"
#include "util/time.h"

namespace dsp {

/// Engine event callbacks. All default to no-ops; override what you need.
/// Callbacks fire synchronously inside the engine — do not mutate the
/// engine from them.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Task `g` began executing on `node`; the first `overhead` of its slot
  /// time is context-switch/recovery cost, not productive work.
  virtual void on_task_start(SimTime t, Gid g, int node, SimTime overhead) {
    (void)t; (void)g; (void)node; (void)overhead;
  }

  /// Task `g` completed on `node`.
  virtual void on_task_finish(SimTime t, Gid g, int node) {
    (void)t; (void)g; (void)node;
  }

  /// Task `g` was preempted on `node`; `kept_progress` is false when the
  /// policy's checkpoint mode discards its work (restart-from-scratch).
  virtual void on_task_suspend(SimTime t, Gid g, int node, bool kept_progress) {
    (void)t; (void)g; (void)node; (void)kept_progress;
  }

  /// Task `g` was blindly launched without its inputs and now hoards a
  /// slot on `node`.
  virtual void on_hoard_start(SimTime t, Gid g, int node) {
    (void)t; (void)g; (void)node;
  }

  /// Hoarding task `g` was evicted by the hoard timeout.
  virtual void on_hoard_evict(SimTime t, Gid g, int node) {
    (void)t; (void)g; (void)node;
  }

  /// Every task of job `j` has finished.
  virtual void on_job_complete(SimTime t, JobId j) { (void)t; (void)j; }

  /// An offline scheduling round placed `placements` tasks of `jobs` jobs.
  virtual void on_schedule_round(SimTime t, std::size_t jobs,
                                 std::size_t placements) {
    (void)t; (void)jobs; (void)placements;
  }

  /// An online-preemption epoch tick is about to run (fires only when a
  /// preemption policy is installed).
  virtual void on_epoch(SimTime t) { (void)t; }

  /// The preemption policy evaluated one Algorithm-1 candidate; `d`
  /// carries the priorities, the normalized gap and the outcome (see
  /// obs/audit.h). Fired via Engine::record_preempt_decision.
  virtual void on_preempt_decision(const obs::PreemptDecision& d) { (void)d; }

  /// Node `node` failed (its tasks were killed) or recovered.
  virtual void on_node_failure(SimTime t, int node, bool failed) {
    (void)t; (void)node; (void)failed;
  }
};

}  // namespace dsp
