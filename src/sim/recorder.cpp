#include "sim/recorder.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace dsp {

const char* to_string(IntervalKind k) {
  switch (k) {
    case IntervalKind::kOverhead: return "overhead";
    case IntervalKind::kRun: return "run";
    case IntervalKind::kHoard: return "hoard";
  }
  return "?";
}

TimelineRecorder::Open& TimelineRecorder::open_slot(Gid g) {
  if (open_.size() <= g) open_.resize(static_cast<std::size_t>(g) + 1);
  return open_[g];
}

void TimelineRecorder::close(Gid g, SimTime t, Interval::End outcome) {
  Open& o = open_slot(g);
  if (!o.active) return;
  o.active = false;
  if (o.kind == IntervalKind::kHoard) {
    intervals_.push_back({g, o.node, IntervalKind::kHoard, o.begin, t, outcome});
    return;
  }
  // Split the occupation into its overhead prefix and productive suffix.
  const SimTime overhead_end = std::min(t, o.begin + o.overhead);
  if (overhead_end > o.begin)
    intervals_.push_back(
        {g, o.node, IntervalKind::kOverhead, o.begin, overhead_end, outcome});
  if (t > overhead_end)
    intervals_.push_back(
        {g, o.node, IntervalKind::kRun, overhead_end, t, outcome});
}

void TimelineRecorder::on_task_start(SimTime t, Gid g, int node,
                                     SimTime overhead) {
  Open& o = open_slot(g);
  // A hoarding task that activates transitions hoard -> run; close the
  // hoard interval first.
  if (o.active) close(g, t, Interval::End::kFinished);
  o = {node, IntervalKind::kRun, t, overhead, true};
}

void TimelineRecorder::on_task_finish(SimTime t, Gid g, int node) {
  (void)node;
  close(g, t, Interval::End::kFinished);
  finish_times_.emplace_back(t, g);
}

void TimelineRecorder::on_task_suspend(SimTime t, Gid g, int node,
                                       bool kept_progress) {
  (void)node;
  (void)kept_progress;
  close(g, t, Interval::End::kPreempted);
}

void TimelineRecorder::on_hoard_start(SimTime t, Gid g, int node) {
  Open& o = open_slot(g);
  assert(!o.active);
  o = {node, IntervalKind::kHoard, t, 0, true};
}

void TimelineRecorder::on_hoard_evict(SimTime t, Gid g, int node) {
  (void)node;
  close(g, t, Interval::End::kEvicted);
}

void TimelineRecorder::on_job_complete(SimTime t, JobId j) {
  job_completions_.emplace_back(t, j);
}

void TimelineRecorder::on_schedule_round(SimTime t, std::size_t jobs,
                                         std::size_t placements) {
  rounds_.push_back({t, jobs, placements});
}

void TimelineRecorder::on_epoch(SimTime t) { epochs_.push_back(t); }

std::vector<Interval> TimelineRecorder::intervals_for_task(Gid g) const {
  std::vector<Interval> result;
  for (const auto& iv : intervals_)
    if (iv.task == g) result.push_back(iv);
  std::sort(result.begin(), result.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  return result;
}

std::vector<Interval> TimelineRecorder::intervals_on_node(int node) const {
  std::vector<Interval> result;
  for (const auto& iv : intervals_)
    if (iv.node == node) result.push_back(iv);
  std::sort(result.begin(), result.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  return result;
}

SimTime TimelineRecorder::finish_time(Gid g) const {
  for (const auto& [t, task] : finish_times_)
    if (task == g) return t;
  return kNoTime;
}

SimTime TimelineRecorder::first_run_start(Gid g) const {
  SimTime best = kNoTime;
  for (const auto& iv : intervals_) {
    if (iv.task != g || iv.kind == IntervalKind::kHoard) continue;
    if (best == kNoTime || iv.begin < best) best = iv.begin;
  }
  return best;
}

double TimelineRecorder::busy_seconds_on_node(int node) const {
  double total = 0.0;
  for (const auto& iv : intervals_)
    if (iv.node == node && iv.kind != IntervalKind::kHoard)
      total += to_seconds(iv.duration());
  return total;
}

std::string TimelineRecorder::render_gantt(std::size_t node_count,
                                           std::size_t width) const {
  SimTime t_min = kMaxTime, t_max = 0;
  for (const auto& iv : intervals_) {
    t_min = std::min(t_min, iv.begin);
    t_max = std::max(t_max, iv.end);
  }
  if (intervals_.empty() || t_max <= t_min) return "(empty timeline)\n";

  const double span = static_cast<double>(t_max - t_min);
  std::string out;
  char label[32];
  for (std::size_t k = 0; k < node_count; ++k) {
    std::string row(width, '.');
    for (const auto& iv : intervals_) {
      if (iv.node != static_cast<int>(k)) continue;
      const char mark = iv.kind == IntervalKind::kRun      ? '#'
                        : iv.kind == IntervalKind::kOverhead ? '%'
                                                             : '~';
      auto col = [&](SimTime t) {
        return std::min(width - 1,
                        static_cast<std::size_t>(
                            static_cast<double>(t - t_min) / span *
                            static_cast<double>(width)));
      };
      for (std::size_t c = col(iv.begin); c <= col(iv.end - 1); ++c) {
        // Running work wins over overhead, overhead over hoarding, so the
        // most informative mark survives bucket collisions.
        if (row[c] == '.' || (row[c] == '~' && mark != '~') ||
            (row[c] == '%' && mark == '#'))
          row[c] = mark;
      }
    }
    std::snprintf(label, sizeof label, "node %2zu |", k);
    out += label;
    out += row;
    out += "|\n";
  }
  std::snprintf(label, sizeof label, "%8s", "");
  out += label;
  out += format_time(t_min) + " .. " + format_time(t_max) + "\n";
  return out;
}

void TimelineRecorder::write_csv(std::ostream& out) const {
  out << "task,node,kind,begin_us,end_us,outcome\n";
  for (const auto& iv : intervals_) {
    const char* outcome = iv.outcome == Interval::End::kFinished ? "finished"
                          : iv.outcome == Interval::End::kPreempted
                              ? "preempted"
                              : "evicted";
    out << iv.task << ',' << iv.node << ',' << to_string(iv.kind) << ','
        << iv.begin << ',' << iv.end << ',' << outcome << '\n';
  }
}

}  // namespace dsp
