// DSP façade: the offline scheduler and online preemption wired together,
// plus a one-call simulation runner.
//
// Quickstart:
//   auto jobs = WorkloadGenerator(cfg, seed).generate();
//   DspSystem dsp;                       // Table II defaults
//   RunMetrics m = dsp.run(ClusterSpec::real_cluster(), std::move(jobs));
#pragma once

#include <memory>

#include "core/dsp_scheduler.h"
#include "core/params.h"
#include "core/preemption.h"
#include "sim/engine.h"
#include "sim/run_metrics.h"

namespace dsp {

/// Runs one simulation: constructs an Engine over the cluster/workload with
/// the given policies and executes it to completion.
/// `preempt` may be null (offline scheduling only).
RunMetrics simulate(const ClusterSpec& cluster, JobSet jobs,
                    Scheduler& scheduler, PreemptionPolicy* preempt,
                    EngineParams engine_params = {});

/// The complete DSP system of the paper: ILP/heuristic dependency-aware
/// scheduling (§III) + dependency-aware preemption with PP (§IV).
class DspSystem {
 public:
  explicit DspSystem(DspParams params = {},
                     DspScheduler::Options scheduler_options = {})
      : params_(params),
        scheduler_(scheduler_options),
        preemption_(params) {}

  DspScheduler& scheduler() { return scheduler_; }
  DspPreemption& preemption() { return preemption_; }
  const DspParams& params() const { return params_; }

  /// Runs the full offline + online system on the workload.
  RunMetrics run(const ClusterSpec& cluster, JobSet jobs,
                 EngineParams engine_params = {}) {
    return simulate(cluster, std::move(jobs), scheduler_, &preemption_,
                    engine_params);
  }

 private:
  DspParams params_;
  DspScheduler scheduler_;
  DspPreemption preemption_;
};

}  // namespace dsp
