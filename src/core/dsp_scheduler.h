// DSP's offline dependency-aware scheduler (paper §III).
//
// Every scheduling period the engine hands over the jobs submitted since
// the previous period; the scheduler derives a target node and start time
// for every task, minimizing makespan under dependency and deadline
// constraints.
//
// Three modes:
//  - kExact: the paper's ILP solved with branch & bound. Only tractable on
//    small instances (the guard falls back to the heuristic; even CPLEX
//    cannot solve the full formulation at cluster scale).
//  - kRelaxRound: the paper's own concession — relax integrality, solve the
//    LP, round placements, derive start times by list scheduling.
//  - kHeuristic (default): dependency-weighted list scheduling that
//    greedily optimizes the same objective: tasks are ranked by their
//    Formula-12-style downstream weight (more dependents at higher levels
//    first — the T_11 > T_6 > T_1 ordering of Fig. 3) and placed on the
//    node giving the earliest estimated finish. Cross-validated against
//    kExact in tests.
#pragma once

#include <cstdint>
#include <memory>

#include "core/ilp_model.h"
#include "core/params.h"
#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp {

/// Scheduling mode selection.
enum class ScheduleMode {
  kHeuristic,
  kRelaxRound,
  kExact,
  kAuto,  ///< kExact when the instance is small enough, else kHeuristic.
};

const char* to_string(ScheduleMode m);

/// DSP's offline scheduler.
class DspScheduler : public Scheduler {
 public:
  struct Options {
    ScheduleMode mode = ScheduleMode::kHeuristic;
    /// Caps for accepting an instance into the exact solver.
    std::size_t exact_max_tasks = 8;
    std::size_t exact_max_machines = 4;
    /// gamma of the ranking weight (matches DspParams::gamma).
    double gamma = 0.5;
    /// Apply the paper's preemption padding N^p (t^r + sigma) when
    /// estimating completion times in the exact/relax models.
    bool preemption_padding = true;
    double recovery_s = 0.3;
    /// Account for input-data transfer time in placement (data locality,
    /// §VI future work): the heuristic's finish estimate includes the
    /// remote-fetch cost, steering tasks toward the nodes holding their
    /// inputs.
    bool locality_aware = true;
    /// Warm-start LP bases across branch-and-bound nodes and scheduling
    /// periods in the exact/relax modes (off = cold-start everything,
    /// for A/B benching).
    bool warm_start = true;
    /// Exact solver's B&B wave width (lp::MilpSolver::Options::
    /// parallel_nodes) and worker threads (<= 0 reads DSP_THREADS).
    int ilp_parallel_nodes = 8;
    int ilp_threads = 0;
  };

  DspScheduler() = default;
  explicit DspScheduler(Options options) : options_(options) {}

  const char* name() const override { return "DSP"; }

  std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                      Engine& engine) override;

  /// Static Formula-12-style downstream weight used for ranking: leaves
  /// weigh 1, internal tasks 1 + sum((gamma+1) * child weight). Exposed
  /// for tests.
  static std::vector<double> dependency_weights(const Job& job, double gamma);

  /// Mode actually used by the most recent schedule() call.
  ScheduleMode last_mode() const { return last_mode_; }

 private:
  std::vector<TaskPlacement> schedule_heuristic(const std::vector<JobId>& jobs,
                                                Engine& engine) const;
  std::vector<TaskPlacement> schedule_ilp(const std::vector<JobId>& jobs,
                                          Engine& engine, bool exact);

  Options options_;
  ScheduleMode last_mode_ = ScheduleMode::kHeuristic;

  // Cross-period warm-start state: the exact solver persists so its root
  // relaxation reuses the previous period's basis; the relax-round basis
  // is threaded through solve_relax_round the same way.
  std::unique_ptr<lp::MilpSolver> exact_solver_;
  lp::Basis relax_basis_;
};

}  // namespace dsp
