// DSP parameter set — the paper's Table II defaults.
#pragma once

#include "util/time.h"

namespace dsp {

/// All DSP tunables with the paper's Table II settings as defaults.
struct DspParams {
  // ---- Preemption window (Algorithm 1) ----
  /// delta: fraction of each waiting queue considered as preempting tasks.
  double delta = 0.35;
  /// Bounds for the adaptive-delta controller (§IV-B: "the value of delta
  /// can be dynamically adjusted").
  double delta_min = 0.05;
  double delta_max = 0.80;
  /// Adaptive controller: grow delta when more than `delta_grow_above` of
  /// the considered tasks preempted last epoch, shrink below
  /// `delta_shrink_below`.
  double delta_grow_above = 0.50;
  double delta_shrink_below = 0.10;
  bool adaptive_delta = true;

  // ---- Urgency thresholds ----
  /// epsilon: a waiting task whose allowable waiting time t^a falls to or
  /// below this becomes *urgent* and preempts regardless of priority.
  SimTime epsilon = 1 * kSecond;
  /// tau: waiting-time threshold beyond which a preempting task ignores
  /// condition C1. Table II lists 0.05 s, which would make every queued
  /// task urgent within one epoch and contradicts the paper's own Fig. 6(d)
  /// (DSP has the *fewest* preemptions); we default to 10 min and expose
  /// the knob (see DESIGN.md "Known deviations").
  SimTime tau = 10 * kMinute;

  // ---- Dependency-aware priority (Formulas 12-13) ----
  /// gamma in (0,1): level-weighting coefficient of Formula 12.
  double gamma = 0.5;
  /// omega1/2/3: weights of remaining time, waiting time and allowable
  /// waiting time in the leaf priority (Formula 13); must sum to 1.
  double omega1 = 0.5;
  double omega2 = 0.3;
  double omega3 = 0.2;

  // ---- Normalized-priority preemption (PP) ----
  /// Enable the PP filter (DSPW/oPP sets this false).
  bool normalized_pp = true;
  /// rho > 1: a preemption fires only when the priority gap exceeds rho
  /// times the global mean neighbor gap P-bar. Since P-bar =
  /// (max - min) / (n - 1) shrinks with the live-task count n, the ratio
  /// gap / P-bar measures how many *ranks* apart the two tasks sit in the
  /// global priority order; rho is therefore a rank-distance threshold.
  /// The paper sets rho "empirically" without reporting the value; 200
  /// (suppress swaps between tasks closer than ~200 ranks) reproduces the
  /// Fig. 6(d) DSP < DSPW/oPP gap at our workload sizes. The ablation
  /// bench sweeps it.
  double rho = 200.0;

  // ---- g(k) weights (Eq. 1; applied via ClusterSpec) ----
  double theta1 = 0.5;
  double theta2 = 0.5;

  // ---- Execution (implementation knob, not in the paper) ----
  /// Worker threads for the epoch hot path: per-job priority recomputes
  /// and per-node preemptable-victim collection fan out across a pool
  /// when > 1. 1 runs fully serial (no pool is created); <= 0 reads the
  /// DSP_THREADS environment variable (default 1; malformed, zero or
  /// negative values clamp to 1 with a logged warning — see
  /// env_int_min). try_preempt mutations stay serial at any setting, so
  /// priorities, preemption decisions and audit trails are bit-identical
  /// regardless of the value.
  int threads = 0;

  // ---- Straggler mitigation (§VI future work) ----
  /// When enabled, each epoch DSP vacates nodes whose effective speed has
  /// dropped below `straggler_threshold` x nominal: running tasks are
  /// checkpointed and their work migrates to healthy nodes.
  bool straggler_mitigation = false;
  double straggler_threshold = 0.7;
};

}  // namespace dsp
