#include "core/dsp_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <queue>
#include <tuple>

#include "util/log.h"

namespace dsp {

const char* to_string(ScheduleMode m) {
  switch (m) {
    case ScheduleMode::kHeuristic: return "heuristic";
    case ScheduleMode::kRelaxRound: return "relax-round";
    case ScheduleMode::kExact: return "exact";
    case ScheduleMode::kAuto: return "auto";
  }
  return "?";
}

std::vector<double> DspScheduler::dependency_weights(const Job& job,
                                                     double gamma) {
  const TaskGraph& graph = job.graph();
  std::vector<double> weight(job.task_count(), 1.0);
  const auto topo = graph.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskIndex t = *it;
    double w = 1.0;
    for (TaskIndex c : graph.children(t)) w += (gamma + 1.0) * weight[c];
    weight[t] = w;
  }
  return weight;
}

std::vector<TaskPlacement> DspScheduler::schedule(
    const std::vector<JobId>& jobs, Engine& engine) {
  ScheduleMode mode = options_.mode;
  if (mode == ScheduleMode::kAuto || mode == ScheduleMode::kExact ||
      mode == ScheduleMode::kRelaxRound) {
    // Size the would-be ILP instance.
    std::size_t tasks = 0;
    for (JobId j : jobs) tasks += engine.job(j).task_count();
    std::size_t machines = 0;
    for (std::size_t k = 0; k < engine.node_count(); ++k)
      machines += static_cast<std::size_t>(engine.cluster().node(k).slots);
    const bool exact_ok =
        tasks <= options_.exact_max_tasks && machines <= options_.exact_max_machines;
    if (mode == ScheduleMode::kAuto)
      mode = exact_ok ? ScheduleMode::kExact : ScheduleMode::kHeuristic;
    else if (mode == ScheduleMode::kExact && !exact_ok) {
      DSP_INFO("ILP instance too large for exact mode (%zu tasks, %zu machines);"
               " using heuristic", tasks, machines);
      mode = ScheduleMode::kHeuristic;
    }
  }
  last_mode_ = mode;
  std::vector<TaskPlacement> placements;
  switch (mode) {
    case ScheduleMode::kExact:
      placements = schedule_ilp(jobs, engine, /*exact=*/true);
      break;
    case ScheduleMode::kRelaxRound:
      placements = schedule_ilp(jobs, engine, /*exact=*/false);
      break;
    default:
      placements = schedule_heuristic(jobs, engine);
      break;
  }
  if (engine.event_log() != nullptr) {
    // Flight recorder: one kJobPlanned per scheduled job, with the number
    // of its tasks this round actually placed in the `a` payload.
    std::map<JobId, double> placed;
    for (const TaskPlacement& p : placements) ++placed[engine.job_of(p.task)];
    for (JobId j : jobs) {
      const auto it = placed.find(j);
      engine.emit_event({.kind = obs::EventKind::kJobPlanned,
                         .job = j,
                         .a = it == placed.end() ? 0.0 : it->second});
    }
  }
  return placements;
}

std::vector<TaskPlacement> DspScheduler::schedule_heuristic(
    const std::vector<JobId>& jobs, Engine& engine) const {
  const std::size_t n_nodes = engine.node_count();
  const SimTime now = engine.now();

  // Per-node virtual slot availability, seeded with the node's current
  // backlog spread across its slots (an estimate of when already-assigned
  // work drains).
  std::vector<std::vector<double>> slot_free(n_nodes);
  for (std::size_t k = 0; k < n_nodes; ++k) {
    const int slots = engine.cluster().node(k).slots;
    const double backlog_s = engine.node_backlog_mi(static_cast<int>(k)) /
                             engine.node_rate(static_cast<int>(k)) /
                             std::max(1, slots);
    slot_free[k].assign(static_cast<std::size_t>(slots),
                        to_seconds(now) + backlog_s);
  }

  // Rank = (downstream weight desc, deadline asc, gid asc). Tasks become
  // eligible once all parents are placed; their start estimate then
  // respects the parents' estimated finishes (dependency awareness both in
  // ordering and in timing).
  struct Item {
    double weight;
    SimTime deadline;
    Gid gid;
  };
  struct ItemLess {
    bool operator()(const Item& a, const Item& b) const {
      if (a.weight != b.weight) return a.weight < b.weight;  // max-heap: larger first
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.gid > b.gid;
    }
  };
  std::priority_queue<Item, std::vector<Item>, ItemLess> ready;

  // Per-task bookkeeping (local maps keyed by gid ranges of pending jobs).
  std::vector<TaskPlacement> placements;
  std::size_t total_tasks = 0;
  for (JobId j : jobs) total_tasks += engine.job(j).task_count();
  placements.reserve(total_tasks);

  struct TaskAux {
    double finish_est = 0.0;
    std::uint32_t unplaced_parents = 0;
    double weight = 0.0;
  };
  // Map job -> base offset into a flat aux array (gids of one job are
  // contiguous, so job base + task index addresses aux densely).
  std::vector<TaskAux> aux(total_tasks);
  std::vector<std::pair<JobId, std::size_t>> job_base;
  {
    std::size_t base = 0;
    for (JobId j : jobs) {
      job_base.emplace_back(j, base);
      base += engine.job(j).task_count();
    }
  }
  auto base_of = [&](JobId j) {
    for (const auto& [job, base] : job_base)
      if (job == j) return base;
    assert(false && "job not in pending set");
    return std::size_t{0};
  };

  for (JobId j : jobs) {
    const Job& job = engine.job(j);
    const auto weights = dependency_weights(job, options_.gamma);
    const std::size_t base = base_of(j);
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      aux[base + t].unplaced_parents =
          static_cast<std::uint32_t>(job.graph().parents(t).size());
      aux[base + t].weight = weights[t];
      if (aux[base + t].unplaced_parents == 0)
        ready.push({weights[t], job.task(t).deadline, engine.gid(j, t)});
    }
  }

  while (!ready.empty()) {
    const Item item = ready.top();
    ready.pop();
    const JobId j = engine.job_of(item.gid);
    const TaskIndex t = engine.index_of(item.gid);
    const Job& job = engine.job(j);
    const std::size_t base = base_of(j);
    const Task& task = job.task(t);

    // Earliest start from dependency estimates.
    double dep_ready_s = to_seconds(now);
    for (TaskIndex p : job.graph().parents(t))
      dep_ready_s = std::max(dep_ready_s, aux[base + p].finish_est);

    // Pick the node minimizing estimated finish time.
    int best_node = -1;
    std::size_t best_slot = 0;
    double best_eft = 0.0, best_est = 0.0;
    for (std::size_t k = 0; k < n_nodes; ++k) {
      if (!engine.cluster().node(k).capacity.fits(task.demand)) continue;
      const auto min_it =
          std::min_element(slot_free[k].begin(), slot_free[k].end());
      const double est = std::max(dep_ready_s, *min_it);
      double eft = est + task.size_mi / engine.node_rate(static_cast<int>(k));
      if (options_.locality_aware)
        eft += to_seconds(engine.transfer_time(item.gid, static_cast<int>(k)));
      if (best_node < 0 || eft < best_eft) {
        best_node = static_cast<int>(k);
        best_slot = static_cast<std::size_t>(min_it - slot_free[k].begin());
        best_eft = eft;
        best_est = est;
      }
    }
    if (best_node < 0) {
      DSP_ERROR("task %u fits no node; skipping placement", item.gid);
      continue;
    }
    slot_free[static_cast<std::size_t>(best_node)][best_slot] = best_eft;
    aux[base + t].finish_est = best_eft;
    placements.push_back(TaskPlacement{item.gid, best_node, from_seconds(best_est)});

    for (TaskIndex c : job.graph().children(t)) {
      TaskAux& ca = aux[base + c];
      assert(ca.unplaced_parents > 0);
      if (--ca.unplaced_parents == 0)
        ready.push({ca.weight, job.task(c).deadline, engine.gid(j, c)});
    }
  }
  return placements;
}

std::vector<TaskPlacement> DspScheduler::schedule_ilp(
    const std::vector<JobId>& jobs, Engine& engine, bool exact) {
  const SimTime now = engine.now();

  // Build the IlpProblem: tasks flattened across jobs, machines = slot
  // expansion of nodes.
  IlpProblem problem;
  problem.recovery_s = options_.recovery_s;
  std::vector<Gid> task_of_index;
  std::vector<std::size_t> index_of_gid_base;  // per pending job
  {
    std::size_t idx = 0;
    for (JobId j : jobs) {
      index_of_gid_base.push_back(idx);
      const Job& job = engine.job(j);
      for (TaskIndex t = 0; t < job.task_count(); ++t) {
        IlpTask it;
        it.size_mi = job.task(t).size_mi;
        const SimTime dl = job.task(t).deadline;
        it.deadline_s = dl == kMaxTime
                            ? std::numeric_limits<double>::infinity()
                            : std::max(0.0, to_seconds(dl - now));
        for (TaskIndex p : job.graph().parents(t))
          it.parents.push_back(
              static_cast<int>(index_of_gid_base.back() + p));
        if (options_.preemption_padding) {
          // An empty (or fully degraded) cluster has mean_rate() == 0;
          // no machine exists to preempt on, so pad nothing.
          const double mean_rate = engine.cluster().mean_rate();
          const double exec_ref =
              mean_rate > 0.0 ? job.task(t).size_mi / mean_rate : 0.0;
          it.n_preempt = estimate_preemptions(exec_ref, it.deadline_s);
        }
        problem.tasks.push_back(std::move(it));
        task_of_index.push_back(engine.gid(j, t));
        ++idx;
      }
    }
  }
  std::vector<int> machine_node;
  for (std::size_t k = 0; k < engine.node_count(); ++k) {
    for (int s = 0; s < engine.cluster().node(k).slots; ++s) {
      problem.machine_rates.push_back(engine.node_rate(static_cast<int>(k)));
      machine_node.push_back(static_cast<int>(k));
    }
  }

  IlpScheduleResult result;
  if (exact) {
    if (exact_solver_ == nullptr) {
      lp::MilpSolver::Options mo;
      mo.warm_start = options_.warm_start;
      mo.parallel_nodes = options_.ilp_parallel_nodes;
      mo.threads = options_.ilp_threads;
      exact_solver_ = std::make_unique<lp::MilpSolver>(mo);
    }
    result = solve_ilp_schedule(problem, IlpSolveOptions{}, *exact_solver_);
  } else {
    result = solve_relax_round(
        problem, options_.warm_start ? &relax_basis_ : nullptr);
  }
  if (!result.ok()) {
    DSP_WARN("ILP solve failed (%s); falling back to heuristic",
             lp::to_string(result.status));
    last_mode_ = ScheduleMode::kHeuristic;
    return schedule_heuristic(jobs, engine);
  }

  std::vector<TaskPlacement> placements;
  placements.reserve(problem.tasks.size());
  for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
    TaskPlacement p;
    p.task = task_of_index[i];
    p.node = machine_node[static_cast<std::size_t>(result.machine_of[i])];
    p.planned_start = now + from_seconds(result.start_s[i]);
    placements.push_back(p);
  }
  return placements;
}

}  // namespace dsp
