#include "core/ilp_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/log.h"

namespace dsp {
namespace {

double exec_seconds(const IlpProblem& p, std::size_t task, std::size_t machine) {
  return p.tasks[task].size_mi / p.machine_rates[machine];
}

double completion_padding(const IlpProblem& p, std::size_t task) {
  return static_cast<double>(p.tasks[task].n_preempt) * p.recovery_s;
}

/// Big-M: an upper bound on any reasonable schedule horizon — running every
/// task back-to-back on the slowest machine plus all preemption padding.
double big_m(const IlpProblem& p) {
  const double slowest =
      *std::min_element(p.machine_rates.begin(), p.machine_rates.end());
  double total = 1.0;
  for (std::size_t t = 0; t < p.tasks.size(); ++t)
    total += p.tasks[t].size_mi / slowest + completion_padding(p, t);
  return total;
}

}  // namespace

bool can_solve_exactly(const IlpProblem& problem, std::size_t max_tasks,
                       std::size_t max_machines) {
  return !problem.tasks.empty() && !problem.machine_rates.empty() &&
         problem.tasks.size() <= max_tasks &&
         problem.machine_rates.size() <= max_machines;
}

lp::Model build_ilp_model(const IlpProblem& problem, bool enforce_deadlines) {
  const std::size_t T = problem.tasks.size();
  const std::size_t M = problem.machine_rates.size();
  const double horizon = big_m(problem);

  lp::Model model;
  model.set_direction(lp::Direction::kMinimize);

  // L_MS: the makespan, the sole objective term (3).
  const lp::VarId var_L = model.add_var(0.0, horizon, 1.0, "L");

  // t_s[t]: start times (11).
  std::vector<lp::VarId> var_start(T);
  for (std::size_t t = 0; t < T; ++t)
    var_start[t] = model.add_var(0.0, horizon, 0.0, "ts" + std::to_string(t));

  // x[t][m]: placement binaries (10).
  std::vector<std::vector<lp::VarId>> var_x(T, std::vector<lp::VarId>(M));
  for (std::size_t t = 0; t < T; ++t)
    for (std::size_t m = 0; m < M; ++m)
      var_x[t][m] = model.add_binary_var(
          0.0, "x" + std::to_string(t) + "_" + std::to_string(m));

  // Each task runs on exactly one machine.
  for (std::size_t t = 0; t < T; ++t) {
    lp::LinearExpr expr;
    for (std::size_t m = 0; m < M; ++m) expr.add(var_x[t][m], 1.0);
    model.add_constraint(std::move(expr), lp::Sense::kEq, 1.0,
                         "assign" + std::to_string(t));
  }

  // (4): completion (start + exec + preemption padding) <= L_MS.
  for (std::size_t t = 0; t < T; ++t) {
    lp::LinearExpr expr;
    expr.add(var_start[t], 1.0);
    for (std::size_t m = 0; m < M; ++m)
      expr.add(var_x[t][m], exec_seconds(problem, t, m) + completion_padding(problem, t));
    expr.add(var_L, -1.0);
    model.add_constraint(std::move(expr), lp::Sense::kLe, 0.0,
                         "makespan" + std::to_string(t));
  }

  // (6): per-task deadlines.
  if (enforce_deadlines) {
    for (std::size_t t = 0; t < T; ++t) {
      if (!std::isfinite(problem.tasks[t].deadline_s)) continue;
      lp::LinearExpr expr;
      expr.add(var_start[t], 1.0);
      for (std::size_t m = 0; m < M; ++m)
        expr.add(var_x[t][m],
                 exec_seconds(problem, t, m) + completion_padding(problem, t));
      model.add_constraint(std::move(expr), lp::Sense::kLe,
                           problem.tasks[t].deadline_s,
                           "deadline" + std::to_string(t));
    }
  }

  // (7): precedence — child starts after parent's completion on whichever
  // machine the parent was assigned.
  for (std::size_t c = 0; c < T; ++c) {
    for (int parent : problem.tasks[c].parents) {
      const auto pt = static_cast<std::size_t>(parent);
      lp::LinearExpr expr;
      expr.add(var_start[c], 1.0);
      expr.add(var_start[pt], -1.0);
      for (std::size_t m = 0; m < M; ++m)
        expr.add(var_x[pt][m],
                 -(exec_seconds(problem, pt, m) + completion_padding(problem, pt)));
      model.add_constraint(std::move(expr), lp::Sense::kGe, 0.0,
                           "prec" + std::to_string(pt) + "_" + std::to_string(c));
    }
  }

  // (5)/(8): non-overlap per machine via ordering binaries y[i][j][m]
  // (i < j; y = 1 means i precedes j on m), big-M deactivated unless both
  // tasks are placed on m.
  for (std::size_t i = 0; i < T; ++i) {
    for (std::size_t j = i + 1; j < T; ++j) {
      for (std::size_t m = 0; m < M; ++m) {
        const lp::VarId y = model.add_binary_var(
            0.0, "y" + std::to_string(i) + "_" + std::to_string(j) + "_" +
                     std::to_string(m));
        // i before j: ts_i + exec_i <= ts_j + M(1-y) + M(1-x_im) + M(1-x_jm)
        {
          lp::LinearExpr expr;
          expr.add(var_start[i], 1.0);
          expr.add(var_start[j], -1.0);
          expr.add(y, horizon);
          expr.add(var_x[i][m], horizon);
          expr.add(var_x[j][m], horizon);
          model.add_constraint(std::move(expr), lp::Sense::kLe,
                               3.0 * horizon - exec_seconds(problem, i, m));
        }
        // j before i: ts_j + exec_j <= ts_i + M*y + M(1-x_im) + M(1-x_jm)
        {
          lp::LinearExpr expr;
          expr.add(var_start[j], 1.0);
          expr.add(var_start[i], -1.0);
          expr.add(y, -horizon);
          expr.add(var_x[i][m], horizon);
          expr.add(var_x[j][m], horizon);
          model.add_constraint(std::move(expr), lp::Sense::kLe,
                               2.0 * horizon - exec_seconds(problem, j, m));
        }
      }
    }
  }
  return model;
}

IlpScheduleResult solve_ilp_schedule(const IlpProblem& problem,
                                     const IlpSolveOptions& options) {
  lp::MilpSolver::Options milp_opts;
  milp_opts.max_nodes = options.max_bb_nodes;
  milp_opts.warm_start = options.warm_start;
  milp_opts.parallel_nodes = options.parallel_nodes;
  milp_opts.threads = options.threads;
  lp::MilpSolver solver(milp_opts);
  return solve_ilp_schedule(problem, options, solver);
}

IlpScheduleResult solve_ilp_schedule(const IlpProblem& problem,
                                     const IlpSolveOptions& options,
                                     lp::MilpSolver& solver) {
  assert(!problem.tasks.empty() && !problem.machine_rates.empty());
  const std::size_t T = problem.tasks.size();
  const std::size_t M = problem.machine_rates.size();

  lp::Model model = build_ilp_model(problem, options.enforce_deadlines);
  lp::Solution sol = solver.solve(model);
  if (sol.status == lp::SolveStatus::kInfeasible && options.enforce_deadlines &&
      options.relax_deadlines_on_infeasible) {
    DSP_INFO("ILP infeasible with deadlines; retrying without constraint (6)");
    model = build_ilp_model(problem, /*enforce_deadlines=*/false);
    sol = solver.solve(model);
  }

  IlpScheduleResult result;
  result.status = sol.status;
  if (!sol.ok()) return result;

  result.makespan_s = sol.x[0];
  result.machine_of.resize(T, 0);
  result.start_s.resize(T, 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    result.start_s[t] = sol.x[1 + t];
    for (std::size_t m = 0; m < M; ++m) {
      const double x = sol.x[1 + T + t * M + m];
      if (x > 0.5) result.machine_of[t] = static_cast<int>(m);
    }
  }
  return result;
}

double list_schedule_fixed(const IlpProblem& problem,
                           const std::vector<int>& machine_of,
                           const std::vector<int>& order,
                           std::vector<double>& start_s) {
  const std::size_t T = problem.tasks.size();
  assert(machine_of.size() == T && order.size() == T);
  start_s.assign(T, 0.0);
  std::vector<double> machine_free(problem.machine_rates.size(), 0.0);
  std::vector<double> finish(T, 0.0);
  double makespan = 0.0;
  for (int idx : order) {
    const auto t = static_cast<std::size_t>(idx);
    const auto m = static_cast<std::size_t>(machine_of[t]);
    double est = machine_free[m];
    for (int parent : problem.tasks[t].parents)
      est = std::max(est, finish[static_cast<std::size_t>(parent)]);
    start_s[t] = est;
    finish[t] = est + exec_seconds(problem, t, m) + completion_padding(problem, t);
    machine_free[m] = finish[t];
    makespan = std::max(makespan, finish[t]);
  }
  return makespan;
}

IlpScheduleResult solve_relax_round(const IlpProblem& problem,
                                    lp::Basis* warm_basis) {
  const std::size_t T = problem.tasks.size();
  const std::size_t M = problem.machine_rates.size();

  // LP relaxation of the placement model. The ordering binaries make the
  // relaxation weak, so we relax a *reduced* model without (5)/(8) — their
  // role is restored by the list-scheduling pass below.
  lp::Model model;
  model.set_direction(lp::Direction::kMinimize);
  const lp::VarId var_L = model.add_var(0.0, lp::kInf, 1.0, "L");
  (void)var_L;
  std::vector<lp::VarId> var_start(T);
  for (std::size_t t = 0; t < T; ++t)
    var_start[t] = model.add_var(0.0, lp::kInf, 0.0);
  std::vector<std::vector<lp::VarId>> var_x(T, std::vector<lp::VarId>(M));
  for (std::size_t t = 0; t < T; ++t)
    for (std::size_t m = 0; m < M; ++m)
      var_x[t][m] = model.add_var(0.0, 1.0, 0.0);  // continuous in [0,1]
  for (std::size_t t = 0; t < T; ++t) {
    lp::LinearExpr assign;
    for (std::size_t m = 0; m < M; ++m) assign.add(var_x[t][m], 1.0);
    model.add_constraint(std::move(assign), lp::Sense::kEq, 1.0);

    lp::LinearExpr mk;
    mk.add(var_start[t], 1.0);
    for (std::size_t m = 0; m < M; ++m)
      mk.add(var_x[t][m], exec_seconds(problem, t, m) + completion_padding(problem, t));
    mk.add(0, -1.0);  // var_L has id 0
    model.add_constraint(std::move(mk), lp::Sense::kLe, 0.0);
  }
  // Machine load <= L (a valid relaxation of non-overlap).
  for (std::size_t m = 0; m < M; ++m) {
    lp::LinearExpr load;
    for (std::size_t t = 0; t < T; ++t)
      load.add(var_x[t][m], exec_seconds(problem, t, m));
    load.add(0, -1.0);
    model.add_constraint(std::move(load), lp::Sense::kLe, 0.0);
  }
  for (std::size_t c = 0; c < T; ++c) {
    for (int parent : problem.tasks[c].parents) {
      const auto pt = static_cast<std::size_t>(parent);
      lp::LinearExpr prec;
      prec.add(var_start[c], 1.0);
      prec.add(var_start[pt], -1.0);
      for (std::size_t m = 0; m < M; ++m)
        prec.add(var_x[pt][m],
                 -(exec_seconds(problem, pt, m) + completion_padding(problem, pt)));
      model.add_constraint(std::move(prec), lp::Sense::kGe, 0.0);
    }
  }

  IlpScheduleResult result;
  // With a caller-threaded basis, consecutive periods with the same model
  // shape skip Phase I entirely: the previous optimum is refactorized and
  // repaired by a few dual pivots.
  const lp::Solution sol = lp::SimplexSolver().solve(model, warm_basis);
  std::vector<int> machine_of(T, 0);
  if (sol.status == lp::SolveStatus::kOptimal) {
    // Round each task to its largest-fraction machine.
    for (std::size_t t = 0; t < T; ++t) {
      double best = -1.0;
      for (std::size_t m = 0; m < M; ++m) {
        const double x = sol.x[1 + T + t * M + m];
        if (x > best) {
          best = x;
          machine_of[t] = static_cast<int>(m);
        }
      }
    }
    result.status = lp::SolveStatus::kOptimal;
  } else {
    // Degenerate fallback: fastest machine for everything; the list pass
    // still yields a valid schedule.
    const auto fastest = static_cast<int>(
        std::max_element(problem.machine_rates.begin(), problem.machine_rates.end()) -
        problem.machine_rates.begin());
    std::fill(machine_of.begin(), machine_of.end(), fastest);
    result.status = lp::SolveStatus::kNodeLimit;
  }

  // Topological order by LP start time (ties by index): feasible because
  // the LP enforces precedence on start times... except equal starts; a
  // stable Kahn pass guarantees correctness.
  std::vector<int> indegree(T, 0);
  std::vector<std::vector<int>> children(T);
  for (std::size_t c = 0; c < T; ++c)
    for (int p : problem.tasks[c].parents) {
      children[static_cast<std::size_t>(p)].push_back(static_cast<int>(c));
      ++indegree[c];
    }
  auto start_of = [&](int t) {
    return sol.status == lp::SolveStatus::kOptimal
               ? sol.x[1 + static_cast<std::size_t>(t)]
               : 0.0;
  };
  using QItem = std::pair<double, int>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> ready;
  for (std::size_t t = 0; t < T; ++t)
    if (indegree[t] == 0) ready.emplace(start_of(static_cast<int>(t)), static_cast<int>(t));
  std::vector<int> order;
  order.reserve(T);
  while (!ready.empty()) {
    const int t = ready.top().second;
    ready.pop();
    order.push_back(t);
    for (int c : children[static_cast<std::size_t>(t)])
      if (--indegree[static_cast<std::size_t>(c)] == 0)
        ready.emplace(start_of(c), c);
  }
  assert(order.size() == T && "IlpProblem dependency graph must be acyclic");

  result.machine_of = std::move(machine_of);
  result.makespan_s =
      list_schedule_fixed(problem, result.machine_of, order, result.start_s);
  return result;
}

int estimate_preemptions(double exec_s, double deadline_s) {
  if (!std::isfinite(deadline_s) || exec_s <= 0.0) return 0;
  const double slack_ratio = deadline_s / exec_s;
  if (slack_ratio < 1.5) return 2;
  if (slack_ratio < 3.0) return 1;
  return 0;
}

}  // namespace dsp
