#include "core/priority.h"

#include <algorithm>

#include "obs/profiler.h"

namespace dsp {

double DependencyPriority::leaf_priority(const Engine& engine, Gid g) const {
  const double t_rem = std::max(0.001, to_seconds(engine.remaining_time(g)));
  // Accumulated waiting (not just the current stretch): a task keeps the
  // priority it earned by waiting even while running, which stabilizes the
  // C1 comparison between waiting and running tasks.
  const double t_w = engine.accumulated_wait_s(g);
  const double t_a = to_seconds(engine.allowable_waiting_time(g));
  return params_.omega1 / t_rem + params_.omega2 * t_w + params_.omega3 * t_a;
}

void DependencyPriority::compute_job(const Engine& engine, JobId job,
                                     std::vector<double>& out) const {
  const Job& j = engine.job(job);
  const TaskGraph& graph = j.graph();
  const auto topo = graph.topo_order();
  // Reverse topological order: every child's priority is ready before its
  // parents aggregate it.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskIndex t = *it;
    const Gid g = engine.gid(job, t);
    if (engine.state(g) == TaskState::kFinished) {
      out[g] = 0.0;
      continue;
    }
    double sum = 0.0;
    bool has_live_child = false;
    for (TaskIndex c : graph.children(t)) {
      const Gid cg = engine.gid(job, c);
      if (engine.state(cg) == TaskState::kFinished) continue;
      has_live_child = true;
      sum += (params_.gamma + 1.0) * out[cg];
    }
    out[g] = has_live_child ? sum : leaf_priority(engine, g);
  }
}

DependencyPriority::Range DependencyPriority::compute_all(
    const Engine& engine, std::vector<double>& out) const {
  DSP_PROFILE("priority.compute_all_s");
  out.assign(engine.total_task_count(), 0.0);
  Range range;
  bool first = true;
  for (JobId j = 0; j < engine.job_count(); ++j) {
    if (!engine.job_scheduled(j) || engine.job_finished(j)) continue;
    compute_job(engine, j, out);
    for (TaskIndex t = 0; t < engine.job(j).task_count(); ++t) {
      const Gid g = engine.gid(j, t);
      const TaskState s = engine.state(g);
      if (s == TaskState::kFinished || s == TaskState::kUnscheduled) continue;
      if (first || out[g] < range.min_p) range.min_p = out[g];
      if (first || out[g] > range.max_p) range.max_p = out[g];
      first = false;
      ++range.live_tasks;
    }
  }
  return range;
}

}  // namespace dsp
