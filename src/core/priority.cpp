#include "core/priority.h"

#include <algorithm>

#include "obs/profiler.h"
#include "util/thread_pool.h"

namespace dsp {

double DependencyPriority::leaf_priority(const Engine& engine, Gid g) const {
  // Accumulated waiting (not just the current stretch): a task keeps the
  // priority it earned by waiting even while running, which stabilizes the
  // C1 comparison between waiting and running tasks.
  const Engine::LeafInputs in = engine.leaf_inputs(g);
  const double t_rem = std::max(0.001, in.t_rem_s);
  return params_.omega1 / t_rem + params_.omega2 * in.t_wait_s +
         params_.omega3 * in.t_allow_s;
}

DependencyPriority::Range DependencyPriority::compute_job(
    const Engine& engine, JobId job, std::vector<double>& out) const {
  const Job& j = engine.job(job);
  const TaskGraph& graph = j.graph();
  const Gid base = engine.gid(job, 0);
  // Zero the job's whole span first: finished tasks report priority 0
  // without being walked.
  std::fill(out.begin() + base, out.begin() + base + j.task_count(), 0.0);

  Range range;
  bool first = true;
  const double g1 = params_.gamma + 1.0;
  // Live tasks in reverse topological order: every child's priority is
  // ready before its parents aggregate it; finished tasks are skipped
  // wholesale.
  for (const Gid g : engine.live_reverse_topo(job)) {
    const auto t = static_cast<TaskIndex>(g - base);
    double sum = 0.0;
    bool has_live_child = false;
    for (TaskIndex c : graph.children(t)) {
      const Gid cg = base + c;
      if (engine.state(cg) == TaskState::kFinished) continue;
      has_live_child = true;
      sum += g1 * out[cg];
    }
    const double p = has_live_child ? sum : leaf_priority(engine, g);
    out[g] = p;
    if (engine.state(g) == TaskState::kUnscheduled) continue;
    if (first || p < range.min_p) range.min_p = p;
    if (first || p > range.max_p) range.max_p = p;
    first = false;
    ++range.live_tasks;
  }
  return range;
}

DependencyPriority::Range DependencyPriority::compute_all(
    const Engine& engine, std::vector<double>& out) const {
  DSP_PROFILE("priority.compute_all_s");
  const std::size_t jobs = engine.job_count();
  const std::size_t total = engine.total_task_count();
  if (cache_engine_ != &engine || out.size() != total ||
      job_version_.size() != jobs) {
    out.assign(total, 0.0);
    job_version_.assign(jobs, 0);  // engine versions start at 1: all dirty
    job_range_.assign(jobs, Range{});
    cache_now_ = kNoTime;
    cache_engine_ = &engine;
  }

  // A job is clean when its version is unchanged AND simulated time has
  // not advanced — t^w and t^a move with the clock even without events.
  const SimTime now = engine.now();
  const bool time_advanced = now != cache_now_;
  dirty_jobs_.clear();
  for (JobId j = 0; j < jobs; ++j) {
    if (!engine.job_scheduled(j) || engine.job_finished(j)) {
      if (job_range_[j].live_tasks != 0) {
        // The job completed since the last call: zero its stale values.
        const Gid base = engine.gid(j, 0);
        std::fill(out.begin() + base,
                  out.begin() + base + engine.job(j).task_count(), 0.0);
        job_range_[j] = Range{};
        job_version_[j] = engine.priority_version(j);
      }
      continue;
    }
    if (!time_advanced && job_version_[j] == engine.priority_version(j))
      continue;
    dirty_jobs_.push_back(j);
  }

  // Recompute dirty jobs. Each job touches only its own span of `out`
  // and its own cache rows, so the fan-out is race-free; the serial path
  // runs the identical per-job code, so results are bit-identical.
  auto recompute = [&](std::size_t i) {
    const JobId j = dirty_jobs_[i];
    // Each chunk owns job j's rows exclusively, so the fan-out is
    // race-free even without a guard annotation.
    job_range_[j] = compute_job(engine, j, out);    // dsp-tidy: allow(L003)
    job_version_[j] = engine.priority_version(j);  // dsp-tidy: allow(L003)
  };
  if (pool_ != nullptr && dirty_jobs_.size() > 1) {
    pool_->parallel_for(dirty_jobs_.size(), recompute);
  } else {
    for (std::size_t i = 0; i < dirty_jobs_.size(); ++i) recompute(i);
  }
  cache_now_ = now;

  // Deterministic merge in ascending job order.
  Range range;
  bool first = true;
  for (JobId j = 0; j < jobs; ++j) {
    if (!engine.job_scheduled(j) || engine.job_finished(j)) continue;
    const Range& r = job_range_[j];
    if (r.live_tasks == 0) continue;
    if (first || r.min_p < range.min_p) range.min_p = r.min_p;
    if (first || r.max_p > range.max_p) range.max_p = r.max_p;
    first = false;
    range.live_tasks += r.live_tasks;
  }
  return range;
}

}  // namespace dsp
