#include "core/dsp_system.h"

namespace dsp {

RunMetrics simulate(const ClusterSpec& cluster, JobSet jobs,
                    Scheduler& scheduler, PreemptionPolicy* preempt,
                    EngineParams engine_params) {
  Engine engine(cluster, std::move(jobs), scheduler, preempt, engine_params);
  return engine.run();
}

}  // namespace dsp
