// The paper's §III makespan-minimization ILP.
//
//   Min L_MS                                                  (3)
//   s.t. completion of every task <= L_MS                     (4)
//        non-overlap of tasks sharing a processor             (5)(8)
//        per-job deadline on every task                       (6)
//        precedence along dependency chains                   (7)
//        y, x binary; start times >= 0                        (9)-(11)
//
// Each cluster node is expanded into `slots` single-task virtual machines
// running at the node's g(k) rate, which maps the paper's per-node ordering
// constraints onto multi-slot servers exactly. Completion times carry the
// paper's preemption padding N^p * (t^r + sigma).
//
// The model is built over plain inputs (no engine dependency) so it can be
// unit-tested against brute force and cross-validated with the heuristic
// scheduler. Exact solves are only tractable for small instances (the
// paper's CPLEX had the same practical ceiling, hence its relax-and-round
// suggestion); callers cap sizes via can_solve_exactly().
#pragma once

#include <cstdint>
#include <vector>

#include "lp/milp.h"
#include "lp/model.h"

namespace dsp {

/// One task in an ILP scheduling instance.
struct IlpTask {
  double size_mi = 1.0;
  /// Relative deadline in seconds from the schedule origin; infinity
  /// disables constraint (6) for this task.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Indices of precedent tasks (must run before this one).
  std::vector<int> parents;
  /// Estimated preemption count N^p (pads completion by n_preempt *
  /// recovery_s per constraint (4)/(6)).
  int n_preempt = 0;
};

/// A scheduling instance: tasks + virtual machines.
struct IlpProblem {
  std::vector<IlpTask> tasks;
  std::vector<double> machine_rates;  ///< MIPS of each virtual machine.
  double recovery_s = 0.3;            ///< t^r + sigma per preemption.
};

/// Result of an ILP (or relaxation) solve.
struct IlpScheduleResult {
  lp::SolveStatus status = lp::SolveStatus::kNoSolution;
  double makespan_s = 0.0;
  std::vector<int> machine_of;   ///< Per task: virtual machine index.
  std::vector<double> start_s;   ///< Per task: start offset in seconds.

  bool ok() const {
    return status == lp::SolveStatus::kOptimal ||
           status == lp::SolveStatus::kNodeLimit;
  }
};

/// Options for solve_ilp_schedule.
struct IlpSolveOptions {
  bool enforce_deadlines = true;
  /// Retry without constraint (6) when the deadline-constrained model is
  /// infeasible (the paper's online preemption then repairs lateness).
  bool relax_deadlines_on_infeasible = true;
  int max_bb_nodes = 20000;
  /// Warm-start child relaxations from the parent basis (and, with a
  /// persistent solver, the root from the previous period's basis).
  bool warm_start = true;
  /// B&B wave width (lp::MilpSolver::Options::parallel_nodes).
  int parallel_nodes = 8;
  /// Worker threads for wave solves; <= 0 reads DSP_THREADS.
  int threads = 0;
};

/// Rough tractability guard for the exact solver.
bool can_solve_exactly(const IlpProblem& problem, std::size_t max_tasks = 8,
                       std::size_t max_machines = 4);

/// Builds the §III model. Exposed for tests; most callers use
/// solve_ilp_schedule. Variable layout: [L, t_s[0..T), x[t][m] row-major,
/// y vars appended].
lp::Model build_ilp_model(const IlpProblem& problem, bool enforce_deadlines);

/// Solves the instance exactly with branch & bound.
IlpScheduleResult solve_ilp_schedule(const IlpProblem& problem,
                                     const IlpSolveOptions& options = {});

/// Exact solve with a caller-owned solver. Reusing one MilpSolver across
/// scheduling periods lets structurally identical models (same task and
/// machine counts) warm-start the root relaxation from the previous
/// period's optimal basis; the solver's own options govern the search
/// (only `options.enforce_deadlines` / `relax_deadlines_on_infeasible`
/// apply here).
IlpScheduleResult solve_ilp_schedule(const IlpProblem& problem,
                                     const IlpSolveOptions& options,
                                     lp::MilpSolver& solver);

/// The paper's relax-and-round mode: solve the LP relaxation, fix each
/// task to its largest-fraction machine, then derive start times by list
/// scheduling on the fixed placement. Always returns a feasible schedule
/// (precedence + non-overlap), though not necessarily optimal.
///
/// `warm_basis` (nullable) threads the relaxation basis across calls:
/// pass the same Basis every period and the LP warm-starts whenever the
/// model shape repeats (a stale or mismatched basis falls back cold).
IlpScheduleResult solve_relax_round(const IlpProblem& problem,
                                    lp::Basis* warm_basis = nullptr);

/// List-scheduling lower-level helper: given fixed machine assignments,
/// computes earliest feasible start times honouring precedence and
/// machine exclusivity. Tasks are seeded in `order` (a topological order
/// refined by any priority); returns the resulting makespan.
double list_schedule_fixed(const IlpProblem& problem,
                           const std::vector<int>& machine_of,
                           const std::vector<int>& order,
                           std::vector<double>& start_s);

/// Estimates N^p for a task from its deadline slack: a task whose relative
/// deadline leaves less than 2x its execution time of slack is likely to
/// be preempted once; very tight tasks twice. (Stands in for the
/// checkpoint-scheduling estimator of the paper's reference [29].)
int estimate_preemptions(double exec_s, double deadline_s);

}  // namespace dsp
