#include "core/preemption.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace dsp {

void DspPreemption::on_epoch(Engine& engine) {
  if (params_.straggler_mitigation) mitigate_stragglers(engine);

  const auto range = priority_.compute_all(engine, prio_);
  if (range.live_tasks == 0) return;
  const double pbar = range.mean_neighbor_gap();

  std::uint64_t considered = 0, preempted = 0;
  std::vector<Gid> preemptable;
  for (int node = 0; node < static_cast<int>(engine.node_count()); ++node) {
    if (engine.waiting(node).empty()) continue;

    // Preemptable running tasks: suspending them for up to an epoch still
    // leaves enough allowable waiting time to meet their deadline.
    preemptable.clear();
    for (Gid r : engine.running(node))
      if (engine.allowable_waiting_time(r) > engine.params().epoch)
        preemptable.push_back(r);
    if (preemptable.empty()) continue;
    std::sort(preemptable.begin(), preemptable.end(), [this](Gid a, Gid b) {
      return prio_[a] != prio_[b] ? prio_[a] < prio_[b] : a < b;
    });

    urgent_pass(engine, node, preemptable, pbar);
    const auto [c, p] = window_pass(engine, node, preemptable, pbar);
    considered += c;
    preempted += p;
  }
  if (params_.adaptive_delta) adapt_delta(considered, preempted);
}

obs::PreemptDecision DspPreemption::make_decision(int node, Gid w) const {
  obs::PreemptDecision d;
  d.node = node;
  d.candidate = w;
  d.candidate_priority = w < prio_.size() ? prio_[w] : 0.0;
  d.rho = params_.rho;
  d.delta = delta_;
  d.epsilon = params_.epsilon;
  d.tau = params_.tau;
  d.pp = params_.normalized_pp;
  return d;
}

void DspPreemption::urgent_pass(Engine& engine, int node,
                                std::vector<Gid>& preemptable,
                                double pbar) const {
  // Snapshot: try_preempt mutates the waiting queue.
  const std::vector<Gid> waiting = engine.waiting(node);
  for (Gid w : waiting) {
    const TaskState s = engine.state(w);
    if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
    if (!engine.is_ready(w)) continue;  // DSP never launches unready tasks
    // Urgent: the deadline is close (t^a <= epsilon) but still salvageable
    // (t^a >= 0) — preempting for a task that can no longer meet its
    // deadline buys nothing — or the task has waited beyond tau.
    const SimTime t_a = engine.allowable_waiting_time(w);
    const bool urgent = (t_a <= params_.epsilon && t_a >= 0) ||
                        engine.waiting_time(w) >= params_.tau;
    if (!urgent) continue;
    obs::PreemptDecision d = make_decision(node, w);
    d.urgent = true;
    bool dep_blocked = false;
    // Lowest-priority victim the urgent task does not depend on (C2),
    // ignoring C1 and the PP gap.
    for (auto it = preemptable.begin(); it != preemptable.end(); ++it) {
      const Gid v = *it;
      if (engine.state(v) != TaskState::kRunning) continue;
      if (engine.depends_on(w, v)) {
        dep_blocked = true;
        continue;
      }
      const PreemptResult res = engine.try_preempt(node, v, w);
      if (res == PreemptResult::kOk) {
        d.outcome = obs::PreemptOutcome::kFired;
        d.victim = v;
        d.victim_priority = prio_[v];
        if (pbar > 0.0) d.normalized_gap = (prio_[w] - prio_[v]) / pbar;
        preemptable.erase(it);
        break;
      }
      if (res == PreemptResult::kIncomingNotReady) break;  // defensive
      // kNoResources: try the next victim.
    }
    if (d.outcome != obs::PreemptOutcome::kFired)
      d.outcome = dep_blocked ? obs::PreemptOutcome::kBlockedByDependency
                              : obs::PreemptOutcome::kNoVictim;
    engine.record_preempt_decision(d);
  }
}

std::pair<std::uint64_t, std::uint64_t> DspPreemption::window_pass(
    Engine& engine, int node, std::vector<Gid>& preemptable,
    double pbar) const {
  const std::vector<Gid> waiting = engine.waiting(node);  // snapshot
  const auto window = static_cast<std::size_t>(
      std::ceil(delta_ * static_cast<double>(waiting.size())));
  std::uint64_t considered = 0, preempted = 0;

  for (std::size_t i = 0; i < waiting.size() && i < window; ++i) {
    const Gid w = waiting[i];
    const TaskState s = engine.state(w);
    if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
    if (!engine.is_ready(w)) continue;
    ++considered;

    obs::PreemptDecision d = make_decision(node, w);
    bool dep_blocked = false;
    // Victims in ascending priority: the first one passing all conditions
    // is the cheapest to displace.
    for (auto it = preemptable.begin(); it != preemptable.end();) {
      const Gid v = *it;
      if (engine.state(v) != TaskState::kRunning) {
        it = preemptable.erase(it);  // finished/preempted since sorting
        continue;
      }
      // C1: higher priority required. Victims are sorted ascending, so no
      // later victim can satisfy C1 either.
      if (prio_[w] <= prio_[v]) break;
      // C2: never preempt a task the waiting task depends on.
      if (engine.depends_on(w, v)) {
        dep_blocked = true;
        ++it;
        continue;
      }
      // PP: the priority gap must exceed rho times the global mean
      // neighbor gap, or the context-switch cost outweighs the gain.
      if (params_.normalized_pp && pbar > 0.0) {
        const double gap = prio_[w] - prio_[v];
        if (gap / pbar <= params_.rho) {
          d.outcome = obs::PreemptOutcome::kSuppressedPP;
          d.victim = v;
          d.victim_priority = prio_[v];
          d.normalized_gap = gap / pbar;
          break;  // later victims have higher priority -> smaller gaps
        }
      }
      const PreemptResult res = engine.try_preempt(node, v, w);
      if (res == PreemptResult::kOk) {
        ++preempted;
        d.outcome = obs::PreemptOutcome::kFired;
        d.victim = v;
        d.victim_priority = prio_[v];
        if (pbar > 0.0) d.normalized_gap = (prio_[w] - prio_[v]) / pbar;
        preemptable.erase(it);
        break;
      }
      if (res == PreemptResult::kNoResources) {
        ++it;  // try a higher-priority victim with a larger reservation
        continue;
      }
      break;  // not-ready/invalid: stop trying for this waiting task
    }
    if (d.outcome != obs::PreemptOutcome::kFired &&
        d.outcome != obs::PreemptOutcome::kSuppressedPP) {
      d.outcome = dep_blocked ? obs::PreemptOutcome::kBlockedByDependency
                              : obs::PreemptOutcome::kNoVictim;
    }
    engine.record_preempt_decision(d);
  }
  return {considered, preempted};
}

void DspPreemption::mitigate_stragglers(Engine& engine) const {
  // Healthy destination: the fastest up node at nominal speed with the
  // smallest backlog. Recomputed per migration batch (cheap: node counts
  // are small).
  auto pick_destination = [&engine](Gid g) {
    int best = -1;
    double best_backlog = 0.0;
    for (int k = 0; k < static_cast<int>(engine.node_count()); ++k) {
      if (!engine.node_up(k) || engine.node_speed_factor(k) < 1.0) continue;
      if (!engine.cluster()
               .node(static_cast<std::size_t>(k))
               .capacity.fits(engine.task_info(g).demand))
        continue;
      if (best < 0 || engine.node_backlog_mi(k) < best_backlog) {
        best = k;
        best_backlog = engine.node_backlog_mi(k);
      }
    }
    return best;
  };

  // Expected completion of `g` if (re)started on `node` behind its
  // current backlog.
  auto estimate_s = [&engine](Gid g, int node) {
    const double rate = engine.node_rate(node);
    const int slots =
        engine.cluster().node(static_cast<std::size_t>(node)).slots;
    const double queue_s =
        engine.node_backlog_mi(node) / (rate * std::max(1, slots));
    return queue_s + engine.remaining_mi(g) / rate;
  };

  for (int node = 0; node < static_cast<int>(engine.node_count()); ++node) {
    if (!engine.node_up(node)) continue;
    if (engine.node_speed_factor(node) >= params_.straggler_threshold) continue;
    // Vacate only when it pays: a migrated task must be expected to finish
    // meaningfully sooner on the destination than if left crawling here —
    // under cluster-wide saturation every node is equally backlogged and
    // migration would just add checkpoint/requeue overhead.
    const std::vector<Gid> running = engine.running(node);
    for (Gid g : running) {
      if (engine.state(g) != TaskState::kRunning) continue;
      const int dst = pick_destination(g);
      if (dst < 0) continue;
      const double stay_s =
          engine.remaining_mi(g) / engine.node_rate(node);
      if (estimate_s(g, dst) < 0.7 * stay_s) {
        engine.evict_running(g);
        engine.migrate_task(g, dst);
      }
    }
    const std::vector<Gid> waiting = engine.waiting(node);
    for (Gid g : waiting) {
      const TaskState s = engine.state(g);
      if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
      const int dst = pick_destination(g);
      if (dst < 0) continue;
      if (estimate_s(g, dst) < 0.7 * estimate_s(g, node))
        engine.migrate_task(g, dst);
    }
  }
}

void DspPreemption::adapt_delta(std::uint64_t considered,
                                std::uint64_t preempted) {
  if (considered == 0) return;
  const double fraction =
      static_cast<double>(preempted) / static_cast<double>(considered);
  if (fraction > params_.delta_grow_above) {
    delta_ = std::min(params_.delta_max, delta_ * 1.2);
  } else if (fraction < params_.delta_shrink_below) {
    delta_ = std::max(params_.delta_min, delta_ * 0.85);
  }
}

}  // namespace dsp
