#include "core/preemption.h"

#include <algorithm>
#include <cmath>

#include "util/env.h"
#include "util/log.h"

namespace dsp {

ThreadPool* DspPreemption::pool() {
  if (resolved_threads_ == 0) {
    // env_int_min warns and clamps on malformed / zero / negative
    // DSP_THREADS values instead of silently falling through.
    const std::int64_t want = params_.threads > 0
                                  ? params_.threads
                                  : env_int_min("DSP_THREADS", 1, 1);
    resolved_threads_ = static_cast<int>(want);
    if (resolved_threads_ > 1)
      pool_ = std::make_unique<ThreadPool>(
          static_cast<unsigned>(resolved_threads_));
  }
  return pool_.get();
}

void DspPreemption::collect_preemptable(const Engine& engine, int node,
                                        std::vector<Gid>& out) const {
  // Preemptable running tasks: suspending them for up to an epoch still
  // leaves enough allowable waiting time to meet their deadline.
  for (Gid r : engine.running(node))
    if (engine.allowable_waiting_time(r) > engine.params().epoch)
      out.push_back(r);
  std::sort(out.begin(), out.end(), [this](Gid a, Gid b) {
    return prio_at(a) != prio_at(b) ? prio_at(a) < prio_at(b) : a < b;
  });
}

void DspPreemption::on_epoch(Engine& engine) {
  if (params_.straggler_mitigation) mitigate_stragglers(engine);

  ThreadPool* workers = pool();
  priority_.set_thread_pool(workers);
  const auto range = priority_.compute_all(engine, prio_);
  if (range.live_tasks == 0) return;
  const double pbar = range.mean_neighbor_gap();

  // Victim collection reads only engine state and prio_, so the per-node
  // scans fan out across the pool; the mutating passes below stay serial
  // in ascending node order, which keeps Algorithm-1 semantics and the
  // audit trail deterministic at any thread count.
  const std::size_t nodes = engine.node_count();
  victims_.resize(nodes);
  auto collect = [&](std::size_t k) {
    victims_[k].clear();  // dsp-tidy: allow(L003) chunk k owns slot k
    const auto node = static_cast<int>(k);
    if (engine.waiting(node).empty()) return;
    collect_preemptable(engine, node, victims_[k]);
  };
  if (workers != nullptr && nodes > 1) {
    workers->parallel_for(nodes, collect);
  } else {
    for (std::size_t k = 0; k < nodes; ++k) collect(k);
  }

  std::uint64_t considered = 0, preempted = 0;
  for (std::size_t k = 0; k < nodes; ++k) {
    std::vector<Gid>& preemptable = victims_[k];
    if (preemptable.empty()) continue;
    const auto node = static_cast<int>(k);
    urgent_pass(engine, node, preemptable, pbar);
    const auto [c, p] = window_pass(engine, node, preemptable, pbar);
    considered += c;
    preempted += p;
  }
  if (params_.adaptive_delta) {
    const double before = delta_;
    adapt_delta(considered, preempted);
    // adapt_delta either leaves delta_ untouched or assigns a freshly
    // computed value; exact inequality is the intended "did it change"
    // test, not a tolerance question.
    if (delta_ != before)  // dsp-tidy: allow(V003)
      engine.emit_event({.kind = obs::EventKind::kDeltaAdapt,
                         .a = before,
                         .b = delta_});
  }
}

obs::PreemptDecision DspPreemption::make_decision(int node, Gid w) const {
  obs::PreemptDecision d;
  d.node = node;
  d.candidate = w;
  d.candidate_priority = prio_at(w);
  d.rho = params_.rho;
  d.delta = delta_;
  d.epsilon = params_.epsilon;
  d.tau = params_.tau;
  d.pp = params_.normalized_pp;
  return d;
}

void DspPreemption::urgent_pass(Engine& engine, int node,
                                std::vector<Gid>& preemptable, double pbar) {
  // Snapshot into the reusable buffer: try_preempt mutates the waiting
  // queue, and a fresh vector per node per epoch is allocator churn.
  engine.waiting_snapshot(node, waiting_scratch_);
  for (Gid w : waiting_scratch_) {
    const TaskState s = engine.state(w);
    if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
    if (!engine.is_ready(w)) continue;  // DSP never launches unready tasks
    // Urgent: the deadline is close (t^a <= epsilon) but still salvageable
    // (t^a >= 0) — preempting for a task that can no longer meet its
    // deadline buys nothing — or the task has waited beyond tau.
    const SimTime t_a = engine.allowable_waiting_time(w);
    const bool urgent = (t_a <= params_.epsilon && t_a >= 0) ||
                        engine.waiting_time(w) >= params_.tau;
    if (!urgent) continue;
    obs::PreemptDecision d = make_decision(node, w);
    d.urgent = true;
    bool dep_blocked = false;
    // Lowest-priority victim the urgent task does not depend on (C2),
    // ignoring C1 and the PP gap.
    for (auto it = preemptable.begin(); it != preemptable.end(); ++it) {
      const Gid v = *it;
      if (engine.state(v) != TaskState::kRunning) continue;
      if (engine.depends_on(w, v)) {
        dep_blocked = true;
        continue;
      }
      const PreemptResult res = engine.try_preempt(node, v, w);
      if (res == PreemptResult::kOk) {
        d.outcome = obs::PreemptOutcome::kFired;
        d.victim = v;
        d.victim_priority = prio_at(v);
        if (pbar > 0.0) d.normalized_gap = (prio_at(w) - prio_at(v)) / pbar;
        preemptable.erase(it);
        break;
      }
      if (res == PreemptResult::kIncomingNotReady) break;  // defensive
      // kNoResources: try the next victim.
    }
    if (d.outcome != obs::PreemptOutcome::kFired)
      d.outcome = dep_blocked ? obs::PreemptOutcome::kBlockedByDependency
                              : obs::PreemptOutcome::kNoVictim;
    engine.record_preempt_decision(d);
  }
}

std::pair<std::uint64_t, std::uint64_t> DspPreemption::window_pass(
    Engine& engine, int node, std::vector<Gid>& preemptable, double pbar) {
  engine.waiting_snapshot(node, waiting_scratch_);  // reusable snapshot
  const auto window = static_cast<std::size_t>(
      std::ceil(delta_ * static_cast<double>(waiting_scratch_.size())));
  std::uint64_t considered = 0, preempted = 0;

  for (std::size_t i = 0; i < waiting_scratch_.size() && i < window; ++i) {
    const Gid w = waiting_scratch_[i];
    const TaskState s = engine.state(w);
    if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
    if (!engine.is_ready(w)) continue;
    ++considered;

    obs::PreemptDecision d = make_decision(node, w);
    bool dep_blocked = false;
    // Victims in ascending priority: the first one passing all conditions
    // is the cheapest to displace.
    for (auto it = preemptable.begin(); it != preemptable.end();) {
      const Gid v = *it;
      if (engine.state(v) != TaskState::kRunning) {
        it = preemptable.erase(it);  // finished/preempted since sorting
        continue;
      }
      // C1: higher priority required. Victims are sorted ascending, so no
      // later victim can satisfy C1 either.
      if (prio_at(w) <= prio_at(v)) break;
      // C2: never preempt a task the waiting task depends on.
      if (engine.depends_on(w, v)) {
        dep_blocked = true;
        ++it;
        continue;
      }
      // PP: the priority gap must exceed rho times the global mean
      // neighbor gap, or the context-switch cost outweighs the gain.
      if (params_.normalized_pp && pbar > 0.0) {
        const double gap = prio_at(w) - prio_at(v);
        if (gap / pbar <= params_.rho) {
          d.outcome = obs::PreemptOutcome::kSuppressedPP;
          d.victim = v;
          d.victim_priority = prio_at(v);
          d.normalized_gap = gap / pbar;
          break;  // later victims have higher priority -> smaller gaps
        }
      }
      const PreemptResult res = engine.try_preempt(node, v, w);
      if (res == PreemptResult::kOk) {
        ++preempted;
        d.outcome = obs::PreemptOutcome::kFired;
        d.victim = v;
        d.victim_priority = prio_at(v);
        if (pbar > 0.0) d.normalized_gap = (prio_at(w) - prio_at(v)) / pbar;
        preemptable.erase(it);
        break;
      }
      if (res == PreemptResult::kNoResources) {
        ++it;  // try a higher-priority victim with a larger reservation
        continue;
      }
      break;  // not-ready/invalid: stop trying for this waiting task
    }
    if (d.outcome != obs::PreemptOutcome::kFired &&
        d.outcome != obs::PreemptOutcome::kSuppressedPP) {
      d.outcome = dep_blocked ? obs::PreemptOutcome::kBlockedByDependency
                              : obs::PreemptOutcome::kNoVictim;
    }
    engine.record_preempt_decision(d);
  }
  return {considered, preempted};
}

void DspPreemption::mitigate_stragglers(Engine& engine) const {
  // Healthy destination: the fastest up node at nominal speed with the
  // smallest backlog. Recomputed per migration batch (cheap: node counts
  // are small).
  auto pick_destination = [&engine](Gid g) {
    int best = -1;
    double best_backlog = 0.0;
    for (int k = 0; k < static_cast<int>(engine.node_count()); ++k) {
      if (!engine.node_up(k) || engine.node_speed_factor(k) < 1.0) continue;
      if (!engine.cluster()
               .node(static_cast<std::size_t>(k))
               .capacity.fits(engine.task_info(g).demand))
        continue;
      if (best < 0 || engine.node_backlog_mi(k) < best_backlog) {
        best = k;
        best_backlog = engine.node_backlog_mi(k);
      }
    }
    return best;
  };

  // Expected completion of `g` if (re)started on `node` behind its
  // current backlog.
  auto estimate_s = [&engine](Gid g, int node) {
    const double rate = engine.node_rate(node);
    const int slots =
        engine.cluster().node(static_cast<std::size_t>(node)).slots;
    const double queue_s =
        engine.node_backlog_mi(node) / (rate * std::max(1, slots));
    return queue_s + engine.remaining_mi(g) / rate;
  };

  for (int node = 0; node < static_cast<int>(engine.node_count()); ++node) {
    if (!engine.node_up(node)) continue;
    if (engine.node_speed_factor(node) >= params_.straggler_threshold) continue;
    // Vacate only when it pays: a migrated task must be expected to finish
    // meaningfully sooner on the destination than if left crawling here —
    // under cluster-wide saturation every node is equally backlogged and
    // migration would just add checkpoint/requeue overhead.
    const std::vector<Gid> running = engine.running(node);
    for (Gid g : running) {
      if (engine.state(g) != TaskState::kRunning) continue;
      const int dst = pick_destination(g);
      if (dst < 0) continue;
      const double stay_s =
          engine.remaining_mi(g) / engine.node_rate(node);
      if (estimate_s(g, dst) < 0.7 * stay_s) {
        engine.evict_running(g);
        engine.migrate_task(g, dst);
      }
    }
    const std::vector<Gid> waiting = engine.waiting(node);
    for (Gid g : waiting) {
      const TaskState s = engine.state(g);
      if (s != TaskState::kWaiting && s != TaskState::kSuspended) continue;
      const int dst = pick_destination(g);
      if (dst < 0) continue;
      if (estimate_s(g, dst) < 0.7 * estimate_s(g, node))
        engine.migrate_task(g, dst);
    }
  }
}

void DspPreemption::adapt_delta(std::uint64_t considered,
                                std::uint64_t preempted) {
  if (considered == 0) return;
  const double fraction =
      static_cast<double>(preempted) / static_cast<double>(considered);
  if (fraction > params_.delta_grow_above) {
    delta_ = std::min(params_.delta_max, delta_ * 1.2);
  } else if (fraction < params_.delta_shrink_below) {
    delta_ = std::max(params_.delta_min, delta_ * 0.85);
  }
}

}  // namespace dsp
