// Dependency-aware task priority (paper §IV-A, Formulas 12 and 13).
//
// A task with no unfinished dependents gets the leaf priority
//   P = omega1 * 1/t_rem + omega2 * t_w + omega3 * t_a        (Formula 13)
// and an internal task aggregates its children recursively
//   P = sum_{children} (gamma + 1) * P_child                  (Formula 12)
// so tasks whose completion unlocks more downstream work — especially at
// higher DAG levels — carry higher priority (the T_11 > T_6 > T_1 ordering
// of Fig. 3).
//
// compute_all is incremental: each job's priorities are recomputed only
// when the engine's per-job version counter moved or simulated time
// advanced (t^w/t^a are time-varying), each recompute walks only the
// job's live reverse-topological suffix (Engine::live_reverse_topo), and
// when a ThreadPool is attached the per-job recomputes fan out across it.
// Jobs are independent and the merge runs serially in job order, so the
// result is bit-identical with and without threads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "sim/engine.h"

namespace dsp {

class ThreadPool;

/// Computes Formula 12/13 priorities against live engine state.
class DependencyPriority {
 public:
  explicit DependencyPriority(const DspParams& params) : params_(params) {}

  /// Leaf priority (Formula 13) from the task's current remaining time,
  /// waiting time and allowable waiting time. Times in seconds; remaining
  /// time is clamped to >= 1 ms so 1/t_rem stays bounded.
  double leaf_priority(const Engine& engine, Gid g) const;

  /// Min/max priority over live (waiting/running/suspended/hoarding)
  /// tasks plus their count, from which the PP normalizer P-bar is
  /// derived.
  struct Range {
    double min_p = 0.0;
    double max_p = 0.0;
    std::size_t live_tasks = 0;

    /// Mean gap between neighbouring priorities in the sorted order:
    /// exactly (max - min) / (n - 1), no sort required.
    double mean_neighbor_gap() const {
      return live_tasks > 1 ? (max_p - min_p) / static_cast<double>(live_tasks - 1)
                            : 0.0;
    }
  };

  /// Recomputes priorities for every unfinished task of `job` into
  /// `out[gid]` (out must be sized to engine.total_task_count()). One
  /// pass over the job's cached live reverse-topological order (children
  /// before parents); the job's finished tasks read 0. Returns the job's
  /// live Range.
  Range compute_job(const Engine& engine, JobId job,
                    std::vector<double>& out) const;

  /// Computes priorities for all unfinished tasks of all scheduled,
  /// unfinished jobs into `out` (resized to the gid domain) and returns
  /// the global live Range. Incremental: clean jobs reuse their stored
  /// values and Range; dirty jobs recompute, in parallel when a pool is
  /// attached via set_thread_pool.
  Range compute_all(const Engine& engine, std::vector<double>& out) const;

  /// Attaches (or detaches, with nullptr) the worker pool used to fan
  /// out per-job recomputes. Results are bit-identical either way.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Drops all incremental state; the next compute_all recomputes every
  /// job from scratch (the serial full-recompute reference path).
  void invalidate() const { cache_engine_ = nullptr; }

 private:
  const DspParams& params_;
  ThreadPool* pool_ = nullptr;

  // Incremental-state cache, keyed to one engine instance. Rebuilt from
  // scratch whenever compute_all sees a different engine (or a resized
  // job set) than the previous call.
  mutable const Engine* cache_engine_ = nullptr;
  mutable SimTime cache_now_ = kNoTime;
  mutable std::vector<std::uint64_t> job_version_;  // last computed version
  mutable std::vector<Range> job_range_;            // last computed range
  mutable std::vector<JobId> dirty_jobs_;           // scratch per call
};

}  // namespace dsp
