// Dependency-aware task priority (paper §IV-A, Formulas 12 and 13).
//
// A task with no unfinished dependents gets the leaf priority
//   P = omega1 * 1/t_rem + omega2 * t_w + omega3 * t_a        (Formula 13)
// and an internal task aggregates its children recursively
//   P = sum_{children} (gamma + 1) * P_child                  (Formula 12)
// so tasks whose completion unlocks more downstream work — especially at
// higher DAG levels — carry higher priority (the T_11 > T_6 > T_1 ordering
// of Fig. 3).
#pragma once

#include <vector>

#include "core/params.h"
#include "sim/engine.h"

namespace dsp {

/// Computes Formula 12/13 priorities against live engine state.
class DependencyPriority {
 public:
  explicit DependencyPriority(const DspParams& params) : params_(params) {}

  /// Leaf priority (Formula 13) from the task's current remaining time,
  /// waiting time and allowable waiting time. Times in seconds; remaining
  /// time is clamped to >= 1 ms so 1/t_rem stays bounded.
  double leaf_priority(const Engine& engine, Gid g) const;

  /// Computes priorities for every unfinished task of `job` into
  /// `out[gid]` (out must be sized to engine.total_task_count()).
  /// One reverse-topological pass: children before parents.
  void compute_job(const Engine& engine, JobId job, std::vector<double>& out) const;

  /// Computes priorities for all unfinished tasks of all scheduled,
  /// unfinished jobs. Returns via `out`, and reports the min/max priority
  /// over live (waiting/running/suspended) tasks plus their count, from
  /// which the PP normalizer P-bar is derived.
  struct Range {
    double min_p = 0.0;
    double max_p = 0.0;
    std::size_t live_tasks = 0;

    /// Mean gap between neighbouring priorities in the sorted order:
    /// exactly (max - min) / (n - 1), no sort required.
    double mean_neighbor_gap() const {
      return live_tasks > 1 ? (max_p - min_p) / static_cast<double>(live_tasks - 1)
                            : 0.0;
    }
  };
  Range compute_all(const Engine& engine, std::vector<double>& out) const;

 private:
  const DspParams& params_;
};

}  // namespace dsp
