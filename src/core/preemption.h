// DSP's online dependency-aware preemption (paper §IV, Algorithm 1).
//
// Each epoch, per node:
//   1. *Urgent* waiting tasks — allowable waiting time t^a <= epsilon, or
//      waiting time t^w >= tau — preempt the lowest-priority preemptable
//      running task they do not depend on, regardless of condition C1.
//   2. The first ceil(delta * |queue|) waiting tasks (the *preempting
//      tasks*) each scan the preemptable running tasks in ascending
//      priority and preempt the first victim satisfying
//        C1: waiting priority > running priority,
//        C2: the waiting task does not depend on the victim,
//      and — when normalized-priority preemption (PP) is enabled — the
//      gap check  P-hat / P-bar > rho, where P-bar is the mean
//      neighbor gap of the global sorted priority sequence. PP suppresses
//      churn preemptions whose context-switch cost outweighs the gain.
//
// Preemptable running tasks are those whose allowable waiting time exceeds
// the epoch, so being suspended cannot make them miss their deadline.
// delta adapts each epoch to the fraction of considered tasks that
// actually preempted (§IV-B).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.h"
#include "core/priority.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "util/thread_pool.h"

namespace dsp {

/// DSP's preemption policy (set params.normalized_pp = false for the
/// paper's DSPW/oPP ablation variant).
class DspPreemption : public PreemptionPolicy {
 public:
  explicit DspPreemption(DspParams params = {})
      : params_(params), priority_(params_), delta_(params_.delta) {}

  const char* name() const override {
    return params_.normalized_pp ? "DSP" : "DSPW/oPP";
  }

  CheckpointMode checkpoint_mode() const override {
    return CheckpointMode::kCheckpoint;
  }

  void on_epoch(Engine& engine) override;

  /// Current (possibly adapted) delta window.
  double current_delta() const { return delta_; }

  const DspParams& params() const { return params_; }

 private:
  void urgent_pass(Engine& engine, int node, std::vector<Gid>& preemptable,
                   double pbar);
  /// Returns {considered, preempted} counts for the adaptive controller.
  std::pair<std::uint64_t, std::uint64_t> window_pass(
      Engine& engine, int node, std::vector<Gid>& preemptable, double pbar);
  /// Seeds an audit record for candidate `w` with the parameters in
  /// effect (rho/epsilon/tau and the current adapted delta).
  obs::PreemptDecision make_decision(int node, Gid w) const;
  void adapt_delta(std::uint64_t considered, std::uint64_t preempted);
  /// Straggler mitigation: vacate degraded nodes and migrate their work.
  void mitigate_stragglers(Engine& engine) const;

  /// Bounds-checked priority lookup: every gid handed to the passes must
  /// be covered by the compute_all vector sized at the top of on_epoch.
  double prio_at(Gid g) const {
    assert(g < prio_.size());
    return prio_[g];
  }

  /// Collects `node`'s preemptable running tasks (allowable waiting time
  /// beyond the epoch) into `out`, sorted ascending by priority. Reads
  /// engine and prio_ only — safe to fan out across nodes.
  void collect_preemptable(const Engine& engine, int node,
                           std::vector<Gid>& out) const;

  /// Lazily resolves params_.threads (<= 0 reads DSP_THREADS, default 1)
  /// and spins up the worker pool; nullptr when running serial.
  ThreadPool* pool();

  DspParams params_;
  DependencyPriority priority_;
  std::vector<double> prio_;  // scratch, indexed by gid
  std::vector<std::vector<Gid>> victims_;  // per-node scratch
  std::vector<Gid> waiting_scratch_;       // per-pass snapshot buffer
  int resolved_threads_ = 0;  // 0 = not yet resolved
  std::unique_ptr<ThreadPool> pool_;
  double delta_;
};

}  // namespace dsp
