// DSP's online dependency-aware preemption (paper §IV, Algorithm 1).
//
// Each epoch, per node:
//   1. *Urgent* waiting tasks — allowable waiting time t^a <= epsilon, or
//      waiting time t^w >= tau — preempt the lowest-priority preemptable
//      running task they do not depend on, regardless of condition C1.
//   2. The first ceil(delta * |queue|) waiting tasks (the *preempting
//      tasks*) each scan the preemptable running tasks in ascending
//      priority and preempt the first victim satisfying
//        C1: waiting priority > running priority,
//        C2: the waiting task does not depend on the victim,
//      and — when normalized-priority preemption (PP) is enabled — the
//      gap check  P-hat / P-bar > rho, where P-bar is the mean
//      neighbor gap of the global sorted priority sequence. PP suppresses
//      churn preemptions whose context-switch cost outweighs the gain.
//
// Preemptable running tasks are those whose allowable waiting time exceeds
// the epoch, so being suspended cannot make them miss their deadline.
// delta adapts each epoch to the fraction of considered tasks that
// actually preempted (§IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "core/priority.h"
#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp {

/// DSP's preemption policy (set params.normalized_pp = false for the
/// paper's DSPW/oPP ablation variant).
class DspPreemption : public PreemptionPolicy {
 public:
  explicit DspPreemption(DspParams params = {})
      : params_(params), priority_(params_), delta_(params_.delta) {}

  const char* name() const override {
    return params_.normalized_pp ? "DSP" : "DSPW/oPP";
  }

  CheckpointMode checkpoint_mode() const override {
    return CheckpointMode::kCheckpoint;
  }

  void on_epoch(Engine& engine) override;

  /// Current (possibly adapted) delta window.
  double current_delta() const { return delta_; }

  const DspParams& params() const { return params_; }

 private:
  void urgent_pass(Engine& engine, int node, std::vector<Gid>& preemptable,
                   double pbar) const;
  /// Returns {considered, preempted} counts for the adaptive controller.
  std::pair<std::uint64_t, std::uint64_t> window_pass(
      Engine& engine, int node, std::vector<Gid>& preemptable,
      double pbar) const;
  /// Seeds an audit record for candidate `w` with the parameters in
  /// effect (rho/epsilon/tau and the current adapted delta).
  obs::PreemptDecision make_decision(int node, Gid w) const;
  void adapt_delta(std::uint64_t considered, std::uint64_t preempted);
  /// Straggler mitigation: vacate degraded nodes and migrate their work.
  void mitigate_stragglers(Engine& engine) const;

  DspParams params_;
  DependencyPriority priority_;
  std::vector<double> prio_;  // scratch, indexed by gid
  double delta_;
};

}  // namespace dsp
