// dsp-dataflow: value-range and taint rules over per-function CFGs
// (dsp_tidy --dataflow).
//
// For every function in a CppIndex a control-flow graph is built
// (cfg.h), the interval and taint domains (domains.h) are run to a
// widened fixpoint (dataflow.h), and the V/T rule families are checked
// by re-walking each reachable block's statements under the solved
// entry states:
//   V000 div-by-witnessed-zero   — divisor interval carries a zero
//                                  witness (a hard zero on a real path).
//   V001 unsigned-sub-wrap       — unsigned a - b with refined ranges
//                                  admitting a < b.
//   V002 narrowing-cast-overflow — cast target cannot hold the analyzed
//                                  range.
//   V003 float-equality          — == / != on floating operands.
//   V004 shift-out-of-range      — shift amount reaches the operand
//                                  width, or can be negative.
//   V005 loop-counter-narrow     — 32-bit counter vs 64-bit bound that
//                                  exceeds INT32_MAX.
//   T000 tainted-index           — untrusted value subscripts an array.
//   T001 tainted-loop-bound      — untrusted value bounds a loop.
//   T002 tainted-alloc-size      — untrusted value sizes an allocation.
//   T003 env-unvalidated         — env_int/env_double knob used with no
//                                  clamp or comparison guard.
//
// Calls are summarized interprocedurally through IntervalOracle: the
// return expressions of same-named indexed functions are evaluated
// under a fresh boundary state (memoized, depth-capped), which is how a
// `return xs.empty() ? 0.0 : sum / n;` helper propagates its zero
// witness into callers. `dsp-tidy: allow(ID)` on the finding line
// suppresses it, same as every other dsp_tidy family.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/cpp_index.h"
#include "analysis/cpp_lex.h"
#include "analysis/diagnostics.h"

namespace dsp::analysis {

/// Runs the V/T rules over an already-populated index. `lines_by_file`
/// must hold the lexed lines of every file the index covers (keyed by
/// the same path the index was fed). Calls index.finalize() itself.
void analyze_value_index(
    CppIndex& index,
    const std::map<std::string, std::vector<Line>>& lines_by_file,
    Report& report);

/// Reads and indexes `files`, then runs the V/T rules. Returns false and
/// sets `error` when a file cannot be read.
bool analyze_value_files(const std::vector<std::string>& files, Report& report,
                         std::string* error = nullptr);

}  // namespace dsp::analysis
