// Lightweight C++ symbol index for the dsp-flow interprocedural analysis.
//
// This is a lexical indexer built on cpp_lex's stripped token stream, not
// a compiler front end: it recovers the facts the lock-flow and
// determinism-flow rules need — function definitions (including lambdas
// assigned to variables, which is how parallel_for callbacks are written
// in this codebase), call sites with argument text, RAII lock regions
// (MutexLock / scoped_lock / lock_guard / unique_lock plus manual
// .lock()/.unlock()), DSP_REQUIRES/DSP_GUARDED_BY annotations, class
// member declarations with their type text (used to narrow method-call
// resolution), blocking-I/O and nondeterminism sinks, and writes to
// member state (trailing-underscore naming convention).
//
// Identity model: locks and written members are plain strings, qualified
// as "Class::name" when the name follows the member convention inside a
// class context and left bare otherwise (file-scope mutexes in
// fixtures). Known soundness limits (function pointers, virtual
// dispatch, writes through local references) are documented in
// DESIGN.md §13.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cpp_lex.h"

namespace dsp::analysis {

/// One call site inside a function body.
struct CallSite {
  std::string name;    ///< Simple callee name ("parallel_for").
  std::string object;  ///< Receiver text ("pool_", "cv_", "" for free calls).
  bool this_call = false;  ///< No receiver or explicit this-> (same object).
  std::vector<std::string> args;  ///< Top-level argument texts (normalized).
  int line = 0;
  std::vector<std::string> held;  ///< Qualified lock ids held at the site.
};

/// One lock acquisition (RAII declaration or manual .lock()).
struct LockAcq {
  std::string lock;  ///< Qualified lock id ("EventLog::mu_", "mu_a").
  int line = 0;
  std::vector<std::string> held_before;  ///< Locks already held.
};

/// A blocking-I/O or nondeterminism token occurrence.
struct SinkSite {
  std::string token;  ///< Matched token, compacted ("fopen(", "time(").
  int line = 0;
};

/// A write to member-convention state (name ending in '_').
struct WriteSite {
  std::string member;  ///< Qualified target ("Worker::counts_").
  int line = 0;
  bool under_lock = false;  ///< Some lock was held at the write.
};

/// A ThreadPool::parallel_for fan-out site.
struct ParallelForSite {
  std::string callback;  ///< Second-argument text (lambda variable name).
  int line = 0;
};

/// One indexed function (or variable-assigned lambda, which the flow
/// rules treat as a function whose caller is the pool).
struct FunctionInfo {
  std::string file;
  std::string cls;   ///< Enclosing class, "" for free functions.
  std::string name;  ///< Simple name; lambdas use their variable name.
  std::string qual;  ///< "cls::name" or "name"; lambdas "parent::name".
  int begin_line = 0;
  int end_line = 0;
  bool is_lambda = false;
  std::string parent;  ///< Enclosing function qual for lambdas, else "".
  std::vector<std::string> params;          ///< Parameter names, in order.
  std::vector<std::string> requires_locks;  ///< DSP_REQUIRES arguments.

  std::vector<CallSite> calls;
  std::vector<LockAcq> acquisitions;
  std::vector<SinkSite> io_sites;      ///< Empty for whitelisted emit paths.
  std::vector<SinkSite> nondet_sites;  ///< Wall clock / libc random / unordered.
  std::vector<WriteSite> member_writes;
  std::vector<ParallelForSite> parallel_fors;
};

/// Whole-program index over every scanned file.
struct CppIndex {
  std::vector<FunctionInfo> functions;

  /// Simple name -> indices into `functions` (built by finalize()).
  std::map<std::string, std::vector<int>> by_name;

  /// (class, member) -> declared type text, for receiver-type narrowing.
  std::map<std::pair<std::string, std::string>, std::string> member_types;

  /// Members carrying DSP_GUARDED_BY/DSP_PT_GUARDED_BY or an atomic /
  /// thread_local type, keyed "Class::member"; `guarded_bare` holds the
  /// unqualified names as a fallback for cross-file lookups.
  std::set<std::string> guarded_members;
  std::set<std::string> guarded_bare;

  /// file -> line -> suppressed rule ids (dsp-tidy: allow(...)).
  std::map<std::string, std::map<int, std::vector<std::string>>> allows;

  /// DSP_REQUIRES seen on declarations (headers), merged into matching
  /// definitions by finalize(): "cls::name" -> lock args.
  std::map<std::string, std::vector<std::string>> decl_requires;

  /// True when a rule id is suppressed on `file`:`line`.
  bool allowed_at(const std::string& file, int line,
                  std::string_view rule) const;

  /// Builds by_name, merges declaration annotations into definitions,
  /// and resolves lambda callback names. Call once after indexing every
  /// file.
  void finalize();
};

/// Indexes one file's contents into `index`. `path` is used for finding
/// subjects and rule scoping.
void index_source(std::string_view path, std::string_view text,
                  CppIndex& index);

/// Same indexing over pre-lexed lines (shared SourceCache — lex once,
/// index once, analyze in every mode).
void index_source_lines(std::string_view path, const std::vector<Line>& lines,
                        CppIndex& index);

/// Reads `path` from disk and indexes it. Returns false (and sets
/// `error` when non-null) if the file cannot be read.
bool index_source_file(const std::string& path, CppIndex& index,
                       std::string* error = nullptr);

}  // namespace dsp::analysis
