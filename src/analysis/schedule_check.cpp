#include "analysis/schedule_check.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "obs/json.h"

namespace dsp::analysis {
namespace {

std::string task_subject(std::size_t t) { return "task " + std::to_string(t); }

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[192];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

double ScheduleDoc::completion_s(std::size_t t) const {
  const auto m = static_cast<std::size_t>(machine_of[t]);
  return start_s[t] + problem.tasks[t].size_mi / problem.machine_rates[m] +
         static_cast<double>(problem.tasks[t].n_preempt) * problem.recovery_s;
}

ScheduleDoc make_schedule_doc(const IlpProblem& problem,
                              const IlpScheduleResult& result) {
  ScheduleDoc doc;
  doc.problem = problem;
  doc.machine_of = result.machine_of;
  doc.start_s = result.start_s;
  doc.makespan_s = result.makespan_s;
  doc.has_makespan = result.ok();
  return doc;
}

bool read_schedule_json(std::istream& in, ScheduleDoc& out,
                        std::string* error) {
  auto fail = [error](std::string message) {
    if (error) *error = std::move(message);
    return false;
  };

  std::ostringstream buf;
  buf << in.rdbuf();
  obs::json::Value root;
  std::string parse_error;
  if (!obs::json::parse(buf.str(), root, &parse_error))
    return fail("invalid JSON: " + parse_error);

  const obs::json::Value* machines = root.find("machines");
  if (!machines || !machines->is_array() || machines->array.empty())
    return fail("missing or empty \"machines\" array");
  out.problem.machine_rates.clear();
  for (const auto& m : machines->array) {
    if (!m.is_number() || m.number <= 0.0)
      return fail("\"machines\" entries must be positive MIPS rates");
    out.problem.machine_rates.push_back(m.number);
  }

  if (const obs::json::Value* rec = root.find("recovery_s")) {
    if (!rec->is_number() || rec->number < 0.0)
      return fail("\"recovery_s\" must be a non-negative number");
    out.problem.recovery_s = rec->number;
  }
  out.has_makespan = false;
  if (const obs::json::Value* ms = root.find("makespan_s")) {
    if (!ms->is_number()) return fail("\"makespan_s\" must be a number");
    out.makespan_s = ms->number;
    out.has_makespan = true;
  }

  const obs::json::Value* tasks = root.find("tasks");
  if (!tasks || !tasks->is_array())
    return fail("missing \"tasks\" array");
  out.problem.tasks.clear();
  out.machine_of.clear();
  out.start_s.clear();
  for (std::size_t i = 0; i < tasks->array.size(); ++i) {
    const obs::json::Value& t = tasks->array[i];
    const std::string at = "task " + std::to_string(i) + ": ";
    if (!t.is_object()) return fail(at + "not an object");
    IlpTask task;
    const obs::json::Value* size = t.find("size_mi");
    if (!size || !size->is_number() || size->number <= 0.0)
      return fail(at + "missing or non-positive \"size_mi\"");
    task.size_mi = size->number;
    if (const obs::json::Value* d = t.find("deadline_s")) {
      if (!d->is_number()) return fail(at + "\"deadline_s\" must be a number");
      task.deadline_s = d->number;
    }
    if (const obs::json::Value* n = t.find("n_preempt")) {
      if (!n->is_number() || n->number < 0)
        return fail(at + "\"n_preempt\" must be a non-negative number");
      task.n_preempt = static_cast<int>(n->number);
    }
    if (const obs::json::Value* parents = t.find("parents")) {
      if (!parents->is_array())
        return fail(at + "\"parents\" must be an array");
      for (const auto& p : parents->array) {
        if (!p.is_number() || p.number < 0 ||
            p.number >= static_cast<double>(tasks->array.size()))
          return fail(at + "parent index out of range");
        task.parents.push_back(static_cast<int>(p.number));
      }
    }
    const obs::json::Value* machine = t.find("machine");
    const obs::json::Value* start = t.find("start_s");
    if (!machine || !machine->is_number())
      return fail(at + "missing \"machine\"");
    if (!start || !start->is_number())
      return fail(at + "missing \"start_s\"");
    out.problem.tasks.push_back(std::move(task));
    out.machine_of.push_back(static_cast<int>(machine->number));
    out.start_s.push_back(start->number);
  }
  return true;
}

bool read_schedule_json(const std::string& path, ScheduleDoc& out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open file: " + path;
    return false;
  }
  return read_schedule_json(in, out, error);
}

void write_schedule_json(std::ostream& out, const ScheduleDoc& doc) {
  char buf[64];
  out << "{\n  \"machines\": [";
  for (std::size_t m = 0; m < doc.problem.machine_rates.size(); ++m) {
    std::snprintf(buf, sizeof buf, "%s%.10g", m ? ", " : "",
                  doc.problem.machine_rates[m]);
    out << buf;
  }
  std::snprintf(buf, sizeof buf, "%.10g", doc.problem.recovery_s);
  out << "],\n  \"recovery_s\": " << buf;
  if (doc.has_makespan) {
    std::snprintf(buf, sizeof buf, "%.10g", doc.makespan_s);
    out << ",\n  \"makespan_s\": " << buf;
  }
  out << ",\n  \"tasks\": [";
  for (std::size_t t = 0; t < doc.problem.tasks.size(); ++t) {
    const IlpTask& task = doc.problem.tasks[t];
    out << (t ? ",\n    " : "\n    ");
    std::snprintf(buf, sizeof buf, "%.10g", task.size_mi);
    out << "{\"size_mi\": " << buf;
    if (std::isfinite(task.deadline_s)) {
      std::snprintf(buf, sizeof buf, "%.10g", task.deadline_s);
      out << ", \"deadline_s\": " << buf;
    }
    if (task.n_preempt > 0) out << ", \"n_preempt\": " << task.n_preempt;
    if (!task.parents.empty()) {
      out << ", \"parents\": [";
      for (std::size_t p = 0; p < task.parents.size(); ++p)
        out << (p ? ", " : "") << task.parents[p];
      out << ']';
    }
    out << ", \"machine\": "
        << (t < doc.machine_of.size() ? doc.machine_of[t] : -1);
    std::snprintf(buf, sizeof buf, "%.10g",
                  t < doc.start_s.size() ? doc.start_s[t] : -1.0);
    out << ", \"start_s\": " << buf << '}';
  }
  out << "\n  ]\n}\n";
}

void check_schedule(const ScheduleDoc& doc, const ScheduleCheckOptions& options,
                    Report& report) {
  const std::size_t T = doc.problem.tasks.size();
  const std::size_t M = doc.problem.machine_rates.size();
  const double tol = options.time_tol_s;

  // ---- S004: placement validity, constraints (9)-(11). -----------------
  std::vector<bool> placed(T, false);
  for (std::size_t t = 0; t < T; ++t) {
    const int m = t < doc.machine_of.size() ? doc.machine_of[t] : -1;
    const double start =
        t < doc.start_s.size() ? doc.start_s[t] : -1.0;
    if (m < 0 || static_cast<std::size_t>(m) >= M) {
      report.add("S004", task_subject(t),
                 "machine index " + std::to_string(m) + " is not in [0, " +
                     std::to_string(M) + ")");
      continue;
    }
    if (start < -tol || !std::isfinite(start)) {
      report.add("S004", task_subject(t),
                 fmt("start time %.6g s violates t_s >= 0 (constraint (11))",
                     start));
      continue;
    }
    placed[t] = true;
  }

  // ---- S001: precedence, constraint (7). -------------------------------
  for (std::size_t t = 0; t < T; ++t) {
    if (!placed[t]) continue;
    for (int parent : doc.problem.tasks[t].parents) {
      const auto p = static_cast<std::size_t>(parent);
      if (p >= T || !placed[p]) continue;  // reported by S004/parse
      const double parent_completion = doc.completion_s(p);
      if (doc.start_s[t] + tol < parent_completion) {
        report.add("S001", task_subject(t),
                   fmt("starts at %.6g s before parent completes at %.6g s",
                       doc.start_s[t], parent_completion) +
                       " (parent " + std::to_string(parent) + ")");
      }
    }
  }

  // ---- S002: per-machine non-overlap, constraints (5)/(8). -------------
  std::vector<std::vector<std::size_t>> by_machine(M);
  for (std::size_t t = 0; t < T; ++t)
    if (placed[t])
      by_machine[static_cast<std::size_t>(doc.machine_of[t])].push_back(t);
  for (std::size_t m = 0; m < M; ++m) {
    auto& tasks = by_machine[m];
    std::sort(tasks.begin(), tasks.end(), [&doc](std::size_t a, std::size_t b) {
      return doc.start_s[a] != doc.start_s[b] ? doc.start_s[a] < doc.start_s[b]
                                              : a < b;
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      const std::size_t prev = tasks[i - 1], cur = tasks[i];
      const double prev_completion = doc.completion_s(prev);
      if (doc.start_s[cur] + tol < prev_completion) {
        report.add("S002",
                   "machine " + std::to_string(m) + " tasks " +
                       std::to_string(prev) + "/" + std::to_string(cur),
                   fmt("task starts at %.6g s while the previous occupant "
                       "completes at %.6g s",
                       doc.start_s[cur], prev_completion));
      }
    }
  }

  // ---- S003: deadlines, constraint (6). --------------------------------
  for (std::size_t t = 0; t < T; ++t) {
    if (!placed[t]) continue;
    const double deadline = doc.problem.tasks[t].deadline_s;
    if (!std::isfinite(deadline)) continue;
    const double completion = doc.completion_s(t);
    if (completion > deadline + tol) {
      report.add("S003", task_subject(t),
                 fmt("completes at %.6g s, after its deadline %.6g s "
                     "(includes preemption padding)",
                     completion, deadline));
    }
  }

  // ---- S005: declared makespan covers every completion, constraint (4).
  if (doc.has_makespan) {
    for (std::size_t t = 0; t < T; ++t) {
      if (!placed[t]) continue;
      const double completion = doc.completion_s(t);
      if (completion > doc.makespan_s + tol) {
        report.add("S005", task_subject(t),
                   fmt("completes at %.6g s, beyond the declared makespan "
                       "L_MS = %.6g s",
                       completion, doc.makespan_s));
      }
    }
  }
}

}  // namespace dsp::analysis
