// Call graph and lock-set propagation over a CppIndex.
//
// Each indexed function gets a FunctionSummary: the locks its call tree
// can acquire, the I/O and nondeterminism sinks it can reach, and the
// unguarded member writes it can perform — each with one representative
// call chain as evidence. Summaries are computed by a memoized DFS with
// an on-stack cycle guard (recursive edges contribute nothing, which is
// the conservative choice for evidence chains).
//
// Call-site resolution is by simple name with receiver-type narrowing:
// when the receiver is a known class member, candidates whose class does
// not appear in the member's declared type text are dropped (so
// `cv_.wait(...)` on a std::condition_variable member never resolves to
// CondVar::wait). Unknown receivers keep every candidate — the analysis
// overapproximates rather than miss an edge.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/cpp_index.h"

namespace dsp::analysis {

/// One hop of an evidence chain, renderable as "file:line func: note".
struct ChainStep {
  std::string file;
  int line = 0;
  std::string func;  ///< Qualified name of the function the hop is in.
  std::string note;  ///< "calls Foo::bar", "acquires EventLog::mu_", ...
};
using Chain = std::vector<ChainStep>;

/// What a function's whole call tree can do.
struct FunctionSummary {
  struct LockInfo {
    Chain chain;  ///< This function down to the acquisition site.
    /// Every hop of the chain is a this-call, so the acquisition happens
    /// on the same object instance as the entry function's `this`.
    bool via_this = true;
  };
  /// Qualified lock id -> first chain that acquires it.
  std::map<std::string, LockInfo> acquires;

  struct SinkInfo {
    Chain chain;
    std::string token;
  };
  /// First reachable blocking/console-I/O sink, if any.
  std::vector<SinkInfo> io;
  /// Nondeterminism token -> first chain reaching it.
  std::map<std::string, SinkInfo> nondet;
  /// Unguarded, lock-free member write -> first chain reaching it.
  std::map<std::string, Chain> unguarded_writes;
};

class CallGraph {
 public:
  explicit CallGraph(const CppIndex& index);

  const CppIndex& index() const { return *index_; }

  /// Summary for functions[fn]; computed on first use, memoized after.
  const FunctionSummary& summary(int fn);

  /// Candidate callees for a call site inside `caller` (indices into
  /// index().functions). Empty when the callee is external or narrowed
  /// away.
  std::vector<int> resolve(const FunctionInfo& caller,
                           const CallSite& site) const;

  /// Resolves a parallel_for callback name to the lambda (or function)
  /// it denotes, preferring lambdas defined inside `caller`. -1 when
  /// unknown.
  int resolve_callback(const FunctionInfo& caller,
                       const std::string& name) const;

 private:
  void compute(int fn);

  const CppIndex* index_;
  std::vector<FunctionSummary> summaries_;
  std::vector<int> state_;  ///< 0 = new, 1 = in progress, 2 = done.
};

/// True when `member` ("Cls::m_" or bare) is covered by a
/// DSP_GUARDED_BY / atomic / thread_local declaration anywhere in the
/// index.
bool is_guarded_member(const CppIndex& index, const std::string& member);

/// Renders a chain as a single-line arrow path:
///   "f (a.cpp:3) -> g (a.cpp:9) -> acquires mu_b (a.cpp:15)".
std::string format_chain(const Chain& chain);

}  // namespace dsp::analysis
