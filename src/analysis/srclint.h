// Source-level lint of the repository's own C++ — the dsp-tidy half of
// the static rule engine (see rules.h families D* and C*).
//
// The engine promises bit-identical schedules, priorities and preemption
// decisions at any thread count. determinism_test checks that promise on
// sample runs; srclint enforces the source disciplines that make it hold
// by construction: no ambient randomness or wall clocks (D000-D002,
// D005), no hash-order iteration or stray threads in the hot path
// (D003-D004), and the concurrency/robustness conventions the codebase
// settled on — guarded globals, no I/O under a lock, RAII locking, no
// raw new/delete, asserted hot-path indexing, logging through util/log
// (C000-C005).
//
// This is a regex/line-level scanner, not a compiler plugin: comments,
// string literals and preprocessor lines are stripped before matching,
// so rule text in doc comments or log format strings never fires. A
// deliberate exception is silenced inline with
//     do_the_thing();  // dsp-tidy: allow(C005)
// which suppresses the named rule(s) on that line only.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/cpp_lex.h"
#include "analysis/diagnostics.h"

namespace dsp::analysis {

/// Scans one file's contents. `path` is used for the finding subjects
/// ("src/foo.cpp:42") and for rule scoping: D003/C003 apply only under
/// src/core and src/sim (plus out-of-tree fixtures), and per-rule
/// whitelists exempt the sanctioned homes of an operation (util/time for
/// clocks, util/thread_pool for threads, util/log for console I/O,
/// util/log and obs/events for the single-fwrite-under-own-mutex emit
/// paths C001 otherwise forbids).
void scan_source(std::string_view path, std::string_view text, Report& report);

/// Same scan over pre-lexed lines (shared SourceCache — lex once, scan
/// in every mode).
void scan_source_lines(std::string_view path, const std::vector<Line>& lines,
                       Report& report);

/// Reads `path` from disk and scans it. Returns false (and sets `error`
/// when non-null) if the file cannot be read; the report is unchanged.
bool scan_source_file(const std::string& path, Report& report,
                      std::string* error = nullptr);

/// Expands files and directories into the list of C++ sources to scan
/// (.h/.hh/.hpp/.cc/.cpp/.cxx; directories recurse). The result is
/// sorted so scan order — and therefore diagnostic order — is
/// deterministic. Returns false and sets `error` when a path does not
/// exist or cannot be traversed.
bool collect_sources(const std::vector<std::string>& paths,
                     std::vector<std::string>& out,
                     std::string* error = nullptr);

/// Expands a CMake compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS)
/// into the list of sources to scan: every entry's "file", plus the
/// same-stem header next to it when one exists (the compilation database
/// lists only translation units, but headers carry the thread-safety
/// annotations and inline bodies the analyses need). Sorted and deduped
/// like collect_sources. Returns false and sets `error` on unreadable or
/// malformed databases.
bool collect_sources_from_compdb(const std::string& compdb_path,
                                 std::vector<std::string>& out,
                                 std::string* error = nullptr);

}  // namespace dsp::analysis
