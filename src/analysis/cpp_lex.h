// Shared lexical front end of the source-level analyses (srclint's
// line rules and dsp-flow's interprocedural passes).
//
// Both scanners work on the same stripped view of a C++ file: comments,
// string/char literal bodies and raw strings are blanked to spaces (so
// rule text inside doc comments or format strings never matches),
// preprocessor lines are marked, and the comment text of each line is
// kept for `dsp-tidy: allow(ID)` suppression parsing. Factored out of
// srclint.cpp so cpp_index.cpp sees byte-identical token streams.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dsp::analysis {

/// One source line after lexical stripping.
struct Line {
  std::string code;     ///< Source with comments and literal bodies blanked.
  std::string comment;  ///< Comment text of the line (for allow() parsing).
  bool preprocessor = false;  ///< '#' directive or its '\'-continuation.
};

/// Splits `text` into lines, blanking comments, string/char literals
/// (including raw strings) and marking preprocessor lines. Blanked bytes
/// become spaces so column positions and brace counts stay meaningful.
std::vector<Line> lex_lines(std::string_view text);

/// Parses "dsp-tidy: allow(C005)" / "allow(C001, C004)" from a line's
/// comment text into the set of rule IDs suppressed on that line.
std::vector<std::string> parse_allows(const std::string& comment);

/// True when `id` is in the allow list.
bool allowed(const std::vector<std::string>& allows, std::string_view id);

/// Backslashes become forward slashes so path scoping is portable.
std::string normalize_path(std::string_view path);

/// True when `pat` occurs in `path` starting at a component boundary.
/// A pattern ending in '.' is a file-stem prefix ("util/thread_pool."
/// matches both the .h and the .cpp); otherwise the match must also end
/// at a component boundary, so "src" does not match "srclint".
bool path_has(const std::string& path, std::string_view pat);

/// Read-and-lex-once cache keyed by path. dsp_tidy's srclint, flow and
/// dataflow modes all consume the same stripped line stream; running a
/// three-mode scan through one SourceCache lexes each file exactly once
/// instead of once per mode.
class SourceCache {
 public:
  struct Entry {
    std::string text;
    std::vector<Line> lines;
    bool ok = false;
    std::string error;
  };

  /// Loads (or returns the cached) entry for `path`. Failures are cached
  /// too: `ok` is false and `error` says why. The reference stays valid
  /// for the cache's lifetime.
  const Entry& load_file(const std::string& path);

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace dsp::analysis
