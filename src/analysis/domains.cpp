#include "analysis/domains.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace dsp::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> toks;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) toks.push_back(tok);
  return toks;
}

bool is_ident_tok(const std::string& t) {
  if (t.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(t[0])) && t[0] != '_')
    return false;
  for (const char c : t)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  return true;
}

bool is_number_tok(const std::string& t) {
  return !t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) ||
                        (t[0] == '.' && t.size() > 1 &&
                         std::isdigit(static_cast<unsigned char>(t[1]))));
}

bool is_keyword(const std::string& t) {
  static const char* kw[] = {"if",     "else",   "while",  "for",    "do",
                             "switch", "case",   "return", "break",  "goto",
                             "new",    "delete", "sizeof", "struct", "class",
                             "using",  "typedef"};
  for (const char* k : kw)
    if (t == k) return true;
  return false;
}

bool is_builtin_type_tok(const std::string& t) {
  static const char* bt[] = {"unsigned", "signed", "long", "short",  "int",
                             "char",     "double", "float", "bool",  "void",
                             "wchar_t",  "auto"};
  for (const char* b : bt)
    if (t == b) return true;
  return false;
}

bool is_type_qualifier(const std::string& t) {
  return t == "const" || t == "constexpr" || t == "static" || t == "mutable" ||
         t == "volatile" || t == "inline" || t == "thread_local" ||
         t == "register";
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar types
// ---------------------------------------------------------------------------

const char* to_string(ValType t) {
  switch (t) {
    case ValType::kUnknown: return "unknown";
    case ValType::kBool: return "bool";
    case ValType::kInt32: return "int32";
    case ValType::kUInt32: return "uint32";
    case ValType::kInt64: return "int64";
    case ValType::kUInt64: return "uint64";
    case ValType::kFloat: return "float";
  }
  return "?";
}

bool is_integer(ValType t) {
  return t == ValType::kInt32 || t == ValType::kUInt32 ||
         t == ValType::kInt64 || t == ValType::kUInt64;
}

bool is_unsigned(ValType t) {
  return t == ValType::kUInt32 || t == ValType::kUInt64;
}

int bit_width(ValType t) {
  switch (t) {
    case ValType::kInt32:
    case ValType::kUInt32: return 32;
    case ValType::kInt64:
    case ValType::kUInt64: return 64;
    default: return 0;
  }
}

ValType parse_val_type(const std::vector<std::string>& type_toks) {
  bool saw_unsigned = false, saw_long = false, saw_longlong = false,
       saw_int = false, saw_short = false, saw_char = false;
  for (std::size_t i = 0; i < type_toks.size(); ++i) {
    const std::string& t = type_toks[i];
    if (t == "unsigned") saw_unsigned = true;
    else if (t == "long") (saw_long ? saw_longlong : saw_long) = true;
    else if (t == "int") saw_int = true;
    else if (t == "short") saw_short = true;
    else if (t == "char") saw_char = true;
    else if (t == "double" || t == "float") return ValType::kFloat;
    else if (t == "bool") return ValType::kBool;
    // Fixed-width / repo-specific aliases (with or without std::).
    else if (t == "int64_t" || t == "int64" || t == "ptrdiff_t" ||
             t == "ssize_t" || t == "SimTime" || t == "JobId" ||
             t == "intptr_t")
      return ValType::kInt64;
    else if (t == "uint64_t" || t == "uint64" || t == "size_t" ||
             t == "uintptr_t")
      return ValType::kUInt64;
    else if (t == "int32_t" || t == "int32" || t == "int16_t" ||
             t == "int8_t")
      return ValType::kInt32;
    else if (t == "uint32_t" || t == "uint32" || t == "uint16_t" ||
             t == "uint8_t" || t == "Gid" || t == "TaskIndex")
      return ValType::kUInt32;
  }
  if (saw_char || saw_short || saw_int || saw_long || saw_longlong ||
      saw_unsigned) {
    const bool w64 = saw_longlong || saw_long;
    if (saw_unsigned) return w64 ? ValType::kUInt64 : ValType::kUInt32;
    return w64 ? ValType::kInt64 : ValType::kInt32;
  }
  return ValType::kUnknown;
}

// ---------------------------------------------------------------------------
// Expression parser
// ---------------------------------------------------------------------------

namespace {

class ExprParser {
 public:
  ExprParser(const std::vector<std::string>& toks, int line)
      : t_(toks), line_(line) {}

  Expr parse_statement() {
    if (t_.empty()) return opaque("");
    if (t_[0] == "return") {
      pos_ = 1;
      Expr r = node(Expr::Kind::kReturn, "return");
      if (pos_ < t_.size()) r.kids.push_back(parse_assign());
      return r;
    }
    // Declaration attempt, with backtracking to an expression.
    const std::size_t save = pos_;
    Expr decl;
    if (try_parse_decl(decl)) return decl;
    pos_ = save;
    fail_ = false;
    Expr e = parse_assign();
    if (fail_) return opaque(joined());
    return e;
  }

 private:
  Expr node(Expr::Kind k, std::string op = {}) {
    Expr e;
    e.kind = k;
    e.op = std::move(op);
    e.line = line_;
    return e;
  }
  Expr opaque(std::string text) { return node(Expr::Kind::kOpaque, std::move(text)); }
  std::string joined() const {
    std::string out;
    for (const std::string& t : t_) {
      if (!out.empty()) out += ' ';
      out += t;
    }
    return out;
  }

  bool done() const { return pos_ >= t_.size(); }
  const std::string& peek(std::size_t ahead = 0) const {
    static const std::string kEnd;
    return pos_ + ahead < t_.size() ? t_[pos_ + ahead] : kEnd;
  }
  bool accept(const char* tok) {
    if (peek() == tok) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(const char* tok) {
    if (!accept(tok)) fail_ = true;
  }

  // ---- declarations -------------------------------------------------------

  /// Consumes a balanced template argument group starting at '<'.
  /// Returns false (position restored) when no balanced group closes
  /// before a statement boundary.
  bool try_consume_template_args(std::vector<std::string>* into) {
    const std::size_t save = pos_;
    if (!accept("<")) return false;
    int depth = 1;
    std::vector<std::string> collected{"<"};
    while (!done() && depth > 0) {
      const std::string& tok = peek();
      if (tok == ";") break;
      if (tok == "<") ++depth;
      else if (tok == ">") --depth;
      else if (tok == ">>") depth -= 2;
      collected.push_back(tok);
      ++pos_;
    }
    if (depth > 0) {
      pos_ = save;
      return false;
    }
    if (into != nullptr)
      into->insert(into->end(), collected.begin(), collected.end());
    return true;
  }

  /// type = qualifiers (builtin+ | ident-chain [<...>]) [*&]* — fills
  /// `type_toks` and returns true when the shape matches.
  bool try_parse_type(std::vector<std::string>& type_toks) {
    while (is_type_qualifier(peek())) {
      type_toks.push_back(peek());
      ++pos_;
    }
    if (is_builtin_type_tok(peek())) {
      while (is_builtin_type_tok(peek())) {
        type_toks.push_back(peek());
        ++pos_;
      }
    } else if (is_ident_tok(peek()) && !is_keyword(peek())) {
      type_toks.push_back(peek());
      ++pos_;
      while (peek() == "::" && is_ident_tok(peek(1))) {
        type_toks.push_back("::");
        type_toks.push_back(peek(1));
        pos_ += 2;
      }
      if (peek() == "<") {
        if (!try_consume_template_args(&type_toks)) return false;
      }
    } else {
      return false;
    }
    while (peek() == "*" || peek() == "&" || peek() == "&&" ||
           peek() == "const") {
      type_toks.push_back(peek());
      ++pos_;
    }
    return true;
  }

  bool try_parse_decl(Expr& out) {
    std::vector<std::string> type_toks;
    if (!try_parse_type(type_toks)) return false;
    if (!is_ident_tok(peek()) || is_keyword(peek())) return false;
    const std::string name = peek();
    ++pos_;
    const std::string& next = peek();
    if (!(done() || next == "=" || next == "(" || next == "{" || next == ","))
      return false;
    out = node(Expr::Kind::kDecl, name);
    out.decl_type = parse_val_type(type_toks);
    parse_declarator_init(out);
    while (accept(",")) {
      if (!is_ident_tok(peek())) break;
      Expr sib = node(Expr::Kind::kDecl, peek());
      sib.decl_type = out.decl_type;
      ++pos_;
      parse_declarator_init(sib);
      out.kids.push_back(std::move(sib));
      if (fail_) break;
    }
    return !fail_;
  }

  void parse_declarator_init(Expr& decl) {
    if (accept("=")) {
      decl.kids.push_back(parse_assign());
    } else if (peek() == "(" || peek() == "{") {
      const std::string close = peek() == "(" ? ")" : "}";
      ++pos_;
      if (peek() != close) {
        decl.kids.push_back(parse_assign());
        while (accept(",")) decl.kids.push_back(parse_assign());
      }
      expect(close.c_str());
    }
  }

  // ---- expressions --------------------------------------------------------

  static bool is_assign_op(const std::string& t) {
    return t == "=" || t == "+=" || t == "-=" || t == "*=" || t == "/=" ||
           t == "%=" || t == "&=" || t == "|=" || t == "^=" || t == "<<=" ||
           t == ">>=";
  }

  Expr parse_assign() {
    if (++depth_ > 64) {
      fail_ = true;
      --depth_;
      return opaque("");
    }
    Expr lhs = parse_ternary();
    if (!fail_ && is_assign_op(peek())) {
      Expr a = node(Expr::Kind::kAssign, peek());
      ++pos_;
      a.kids.push_back(std::move(lhs));
      a.kids.push_back(parse_assign());
      --depth_;
      return a;
    }
    --depth_;
    return lhs;
  }

  Expr parse_ternary() {
    Expr c = parse_binary(0);
    if (accept("?")) {
      Expr t = node(Expr::Kind::kTernary, "?:");
      t.kids.push_back(std::move(c));
      t.kids.push_back(parse_assign());
      expect(":");
      t.kids.push_back(parse_ternary());
      return t;
    }
    return c;
  }

  /// Precedence-climbing over binary operators, loosest first.
  static int binary_level(const std::string& op) {
    if (op == "||") return 0;
    if (op == "&&") return 1;
    if (op == "|") return 2;
    if (op == "^") return 3;
    if (op == "&") return 4;
    if (op == "==" || op == "!=") return 5;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 6;
    if (op == "<<" || op == ">>") return 7;
    if (op == "+" || op == "-") return 8;
    if (op == "*" || op == "/" || op == "%") return 9;
    return -1;
  }
  static constexpr int kMaxLevel = 9;

  Expr parse_binary(int level) {
    if (level > kMaxLevel) return parse_unary();
    Expr lhs = parse_binary(level + 1);
    while (!fail_) {
      const std::string& op = peek();
      if (binary_level(op) != level) break;
      // `<` that opens a template argument list of a call is handled in
      // parse_postfix; reaching here it is a comparison.
      ++pos_;
      Expr b = node(Expr::Kind::kBinary, op);
      b.kids.push_back(std::move(lhs));
      b.kids.push_back(parse_binary(level + 1));
      lhs = std::move(b);
    }
    return lhs;
  }

  Expr parse_unary() {
    const std::string& tok = peek();
    if (tok == "!" || tok == "-" || tok == "+" || tok == "~" || tok == "*" ||
        tok == "&" || tok == "++" || tok == "--") {
      ++pos_;
      Expr u = node(Expr::Kind::kUnary, tok);
      u.kids.push_back(parse_unary());
      return u;
    }
    return parse_postfix();
  }

  Expr parse_postfix() {
    Expr e = parse_primary();
    while (!fail_) {
      const std::string& tok = peek();
      if ((tok == "." || tok == "->") && is_ident_tok(peek(1))) {
        const std::string member = peek(1);
        pos_ += 2;
        if (e.kind == Expr::Kind::kVar) {
          e.op += "." + member;
        } else {
          Expr v = node(Expr::Kind::kVar, "<expr>." + member);
          v.kids.push_back(std::move(e));
          e = std::move(v);
        }
      } else if (tok == "(") {
        ++pos_;
        Expr call = node(Expr::Kind::kCall,
                         e.kind == Expr::Kind::kVar ? e.op : std::string());
        if (peek() != ")") {
          call.kids.push_back(parse_assign());
          while (accept(",")) call.kids.push_back(parse_assign());
        }
        expect(")");
        e = std::move(call);
      } else if (tok == "[") {
        ++pos_;
        Expr idx = node(Expr::Kind::kIndex, "[]");
        idx.kids.push_back(std::move(e));
        idx.kids.push_back(parse_assign());
        expect("]");
        e = std::move(idx);
      } else if (tok == "++" || tok == "--") {
        ++pos_;
        Expr u = node(Expr::Kind::kUnary, "post" + tok);
        u.kids.push_back(std::move(e));
        e = std::move(u);
      } else if (tok == "<" && e.kind == Expr::Kind::kVar &&
                 template_call_ahead()) {
        try_consume_template_args(nullptr);  // explicit template args
      } else {
        break;
      }
    }
    return e;
  }

  /// True when `<` at the current position closes with `>` followed by
  /// `(` — an explicit-template-argument call, not a comparison.
  bool template_call_ahead() const {
    int depth = 0;
    for (std::size_t i = pos_; i < t_.size(); ++i) {
      const std::string& tok = t_[i];
      if (tok == "<") ++depth;
      else if (tok == ">") {
        if (--depth == 0) return i + 1 < t_.size() && t_[i + 1] == "(";
      } else if (tok == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1 < t_.size() && t_[i + 1] == "(";
      } else if (tok == ";" || tok == ")" || is_assign_op(tok)) {
        return false;
      }
    }
    return false;
  }

  Expr parse_number(const std::string& text) {
    Expr e = node(Expr::Kind::kNum, text);
    std::string body;
    for (const char c : text)
      if (c != '\'') body += c;
    const bool hex = body.size() > 1 && (body[1] == 'x' || body[1] == 'X');
    std::string suffix;
    while (!body.empty()) {
      const char c = body.back();
      if (c == 'u' || c == 'U' || c == 'l' || c == 'L' ||
          (!hex && (c == 'f' || c == 'F'))) {
        suffix += c;
        body.pop_back();
      } else {
        break;
      }
    }
    e.num = hex ? static_cast<double>(std::strtoull(body.c_str(), nullptr, 16))
                : std::strtod(body.c_str(), nullptr);
    e.float_lit =
        !hex && (body.find('.') != std::string::npos ||
                 body.find('e') != std::string::npos ||
                 body.find('E') != std::string::npos ||
                 suffix.find('f') != std::string::npos ||
                 suffix.find('F') != std::string::npos);
    return e;
  }

  Expr parse_primary() {
    const std::string& tok = peek();
    if (tok.empty()) {
      fail_ = true;
      return opaque("");
    }
    if (is_number_tok(tok)) {
      ++pos_;
      return parse_number(tok);
    }
    if (tok == "\"\"" || tok == "''") {
      ++pos_;
      return node(Expr::Kind::kStr, tok);
    }
    if (tok == "true" || tok == "false") {
      ++pos_;
      Expr e = node(Expr::Kind::kNum, tok);
      e.num = tok == "true" ? 1.0 : 0.0;
      return e;
    }
    if (tok == "nullptr") {
      ++pos_;
      Expr e = node(Expr::Kind::kNum, tok);
      e.num = 0.0;
      return e;
    }
    if (tok == "static_cast" || tok == "const_cast" ||
        tok == "reinterpret_cast" || tok == "dynamic_cast") {
      ++pos_;
      std::vector<std::string> type_toks;
      expect("<");
      int depth = 1;
      while (!done() && depth > 0) {
        const std::string& t = peek();
        if (t == "<") ++depth;
        else if (t == ">") --depth;
        else if (t == ">>") depth -= 2;
        if (depth > 0) type_toks.push_back(t);
        ++pos_;
      }
      Expr c = node(Expr::Kind::kCast, "cast");
      c.decl_type = parse_val_type(type_toks);
      expect("(");
      c.kids.push_back(parse_assign());
      expect(")");
      return c;
    }
    if (tok == "(") {
      // C-style cast of a recognized scalar type; otherwise grouping.
      std::size_t i = pos_ + 1;
      int depth = 1;
      std::vector<std::string> inner;
      while (i < t_.size() && depth > 0) {
        if (t_[i] == "(") ++depth;
        else if (t_[i] == ")") --depth;
        if (depth > 0) inner.push_back(t_[i]);
        ++i;
      }
      const bool next_starts_expr =
          i < t_.size() &&
          (is_ident_tok(t_[i]) || is_number_tok(t_[i]) || t_[i] == "(" ||
           t_[i] == "-" || t_[i] == "&" || t_[i] == "*");
      if (depth == 0 && !inner.empty() && next_starts_expr &&
          parse_val_type(inner) != ValType::kUnknown) {
        bool all_type_words = true;
        for (const std::string& t : inner)
          all_type_words = all_type_words &&
                           (is_ident_tok(t) || t == "::" || t == "*" ||
                            t == "&" || t == "<" || t == ">" ||
                            is_type_qualifier(t));
        if (all_type_words) {
          pos_ = i;
          Expr c = node(Expr::Kind::kCast, "cast");
          c.decl_type = parse_val_type(inner);
          c.kids.push_back(parse_unary());
          return c;
        }
      }
      ++pos_;
      Expr e = parse_assign();
      while (accept(",")) parse_assign();  // comma operator: keep last? first
      expect(")");
      return e;
    }
    if (tok == "[") {
      // Lambda expression: consume the capture list, parameters and the
      // body as an opaque value (its statements are not modeled here).
      std::size_t i = pos_;
      int sq = 0, par = 0, br = 0;
      for (; i < t_.size(); ++i) {
        const std::string& t = t_[i];
        if (t == "[") ++sq;
        else if (t == "]") --sq;
        else if (t == "(") ++par;
        else if (t == ")") --par;
        else if (t == "{") ++br;
        else if (t == "}") {
          --br;
          if (sq == 0 && par == 0 && br == 0) break;
        }
        if (sq == 0 && t == ";") break;
      }
      pos_ = i < t_.size() ? i + 1 : t_.size();
      return node(Expr::Kind::kOpaque, "lambda");
    }
    if (is_ident_tok(tok)) {
      std::string name = tok;
      ++pos_;
      while (peek() == "::" && is_ident_tok(peek(1))) {
        name += "::" + peek(1);
        pos_ += 2;
      }
      return node(Expr::Kind::kVar, name);
    }
    fail_ = true;
    return opaque(tok);
  }

  const std::vector<std::string>& t_;
  std::size_t pos_ = 0;
  int line_ = 0;
  int depth_ = 0;
  bool fail_ = false;
};

}  // namespace

Expr parse_stmt_expr(const std::string& text, int line) {
  const std::vector<std::string> toks = split_tokens(text);
  ExprParser parser(toks, line);
  return parser.parse_statement();
}

void visit_exprs(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const Expr& k : e.kids) visit_exprs(k, fn);
}

const Expr& StmtCache::parsed(const CfgStmt& s) {
  auto it = by_ptr_.find(&s);
  if (it == by_ptr_.end())
    it = by_ptr_.emplace(&s, parse_stmt_expr(s.text, s.line)).first;
  return it->second;
}

const Expr& StmtCache::parsed_cond(const CfgEdge& e) {
  auto it = by_ptr_.find(&e);
  if (it == by_ptr_.end())
    it = by_ptr_.emplace(&e, parse_stmt_expr(e.cond, 0)).first;
  return it->second;
}

// ---------------------------------------------------------------------------
// Type environment
// ---------------------------------------------------------------------------

ValType TypeEnv::type_of(const std::string& name) const {
  const auto it = vars.find(name);
  return it == vars.end() ? ValType::kUnknown : it->second;
}

TypeEnv collect_types(const Cfg& cfg, StmtCache& cache) {
  TypeEnv env;
  for (const BasicBlock& b : cfg.blocks) {
    for (const CfgStmt& s : b.stmts) {
      visit_exprs(cache.parsed(s), [&](const Expr& e) {
        if (e.kind == Expr::Kind::kDecl && e.decl_type != ValType::kUnknown)
          env.vars[e.op] = e.decl_type;
      });
    }
  }
  return env;
}

namespace {

ValType combine_types(ValType a, ValType b) {
  if (a == ValType::kFloat || b == ValType::kFloat) return ValType::kFloat;
  if (a == ValType::kBool) a = ValType::kInt32;
  if (b == ValType::kBool) b = ValType::kInt32;
  if (a == ValType::kUnknown || b == ValType::kUnknown)
    return ValType::kUnknown;
  const int wa = bit_width(a), wb = bit_width(b);
  if (wa == wb) {
    if (is_unsigned(a) || is_unsigned(b))
      return wa == 64 ? ValType::kUInt64 : ValType::kUInt32;
    return a;
  }
  return wa > wb ? a : b;
}

ValType literal_type(const Expr& e) {
  if (e.float_lit) return ValType::kFloat;
  std::string suffix;
  for (const char c : e.op)
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L') suffix += c;
  const bool uns = suffix.find('u') != std::string::npos ||
                   suffix.find('U') != std::string::npos;
  const bool wide = suffix.find('l') != std::string::npos ||
                    suffix.find('L') != std::string::npos ||
                    e.num > 2147483647.0;
  if (uns) return wide ? ValType::kUInt64 : ValType::kUInt32;
  return wide ? ValType::kInt64 : ValType::kInt32;
}

std::string simple_callee(const std::string& op) {
  std::size_t p = op.rfind('.');
  std::string s = p == std::string::npos ? op : op.substr(p + 1);
  p = s.rfind("::");
  if (p != std::string::npos) s = s.substr(p + 2);
  return s;
}

}  // namespace

ValType static_type(const Expr& e, const TypeEnv& env) {
  switch (e.kind) {
    case Expr::Kind::kNum: return literal_type(e);
    case Expr::Kind::kStr: return ValType::kUnknown;
    case Expr::Kind::kVar: return env.type_of(e.op);
    case Expr::Kind::kCast: return e.decl_type;
    case Expr::Kind::kDecl: return e.decl_type;
    case Expr::Kind::kUnary:
      if (e.op == "!") return ValType::kBool;
      return e.kids.empty() ? ValType::kUnknown
                            : static_type(e.kids[0], env);
    case Expr::Kind::kBinary: {
      const int lvl = e.op == "<" || e.op == "<=" || e.op == ">" ||
                              e.op == ">=" || e.op == "==" || e.op == "!=" ||
                              e.op == "&&" || e.op == "||"
                          ? 1
                          : 0;
      if (lvl) return ValType::kBool;
      if (e.kids.size() != 2) return ValType::kUnknown;
      return combine_types(static_type(e.kids[0], env),
                           static_type(e.kids[1], env));
    }
    case Expr::Kind::kTernary:
      if (e.kids.size() != 3) return ValType::kUnknown;
      return combine_types(static_type(e.kids[1], env),
                           static_type(e.kids[2], env));
    case Expr::Kind::kCall: {
      const std::string s = simple_callee(e.op);
      if (s == "size" || s == "length" || s == "capacity")
        return ValType::kUInt64;
      if (s == "empty") return ValType::kBool;
      if (s == "to_seconds") return ValType::kFloat;
      if (s == "from_seconds") return ValType::kInt64;
      if ((s == "max" || s == "min" || s == "clamp" || s == "abs") &&
          !e.kids.empty())
        return static_type(e.kids[0], env);
      return ValType::kUnknown;
    }
    case Expr::Kind::kAssign:
      return e.kids.empty() ? ValType::kUnknown
                            : static_type(e.kids[0], env);
    default: return ValType::kUnknown;
  }
}

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

Interval Interval::top() { return {-kInf, kInf, false, false}; }

Interval Interval::exact(double v) { return {v, v, v == 0.0, true}; }

bool Interval::is_top() const { return lo == -kInf && hi == kInf; }

Interval join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi),
          a.zero_witness || b.zero_witness, a.refined && b.refined};
}

namespace {

double mulc(double x, double y) {
  if (x == 0.0 || y == 0.0) return 0.0;
  return x * y;
}

Interval itv_mul(const Interval& a, const Interval& b) {
  const double c[4] = {mulc(a.lo, b.lo), mulc(a.lo, b.hi), mulc(a.hi, b.lo),
                       mulc(a.hi, b.hi)};
  Interval r{std::min({c[0], c[1], c[2], c[3]}),
             std::max({c[0], c[1], c[2], c[3]}),
             false, a.refined && b.refined};
  r.zero_witness = (a.zero_witness || b.zero_witness) && r.contains(0.0);
  return r;
}

double divc(double x, double y) {
  if (y == kInf || y == -kInf) return 0.0;
  if (y == 0.0) return x >= 0 ? kInf : -kInf;
  return x / y;
}

Interval itv_div(const Interval& a, const Interval& b) {
  if (b.lo > 0.0 || b.hi < 0.0) {
    const double c[4] = {divc(a.lo, b.lo), divc(a.lo, b.hi),
                         divc(a.hi, b.lo), divc(a.hi, b.hi)};
    Interval r{std::min({c[0], c[1], c[2], c[3]}),
               std::max({c[0], c[1], c[2], c[3]}),
               false, a.refined && b.refined};
    r.zero_witness = a.zero_witness && r.contains(0.0);
    return r;
  }
  Interval r = Interval::top();
  r.zero_witness = a.zero_witness;
  return r;
}

}  // namespace

IntervalDomain::State IntervalDomain::boundary() const {
  State s;
  s.reachable = true;
  return s;
}

Interval IntervalDomain::default_interval(const std::string& name) const {
  const ValType t = types_ ? types_->type_of(name) : ValType::kUnknown;
  if (t == ValType::kBool) return {0.0, 1.0, false, false};
  if (is_unsigned(t)) return {0.0, kInf, false, false};
  return Interval::top();
}

bool IntervalDomain::join_into(State& dst, const State& src) const {
  if (!src.reachable) return false;
  if (!dst.reachable) {
    dst = src;
    return true;
  }
  bool changed = false;
  for (auto& [name, itv] : dst.vars) {
    const auto it = src.vars.find(name);
    const Interval other =
        it == src.vars.end() ? default_interval(name) : it->second;
    const Interval j = join(itv, other);
    if (!(j == itv)) {
      itv = j;
      changed = true;
    }
  }
  for (const auto& [name, itv] : src.vars) {
    if (dst.vars.count(name)) continue;
    const Interval j = join(default_interval(name), itv);
    if (!(j == default_interval(name))) {
      dst.vars.emplace(name, j);
      changed = true;
    }
  }
  return changed;
}

void IntervalDomain::widen(State& s, const State& prev) const {
  if (!prev.reachable) return;
  for (auto& [name, itv] : s.vars) {
    const auto it = prev.vars.find(name);
    if (it == prev.vars.end()) continue;
    const Interval limit = default_interval(name);
    if (itv.lo < it->second.lo) itv.lo = limit.lo > itv.lo ? itv.lo : limit.lo;
    if (itv.hi > it->second.hi) itv.hi = limit.hi < itv.hi ? itv.hi : limit.hi;
  }
}

Interval IntervalDomain::eval(const Expr& e, const State& st) const {
  switch (e.kind) {
    case Expr::Kind::kNum: return Interval::exact(e.num);
    case Expr::Kind::kStr: return Interval::top();
    case Expr::Kind::kVar: {
      const auto it = st.vars.find(e.op);
      if (it != st.vars.end()) return it->second;
      return default_interval(e.op);
    }
    case Expr::Kind::kUnary: {
      if (e.kids.empty()) return Interval::top();
      const Interval a = eval(e.kids[0], st);
      if (e.op == "-") {
        Interval r{-a.hi, -a.lo, a.zero_witness, a.refined};
        return r;
      }
      if (e.op == "!") {
        if (a.lo > 0.0 || a.hi < 0.0) return Interval::exact(0.0);
        if (a.lo == 0.0 && a.hi == 0.0) return Interval::exact(1.0);
        return {0.0, 1.0, false, true};
      }
      if (e.op == "++" || e.op == "--" || e.op == "post++" ||
          e.op == "post--")
        return a;
      return Interval::top();
    }
    case Expr::Kind::kBinary: {
      if (e.kids.size() != 2) return Interval::top();
      const Interval a = eval(e.kids[0], st);
      // Short-circuit forms evaluate to a truth value.
      if (e.op == "&&" || e.op == "||") return {0.0, 1.0, false, true};
      const Interval b = eval(e.kids[1], st);
      if (e.op == "+") {
        Interval r{a.lo + b.lo, a.hi + b.hi, false, a.refined && b.refined};
        r.zero_witness = (a.zero_witness || b.zero_witness) && r.contains(0.0);
        return r;
      }
      if (e.op == "-") {
        Interval r{a.lo - b.hi, a.hi - b.lo, false, a.refined && b.refined};
        r.zero_witness = (a.zero_witness || b.zero_witness) && r.contains(0.0);
        return r;
      }
      if (e.op == "*") return itv_mul(a, b);
      if (e.op == "/") return itv_div(a, b);
      if (e.op == "%") {
        if (b.lo > 0.0 && b.hi < kInf) {
          const double m = b.hi - 1.0;
          return {a.lo >= 0.0 ? 0.0 : -m, m, false, a.refined && b.refined};
        }
        return Interval::top();
      }
      if (e.op == "<<") {
        if (a.lo == a.hi && b.lo == b.hi && b.lo >= 0.0 && b.lo < 63.0)
          return Interval::exact(a.lo * std::ldexp(1.0, static_cast<int>(b.lo)));
        if (a.lo >= 0.0 && b.lo >= 0.0) return {0.0, kInf, false, false};
        return Interval::top();
      }
      if (e.op == ">>") {
        if (a.lo >= 0.0) return {0.0, a.hi, false, a.refined};
        return Interval::top();
      }
      if (e.op == "==" || e.op == "!=" || e.op == "<" || e.op == "<=" ||
          e.op == ">" || e.op == ">=") {
        // Definitive when the ranges are disjoint / ordered.
        if (e.op == "<" && a.hi < b.lo) return Interval::exact(1.0);
        if (e.op == "<" && a.lo >= b.hi) return Interval::exact(0.0);
        if (e.op == ">" && a.lo > b.hi) return Interval::exact(1.0);
        if (e.op == ">" && a.hi <= b.lo) return Interval::exact(0.0);
        if (e.op == "<=" && a.hi <= b.lo) return Interval::exact(1.0);
        if (e.op == ">=" && a.lo >= b.hi) return Interval::exact(1.0);
        return {0.0, 1.0, false, true};
      }
      if (e.op == "&") {
        if (a.lo >= 0.0 && b.lo >= 0.0)
          return {0.0, std::min(a.hi, b.hi), false, a.refined && b.refined};
        return Interval::top();
      }
      if (e.op == "|" || e.op == "^") {
        if (a.lo >= 0.0 && b.lo >= 0.0) return {0.0, kInf, false, false};
        return Interval::top();
      }
      return Interval::top();
    }
    case Expr::Kind::kTernary: {
      if (e.kids.size() != 3) return Interval::top();
      const Interval c = eval(e.kids[0], st);
      State st_t = st;
      refine(e.kids[0], true, st_t);
      State st_f = st;
      refine(e.kids[0], false, st_f);
      if (c.lo > 0.0 || c.hi < 0.0) return eval(e.kids[1], st_t);
      if (c.lo == 0.0 && c.hi == 0.0) return eval(e.kids[2], st_f);
      return join(eval(e.kids[1], st_t), eval(e.kids[2], st_f));
    }
    case Expr::Kind::kCall: {
      const std::string s = simple_callee(e.op);
      if ((s == "max" || s == "min") && e.kids.size() >= 2) {
        Interval r = eval(e.kids[0], st);
        for (std::size_t i = 1; i < e.kids.size(); ++i) {
          const Interval b = eval(e.kids[i], st);
          if (s == "max") {
            const bool zw = (r.zero_witness && b.lo <= 0.0) ||
                            (b.zero_witness && r.lo <= 0.0);
            r = {std::max(r.lo, b.lo), std::max(r.hi, b.hi), zw,
                 r.refined || b.refined};
          } else {
            const bool zw = (r.zero_witness && b.hi >= 0.0) ||
                            (b.zero_witness && r.hi >= 0.0);
            r = {std::min(r.lo, b.lo), std::min(r.hi, b.hi), zw,
                 r.refined || b.refined};
          }
        }
        if (!r.contains(0.0)) r.zero_witness = false;
        return r;
      }
      if (s == "clamp" && e.kids.size() == 3) {
        const Interval v = eval(e.kids[0], st);
        const Interval lo = eval(e.kids[1], st);
        const Interval hi = eval(e.kids[2], st);
        Interval r{std::max(lo.lo, std::min(v.lo, hi.hi)),
                   std::min(hi.hi, std::max(v.hi, lo.lo)),
                   false, lo.refined && hi.refined};
        r.zero_witness = v.zero_witness && r.contains(0.0);
        return r;
      }
      if ((s == "abs" || s == "fabs" || s == "labs" || s == "llabs") &&
          e.kids.size() == 1) {
        const Interval a = eval(e.kids[0], st);
        Interval r = a;
        if (a.hi <= 0.0) r = {-a.hi, -a.lo, a.zero_witness, a.refined};
        else if (a.lo < 0.0)
          r = {0.0, std::max(-a.lo, a.hi), a.zero_witness, a.refined};
        return r;
      }
      if (s == "to_seconds" && e.kids.size() == 1)
        return itv_mul(eval(e.kids[0], st), Interval::exact(1e-6));
      if (s == "from_seconds" && e.kids.size() == 1)
        return itv_mul(eval(e.kids[0], st), Interval::exact(1e6));
      if (s == "size" || s == "length" || s == "capacity")
        return {0.0, kInf, false, false};
      if (s == "empty") return {0.0, 1.0, false, false};
      if (oracle_ != nullptr) return oracle_->call_interval(e.op);
      return Interval::top();
    }
    case Expr::Kind::kCast: {
      if (e.kids.empty()) return Interval::top();
      const Interval v = eval(e.kids[0], st);
      const int w = bit_width(e.decl_type);
      if (w == 0) return v;
      const double tmin = is_unsigned(e.decl_type)
                              ? 0.0
                              : -std::ldexp(1.0, w - 1);
      const double tmax = is_unsigned(e.decl_type)
                              ? std::ldexp(1.0, w) - 1.0
                              : std::ldexp(1.0, w - 1) - 1.0;
      if (v.lo >= tmin && v.hi <= tmax) return v;
      return {tmin, tmax, false, false};
    }
    case Expr::Kind::kAssign:
      return e.kids.size() == 2 ? eval(e.kids[1], st) : Interval::top();
    case Expr::Kind::kIndex: return Interval::top();
    default: return Interval::top();
  }
}

void IntervalDomain::transfer(const Expr& e, State& st) const {
  if (!st.reachable) return;
  switch (e.kind) {
    case Expr::Kind::kDecl: {
      std::size_t init_args = 0;
      for (const Expr& k : e.kids) {
        if (k.kind == Expr::Kind::kDecl) break;
        ++init_args;
      }
      Interval v = default_interval(e.op);
      if (init_args == 1) v = eval(e.kids[0], st);
      else if (init_args > 1) v = Interval::top();
      st.vars[e.op] = v;
      for (std::size_t i = init_args; i < e.kids.size(); ++i)
        transfer(e.kids[i], st);
      return;
    }
    case Expr::Kind::kAssign: {
      if (e.kids.size() != 2) return;
      transfer(e.kids[1], st);  // nested assignments in the RHS
      const Expr& lhs = e.kids[0];
      if (lhs.kind != Expr::Kind::kVar) return;
      Interval v;
      if (e.op == "=") {
        v = eval(e.kids[1], st);
      } else {
        // Compound assignment: x op= rhs  ==  x = x op rhs.
        Expr bin;
        bin.kind = Expr::Kind::kBinary;
        bin.op = e.op.substr(0, e.op.size() - 1);
        bin.kids.push_back(lhs);
        bin.kids.push_back(e.kids[1]);
        v = eval(bin, st);
      }
      st.vars[lhs.op] = v;
      return;
    }
    case Expr::Kind::kUnary: {
      if ((e.op == "++" || e.op == "--" || e.op == "post++" ||
           e.op == "post--") &&
          e.kids.size() == 1 && e.kids[0].kind == Expr::Kind::kVar) {
        const Interval one = Interval::exact(1.0);
        const Interval cur = eval(e.kids[0], st);
        const bool inc = e.op.find("++") != std::string::npos;
        Interval v{inc ? cur.lo + 1.0 : cur.lo - 1.0,
                   inc ? cur.hi + 1.0 : cur.hi - 1.0, false, cur.refined};
        v.zero_witness = cur.zero_witness && v.contains(0.0);
        (void)one;
        st.vars[e.kids[0].op] = v;
      }
      return;
    }
    case Expr::Kind::kCall: {
      for (const Expr& arg : e.kids) {
        transfer(arg, st);
        // An argument passed by address may be rewritten by the callee.
        if (arg.kind == Expr::Kind::kUnary && arg.op == "&" &&
            arg.kids.size() == 1 && arg.kids[0].kind == Expr::Kind::kVar)
          st.vars.erase(arg.kids[0].op);
      }
      return;
    }
    case Expr::Kind::kReturn:
    case Expr::Kind::kCast:
    case Expr::Kind::kIndex:
      for (const Expr& k : e.kids) transfer(k, st);
      return;
    case Expr::Kind::kBinary:
      // Only the left side of short-circuit forms surely evaluates.
      if (!e.kids.empty()) transfer(e.kids[0], st);
      if ((e.op != "&&" && e.op != "||") && e.kids.size() == 2)
        transfer(e.kids[1], st);
      return;
    default: return;
  }
}

void IntervalDomain::transfer_stmt(const CfgStmt& s, State& st) const {
  if (!st.reachable || cache_ == nullptr) return;
  transfer(cache_->parsed(s), st);
}

namespace {

const char* negate_op(const std::string& op) {
  if (op == "<") return ">=";
  if (op == "<=") return ">";
  if (op == ">") return "<=";
  if (op == ">=") return "<";
  if (op == "==") return "!=";
  if (op == "!=") return "==";
  return "";
}

bool is_relational(const std::string& op) {
  return op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
         op == "!=";
}

}  // namespace

void IntervalDomain::refine(const Expr& cond, bool taken, State& st) const {
  if (!st.reachable) return;
  switch (cond.kind) {
    case Expr::Kind::kUnary:
      if (cond.op == "!" && cond.kids.size() == 1)
        refine(cond.kids[0], !taken, st);
      return;
    case Expr::Kind::kBinary: {
      if (cond.op == "&&") {
        if (taken && cond.kids.size() == 2) {
          refine(cond.kids[0], true, st);
          refine(cond.kids[1], true, st);
        }
        return;
      }
      if (cond.op == "||") {
        if (!taken && cond.kids.size() == 2) {
          refine(cond.kids[0], false, st);
          refine(cond.kids[1], false, st);
        }
        return;
      }
      if (!is_relational(cond.op) || cond.kids.size() != 2) return;
      const std::string op = taken ? cond.op : negate_op(cond.op);
      const Expr& l = cond.kids[0];
      const Expr& r = cond.kids[1];
      const Interval lv = eval(l, st);
      const Interval rv = eval(r, st);
      const auto apply = [&](const Expr& side, const Interval& self,
                             const std::string& o, const Interval& bound) {
        if (side.kind != Expr::Kind::kVar) return;
        const bool is_int = is_integer(
            types_ ? types_->type_of(side.op) : ValType::kUnknown);
        Interval v = self;
        if (o == "<") {
          v.hi = std::min(v.hi, is_int ? bound.hi - 1.0 : bound.hi);
          if (bound.hi <= 0.0) v.zero_witness = false;
        } else if (o == "<=") {
          v.hi = std::min(v.hi, bound.hi);
        } else if (o == ">") {
          v.lo = std::max(v.lo, is_int ? bound.lo + 1.0 : bound.lo);
          if (bound.lo >= 0.0) v.zero_witness = false;
        } else if (o == ">=") {
          v.lo = std::max(v.lo, bound.lo);
        } else if (o == "==") {
          v.lo = std::max(v.lo, bound.lo);
          v.hi = std::min(v.hi, bound.hi);
          v.zero_witness = bound.zero_witness || v.zero_witness;
          if (!v.contains(0.0)) v.zero_witness = false;
        } else if (o == "!=") {
          if (bound.lo == 0.0 && bound.hi == 0.0) {
            v.zero_witness = false;
            if (is_int && v.lo == 0.0) v.lo = 1.0;
          }
        }
        // Refinement is knowledge only when the bound itself carries
        // knowledge — clamping against a vacuous full-type-range bound
        // (e.g. a non-fitting cast's result) must not mark `v` refined.
        if (bound.refined) v.refined = true;
        if (!v.contains(0.0)) v.zero_witness = false;
        if (v.lo > v.hi) {
          st.reachable = false;
          return;
        }
        st.vars[side.op] = v;
      };
      apply(l, lv, op, rv);
      // Mirror the comparison for the right side.
      std::string mirrored = op;
      if (op == "<") mirrored = ">";
      else if (op == "<=") mirrored = ">=";
      else if (op == ">") mirrored = "<";
      else if (op == ">=") mirrored = "<=";
      if (st.reachable) apply(r, rv, mirrored, lv);
      return;
    }
    case Expr::Kind::kVar: {
      const Interval v = eval(cond, st);
      Interval n = v;
      if (taken) {
        n.zero_witness = false;
        const bool is_int = is_integer(
            types_ ? types_->type_of(cond.op) : ValType::kUnknown);
        if (is_int && n.lo == 0.0) n.lo = 1.0;
        if (n.lo == 0.0 && n.hi == 0.0) st.reachable = false;
      } else {
        if (!v.contains(0.0)) {
          st.reachable = false;
          return;
        }
        n = Interval::exact(0.0);
        n.refined = true;
      }
      st.vars[cond.op] = n;
      return;
    }
    default: return;
  }
}

void IntervalDomain::transfer_edge(const CfgEdge& e, State& st) const {
  if (!st.reachable || cache_ == nullptr || e.cond.empty()) return;
  if (e.kind == EdgeKind::kFall) return;
  const Expr& cond = cache_->parsed_cond(e);
  refine(cond, e.kind != EdgeKind::kFalse, st);
}

// ---------------------------------------------------------------------------
// Taint domain
// ---------------------------------------------------------------------------

Taint join(const Taint& a, const Taint& b) {
  if (a.tainted) return a;
  return b;
}

TaintDomain::State TaintDomain::boundary() const {
  State s;
  s.reachable = true;
  return s;
}

bool TaintDomain::join_into(State& dst, const State& src) const {
  if (!src.reachable) return false;
  if (!dst.reachable) {
    dst = src;
    return true;
  }
  bool changed = false;
  for (const auto& [name, t] : src.vars) {
    if (!t.tainted) continue;
    auto it = dst.vars.find(name);
    if (it == dst.vars.end()) {
      dst.vars.emplace(name, t);
      changed = true;
    } else if (!it->second.tainted) {
      it->second = t;
      changed = true;
    }
  }
  return changed;
}

namespace {

/// Taint source table: call simple-name -> taint kind.
const char* taint_source_kind(const std::string& simple) {
  if (simple == "env_int" || simple == "env_double") return "env";
  if (simple == "getenv" || simple == "env_string") return "env-str";
  static const char* parse_fns[] = {
      "stoi",  "stol",    "stoll",   "stoul",  "stoull", "stod",
      "stof",  "atoi",    "atol",    "atof",   "strtol", "strtoll",
      "strtoul", "strtoull", "strtod", "strtof"};
  for (const char* f : parse_fns)
    if (simple == f) return "parse";
  return nullptr;
}

bool taint_propagating_call(const std::string& simple) {
  static const char* fns[] = {"abs",    "fabs",  "labs",  "llabs", "floor",
                              "ceil",   "round", "lround", "trunc", "__range",
                              "substr", "c_str", "str",    "at",    "front",
                              "back",   "value", "value_or"};
  for (const char* f : fns)
    if (simple == f) return true;
  return false;
}

}  // namespace

Taint TaintDomain::eval(const Expr& e, const State& st) const {
  switch (e.kind) {
    case Expr::Kind::kVar: {
      auto it = st.vars.find(e.op);
      if (it != st.vars.end()) return it->second;
      // Member chains fall back to the base object's taint.
      const std::size_t dot = e.op.find('.');
      if (dot != std::string::npos) {
        it = st.vars.find(e.op.substr(0, dot));
        if (it != st.vars.end()) return it->second;
      }
      return {};
    }
    case Expr::Kind::kUnary:
    case Expr::Kind::kCast:
    case Expr::Kind::kReturn:
      return e.kids.empty() ? Taint{} : eval(e.kids[0], st);
    case Expr::Kind::kBinary: {
      Taint t;
      for (const Expr& k : e.kids) t = join(t, eval(k, st));
      return t;
    }
    case Expr::Kind::kTernary: {
      if (e.kids.size() != 3) return {};
      return join(eval(e.kids[1], st), eval(e.kids[2], st));
    }
    case Expr::Kind::kIndex:
      return e.kids.empty() ? Taint{} : eval(e.kids[0], st);
    case Expr::Kind::kAssign:
      return e.kids.size() == 2 ? eval(e.kids[1], st) : Taint{};
    case Expr::Kind::kCall: {
      const std::string simple = simple_callee(e.op);
      if (const char* kind = taint_source_kind(simple)) {
        Taint t;
        t.tainted = true;
        t.kind = kind;
        t.source = e.op + "(...)";
        t.line = e.line;
        return t;
      }
      if (simple == "env_int_min") return {};  // clamps internally
      if (simple == "min" || simple == "max" || simple == "clamp") {
        // A clean bound sanitizes: min(tainted, kCap) is bounded.
        Taint t;
        bool any_clean = false;
        for (const Expr& k : e.kids) {
          const Taint kt = eval(k, st);
          if (!kt.tainted) any_clean = true;
          t = join(t, kt);
        }
        return any_clean ? Taint{} : t;
      }
      if (taint_propagating_call(simple)) {
        Taint t;
        for (const Expr& k : e.kids) t = join(t, eval(k, st));
        // Receiver taint flows through value-returning member calls.
        const std::size_t dot = e.op.rfind('.');
        if (dot != std::string::npos) {
          Expr recv;
          recv.kind = Expr::Kind::kVar;
          recv.op = e.op.substr(0, dot);
          t = join(t, eval(recv, st));
        }
        return t;
      }
      return {};
    }
    default: return {};
  }
}

void TaintDomain::transfer(const Expr& e, State& st) const {
  if (!st.reachable) return;
  switch (e.kind) {
    case Expr::Kind::kDecl: {
      std::size_t init_args = 0;
      for (const Expr& k : e.kids) {
        if (k.kind == Expr::Kind::kDecl) break;
        ++init_args;
      }
      Taint t;
      for (std::size_t i = 0; i < init_args; ++i)
        t = join(t, eval(e.kids[i], st));
      if (t.tainted) st.vars[e.op] = t;
      else st.vars.erase(e.op);
      for (std::size_t i = init_args; i < e.kids.size(); ++i)
        transfer(e.kids[i], st);
      return;
    }
    case Expr::Kind::kAssign: {
      if (e.kids.size() != 2) return;
      transfer(e.kids[1], st);
      const Expr& lhs = e.kids[0];
      if (lhs.kind != Expr::Kind::kVar) return;
      Taint t = eval(e.kids[1], st);
      if (e.op != "=") t = join(t, eval(lhs, st));
      if (t.tainted) st.vars[lhs.op] = t;
      else st.vars.erase(lhs.op);
      return;
    }
    case Expr::Kind::kCall: {
      for (const Expr& arg : e.kids) {
        transfer(arg, st);
        if (arg.kind == Expr::Kind::kUnary && arg.op == "&" &&
            arg.kids.size() == 1 && arg.kids[0].kind == Expr::Kind::kVar)
          st.vars.erase(arg.kids[0].op);
      }
      return;
    }
    case Expr::Kind::kReturn:
    case Expr::Kind::kCast:
    case Expr::Kind::kIndex:
      for (const Expr& k : e.kids) transfer(k, st);
      return;
    case Expr::Kind::kBinary:
      if (!e.kids.empty()) transfer(e.kids[0], st);
      if ((e.op != "&&" && e.op != "||") && e.kids.size() == 2)
        transfer(e.kids[1], st);
      return;
    default: return;
  }
}

void TaintDomain::transfer_stmt(const CfgStmt& s, State& st) const {
  if (!st.reachable || cache_ == nullptr) return;
  transfer(cache_->parsed(s), st);
}

void TaintDomain::sanitize_compared(const Expr& cond, State& st) const {
  switch (cond.kind) {
    case Expr::Kind::kUnary:
      if (cond.op == "!" && !cond.kids.empty())
        sanitize_compared(cond.kids[0], st);
      return;
    case Expr::Kind::kBinary: {
      if (cond.op == "&&" || cond.op == "||") {
        for (const Expr& k : cond.kids) sanitize_compared(k, st);
        return;
      }
      if (!is_relational(cond.op)) return;
      // A comparison is the codebase's validation idiom: a knob checked
      // against a bound on either branch no longer flows unvalidated.
      for (const Expr& k : cond.kids)
        if (k.kind == Expr::Kind::kVar) st.vars.erase(k.op);
      return;
    }
    default: return;
  }
}

void TaintDomain::transfer_edge(const CfgEdge& e, State& st) const {
  if (!st.reachable || cache_ == nullptr || e.cond.empty()) return;
  if (e.kind == EdgeKind::kFall) return;
  sanitize_compared(cache_->parsed_cond(e), st);
}

}  // namespace dsp::analysis
