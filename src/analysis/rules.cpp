#include "analysis/rules.h"

namespace dsp::analysis {
namespace {

constexpr RuleInfo kCatalog[] = {
    // ---- Workload lint ------------------------------------------------
    {"W000", "trace-parse", Severity::kError,
     "workload trace file could not be parsed", "-"},
    {"W001", "dag-cycle", Severity::kError,
     "dependency graph contains a cycle; no topological order exists",
     "§III chain model"},
    {"W002", "unreachable-task", Severity::kError,
     "task depends on a nonexistent task and can never become ready",
     "§III constraint (7)"},
    {"W003", "deadline-infeasible-by-critical-path", Severity::kError,
     "critical-path time on the fastest node already exceeds the deadline",
     "§III constraint (6), Eq. (2)"},
    {"W004", "demand-unsatisfiable", Severity::kError,
     "task resource demand fits no node of the cluster", "§III placement"},
    {"W005", "invalid-structure", Severity::kError,
     "structural validity: sizes, demands, deadline ordering, DAG shape caps",
     "§V workload recipe"},
    // ---- Schedule constraint check ------------------------------------
    {"S000", "schedule-parse", Severity::kError,
     "schedule file could not be parsed or is internally inconsistent", "-"},
    {"S001", "dependency-order", Severity::kError,
     "task starts before a precedent task's completion",
     "§III constraint (7)"},
    {"S002", "node-overlap", Severity::kError,
     "two tasks overlap on the same single-task machine",
     "§III constraints (5)/(8)"},
    {"S003", "deadline-violation", Severity::kError,
     "task completion (incl. preemption padding) exceeds its deadline",
     "§III constraint (6)"},
    {"S004", "unplaced-task", Severity::kError,
     "task has no valid machine assignment or a negative start time",
     "§III constraints (9)-(11)"},
    {"S005", "makespan-understated", Severity::kError,
     "declared makespan L_MS is smaller than some task's completion",
     "§III constraint (4)"},
    // ---- Preemption audit replay --------------------------------------
    {"P000", "audit-malformed", Severity::kError,
     "audit trail unreadable, out of time order, or inconsistent with the "
     "workload",
     "-"},
    {"P001", "formula12-monotonicity", Severity::kError,
     "an ancestor task's recorded priority does not dominate its "
     "descendant's (Formula 12 aggregates descendants scaled by gamma+1)",
     "§IV-A Formulas 12/13, Fig. 3"},
    {"P002", "c1-priority-gap", Severity::kError,
     "a non-urgent preemption fired although the candidate's priority did "
     "not exceed the victim's (condition C1)",
     "§IV Algorithm 1, C1"},
    {"P003", "c2-dependency-on-victim", Severity::kError,
     "a preemption fired although the candidate depends on the victim "
     "(condition C2)",
     "§IV Algorithm 1, C2"},
    {"P004", "rho-normalization", Severity::kError,
     "the normalized-priority gate P-tilde > rho was applied incorrectly "
     "(fired below the gate, or suppressed above it)",
     "§IV-C normalized-priority preemption"},
    // ---- Source determinism lint (dsp_tidy) ----------------------------
    {"D000", "libc-random", Severity::kError,
     "libc random source (rand/srand/srandom/drand48/...) — use util/rng's "
     "seeded xoshiro engine",
     "§V reproducibility"},
    {"D001", "std-random-device", Severity::kError,
     "std::random_device draws entropy from the OS; runs stop being "
     "reproducible from a seed",
     "§V reproducibility"},
    {"D002", "wall-clock", Severity::kError,
     "wall-clock read (time()/system_clock/...) outside the whitelisted "
     "time/log utilities; simulation logic must use SimTime",
     "§V reproducibility"},
    {"D003", "unordered-iteration", Severity::kError,
     "unordered_map/unordered_set in core/sim code: iteration order is "
     "hash-seed dependent, so accumulation over it is nondeterministic",
     "§IV Algorithm 1 determinism"},
    {"D004", "thread-outside-pool", Severity::kError,
     "std::thread/std::async spawned outside util/thread_pool; ad-hoc "
     "threads bypass the pool's deterministic fan-out discipline",
     "§IV Algorithm 1 determinism"},
    {"D005", "std-random-engine", Severity::kError,
     "<random> engine or distribution: outputs are not specified "
     "bit-exactly across standard libraries — use util/rng",
     "§V reproducibility"},
    {"D006", "nondet-reachable", Severity::kError,
     "a core/sim entry point reaches a nondeterminism source (wall clock, "
     "libc random, hash-order container) through its call chain, even "
     "though no single function trips D000-D003 locally",
     "§V reproducibility"},
    // ---- Source concurrency/robustness lint (dsp_tidy) -----------------
    {"C000", "unguarded-global-state", Severity::kError,
     "mutable file-scope state without a DSP_GUARDED_BY annotation (or "
     "atomic/thread_local/const qualification)",
     "-"},
    {"C001", "io-under-lock", Severity::kError,
     "blocking I/O or logging while a lock is held stalls every thread "
     "contending for the mutex",
     "-"},
    {"C002", "raw-new-delete", Severity::kError,
     "raw new/delete — use std::make_unique/containers (RAII, Core "
     "Guidelines R.11)",
     "-"},
    {"C003", "unchecked-hot-index", Severity::kError,
     "subscript-returning accessor in core/sim without a bounds assert "
     "within reach (the prio_at discipline from the hot-path PR)",
     "-"},
    {"C004", "console-io-outside-log", Severity::kError,
     "printf/std::cout/std::cerr outside util/log; library code must log "
     "through DSP_LOG so levels and line atomicity hold",
     "-"},
    {"C005", "manual-lock", Severity::kError,
     "manual mutex lock()/unlock() instead of RAII (MutexLock / "
     "scoped_lock, Core Guidelines CP.20)",
     "-"},
    // ---- Interprocedural lock-flow analysis (dsp_tidy --flow) ----------
    {"L000", "lock-order-inversion", Severity::kError,
     "two call paths acquire the same pair of mutexes in opposite order; "
     "running them concurrently can deadlock",
     "-"},
    {"L001", "recursive-acquire", Severity::kError,
     "a call path re-acquires a non-recursive mutex it already holds; "
     "self-deadlock on the same instance",
     "-"},
    {"L002", "io-under-lock-reachable", Severity::kError,
     "a call made while a lock is held reaches blocking or console I/O in "
     "a callee (the interprocedural form of C001)",
     "-"},
    {"L003", "parallel-for-unguarded-write", Severity::kError,
     "a parallel_for callback reaches a write to shared member state that "
     "carries no DSP_GUARDED_BY annotation and is not atomic; concurrent "
     "chunks race",
     "§IV Algorithm 1 determinism"},
    {"L004", "requires-not-held", Severity::kError,
     "a function annotated DSP_REQUIRES(mu) is called on a path that does "
     "not hold mu",
     "-"},
    // ---- Value-range dataflow analysis (dsp_tidy --dataflow) -----------
    {"V000", "div-by-witnessed-zero", Severity::kError,
     "divisor's interval carries a zero witness — some concrete path "
     "(a `= 0` literal, a callee returning 0.0, an `== 0` branch) reaches "
     "this division with a hard zero",
     "§IV Formula 13 (1/t_rem leaf priority)"},
    {"V001", "unsigned-sub-wrap", Severity::kError,
     "unsigned subtraction a - b where the analyzed ranges admit a < b; "
     "the result wraps to a huge value instead of going negative",
     "§III t^a = t^d - t^rem deadline chain"},
    {"V002", "narrowing-cast-overflow", Severity::kError,
     "cast to a narrower integer type whose analyzed range exceeds the "
     "target's representable range",
     "-"},
    {"V003", "float-equality", Severity::kError,
     "== or != on floating-point operands; rounding makes the comparison "
     "unstable — compare against an epsilon or restructure",
     "-"},
    {"V004", "shift-out-of-range", Severity::kError,
     "shift amount's analyzed range reaches or exceeds the width of the "
     "shifted operand's type (undefined behavior)",
     "-"},
    {"V005", "loop-counter-narrow", Severity::kError,
     "32-bit loop counter compared against a 64-bit bound whose analyzed "
     "range exceeds INT32_MAX; the loop may never terminate",
     "-"},
    // ---- Taint dataflow analysis (dsp_tidy --dataflow) -----------------
    {"T000", "tainted-index", Severity::kError,
     "array/vector subscript derives from an untrusted source (env var, "
     "workload CSV field, parsed text) with no clamp or comparison guard "
     "on the path",
     "-"},
    {"T001", "tainted-loop-bound", Severity::kError,
     "loop bound derives from an untrusted source with no validation; a "
     "hostile config makes the loop run unbounded",
     "-"},
    {"T002", "tainted-alloc-size", Severity::kError,
     "allocation/resize size derives from an untrusted source with no "
     "validation; a hostile config triggers an OOM",
     "-"},
    {"T003", "env-unvalidated", Severity::kError,
     "numeric env knob (env_int/env_double) used without any clamp or "
     "comparison guard between read and use",
     "-"},
};

}  // namespace

std::span<const RuleInfo> rule_catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : kCatalog)
    if (id == rule.id) return &rule;
  return nullptr;
}

}  // namespace dsp::analysis
