// dsp-flow: interprocedural lock-order and determinism rules over the
// call graph (dsp_tidy --flow).
//
// Five lock rules and one determinism rule, all evaluated on the
// CallGraph summaries built from a CppIndex:
//   L000 lock-order-inversion      — two call paths acquire a mutex pair
//                                    in opposite order (ABBA deadlock).
//   L001 recursive-acquire         — a path re-acquires a non-recursive
//                                    mutex it already holds (restricted
//                                    to same-instance chains: bare locks,
//                                    or member locks along this-calls).
//   L002 io-under-lock-reachable   — a call made under a lock reaches
//                                    blocking/console I/O in a callee
//                                    (interprocedural C001).
//   L003 parallel-for-unguarded-write — a parallel_for callback reaches
//                                    a write to member state with no
//                                    DSP_GUARDED_BY / atomic protection.
//   L004 requires-not-held         — a DSP_REQUIRES(mu) function is
//                                    invoked on a path not holding mu
//                                    (with parameter substitution, so
//                                    wait(mutex_) checks mutex_).
//   D006 nondet-reachable          — a core/sim entry point reaches a
//                                    wall-clock/random/hash-order sink
//                                    through its call chain.
//
// Every finding carries the full call chain as evidence, and a
// `dsp-tidy: allow(ID)` comment on any line of that chain suppresses it.
#pragma once

#include <string>
#include <vector>

#include "analysis/cpp_index.h"
#include "analysis/diagnostics.h"

namespace dsp::analysis {

/// Runs every flow rule over an already-populated index. Calls
/// index.finalize() itself.
void analyze_flow_index(CppIndex& index, Report& report);

/// Indexes `files` (as produced by collect_sources /
/// collect_sources_from_compdb) and runs the flow rules. Returns false
/// and sets `error` when a file cannot be read; the report then holds
/// whatever was analyzed before the failure.
bool analyze_flow_files(const std::vector<std::string>& files, Report& report,
                        std::string* error = nullptr);

}  // namespace dsp::analysis
