#include "analysis/cpp_index.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

#include "analysis/cpp_lex.h"

namespace dsp::analysis {
namespace {

// ---------------------------------------------------------------------------
// Small string utilities
// ---------------------------------------------------------------------------

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// C++ keywords (and cast/control tokens) that look like call names.
bool is_keyword(std::string_view name) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "noexcept",
      "throw",    "new",      "delete",   "static_assert", "alignas",
      "co_await", "co_yield", "co_return", "typeid",  "else",
      "case",     "do",       "goto",     "operator", "requires",
      "explicit", "constexpr", "const",   "static",   "inline",
      "defined",  "assert"};
  return kKeywords.count(name) > 0;
}

/// Tokens that may legally precede a call expression even though they are
/// identifiers ("return foo()"). Anything else identifier-like in front
/// means `foo` is a declared variable name, not a callee.
bool is_call_context_keyword(std::string_view tok) {
  return tok == "return" || tok == "throw" || tok == "case" ||
         tok == "else" || tok == "do" || tok == "co_return" ||
         tok == "co_await" || tok == "co_yield" || tok == "goto";
}

/// Index of the bracket matching text[open] (one of ( [ { <), or npos.
std::size_t match_bracket(const std::string& text, std::size_t open) {
  const char o = text[open];
  const char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '>';
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == o) ++depth;
    else if (text[i] == c && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Splits `text` on top-level commas (ignoring commas nested in any
/// bracket kind), trimming each piece.
std::vector<std::string> split_top_commas(const std::string& text) {
  std::vector<std::string> out;
  int paren = 0, angle = 0, square = 0, brace = 0;
  std::string cur;
  for (const char c : text) {
    switch (c) {
      case '(': ++paren; break;
      case ')': --paren; break;
      case '<': ++angle; break;
      case '>': if (angle > 0) --angle; break;
      case '[': ++square; break;
      case ']': --square; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case ',':
        if (paren == 0 && angle == 0 && square == 0 && brace == 0) {
          out.push_back(trim(cur));
          cur.clear();
          continue;
        }
        break;
      default: break;
    }
    cur += c;
  }
  const std::string last = trim(cur);
  if (!last.empty() || !out.empty()) out.push_back(last);
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

/// Last identifier token of a declaration fragment ("const std::string&
/// path" -> "path").
std::string last_identifier(const std::string& text) {
  std::size_t e = text.size();
  while (e > 0 && !is_ident_char(text[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  return text.substr(b, e - b);
}

/// Normalizes a lock/argument expression: whitespace removed, leading
/// &/* and this-> stripped ("& this -> mu_" -> "mu_").
std::string normalize_expr(std::string_view s) {
  std::string out;
  for (const char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  while (!out.empty() && (out.front() == '&' || out.front() == '*'))
    out.erase(out.begin());
  if (out.rfind("this->", 0) == 0) out.erase(0, 6);
  return out;
}

bool is_simple_identifier(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  return std::all_of(s.begin(), s.end(), is_ident_char);
}

// ---------------------------------------------------------------------------
// Sink / event patterns
// ---------------------------------------------------------------------------

const std::regex& io_sink_re() {
  static const std::regex re(
      R"(\b(printf|fprintf|puts|fputs|fwrite|fread|fopen|fclose|fflush|getline)\s*\(|\bstd\s*::\s*(cout|cerr|ifstream|ofstream|fstream)\b|\bDSP_(DEBUG|INFO|WARN|ERROR|LOG_AT)\s*\(|\blog_detail\s*::\s*emit\b)");
  return re;
}

/// Nondeterminism tokens: the union of srclint's D000/D001/D002 pattern
/// sets plus hash-order containers (D003's token) — what D006 reports
/// when one is reachable from a core/sim entry point through calls.
const std::regex& nondet_sink_re() {
  static const std::regex re(
      R"(\b(srand|srandom|rand_r|drand48|lrand48|mrand48|rand|random)\s*\(|\bstd\s*::\s*random_device\b|\btime\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b|\bunordered_(map|set|multimap|multiset)\b)");
  return re;
}

const std::regex& raii_lock_re() {
  static const std::regex re(
      R"(\b(MutexLock|scoped_lock|lock_guard|unique_lock|shared_lock)\b)");
  return re;
}

const std::regex& manual_lock_re() {
  static const std::regex re(
      R"(([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\))");
  return re;
}

const std::regex& call_re() {
  static const std::regex re(
      R"(((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\()");
  return re;
}

const std::regex& lambda_assign_re() {
  static const std::regex re(R"(\b([A-Za-z_]\w*)\s*=\s*\[)");
  return re;
}

/// Mutating container calls counted as writes for L003.
const std::regex& mutator_write_re() {
  static const std::regex re(
      R"(\b([A-Za-z_]\w*_)\s*(?:\[[^\]]*\]\s*)?\.\s*(push_back|emplace_back|pop_back|clear|resize|assign|insert|erase|emplace|fill|reserve)\s*\()");
  return re;
}

/// Assignment / compound-assignment / increment targets ending in '_'.
const std::regex& assign_write_re() {
  static const std::regex re(
      R"(\b([A-Za-z_]\w*_)\s*(?:\[[^\]]*\]\s*)?(=|\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>=|\+\+|--))");
  return re;
}

const std::regex& requires_re() {
  static const std::regex re(R"(DSP_REQUIRES\s*\()");
  return re;
}

// ---------------------------------------------------------------------------
// Indexer state machine
// ---------------------------------------------------------------------------

struct Frame {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = kBlock;
  std::string name;
  int entry_depth = 0;  ///< Brace depth before this scope's '{'.
  int fn = -1;          ///< functions index for kFunction frames.
  std::size_t held_base = 0;  ///< Held-stack size at function entry.
};

struct HeldLock {
  std::string id;
  int depth = 0;  ///< Brace depth the RAII object lives at.
};

class Indexer {
 public:
  Indexer(std::string path, CppIndex& index)
      : file_(std::move(path)), index_(index) {}

  void run(std::string_view text);
  void run_lines(const std::vector<Line>& lines);

 private:
  // --- scope helpers ---
  Frame* innermost_function() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Frame::kFunction) return &*it;
    return nullptr;
  }
  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Frame::kClass) return it->name;
    return "";
  }
  bool frame_alive(int fn) const {
    for (const Frame& f : scopes_)
      if (f.kind == Frame::kFunction && f.fn == fn) return true;
    return false;
  }

  /// Qualifies an expression as a member of `cls` when it follows the
  /// member convention (trailing underscore) or is a declared member.
  std::string qualify(const std::string& expr, const std::string& cls) const {
    if (cls.empty() || !is_simple_identifier(expr)) return expr;
    if (index_.member_types.count({cls, expr}) > 0 || expr.back() == '_')
      return cls + "::" + expr;
    return expr;
  }

  // --- declaration handling (outside function bodies) ---
  void classify_open_brace(int line_no);
  void handle_declaration_end(int line_no);
  bool try_start_function(const std::string& decl, int line_no,
                          bool as_lambda, const std::string& lambda_name);
  static std::vector<std::string> parse_requires(const std::string& decl);

  // --- body event extraction ---
  struct LineBuffer {
    int fn = -1;
    std::string text;
    std::vector<std::string> held_snapshot;  ///< Qualified ids at creation.
    std::size_t held_base = 0;
  };
  void append_body_char(char c, int line_no);
  void flush_line_buffers(int line_no);
  void scan_body(LineBuffer& buf, int line_no);

  // --- lambda detection ---
  void prescan_lambdas(const std::string& code, std::size_t line_start);

  std::string file_;
  CppIndex& index_;

  int depth_ = 0;
  std::vector<Frame> scopes_;
  std::string pending_;  ///< Declaration text since the last ; { }.
  std::vector<HeldLock> held_;
  std::vector<LineBuffer> line_buffers_;

  /// Positions (within the current line) where a '{' opens the body of a
  /// variable-assigned lambda, with the variable name.
  std::map<std::size_t, std::string> lambda_bodies_;
  std::size_t line_pos_ = 0;  ///< Current column during the char walk.
};

std::vector<std::string> Indexer::parse_requires(const std::string& decl) {
  std::vector<std::string> out;
  std::smatch m;
  std::string rest = decl;
  while (std::regex_search(rest, m, requires_re())) {
    const std::size_t open = static_cast<std::size_t>(m.position(0)) +
                             m.str(0).size() - 1;
    const std::size_t close = match_bracket(rest, open);
    if (close == std::string::npos) break;
    for (const std::string& arg :
         split_top_commas(rest.substr(open + 1, close - open - 1))) {
      const std::string norm = normalize_expr(arg);
      if (!norm.empty() && norm[0] != '!') out.push_back(norm);
    }
    rest = rest.substr(close + 1);
  }
  return out;
}

/// Parses `decl` (the accumulated text before a '{') as a function
/// signature; on success creates the FunctionInfo and pushes its frame.
bool Indexer::try_start_function(const std::string& decl, int line_no,
                                 bool as_lambda,
                                 const std::string& lambda_name) {
  FunctionInfo fn;
  fn.file = file_;
  fn.begin_line = line_no;

  if (as_lambda) {
    fn.is_lambda = true;
    fn.name = lambda_name;
    fn.cls = current_class();
    const Frame* parent = innermost_function();
    fn.parent = parent != nullptr ? index_.functions[parent->fn].qual : "";
    if (!parent && !fn.cls.empty()) fn.parent = fn.cls;
    fn.qual = (fn.parent.empty() ? "" : fn.parent + "::") + fn.name;
    // Lambda parameters ("[&](std::size_t i)") are not needed by the
    // flow rules; captures make argument substitution meaningless.
  } else {
    // Reject obvious non-functions: initializers and control flow.
    const std::string t = trim(decl);
    if (t.empty() || t.back() == '=' || t.back() == ',') return false;

    // The function name is the first (possibly ::-qualified) identifier
    // directly followed by '(' that is not a keyword. This lands on the
    // declarator for every signature shape in this codebase: leading
    // return types are never called ("void", "std::uint64_t"), and
    // constructor-initializer lists sit after the ')' so they cannot
    // match first.
    std::smatch m;
    std::string rest = decl;
    std::size_t offset = 0;
    std::string qual_name;
    std::size_t params_open = std::string::npos;
    while (std::regex_search(rest, m, call_re())) {
      const std::string candidate = m.str(1);
      std::string simple = candidate;
      const std::size_t sep = simple.rfind("::");
      if (sep != std::string::npos) simple = simple.substr(sep + 2);
      if (!is_keyword(simple) && !simple.empty()) {
        qual_name = candidate;
        params_open = offset + static_cast<std::size_t>(m.position(0)) +
                      m.str(0).size() - 1;
        break;
      }
      const std::size_t advance =
          static_cast<std::size_t>(m.position(0)) + m.str(0).size();
      offset += advance;
      rest = rest.substr(advance);
    }
    if (qual_name.empty()) return false;

    const std::size_t params_close = match_bracket(decl, params_open);
    if (params_close == std::string::npos) return false;

    // Strip whitespace inside the qualified name ("EventLog :: open").
    std::string compact;
    for (const char c : qual_name)
      if (!std::isspace(static_cast<unsigned char>(c))) compact += c;
    const std::size_t sep = compact.rfind("::");
    fn.name = sep == std::string::npos ? compact : compact.substr(sep + 2);
    if (sep != std::string::npos) {
      const std::string before = compact.substr(0, sep);
      const std::size_t prev = before.rfind("::");
      fn.cls = prev == std::string::npos ? before : before.substr(prev + 2);
    } else {
      fn.cls = current_class();
    }
    fn.qual = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;

    for (const std::string& param : split_top_commas(
             decl.substr(params_open + 1, params_close - params_open - 1))) {
      std::string p = param;
      const std::size_t eq = p.find('=');
      if (eq != std::string::npos) p = p.substr(0, eq);
      const std::string name = last_identifier(p);
      fn.params.push_back(name);
    }
    for (std::string& lock : parse_requires(decl)) {
      const bool is_param = std::find(fn.params.begin(), fn.params.end(),
                                      lock) != fn.params.end();
      fn.requires_locks.push_back(is_param ? lock : qualify(lock, fn.cls));
    }
  }

  const int idx = static_cast<int>(index_.functions.size());
  index_.functions.push_back(std::move(fn));
  Frame frame;
  frame.kind = Frame::kFunction;
  frame.name = index_.functions[idx].name;
  frame.entry_depth = depth_ - 1;  // '{' already counted
  frame.fn = idx;
  frame.held_base = held_.size();
  scopes_.push_back(frame);
  return true;
}

void Indexer::classify_open_brace(int line_no) {
  // Remove thread-safety attribute macros so "class DSP_CAPABILITY(..)
  // Mutex {" classifies by its real tokens.
  static const std::regex kAttr(R"(\bDSP_[A-Z_]+\s*(\([^)]*\))?)");
  std::string decl = std::regex_replace(pending_, kAttr, " ");
  static const std::regex kAccess(R"(\b(public|private|protected)\s*:)");
  decl = std::regex_replace(decl, kAccess, " ");

  std::smatch m;
  static const std::regex kNamespaceRe(
      R"(^\s*(?:inline\s+)?namespace\b\s*([A-Za-z_][\w:]*)?\s*$)");
  static const std::regex kClassRe(
      R"((?:class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{]*)?$)");
  static const std::regex kEnumExternRe(R"(^\s*(enum\b|extern\b[^(]*$))");

  const std::string t = trim(decl);
  Frame frame;
  frame.entry_depth = depth_ - 1;
  if (std::regex_match(t, m, kNamespaceRe)) {
    frame.kind = Frame::kNamespace;
    frame.name = m[1].matched ? m.str(1) : "";
    scopes_.push_back(frame);
  } else if (std::regex_search(t, m, kClassRe) &&
             t.find('(') == std::string::npos) {
    frame.kind = Frame::kClass;
    frame.name = m.str(1);
    scopes_.push_back(frame);
  } else if (std::regex_search(t, m, kEnumExternRe) ||
             !try_start_function(pending_, line_no, false, "")) {
    frame.kind = Frame::kBlock;
    scopes_.push_back(frame);
  }
  pending_.clear();
}

/// A ';' outside function bodies ends a declaration: record member
/// variables (type + guarded-ness) inside classes and DSP_REQUIRES on
/// method declarations.
void Indexer::handle_declaration_end(int /*line_no*/) {
  const std::string cls = current_class();
  std::string decl = trim(pending_);
  pending_.clear();
  if (decl.empty()) return;
  static const std::regex kAccess(R"(\b(public|private|protected)\s*:)");
  decl = trim(std::regex_replace(decl, kAccess, " "));
  if (decl.empty()) return;

  if (decl.find('(') != std::string::npos) {
    // Method declaration: keep its DSP_REQUIRES for the out-of-class
    // definition (Clang TSA style puts the annotation on declarations).
    const std::vector<std::string> locks = parse_requires(decl);
    if (locks.empty() || cls.empty()) return;
    std::smatch m;
    std::string rest = decl;
    while (std::regex_search(rest, m, call_re())) {
      std::string simple = m.str(1);
      const std::size_t sep = simple.rfind("::");
      if (sep != std::string::npos) simple = simple.substr(sep + 2);
      if (!is_keyword(simple)) {
        std::vector<std::string>& slot =
            index_.decl_requires[cls + "::" + simple];
        for (const std::string& lock : locks)
          slot.push_back(lock.find("::") == std::string::npos &&
                                 is_simple_identifier(lock)
                             ? qualify(lock, cls)
                             : lock);
        return;
      }
      rest = m.suffix();
    }
    return;
  }
  if (cls.empty()) return;

  // Member variable: the declared name is the identifier followed by a
  // guard annotation, initializer, or end of declaration.
  static const std::regex kMember(
      R"(([A-Za-z_]\w*)\s*(?:\[\s*\w*\s*\])?\s*(DSP_(?:PT_)?GUARDED_BY\s*\([^)]*\))?\s*(=[^;]*|\{[^;]*\})?$)");
  std::smatch m;
  if (decl.rfind("using", 0) == 0 || decl.rfind("typedef", 0) == 0 ||
      decl.rfind("friend", 0) == 0)
    return;
  if (!std::regex_search(decl, m, kMember) || !m[1].matched) return;
  const std::string name = m.str(1);
  const std::string type = trim(decl.substr(0, static_cast<std::size_t>(m.position(1))));
  if (type.empty() || is_keyword(name)) return;
  index_.member_types[{cls, name}] = type;
  const bool guarded = m[2].matched ||
                       type.find("atomic") != std::string::npos ||
                       type.find("thread_local") != std::string::npos;
  if (guarded) {
    index_.guarded_members.insert(cls + "::" + name);
    index_.guarded_bare.insert(name);
  }
}

void Indexer::prescan_lambdas(const std::string& code, std::size_t) {
  lambda_bodies_.clear();
  for (std::sregex_iterator it(code.begin(), code.end(), lambda_assign_re()),
       end;
       it != end; ++it) {
    const std::string name = it->str(1);
    const std::size_t bracket =
        static_cast<std::size_t>(it->position(0)) + it->str(0).size() - 1;
    std::size_t close = match_bracket(code, bracket);
    if (close == std::string::npos) continue;
    std::size_t pos = close + 1;
    while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])))
      ++pos;
    if (pos < code.size() && code[pos] == '(') {
      const std::size_t params_close = match_bracket(code, pos);
      if (params_close == std::string::npos) continue;
      pos = params_close + 1;
    }
    // Skip mutable / noexcept / -> type until the body brace.
    while (pos < code.size() && code[pos] != '{' && code[pos] != ';' &&
           code[pos] != ',')
      ++pos;
    if (pos < code.size() && code[pos] == '{') lambda_bodies_[pos] = name;
  }
}

void Indexer::append_body_char(char c, int line_no) {
  Frame* fn = innermost_function();
  if (fn == nullptr) return;
  if (line_buffers_.empty() || line_buffers_.back().fn != fn->fn) {
    LineBuffer buf;
    buf.fn = fn->fn;
    buf.held_base = fn->held_base;
    for (std::size_t i = fn->held_base; i < held_.size(); ++i)
      buf.held_snapshot.push_back(held_[i].id);
    line_buffers_.push_back(std::move(buf));
  }
  line_buffers_.back().text += c;
  (void)line_no;
}

void Indexer::run(std::string_view text) { run_lines(lex_lines(text)); }

void Indexer::run_lines(const std::vector<Line>& lines) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const Line& line = lines[li];
    const int line_no = static_cast<int>(li) + 1;

    const std::vector<std::string> allows = parse_allows(line.comment);
    if (!allows.empty()) index_.allows[file_][line_no] = allows;
    if (line.preprocessor) continue;

    prescan_lambdas(line.code, 0);
    line_buffers_.clear();

    for (std::size_t j = 0; j < line.code.size(); ++j) {
      const char c = line.code[j];
      line_pos_ = j;
      if (c == '{') {
        ++depth_;
        const auto lambda = lambda_bodies_.find(j);
        if (lambda != lambda_bodies_.end()) {
          try_start_function("", line_no, true, lambda->second);
        } else if (innermost_function() != nullptr) {
          // Plain block (or inline lambda) inside a body.
        } else {
          classify_open_brace(line_no);
        }
        continue;
      }
      if (c == '}') {
        --depth_;
        while (!held_.empty() && held_.back().depth > depth_)
          held_.pop_back();
        while (!scopes_.empty() && scopes_.back().entry_depth >= depth_) {
          Frame& f = scopes_.back();
          if (f.kind == Frame::kFunction) {
            index_.functions[f.fn].end_line = line_no;
            if (held_.size() > f.held_base) held_.resize(f.held_base);
          }
          scopes_.pop_back();
        }
        if (innermost_function() == nullptr) pending_.clear();
        continue;
      }
      if (innermost_function() != nullptr) {
        append_body_char(c, line_no);
      } else {
        if (c == ';') {
          handle_declaration_end(line_no);
        } else {
          pending_ += c;
        }
      }
    }
    flush_line_buffers(line_no);
  }
}

// ---------------------------------------------------------------------------
// Body event extraction
// ---------------------------------------------------------------------------

void Indexer::flush_line_buffers(int line_no) {
  for (LineBuffer& buf : line_buffers_) scan_body(buf, line_no);
  line_buffers_.clear();
}

void Indexer::scan_body(LineBuffer& buf, int line_no) {
  FunctionInfo& fn = index_.functions[buf.fn];
  const std::string& body = buf.text;
  const std::string cls = fn.cls;
  const bool io_exempt =
      path_has(file_, "util/log.") || path_has(file_, "obs/events.");

  // Events are processed in positional order so that a lock declared
  // earlier on the line covers calls and writes after it.
  struct Event {
    std::size_t pos;
    int kind;  // 0 = RAII lock, 1 = manual lock/unlock, 2 = call
    std::smatch m;
  };
  std::vector<Event> events;
  std::vector<std::pair<std::size_t, std::size_t>> masked;  // skip spans

  for (std::sregex_iterator it(body.begin(), body.end(), raii_lock_re()), end;
       it != end; ++it)
    events.push_back({static_cast<std::size_t>(it->position(0)), 0, *it});
  for (std::sregex_iterator it(body.begin(), body.end(), manual_lock_re()), end;
       it != end; ++it)
    events.push_back({static_cast<std::size_t>(it->position(0)), 1, *it});
  for (std::sregex_iterator it(body.begin(), body.end(), call_re()), end;
       it != end; ++it)
    events.push_back({static_cast<std::size_t>(it->position(0)), 2, *it});
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.pos < b.pos; });

  std::vector<std::string> held = buf.held_snapshot;
  std::vector<std::string> newly_acquired;
  std::vector<std::string> released;

  const auto in_mask = [&](std::size_t pos) {
    for (const auto& [b, e] : masked)
      if (pos >= b && pos < e) return true;
    return false;
  };

  for (Event& ev : events) {
    if (in_mask(ev.pos)) continue;
    if (ev.kind == 0) {
      // RAII lock declaration: Type [<...>] var(args) or var{args}.
      std::size_t pos = ev.pos + ev.m.str(0).size();
      while (pos < body.size() && std::isspace(static_cast<unsigned char>(body[pos])))
        ++pos;
      if (pos < body.size() && body[pos] == '<') {
        const std::size_t close = match_bracket(body, pos);
        if (close == std::string::npos) continue;
        pos = close + 1;
      }
      while (pos < body.size() && (std::isspace(static_cast<unsigned char>(body[pos]))))
        ++pos;
      std::size_t name_end = pos;
      while (name_end < body.size() && is_ident_char(body[name_end])) ++name_end;
      if (name_end == pos) continue;  // not a declaration (e.g. a cast)
      std::size_t open = name_end;
      while (open < body.size() && std::isspace(static_cast<unsigned char>(body[open])))
        ++open;
      if (open >= body.size() || (body[open] != '(' && body[open] != '{'))
        continue;
      const std::size_t close = match_bracket(body, open);
      if (close == std::string::npos) continue;
      masked.push_back({ev.pos, close + 1});
      const std::string args = body.substr(open + 1, close - open - 1);
      if (args.find("adopt_lock") != std::string::npos ||
          args.find("defer_lock") != std::string::npos ||
          args.find("try_to_lock") != std::string::npos)
        continue;
      for (const std::string& arg : split_top_commas(args)) {
        const std::string id = qualify(normalize_expr(arg), cls);
        if (id.empty()) continue;
        LockAcq acq;
        acq.lock = id;
        acq.line = line_no;
        acq.held_before = held;
        fn.acquisitions.push_back(std::move(acq));
        held.push_back(id);
        newly_acquired.push_back(id);
      }
    } else if (ev.kind == 1) {
      // Manual obj.lock() / obj.unlock().
      masked.push_back({ev.pos, ev.pos + ev.m.str(0).size()});
      const std::string id = qualify(normalize_expr(ev.m.str(1)), cls);
      if (ev.m.str(2) == "lock") {
        LockAcq acq;
        acq.lock = id;
        acq.line = line_no;
        acq.held_before = held;
        fn.acquisitions.push_back(std::move(acq));
        held.push_back(id);
        newly_acquired.push_back(id);
      } else {
        const auto it = std::find(held.rbegin(), held.rend(), id);
        if (it != held.rend()) held.erase(std::next(it).base());
        released.push_back(id);
      }
    } else {
      // Call site.
      const std::string qual_name = ev.m.str(1);
      std::string simple;
      for (const char c : qual_name)
        if (!std::isspace(static_cast<unsigned char>(c))) simple += c;
      const std::size_t sep = simple.rfind("::");
      if (sep != std::string::npos) simple = simple.substr(sep + 2);
      if (simple.empty() || simple[0] == '~' || is_keyword(simple)) continue;

      // Receiver: obj. / obj-> directly before the name. Otherwise check
      // the preceding token — an identifier there means this is a
      // declaration ("MutexLock lock(mu_)"), not a call.
      std::string object;
      bool this_call = true;
      std::size_t before = ev.pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(body[before - 1])))
        --before;
      if (before >= 1 && body[before - 1] == '.') {
        std::size_t ob = before - 1;
        std::size_t oe = ob;
        if (ob > 0 && body[ob - 1] == ']') {
          const std::size_t sq = body.rfind('[', ob - 1);
          if (sq != std::string::npos) ob = sq;
        }
        while (ob > 0 && is_ident_char(body[ob - 1])) --ob;
        object = body.substr(ob, oe - ob);
        this_call = false;
      } else if (before >= 2 && body[before - 2] == '-' && body[before - 1] == '>') {
        std::size_t ob = before - 2;
        while (ob > 0 && is_ident_char(body[ob - 1])) --ob;
        object = body.substr(ob, before - 2 - ob);
        this_call = object == "this";
        if (object == "this") object.clear();
      } else if (sep == std::string::npos) {
        // No receiver and unqualified: reject declarations.
        if (before > 0 && (is_ident_char(body[before - 1]) || body[before - 1] == '>' ||
                           body[before - 1] == '&' || body[before - 1] == '*')) {
          std::size_t tb = before;
          while (tb > 0 && is_ident_char(body[tb - 1])) --tb;
          const std::string prev_tok = body.substr(tb, before - tb);
          if (!is_call_context_keyword(prev_tok)) continue;
        }
      }
      // Trim the base identifier out of "victims_[k]"-style receivers.
      const std::size_t bracket = object.find('[');
      if (bracket != std::string::npos) object = object.substr(0, bracket);

      CallSite site;
      site.name = simple;
      site.object = normalize_expr(object);
      site.this_call = this_call;
      site.line = line_no;
      site.held = held;
      const std::size_t open = ev.pos + ev.m.str(0).size() - 1;
      const std::size_t close = match_bracket(body, open);
      if (close != std::string::npos) {
        for (const std::string& arg :
             split_top_commas(body.substr(open + 1, close - open - 1)))
          site.args.push_back(arg);
      }
      if (simple == "parallel_for" && site.args.size() >= 2) {
        ParallelForSite pf;
        pf.callback = normalize_expr(site.args[1]);
        pf.line = line_no;
        fn.parallel_fors.push_back(std::move(pf));
      }
      fn.calls.push_back(std::move(site));
    }
  }

  // Sinks and member writes see the whole line; "under a lock" means any
  // lock held when the line starts or acquired earlier on it.
  const bool any_held = !held.empty() || !buf.held_snapshot.empty();
  std::smatch m;
  if (!io_exempt && std::regex_search(body, m, io_sink_re())) {
    SinkSite s;
    for (const char c : m.str(0))
      if (!std::isspace(static_cast<unsigned char>(c))) s.token += c;
    s.line = line_no;
    fn.io_sites.push_back(std::move(s));
  }
  if (std::regex_search(body, m, nondet_sink_re())) {
    SinkSite s;
    for (const char c : m.str(0))
      if (!std::isspace(static_cast<unsigned char>(c))) s.token += c;
    s.line = line_no;
    fn.nondet_sites.push_back(std::move(s));
  }
  for (int pass = 0; pass < 2; ++pass) {
    const std::regex& re = pass == 0 ? mutator_write_re() : assign_write_re();
    for (std::sregex_iterator it(body.begin(), body.end(), re), end; it != end;
         ++it) {
      const std::string target = it->str(1);
      if (pass == 1) {
        // Exclude comparisons: "x_ == y", "x_ <= y" never match the ops
        // group, but "x_ =" preceded by < > ! = in the source would.
        const std::string op = it->str(2);
        if (op == "=") {
          const std::size_t op_pos =
              static_cast<std::size_t>(it->position(2));
          if (op_pos + 1 < body.size() && body[op_pos + 1] == '=') continue;
          if (op_pos > 0 && (body[op_pos - 1] == '<' || body[op_pos - 1] == '>' ||
                             body[op_pos - 1] == '!' || body[op_pos - 1] == '='))
            continue;
        }
      }
      if (std::find(fn.params.begin(), fn.params.end(), target) !=
          fn.params.end())
        continue;
      WriteSite w;
      w.member = qualify(target, cls);
      w.line = line_no;
      w.under_lock = any_held;
      fn.member_writes.push_back(std::move(w));
    }
  }

  // Persist RAII state only while the function is still open (a
  // single-line body released everything when its '}' popped the frame).
  if (frame_alive(buf.fn)) {
    for (const std::string& id : newly_acquired)
      held_.push_back({id, depth_});
    for (const std::string& id : released) {
      for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
        if (it->id == id) {
          held_.erase(std::next(it).base());
          break;
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool CppIndex::allowed_at(const std::string& file, int line,
                          std::string_view rule) const {
  const auto fit = allows.find(file);
  if (fit == allows.end()) return false;
  const auto lit = fit->second.find(line);
  if (lit == fit->second.end()) return false;
  return allowed(lit->second, rule);
}

void CppIndex::finalize() {
  by_name.clear();
  for (std::size_t i = 0; i < functions.size(); ++i) {
    FunctionInfo& fn = functions[i];
    by_name[fn.name].push_back(static_cast<int>(i));
    // Merge DSP_REQUIRES recorded on a header declaration into the
    // out-of-class definition.
    const auto it = decl_requires.find(fn.qual);
    if (it != decl_requires.end()) {
      for (const std::string& lock : it->second)
        if (std::find(fn.requires_locks.begin(), fn.requires_locks.end(),
                      lock) == fn.requires_locks.end())
          fn.requires_locks.push_back(lock);
    }
  }
}

void index_source(std::string_view path, std::string_view text,
                  CppIndex& index) {
  Indexer indexer(normalize_path(path), index);
  indexer.run(text);
}

void index_source_lines(std::string_view path, const std::vector<Line>& lines,
                        CppIndex& index) {
  Indexer indexer(normalize_path(path), index);
  indexer.run_lines(lines);
}

bool index_source_file(const std::string& path, CppIndex& index,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  index_source(path, buf.str(), index);
  return true;
}

}  // namespace dsp::analysis
