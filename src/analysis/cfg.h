// Per-function control-flow graphs for the dsp-dataflow analysis
// (dsp_tidy --dataflow).
//
// Like the rest of the source-level tooling this is built on cpp_lex's
// stripped line stream, not a compiler front end: the body of a function
// indexed by cpp_index (FunctionInfo::begin_line..end_line) is
// re-tokenized and parsed by a small recursive-descent statement walker
// that understands the structured control flow this codebase uses —
// if/else, while, do/while, for (classic and range), switch/case,
// break/continue/return, try/catch and nested compound blocks. Anything
// it cannot model (goto, expression lambdas) degrades to an opaque
// statement in the current block rather than a parse failure, so the
// downstream abstract interpretation stays sound-by-imprecision.
//
// Statements are stored as space-joined token text (one token stream,
// shared with domains.h's expression parser); edges are labeled with the
// branch sense and condition text so the dataflow solver can refine
// intervals and clear taint along the taken branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cpp_index.h"
#include "analysis/cpp_lex.h"

namespace dsp::analysis {

/// One token of a function body: text plus the 1-based source line.
struct CfgTok {
  std::string text;
  int line = 0;
};

/// Tokenizes the stripped code of `lines` (1-based, inclusive range).
/// Preprocessor lines are skipped; string/char literals (already blanked
/// by cpp_lex) collapse to `""` / `''` placeholder tokens; multi-char
/// operators (`<<=`, `->`, `::`, ...) stay single tokens.
std::vector<CfgTok> cfg_tokenize(const std::vector<Line>& lines,
                                 int begin_line, int end_line);

/// One statement of a basic block: space-joined token text.
struct CfgStmt {
  std::string text;
  int line = 0;
};

enum class EdgeKind : std::uint8_t {
  kFall,   ///< Unconditional fall-through.
  kTrue,   ///< Branch taken when `cond` holds.
  kFalse,  ///< Branch taken when `cond` fails.
  kBack,   ///< Loop back edge (cond, when set, held — do/while latch).
};

const char* to_string(EdgeKind k);

struct CfgEdge {
  int to = -1;
  EdgeKind kind = EdgeKind::kFall;
  std::string cond;  ///< Condition text for kTrue/kFalse (and guarded kBack).
};

struct BasicBlock {
  std::vector<CfgStmt> stmts;
  std::vector<CfgEdge> succ;
  bool is_loop_head = false;  ///< Widening point for the interval domain.
  int line = 0;               ///< Line of the first statement (or creation).
};

/// The graph of one function. blocks[entry] receives the initial state;
/// every `return` (and the body's fall-off end) edges into blocks[exit],
/// which is always empty.
struct Cfg {
  std::string file;
  std::string qual;
  int entry = 0;
  int exit = 1;
  std::vector<BasicBlock> blocks;

  /// Deterministic text rendering for the CFG golden tests:
  ///   cfg <qual>
  ///   b2: line 12 [loop]
  ///     stmt <text>
  ///     -> b3 true [<cond>]
  std::string dump() const;
};

/// Builds the CFG of `fn` from its file's lexed lines. The body is
/// located by matching the brace on fn.begin_line whose close falls on
/// fn.end_line (constructor init lists and one-line bodies included).
/// Returns an entry/exit-only graph when the body cannot be located.
Cfg build_cfg(const FunctionInfo& fn, const std::vector<Line>& lines);

}  // namespace dsp::analysis
