// Schedule constraint check pass (rules S000-S005).
//
// Verifies a solver-produced schedule — an IlpProblem instance plus a
// placement (machine per task, start time per task, optional declared
// makespan) — directly against the paper's §III ILP constraints without
// running the engine:
//   (4)  every completion <= L_MS                 -> S005
//   (5)(8) non-overlap per single-task machine    -> S002
//   (6)  per-task deadlines                       -> S003
//   (7)  precedence along dependency edges        -> S001
//   (9)-(11) valid machine assignment, start >= 0 -> S004
// Completion times carry the model's preemption padding
// n_preempt * recovery_s, exactly as build_ilp_model encodes them.
//
// The on-disk form is a JSON document (read/write below), the contract
// between solver and executor:
//   {"machines": [mips...], "recovery_s": 0.3, "makespan_s": 12.5,
//    "tasks": [{"size_mi": 1e3, "deadline_s": 10.0, "parents": [0],
//               "n_preempt": 0, "machine": 1, "start_s": 0.25}, ...]}
// `deadline_s`, `parents`, `n_preempt` and `makespan_s` are optional.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/diagnostics.h"
#include "core/ilp_model.h"

namespace dsp::analysis {

/// A schedule document: the instance and the solver's answer.
struct ScheduleDoc {
  IlpProblem problem;
  std::vector<int> machine_of;   ///< Per task: machine index.
  std::vector<double> start_s;   ///< Per task: start offset in seconds.
  double makespan_s = 0.0;       ///< Declared L_MS; meaningful iff has_makespan.
  bool has_makespan = false;

  /// Completion time of `t` under the model: start + exec + padding.
  /// Requires a valid machine assignment.
  double completion_s(std::size_t t) const;
};

/// Converts a solved IlpScheduleResult into a checkable document.
ScheduleDoc make_schedule_doc(const IlpProblem& problem,
                              const IlpScheduleResult& result);

/// Parses the JSON form. On failure returns false and stores a message.
bool read_schedule_json(std::istream& in, ScheduleDoc& out, std::string* error);
bool read_schedule_json(const std::string& path, ScheduleDoc& out,
                        std::string* error);

/// Writes the JSON form (the solver-to-executor handoff artifact).
void write_schedule_json(std::ostream& out, const ScheduleDoc& doc);

/// Options for check_schedule.
struct ScheduleCheckOptions {
  /// Absolute tolerance in seconds for time comparisons.
  double time_tol_s = 1e-6;
};

/// Runs S001-S005 over the document, appending findings to `report`.
/// Tasks failing S004 are excluded from the time-based rules (their
/// completion is undefined).
void check_schedule(const ScheduleDoc& doc, const ScheduleCheckOptions& options,
                    Report& report);

}  // namespace dsp::analysis
