// Generic forward dataflow solver over a Cfg (dsp-dataflow).
//
// The solver is a classic worklist fixpoint with widening, parameterized
// on a Domain policy so the interval and taint lattices (domains.h) — or
// a test-local toy lattice — plug in without touching the engine:
//
//   struct Domain {
//     using State = ...;                     // copyable
//     State bottom() const;                  // unreachable
//     State boundary() const;                // function-entry state
//     bool join_into(State& dst, const State& src) const;  // true: changed
//     void widen(State& s, const State& prev) const;       // loop heads
//     void transfer_stmt(const CfgStmt&, State&) const;
//     void transfer_edge(const CfgEdge&, State&) const;    // refinement
//   };
//
// Blocks are visited in reverse post order; after `widen_after` visits
// of a loop head the domain's widening operator is applied so infinite
// ascending chains (interval bounds growing 0,1,2,...) jump to their
// limit. `max_visits` is a hard safety valve on top — a domain whose
// widening is broken terminates anyway, with whatever post-fixpoint the
// final states reached (sound for the rules: they only get MORE
// approximate, never wrongly precise).
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "analysis/cfg.h"

namespace dsp::analysis {

template <typename Domain>
struct DataflowResult {
  /// State at each block's entry (before its first statement).
  std::vector<typename Domain::State> in;
};

/// Reverse post order from the entry; unreachable blocks keep their
/// relative index order at the tail so every block gets a slot.
inline std::vector<int> rpo_order(const Cfg& cfg) {
  const int n = static_cast<int>(cfg.blocks.size());
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> post;
  post.reserve(static_cast<std::size_t>(n));
  // Iterative DFS with an explicit stack of (block, next-edge) frames.
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(cfg.entry, 0);
  seen[static_cast<std::size_t>(cfg.entry)] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& succ = cfg.blocks[static_cast<std::size_t>(b)].succ;
    if (next < succ.size()) {
      const int to = succ[next++].to;
      if (to >= 0 && to < n && !seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = 1;
        stack.emplace_back(to, 0);
      }
    } else {
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  for (int b = 0; b < n; ++b)
    if (!seen[static_cast<std::size_t>(b)]) post.push_back(b);
  return post;
}

template <typename Domain>
DataflowResult<Domain> solve_forward(const Cfg& cfg, const Domain& dom,
                                     int widen_after = 3,
                                     int max_visits = 64) {
  const int n = static_cast<int>(cfg.blocks.size());
  DataflowResult<Domain> result;
  result.in.assign(static_cast<std::size_t>(n), dom.bottom());
  if (n == 0) return result;
  result.in[static_cast<std::size_t>(cfg.entry)] = dom.boundary();

  std::deque<int> worklist{cfg.entry};
  std::vector<char> queued(static_cast<std::size_t>(n), 0);
  queued[static_cast<std::size_t>(cfg.entry)] = 1;
  std::vector<int> visits(static_cast<std::size_t>(n), 0);

  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(b)] = 0;
    if (visits[static_cast<std::size_t>(b)]++ > max_visits) continue;

    typename Domain::State out = result.in[static_cast<std::size_t>(b)];
    for (const CfgStmt& s : cfg.blocks[static_cast<std::size_t>(b)].stmts)
      dom.transfer_stmt(s, out);

    for (const CfgEdge& e : cfg.blocks[static_cast<std::size_t>(b)].succ) {
      if (e.to < 0 || e.to >= n) continue;
      typename Domain::State along = out;
      dom.transfer_edge(e, along);
      typename Domain::State& dst = result.in[static_cast<std::size_t>(e.to)];
      typename Domain::State joined = dst;
      if (!dom.join_into(joined, along)) continue;
      if (cfg.blocks[static_cast<std::size_t>(e.to)].is_loop_head &&
          visits[static_cast<std::size_t>(e.to)] >= widen_after)
        dom.widen(joined, dst);
      dst = std::move(joined);
      if (!queued[static_cast<std::size_t>(e.to)]) {
        queued[static_cast<std::size_t>(e.to)] = 1;
        worklist.push_back(e.to);
      }
    }
  }
  return result;
}

}  // namespace dsp::analysis
