// Preemption audit replay pass (rules P000-P004).
//
// Replays a recorded PR-1 audit trail (obs/audit.h JSON) and statically
// re-derives whether every Algorithm-1 decision was legal:
//   P002 — C1: a non-urgent fire requires candidate priority strictly
//          above the victim's.
//   P003 — C2: a fire is illegal when the candidate (transitively)
//          depends on the victim; needs the workload's DAGs.
//   P004 — the PP gate: with normalized preemption enabled, a non-urgent
//          fire requires P-tilde = P-hat/P-bar > rho, and a suppression
//          requires P-tilde <= rho.
//   P001 — Formula 12 monotonicity: when the candidate is an ancestor of
//          the victim (its completion transitively unlocks the victim),
//          Formula 12 folds the victim's subtree into the candidate's
//          priority scaled by (gamma+1) >= 1, so the recorded candidate
//          priority must dominate the victim's (the T_11 > T_6 > T_1
//          ordering of Fig. 3). Checked only while both priorities are
//          positive: past-deadline tasks can carry negative allowable
//          waiting time (Formula 13's omega3 term), which voids the bound.
//   P000 — trail integrity: decisions out of time order, or task ids that
//          do not exist in the supplied workload.
#pragma once

#include <vector>

#include "analysis/diagnostics.h"
#include "dag/job.h"
#include "obs/audit.h"

namespace dsp::analysis {

/// Options for replay_audit.
struct AuditReplayOptions {
  /// Workload the trail was recorded against (same finalized jobs, same
  /// order — gids are flat indices over it). Enables P001/P003 and the
  /// P000 gid-range check; null restricts the replay to the
  /// priority-arithmetic rules (P002/P004).
  const JobSet* workload = nullptr;
  /// Absolute tolerance for priority/gap comparisons.
  double tol = 1e-9;
};

/// Replays every decision, appending findings to `report`. The decision's
/// position in the trail (plus its engine time) names the subject.
void replay_audit(const std::vector<obs::PreemptDecision>& decisions,
                  const AuditReplayOptions& options, Report& report);

}  // namespace dsp::analysis
