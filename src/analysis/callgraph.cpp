#include "analysis/callgraph.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dsp::analysis {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Whole-word occurrence of `word` in `text` ("CondVar" in "CondVar" yes,
/// "CondVar" in "std::condition_variable" no).
bool contains_word(const std::string& text, const std::string& word) {
  if (word.empty()) return false;
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end == text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

/// Prepends `step` to `chain`.
Chain prepend(const ChainStep& step, const Chain& chain) {
  Chain out;
  out.reserve(chain.size() + 1);
  out.push_back(step);
  out.insert(out.end(), chain.begin(), chain.end());
  return out;
}

}  // namespace

bool is_guarded_member(const CppIndex& index, const std::string& member) {
  if (index.guarded_members.count(member) > 0) return true;
  const std::size_t sep = member.rfind("::");
  const std::string bare =
      sep == std::string::npos ? member : member.substr(sep + 2);
  return index.guarded_bare.count(bare) > 0;
}

std::string format_chain(const Chain& chain) {
  std::ostringstream out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out << " -> ";
    out << chain[i].note << " (" << chain[i].file << ":" << chain[i].line
        << ")";
  }
  return out.str();
}

CallGraph::CallGraph(const CppIndex& index)
    : index_(&index),
      summaries_(index.functions.size()),
      state_(index.functions.size(), 0) {}

int CallGraph::resolve_callback(const FunctionInfo& caller,
                                const std::string& name) const {
  const auto it = index_->by_name.find(name);
  if (it == index_->by_name.end()) return -1;
  // Prefer the lambda assigned inside the calling function; fall back to
  // any unique function with that name (a named free-function callback).
  for (const int idx : it->second) {
    const FunctionInfo& f = index_->functions[idx];
    if (f.is_lambda && f.parent == caller.qual) return idx;
  }
  if (it->second.size() == 1) return it->second[0];
  return -1;
}

std::vector<int> CallGraph::resolve(const FunctionInfo& caller,
                                    const CallSite& site) const {
  std::vector<int> out;
  const auto it = index_->by_name.find(site.name);
  if (it == index_->by_name.end()) return out;
  const std::vector<int>& candidates = it->second;

  // A lambda defined in this function shadows everything else.
  for (const int idx : candidates) {
    const FunctionInfo& f = index_->functions[idx];
    if (f.is_lambda && f.parent == caller.qual) return {idx};
  }

  if (!site.this_call && !site.object.empty()) {
    // Receiver-type narrowing: when the receiver is a declared member of
    // the caller's class, keep only candidates whose class names appear
    // in the member's type text.
    if (!caller.cls.empty()) {
      const auto type_it =
          index_->member_types.find({caller.cls, site.object});
      if (type_it != index_->member_types.end()) {
        for (const int idx : candidates) {
          const FunctionInfo& f = index_->functions[idx];
          if (f.is_lambda) continue;
          if (!f.cls.empty() && contains_word(type_it->second, f.cls))
            out.push_back(idx);
        }
        return out;  // possibly empty: narrowed away (external type)
      }
    }
    // Unknown receiver: every non-lambda method candidate survives.
    for (const int idx : candidates) {
      const FunctionInfo& f = index_->functions[idx];
      if (!f.is_lambda) out.push_back(idx);
    }
    return out;
  }

  // No receiver (or this->): same-class methods first, else free
  // functions and other-file lambdas are out of reach.
  std::vector<int> same_class;
  std::vector<int> free_fns;
  for (const int idx : candidates) {
    const FunctionInfo& f = index_->functions[idx];
    if (f.is_lambda) continue;
    if (!caller.cls.empty() && f.cls == caller.cls) same_class.push_back(idx);
    if (f.cls.empty()) free_fns.push_back(idx);
  }
  if (!same_class.empty()) return same_class;
  return free_fns;
}

const FunctionSummary& CallGraph::summary(int fn) {
  compute(fn);
  return summaries_[fn];
}

void CallGraph::compute(int fn) {
  if (state_[fn] != 0) return;  // done, or in progress (cycle: stay empty)
  state_[fn] = 1;

  const FunctionInfo& info = index_->functions[fn];
  FunctionSummary& s = summaries_[fn];

  for (const LockAcq& acq : info.acquisitions) {
    if (s.acquires.count(acq.lock) > 0) continue;
    FunctionSummary::LockInfo li;
    li.chain = {{info.file, acq.line, info.qual, "acquires " + acq.lock}};
    li.via_this = true;
    s.acquires.emplace(acq.lock, std::move(li));
  }
  if (!info.io_sites.empty() && s.io.empty()) {
    const SinkSite& site = info.io_sites.front();
    s.io.push_back(
        {{{info.file, site.line, info.qual, "does I/O via " + site.token}},
         site.token});
  }
  for (const SinkSite& site : info.nondet_sites) {
    if (s.nondet.count(site.token) > 0) continue;
    s.nondet.emplace(
        site.token,
        FunctionSummary::SinkInfo{
            {{info.file, site.line, info.qual, "uses " + site.token}},
            site.token});
  }
  for (const WriteSite& w : info.member_writes) {
    if (w.under_lock || is_guarded_member(*index_, w.member)) continue;
    if (s.unguarded_writes.count(w.member) > 0) continue;
    s.unguarded_writes.emplace(
        w.member,
        Chain{{info.file, w.line, info.qual, "writes " + w.member}});
  }

  for (const CallSite& call : info.calls) {
    for (const int target : resolve(info, call)) {
      if (target == fn) continue;
      compute(target);
      if (state_[target] == 1) continue;  // recursion: skip the back edge
      const FunctionSummary& ts = summaries_[target];
      const FunctionInfo& tinfo = index_->functions[target];
      const ChainStep step{info.file, call.line, info.qual,
                           "calls " + tinfo.qual};
      for (const auto& [lock, li] : ts.acquires) {
        if (s.acquires.count(lock) > 0) continue;
        FunctionSummary::LockInfo merged;
        merged.chain = prepend(step, li.chain);
        merged.via_this = li.via_this && call.this_call;
        s.acquires.emplace(lock, std::move(merged));
      }
      if (s.io.empty() && !ts.io.empty())
        s.io.push_back({prepend(step, ts.io.front().chain),
                        ts.io.front().token});
      for (const auto& [token, si] : ts.nondet) {
        if (s.nondet.count(token) > 0) continue;
        s.nondet.emplace(token, FunctionSummary::SinkInfo{
                                    prepend(step, si.chain), token});
      }
      for (const auto& [member, chain] : ts.unguarded_writes) {
        if (s.unguarded_writes.count(member) > 0) continue;
        s.unguarded_writes.emplace(member, prepend(step, chain));
      }
    }
  }
  state_[fn] = 2;
}

}  // namespace dsp::analysis
