#include "analysis/workload_lint.h"

#include <cstdio>

#include "trace/trace_io.h"
#include "util/time.h"

namespace dsp::analysis {
namespace {

std::string job_subject(const Job& job) {
  return "job " + std::to_string(job.id());
}

void check_deadline_feasibility(const Job& job, const ClusterSpec& cluster,
                                Report& report) {
  if (job.deadline() == kMaxTime || !job.finalized()) return;
  const double rate = cluster.max_rate();
  if (rate <= 0.0) return;
  const SimTime cp = job.critical_path_time(rate);
  const SimTime earliest = job.arrival() + cp;
  if (earliest > job.deadline()) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "critical path needs %s on the fastest node (%.0f MIPS), but "
                  "only %s remain between arrival and deadline",
                  format_time(cp).c_str(), rate,
                  format_time(job.deadline() - job.arrival()).c_str());
    report.add("W003", job_subject(job), buf);
  }
}

void check_demand_satisfiable(const Job& job, const ClusterSpec& cluster,
                              Report& report) {
  for (TaskIndex t = 0; t < job.task_count(); ++t) {
    const Resources& demand = job.task(t).demand;
    bool fits_somewhere = false;
    for (std::size_t k = 0; k < cluster.size(); ++k) {
      if (cluster.node(k).capacity.fits(demand)) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere) {
      report.add("W004", job_subject(job) + " task " + std::to_string(t),
                 "demand " + demand.to_string() + " exceeds every node's "
                 "capacity (" + std::to_string(cluster.size()) + " nodes)");
    }
  }
}

}  // namespace

void lint_workload(const JobSet& jobs, const WorkloadLintOptions& options,
                   Report& report) {
  for (const Job& job : jobs) {
    for (const std::string& problem : validate_job(job, options.limits))
      report.add("W005", job_subject(job), problem);
    if (options.cluster != nullptr) {
      check_deadline_feasibility(job, *options.cluster, report);
      check_demand_satisfiable(job, *options.cluster, report);
    }
  }
}

JobSet load_workload_for_analysis(const std::string& path,
                                  double reference_rate, Report& report) {
  TraceParseResult parsed = read_trace_csv(path, reference_rate);
  for (const std::string& error : parsed.errors) {
    // The trace loader reports problems as strings; route the two
    // analyzability failures to their own rules (the messages are owned by
    // trace_io.cpp and covered by trace_test).
    if (error.find("cyclic") != std::string::npos) {
      report.add("W001", path, error);
    } else if (error.find("bad parent") != std::string::npos ||
               error.find("out of range") != std::string::npos) {
      report.add("W002", path, error);
    } else {
      report.add("W000", path, error);
    }
  }
  return std::move(parsed.jobs);
}

}  // namespace dsp::analysis
