#include "analysis/cfg.h"

#include <cctype>
#include <sstream>

namespace dsp::analysis {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character operators, longest first so maximal munch wins.
constexpr const char* kOps3[] = {"<<=", ">>=", "->*", "..."};
constexpr const char* kOps2[] = {"<<", ">>", "<=", ">=", "==", "!=", "&&",
                                 "||", "->", "::", "++", "--", "+=", "-=",
                                 "*=", "/=", "%=", "&=", "|=", "^="};

}  // namespace

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::kFall: return "fall";
    case EdgeKind::kTrue: return "true";
    case EdgeKind::kFalse: return "false";
    case EdgeKind::kBack: return "back";
  }
  return "?";
}

std::vector<CfgTok> cfg_tokenize(const std::vector<Line>& lines,
                                 int begin_line, int end_line) {
  std::vector<CfgTok> toks;
  for (int ln = begin_line; ln <= end_line; ++ln) {
    const std::size_t idx = static_cast<std::size_t>(ln - 1);
    if (idx >= lines.size()) break;
    if (lines[idx].preprocessor) continue;
    const std::string& s = lines[idx].code;
    std::size_t p = 0;
    while (p < s.size()) {
      const char c = s[p];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++p;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t q = p + 1;
        while (q < s.size() && is_ident_char(s[q])) ++q;
        toks.push_back({s.substr(p, q - p), ln});
        p = q;
        continue;
      }
      if (is_digit(c) || (c == '.' && p + 1 < s.size() && is_digit(s[p + 1]))) {
        // Number literal: digits, hex, separators, suffixes, and an
        // exponent sign directly after e/E/p/P.
        std::size_t q = p;
        while (q < s.size()) {
          const char d = s[q];
          if (is_ident_char(d) || d == '.' || d == '\'') {
            ++q;
          } else if ((d == '+' || d == '-') && q > p &&
                     (s[q - 1] == 'e' || s[q - 1] == 'E' || s[q - 1] == 'p' ||
                      s[q - 1] == 'P')) {
            ++q;
          } else {
            break;
          }
        }
        toks.push_back({s.substr(p, q - p), ln});
        p = q;
        continue;
      }
      if (c == '"' || c == '\'') {
        // cpp_lex blanked the body; collapse to a placeholder token.
        const std::size_t close = s.find(c, p + 1);
        toks.push_back({std::string(2, c), ln});
        p = close == std::string::npos ? s.size() : close + 1;
        continue;
      }
      bool matched = false;
      for (const char* op : kOps3) {
        if (s.compare(p, 3, op) == 0) {
          toks.push_back({op, ln});
          p += 3;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (const char* op : kOps2) {
        if (s.compare(p, 2, op) == 0) {
          toks.push_back({op, ln});
          p += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      toks.push_back({std::string(1, c), ln});
      ++p;
    }
  }
  return toks;
}

namespace {

/// Recursive-descent statement parser over the body token range.
class CfgBuilder {
 public:
  CfgBuilder(const std::vector<CfgTok>& toks, std::size_t lo, std::size_t hi)
      : t_(toks), pos_(lo), end_(hi) {}

  Cfg build(std::string file, std::string qual) {
    cfg_.file = std::move(file);
    cfg_.qual = std::move(qual);
    new_block(line_here());  // entry
    new_block(line_here());  // exit
    cur_ = cfg_.entry;
    parse_seq();
    edge(cur_, cfg_.exit, EdgeKind::kFall);
    return std::move(cfg_);
  }

 private:
  struct BreakCtx {
    bool is_loop = false;       ///< continue binds only to loops.
    int continue_to = -1;       ///< Latch (for) or head (while) block.
    bool continue_back = false; ///< continue edge is the back edge itself.
    std::vector<int> breaks;    ///< Blocks whose flow exits to `after`.
  };

  bool done() const { return pos_ >= end_; }
  const std::string& peek() const {
    static const std::string kEnd;
    return done() ? kEnd : t_[pos_].text;
  }
  int line_here() const {
    if (pos_ < end_) return t_[pos_].line;
    return end_ > 0 && end_ <= t_.size() ? t_[end_ - 1].line : 0;
  }
  void advance() { ++pos_; }
  bool accept(const char* tok) {
    if (peek() == tok) {
      advance();
      return true;
    }
    return false;
  }

  int new_block(int line) {
    cfg_.blocks.push_back({});
    cfg_.blocks.back().line = line;
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }
  void edge(int from, int to, EdgeKind k, std::string cond = {}) {
    cfg_.blocks[static_cast<std::size_t>(from)].succ.push_back(
        {to, k, std::move(cond)});
  }
  void add_stmt(int block, std::string text, int line) {
    if (text.empty()) return;
    cfg_.blocks[static_cast<std::size_t>(block)].stmts.push_back(
        {std::move(text), line});
  }

  static void append_tok(std::string& out, const std::string& tok) {
    if (!out.empty()) out += ' ';
    out += tok;
  }

  /// Collects tokens until a top-level `;` (consumed, not included) or a
  /// top-level `}` (not consumed). Always makes progress.
  std::string collect_until_semi() {
    std::string text;
    int depth = 0;
    const std::size_t start = pos_;
    while (!done()) {
      const std::string& tok = peek();
      if (depth == 0 && tok == ";") {
        advance();
        return text;
      }
      if (depth == 0 && tok == "}") break;
      if (tok == "(" || tok == "[" || tok == "{") ++depth;
      if (tok == ")" || tok == "]" || tok == "}") --depth;
      append_tok(text, tok);
      advance();
    }
    if (pos_ == start && !done()) advance();  // never stall on junk
    return text;
  }

  /// Consumes a parenthesized group `( ... )` and returns the inside.
  std::string collect_parens() {
    std::string text;
    if (!accept("(")) return text;
    int depth = 1;
    while (!done()) {
      const std::string& tok = peek();
      if (tok == "(") ++depth;
      if (tok == ")") {
        --depth;
        if (depth == 0) {
          advance();
          return text;
        }
      }
      append_tok(text, tok);
      advance();
    }
    return text;
  }

  void parse_seq() {
    while (!done() && peek() != "}") parse_stmt();
  }

  void parse_stmt() {
    const std::string& tok = peek();
    if (tok == "{") {
      advance();
      parse_seq();
      accept("}");
    } else if (tok == "if") {
      parse_if();
    } else if (tok == "while") {
      parse_while();
    } else if (tok == "for") {
      parse_for();
    } else if (tok == "do") {
      parse_do();
    } else if (tok == "switch") {
      parse_switch();
    } else if (tok == "try") {
      parse_try();
    } else if (tok == "break") {
      const int line = line_here();
      advance();
      accept(";");
      if (!ctxs_.empty()) ctxs_.back().breaks.push_back(cur_);
      cur_ = new_block(line);  // unreachable continuation
    } else if (tok == "continue") {
      const int line = line_here();
      advance();
      accept(";");
      for (auto it = ctxs_.rbegin(); it != ctxs_.rend(); ++it) {
        if (!it->is_loop) continue;
        edge(cur_, it->continue_to,
             it->continue_back ? EdgeKind::kBack : EdgeKind::kFall);
        break;
      }
      cur_ = new_block(line);
    } else if (tok == "return") {
      const int line = line_here();
      const std::string text = collect_until_semi();
      add_stmt(cur_, text, line);
      edge(cur_, cfg_.exit, EdgeKind::kFall);
      cur_ = new_block(line);
    } else if (tok == ";") {
      advance();
    } else if (tok == "else" || tok == "case" || tok == "default") {
      advance();  // stray label outside its construct; skip defensively
    } else {
      const int line = line_here();
      add_stmt(cur_, collect_until_semi(), line);
    }
  }

  void parse_if() {
    const int line = line_here();
    advance();  // if
    accept("constexpr");
    const std::string cond = collect_parens();
    const int head = cur_;
    add_stmt(head, cond, line);  // init-statements / side effects in the cond
    const int then_b = new_block(line);
    edge(head, then_b, EdgeKind::kTrue, cond);
    cur_ = then_b;
    parse_stmt();
    const int then_end = cur_;
    int else_end = -1;
    if (accept("else")) {
      const int else_b = new_block(line_here());
      edge(head, else_b, EdgeKind::kFalse, cond);
      cur_ = else_b;
      parse_stmt();
      else_end = cur_;
    }
    const int merge = new_block(line_here());
    edge(then_end, merge, EdgeKind::kFall);
    if (else_end >= 0)
      edge(else_end, merge, EdgeKind::kFall);
    else
      edge(head, merge, EdgeKind::kFalse, cond);
    cur_ = merge;
  }

  void parse_while() {
    const int line = line_here();
    advance();  // while
    const std::string cond = collect_parens();
    const int head = new_block(line);
    cfg_.blocks[static_cast<std::size_t>(head)].is_loop_head = true;
    edge(cur_, head, EdgeKind::kFall);
    add_stmt(head, cond, line);
    const int body = new_block(line);
    edge(head, body, EdgeKind::kTrue, cond);
    ctxs_.push_back({true, head, true, {}});
    cur_ = body;
    parse_stmt();
    edge(cur_, head, EdgeKind::kBack);
    const int after = new_block(line_here());
    edge(head, after, EdgeKind::kFalse, cond);
    for (const int b : ctxs_.back().breaks) edge(b, after, EdgeKind::kFall);
    ctxs_.pop_back();
    cur_ = after;
  }

  void parse_for() {
    const int line = line_here();
    advance();  // for
    if (!accept("(")) return;
    // Split the header at top-level ';' / ':' inside the parens.
    std::string init, cond, incr;
    bool range_for = false;
    {
      int depth = 0;
      int part = 0;
      std::string* dst[3] = {&init, &cond, &incr};
      while (!done()) {
        const std::string& tok = peek();
        if (tok == "(" || tok == "[" || tok == "{") ++depth;
        if (tok == "]" || tok == "}") --depth;
        if (tok == ")") {
          if (depth == 0) {
            advance();
            break;
          }
          --depth;
        }
        if (depth == 0 && tok == ";" && part < 2) {
          ++part;
          advance();
          continue;
        }
        if (depth == 0 && tok == ":" && part == 0) {
          range_for = true;
          ++part;
          advance();
          continue;
        }
        append_tok(*dst[part], tok);
        advance();
      }
    }
    if (range_for) {
      // `for (decl : range)` — the element is an opaque read of the
      // range, modeled as a call so taint propagates from the container.
      const int head = new_block(line);
      cfg_.blocks[static_cast<std::size_t>(head)].is_loop_head = true;
      edge(cur_, head, EdgeKind::kFall);
      add_stmt(head, init + " = __range ( " + cond + " )", line);
      const int body = new_block(line);
      edge(head, body, EdgeKind::kTrue);
      ctxs_.push_back({true, head, true, {}});
      cur_ = body;
      parse_stmt();
      edge(cur_, head, EdgeKind::kBack);
      const int after = new_block(line_here());
      edge(head, after, EdgeKind::kFalse);
      for (const int b : ctxs_.back().breaks) edge(b, after, EdgeKind::kFall);
      ctxs_.pop_back();
      cur_ = after;
      return;
    }
    add_stmt(cur_, init, line);  // pre-header
    const int head = new_block(line);
    cfg_.blocks[static_cast<std::size_t>(head)].is_loop_head = true;
    edge(cur_, head, EdgeKind::kFall);
    add_stmt(head, cond, line);
    const int body = new_block(line);
    edge(head, body, EdgeKind::kTrue, cond);
    const int latch = new_block(line);
    add_stmt(latch, incr, line);
    edge(latch, head, EdgeKind::kBack);
    ctxs_.push_back({true, latch, false, {}});
    cur_ = body;
    parse_stmt();
    edge(cur_, latch, EdgeKind::kFall);
    const int after = new_block(line_here());
    edge(head, after, EdgeKind::kFalse, cond);
    for (const int b : ctxs_.back().breaks) edge(b, after, EdgeKind::kFall);
    ctxs_.pop_back();
    cur_ = after;
  }

  void parse_do() {
    const int line = line_here();
    advance();  // do
    const int body = new_block(line);
    cfg_.blocks[static_cast<std::size_t>(body)].is_loop_head = true;
    edge(cur_, body, EdgeKind::kFall);
    const int latch = new_block(line);
    ctxs_.push_back({true, latch, false, {}});
    cur_ = body;
    parse_stmt();
    edge(cur_, latch, EdgeKind::kFall);
    accept("while");
    const std::string cond = collect_parens();
    accept(";");
    add_stmt(latch, cond, line_here());
    edge(latch, body, EdgeKind::kBack, cond);
    const int after = new_block(line_here());
    edge(latch, after, EdgeKind::kFalse, cond);
    for (const int b : ctxs_.back().breaks) edge(b, after, EdgeKind::kFall);
    ctxs_.pop_back();
    cur_ = after;
  }

  void parse_switch() {
    const int line = line_here();
    advance();  // switch
    const std::string cond = collect_parens();
    const int head = cur_;
    add_stmt(head, cond, line);
    bool has_default = false;
    ctxs_.push_back({false, -1, false, {}});
    if (accept("{")) {
      while (!done() && peek() != "}") {
        if (peek() == "case" || peek() == "default") {
          has_default = has_default || peek() == "default";
          const int lbl_line = line_here();
          std::string label;
          int depth = 0;
          while (!done()) {
            const std::string& tok = peek();
            if (depth == 0 && tok == ":" ) {
              advance();
              break;
            }
            if (tok == "(" || tok == "[" || tok == "{") ++depth;
            if (tok == ")" || tok == "]" || tok == "}") --depth;
            append_tok(label, tok);
            advance();
          }
          const int b = new_block(lbl_line);
          edge(head, b, EdgeKind::kTrue, label);
          edge(cur_, b, EdgeKind::kFall);  // case fall-through
          cur_ = b;
        } else {
          parse_stmt();
        }
      }
      accept("}");
    }
    const int after = new_block(line_here());
    edge(cur_, after, EdgeKind::kFall);
    if (!has_default) edge(head, after, EdgeKind::kFalse, cond);
    for (const int b : ctxs_.back().breaks) edge(b, after, EdgeKind::kFall);
    ctxs_.pop_back();
    cur_ = after;
  }

  void parse_try() {
    advance();  // try
    const int try_entry = cur_;
    parse_stmt();  // the compound block
    const int try_end = cur_;
    const int merge = new_block(line_here());
    edge(try_end, merge, EdgeKind::kFall);
    while (peek() == "catch") {
      advance();
      collect_parens();
      const int cb = new_block(line_here());
      edge(try_entry, cb, EdgeKind::kFall);
      cur_ = cb;
      parse_stmt();
      edge(cur_, merge, EdgeKind::kFall);
    }
    cur_ = merge;
  }

  const std::vector<CfgTok>& t_;
  std::size_t pos_;
  std::size_t end_;
  Cfg cfg_;
  int cur_ = 0;
  std::vector<BreakCtx> ctxs_;
};

}  // namespace

std::string Cfg::dump() const {
  std::ostringstream out;
  out << "cfg " << qual << "\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BasicBlock& b = blocks[i];
    out << "b" << i;
    if (static_cast<int>(i) == entry) out << " (entry)";
    if (static_cast<int>(i) == exit) out << " (exit)";
    if (b.is_loop_head) out << " [loop]";
    out << ":\n";
    for (const CfgStmt& s : b.stmts) out << "  stmt " << s.text << "\n";
    for (const CfgEdge& e : b.succ) {
      out << "  -> b" << e.to << " " << to_string(e.kind);
      if (!e.cond.empty()) out << " [" << e.cond << "]";
      out << "\n";
    }
  }
  return out.str();
}

Cfg build_cfg(const FunctionInfo& fn, const std::vector<Line>& lines) {
  const std::vector<CfgTok> toks =
      cfg_tokenize(lines, fn.begin_line, fn.end_line);
  // Locate the body: the brace on begin_line whose matching close falls
  // on end_line (skips constructor-init-list braces on the same line).
  std::size_t open = toks.size();
  std::size_t close = toks.size();
  std::size_t fallback = toks.size();
  for (std::size_t i = 0; i < toks.size() && open == toks.size(); ++i) {
    if (toks[i].text != "{" || toks[i].line != fn.begin_line) continue;
    if (fallback == toks.size()) fallback = i;
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") {
        --depth;
        if (depth == 0) {
          if (toks[j].line == fn.end_line) {
            open = i;
            close = j;
          }
          break;
        }
      }
    }
  }
  if (open == toks.size() && fallback < toks.size()) {
    open = fallback;
    int depth = 0;
    close = toks.size();
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) {
        close = j;
        break;
      }
    }
  }
  if (open >= toks.size()) {
    Cfg cfg;
    cfg.file = fn.file;
    cfg.qual = fn.qual;
    cfg.blocks.resize(2);
    cfg.blocks[0].succ.push_back({1, EdgeKind::kFall, {}});
    return cfg;
  }
  CfgBuilder builder(toks, open + 1, close);
  return builder.build(fn.file, fn.qual);
}

}  // namespace dsp::analysis
