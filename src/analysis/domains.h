// Abstract domains of the dsp-dataflow analysis (dsp_tidy --dataflow):
// a statement-expression mini-AST parsed from the CFG's token text, a
// loose scalar type environment, an interval (value-range) lattice with
// widening and a taint lattice seeded at untrusted sources.
//
// Both domains plug into dataflow.h's generic solver; they share the
// expression parser so each statement is parsed once (StmtCache) and
// walked twice. The interval lattice carries two bits beyond the bounds:
//
//   zero_witness — some concrete program path assigns a hard zero (a
//     `= 0` literal, a callee that can `return 0.0`, an `== 0` branch).
//     The V000 division rule fires only on witnessed divisors, so a
//     merely-unknown denominator (top interval) never floods the report.
//   refined — the bounds come from program text (assignment, guard,
//     literal) rather than a type default, which is what the V001
//     underflow rule requires before claiming `a - b` can wrap.
//
// Taint tracks where a value entered (env var, parsed text) and is
// cleared by the codebase's sanctioned clamps (std::min/max/clamp,
// env_int_min, `%` by a clean bound) and by comparison guards on a
// branch — validation-by-comparison is how this codebase bounds knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace dsp::analysis {

// ---------------------------------------------------------------------------
// Scalar types
// ---------------------------------------------------------------------------

enum class ValType : std::uint8_t {
  kUnknown,
  kBool,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,  ///< float or double
};

const char* to_string(ValType t);
bool is_integer(ValType t);
bool is_unsigned(ValType t);
/// Bit width of integer types; 0 for kUnknown/kBool/kFloat.
int bit_width(ValType t);

/// Maps declaration type tokens ("std :: uint64_t", "unsigned long",
/// "SimTime", "Gid", "double") to a ValType. Unrecognized -> kUnknown.
ValType parse_val_type(const std::vector<std::string>& type_toks);

// ---------------------------------------------------------------------------
// Expression mini-AST
// ---------------------------------------------------------------------------

struct Expr {
  enum class Kind : std::uint8_t {
    kNum,      ///< literal; `num`, `float_lit`, text in `op`
    kStr,      ///< blanked string/char literal
    kVar,      ///< identifier chain ("i", "params_.omega1", "this")
    kUnary,    ///< op in `op`, kids[0]
    kBinary,   ///< op in `op`, kids[0..1]
    kTernary,  ///< kids[0] ? kids[1] : kids[2]
    kCall,     ///< callee chain in `op`, kids = args
    kCast,     ///< target in decl_type, kids[0]
    kIndex,    ///< kids[0] [ kids[1] ]
    kAssign,   ///< op ("=", "+=", ...), kids[0] = lhs, kids[1] = rhs
    kDecl,     ///< var in `op`, type in decl_type, kids = init args
               ///< (trailing kDecl kids are extra declarators)
    kReturn,   ///< kids[0] = value (may be absent)
    kOpaque,   ///< unparsed; raw text in `op`
  };
  Kind kind = Kind::kOpaque;
  std::string op;
  double num = 0.0;
  bool float_lit = false;
  ValType decl_type = ValType::kUnknown;
  std::vector<Expr> kids;
  int line = 0;
};

/// Parses one CFG statement (space-joined token text, as produced by
/// cfg_tokenize/build_cfg) into an Expr tree. Unparseable statements
/// come back kOpaque.
Expr parse_stmt_expr(const std::string& text, int line);

/// Pre-order walk of `e` and all children.
void visit_exprs(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Parse-once cache keyed by statement identity (CfgStmt address; the
/// Cfg must outlive the cache).
class StmtCache {
 public:
  const Expr& parsed(const CfgStmt& s);
  const Expr& parsed_cond(const CfgEdge& e);

 private:
  std::map<const void*, Expr> by_ptr_;
};

// ---------------------------------------------------------------------------
// Type environment
// ---------------------------------------------------------------------------

struct TypeEnv {
  std::map<std::string, ValType> vars;
  ValType type_of(const std::string& name) const;
};

/// Collects declared local-variable types over every statement of `cfg`
/// (flow-insensitive; this codebase does not reuse names across scopes
/// with different scalar types).
TypeEnv collect_types(const Cfg& cfg, StmtCache& cache);

/// Loose static type of `e` under `env`: literals (with suffixes),
/// declared vars, casts, usual-arithmetic-conversion-ish combining for
/// binaries, and a few known calls (.size() -> kUInt64, to_seconds ->
/// kFloat, from_seconds -> kInt64). kUnknown otherwise.
ValType static_type(const Expr& e, const TypeEnv& env);

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool zero_witness = false;
  bool refined = false;

  static Interval top();
  static Interval exact(double v);
  bool is_top() const;
  bool contains(double v) const { return lo <= v && v <= hi; }
  bool operator==(const Interval& o) const = default;
};

Interval join(const Interval& a, const Interval& b);

struct IntervalState {
  bool reachable = false;
  std::map<std::string, Interval> vars;
};

/// Interprocedural hook: the return-value interval of a call. The
/// valueflow analyzer implements this with memoized per-function
/// return summaries; a null oracle means every unknown call is top.
class IntervalOracle {
 public:
  virtual ~IntervalOracle() = default;
  virtual Interval call_interval(const std::string& callee) = 0;
};

class IntervalDomain {
 public:
  IntervalDomain(const TypeEnv* types, StmtCache* cache,
                 IntervalOracle* oracle = nullptr)
      : types_(types), cache_(cache), oracle_(oracle) {}

  using State = IntervalState;
  State bottom() const { return {}; }
  State boundary() const;
  bool join_into(State& dst, const State& src) const;
  void widen(State& s, const State& prev) const;
  void transfer_stmt(const CfgStmt& s, State& st) const;
  void transfer(const Expr& e, State& st) const;
  void transfer_edge(const CfgEdge& e, State& st) const;

  /// Evaluates `e` in `st` (state unchanged).
  Interval eval(const Expr& e, const State& st) const;
  /// Refines `st` assuming `cond` evaluated to `taken`.
  void refine(const Expr& cond, bool taken, State& st) const;
  /// Type default for a variable never assigned on this path.
  Interval default_interval(const std::string& name) const;

 private:
  const TypeEnv* types_;
  StmtCache* cache_;
  IntervalOracle* oracle_;
};

// ---------------------------------------------------------------------------
// Taint domain
// ---------------------------------------------------------------------------

struct Taint {
  bool tainted = false;
  std::string kind;    ///< "env" (env_int/env_double), "env-str", "parse"
  std::string source;  ///< Source call text, for the finding message.
  int line = 0;
  bool operator==(const Taint& o) const = default;
};

Taint join(const Taint& a, const Taint& b);

struct TaintState {
  bool reachable = false;
  std::map<std::string, Taint> vars;
};

class TaintDomain {
 public:
  explicit TaintDomain(StmtCache* cache) : cache_(cache) {}

  using State = TaintState;
  State bottom() const { return {}; }
  State boundary() const;
  bool join_into(State& dst, const State& src) const;
  void widen(State&, const State&) const {}  // finite lattice
  void transfer_stmt(const CfgStmt& s, State& st) const;
  void transfer(const Expr& e, State& st) const;
  void transfer_edge(const CfgEdge& e, State& st) const;

  Taint eval(const Expr& e, const State& st) const;

 private:
  void sanitize_compared(const Expr& cond, State& st) const;

  StmtCache* cache_;
};

}  // namespace dsp::analysis
