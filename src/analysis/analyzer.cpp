#include "analysis/analyzer.h"

#include <cstdlib>
#include <vector>

namespace dsp::analysis {

Report analyze_workload_file(const std::string& path,
                             const ClusterSpec& cluster, double reference_rate,
                             std::vector<std::string> filter) {
  Report report;
  report.set_rule_filter(std::move(filter));
  const JobSet jobs = load_workload_for_analysis(path, reference_rate, report);
  WorkloadLintOptions options;
  options.cluster = &cluster;
  lint_workload(jobs, options, report);
  return report;
}

Report analyze_schedule_file(const std::string& path,
                             std::vector<std::string> filter) {
  Report report;
  report.set_rule_filter(std::move(filter));
  ScheduleDoc doc;
  std::string error;
  if (!read_schedule_json(path, doc, &error)) {
    report.add("S000", path, error);
    return report;
  }
  check_schedule(doc, {}, report);
  return report;
}

Report analyze_audit_file(const std::string& path,
                          const std::string& workload_path,
                          double reference_rate,
                          std::vector<std::string> filter) {
  Report report;
  report.set_rule_filter(std::move(filter));
  const obs::AuditParseResult parsed = obs::read_audit_json(path);
  if (!parsed.ok()) {
    report.add("P000", path, parsed.error);
    return report;
  }
  JobSet jobs;
  AuditReplayOptions options;
  if (!workload_path.empty()) {
    jobs = load_workload_for_analysis(workload_path, reference_rate, report);
    options.workload = &jobs;
  }
  replay_audit(parsed.decisions, options, report);
  return report;
}

bool parse_cluster_spec(const std::string& text, ClusterSpec& out,
                        std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error)
      *error = message + " (expected ec2:<n>, real:<n>, or "
                         "uniform:<n>:<mips>:<mem_gb>:<slots>)";
    return false;
  };

  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    parts.push_back(text.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  auto as_number = [](const std::string& s, double& v) {
    char* end = nullptr;
    v = std::strtod(s.c_str(), &end);
    return end && *end == '\0' && end != s.c_str();
  };
  double n = 0;
  if (parts.size() < 2 || !as_number(parts[1], n) || n < 1 || n > 1e6)
    return fail("malformed cluster spec \"" + text + "\"");
  const auto count = static_cast<std::size_t>(n);
  if (parts[0] == "ec2" && parts.size() == 2) {
    out = ClusterSpec::ec2(count);
    return true;
  }
  if (parts[0] == "real" && parts.size() == 2) {
    out = ClusterSpec::real_cluster(count);
    return true;
  }
  if (parts[0] == "uniform" && parts.size() == 5) {
    double mips = 0, mem = 0, slots = 0;
    if (!as_number(parts[2], mips) || mips <= 0 ||
        !as_number(parts[3], mem) || mem <= 0 ||
        !as_number(parts[4], slots) || slots < 1)
      return fail("malformed uniform cluster spec \"" + text + "\"");
    out = ClusterSpec::uniform(count, mips, mem, static_cast<int>(slots));
    return true;
  }
  return fail("unknown cluster profile \"" + parts[0] + "\"");
}

}  // namespace dsp::analysis
