#include "analysis/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "analysis/cpp_lex.h"
#include "obs/json.h"

namespace dsp::analysis {
namespace {

/// D003/C003 police the deterministic hot path: src/core and src/sim.
/// Out-of-tree files (test fixtures) are also in scope so the seeded
/// violations under tests/fixtures/srclint fire.
bool in_hot_scope(const std::string& path) {
  return path_has(path, "src/core") || path_has(path, "src/sim") ||
         !path_has(path, "src");
}

/// Compacts a regex match for display: internal whitespace runs collapse
/// and edges are trimmed, so "fopen  (" renders as "fopen(".
std::string strip_ws(const std::string& s) {
  std::string out;
  for (const char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  return out;
}

// ---------------------------------------------------------------------------
// Rule patterns
// ---------------------------------------------------------------------------

enum class Scope { kAll, kHot };

struct SimpleRule {
  const char* id;
  Scope scope;
  /// Path-stem whitelist (path_has patterns); the sanctioned home of the
  /// flagged operation.
  std::vector<const char*> exempt;
  std::regex re;
  const char* what;
};

const std::vector<SimpleRule>& simple_rules() {
  static const std::vector<SimpleRule> kRules = [] {
    std::vector<SimpleRule> r;
    r.push_back({"D000", Scope::kAll, {},
                 std::regex(R"(\b(srand|srandom|rand_r|drand48|lrand48|mrand48|rand|random)\s*\()"),
                 "libc random source; draw from util/rng's seeded engine"});
    r.push_back({"D001", Scope::kAll, {},
                 std::regex(R"(\bstd\s*::\s*random_device\b)"),
                 "std::random_device is OS entropy; runs stop replaying from a seed"});
    r.push_back({"D002", Scope::kAll, {"util/time.", "util/log."},
                 std::regex(R"(\btime\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b)"),
                 "wall-clock read; simulation logic must use SimTime"});
    r.push_back({"D003", Scope::kHot, {},
                 std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)"),
                 "hash-order container in the deterministic hot path; use std::map or a sorted vector"});
    r.push_back({"D004", Scope::kAll, {"util/thread_pool."},
                 std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"),
                 "thread spawned outside util/thread_pool's deterministic fan-out"});
    r.push_back({"D005", Scope::kAll, {},
                 std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b|(uniform_int|uniform_real|normal|bernoulli|poisson|exponential|geometric|binomial|discrete)_distribution)\b)"),
                 "<random> output is not bit-exact across standard libraries; use util/rng"});
    r.push_back({"C002", Scope::kAll, {},
                 std::regex(R"(\bnew\s+[A-Za-z_(:]|\bdelete\s*\[\s*\]|\bdelete\s+[A-Za-z_*(])"),
                 "raw new/delete; use std::make_unique or a container"});
    // tools/ and bench/ are sanctioned console-I/O surfaces: CLIs and
    // benchmark drivers whose stdout IS the interface. Library code under
    // src/ stays restricted to util/log.
    r.push_back({"C004", Scope::kAll, {"util/log.", "tools", "bench"},
                 std::regex(R"(\b(printf|fprintf|puts|fputs)\s*\(|\bstd\s*::\s*(cout|cerr)\b)"),
                 "console I/O outside util/log; use DSP_LOG so levels and line atomicity hold"});
    r.push_back({"C005", Scope::kAll, {},
                 std::regex(R"(\.\s*(unlock|lock)\s*\(\s*\))"),
                 "manual lock()/unlock(); hold locks via MutexLock/std::scoped_lock"});
    return r;
  }();
  return kRules;
}

// C000: mutable file-scope state. Namespace bodies are not indented in
// this codebase, so a column-0 `static` declaration is file-scope; it is
// fine when immutable (const/constexpr), synchronized (atomic or
// DSP_GUARDED_BY), or per-thread (thread_local). Lines containing '('
// are function definitions/declarations, not objects.
const std::regex& c000_re() {
  static const std::regex re(R"(^static\s+)");
  return re;
}

bool c000_exempt(const std::string& code) {
  if (code.find('(') != std::string::npos) return true;
  for (const char* ok : {"constexpr", "const ", "atomic", "thread_local",
                         "DSP_GUARDED_BY", "DSP_PT_GUARDED_BY"})
    if (code.find(ok) != std::string::npos) return true;
  return false;
}

// C001: blocking I/O while a lock is held.
const std::regex& lock_decl_re() {
  static const std::regex re(
      R"(\b(MutexLock|scoped_lock|lock_guard|unique_lock|shared_lock)\s*(<[^;>]*>)?\s+[A-Za-z_])");
  return re;
}

const std::regex& io_call_re() {
  static const std::regex re(
      R"(\b(printf|fprintf|puts|fputs|fwrite|fread|fopen|fclose|fflush|getline)\s*\(|\bstd\s*::\s*(cout|cerr|ifstream|ofstream|fstream)\b|\bDSP_(DEBUG|INFO|WARN|ERROR|LOG_AT)\s*\(|\blog_detail\s*::\s*emit\b)");
  return re;
}

// C003: hot-path accessor returning an unchecked subscript. A bounds
// assert (or .at()/.size() check) on the same line or within the two
// preceding lines counts as the guard — the prio_at discipline.
const std::regex& ret_index_re() {
  static const std::regex re(R"(\breturn\s+[A-Za-z_]\w*_\s*\[)");
  return re;
}

const std::regex& index_guard_re() {
  static const std::regex re(R"(\bassert\s*\(|\.at\s*\(|\.size\s*\()");
  return re;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

void scan_source_lines(std::string_view path, const std::vector<Line>& lines,
                       Report& report) {
  const std::string npath = normalize_path(path);
  const bool hot = in_hot_scope(npath);
  // C001 path scoping: util/log's line emitter and obs/events' JSONL sink
  // are the sanctioned single-writer paths — each holds its own mutex
  // around exactly one buffered fwrite so concurrent lines never
  // interleave. Everywhere else, I/O under a lock is a latency bug.
  const bool c001_exempt =
      path_has(npath, "util/log.") || path_has(npath, "obs/events.");

  int depth = 0;                 // brace nesting across the file
  std::vector<int> lock_depths;  // depth at which each active RAII lock lives

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& line = lines[i];
    const std::string subject = npath + ":" + std::to_string(i + 1);
    const std::vector<std::string> allows = parse_allows(line.comment);
    std::smatch m;

    if (!line.preprocessor) {
      for (const SimpleRule& rule : simple_rules()) {
        if (rule.scope == Scope::kHot && !hot) continue;
        if (std::any_of(rule.exempt.begin(), rule.exempt.end(),
                        [&](const char* p) { return path_has(npath, p); }))
          continue;
        if (allowed(allows, rule.id)) continue;
        if (std::regex_search(line.code, m, rule.re))
          report.add(rule.id, subject,
                     std::string(rule.what) + " (matched `" +
                         strip_ws(m.str()) + "`)");
      }

      if (!allowed(allows, "C000") &&
          std::regex_search(line.code, c000_re()) && !c000_exempt(line.code))
        report.add("C000", subject,
                   "mutable file-scope state without DSP_GUARDED_BY, atomic, "
                   "const or thread_local");

      if (hot && !allowed(allows, "C003") &&
          std::regex_search(line.code, m, ret_index_re())) {
        bool guarded = false;
        for (std::size_t j = i >= 2 ? i - 2 : 0; j <= i && !guarded; ++j)
          guarded = std::regex_search(lines[j].code, index_guard_re());
        if (!guarded)
          report.add("C003", subject,
                     "unchecked subscript return (`" + strip_ws(m.str()) +
                         "...]`) with no bounds assert in reach");
      }

      // C001 bookkeeping: update nesting, expire locks whose block closed,
      // then register locks declared here before flagging I/O on the line.
      for (const char c : line.code) {
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          while (!lock_depths.empty() && lock_depths.back() > depth)
            lock_depths.pop_back();
        }
      }
      if (std::regex_search(line.code, lock_decl_re()))
        lock_depths.push_back(depth);
      if (!lock_depths.empty() && !c001_exempt && !allowed(allows, "C001") &&
          std::regex_search(line.code, m, io_call_re()))
        report.add("C001", subject,
                   "blocking I/O while a lock is held (`" + strip_ws(m.str()) +
                       "...`); release the lock or buffer first");
    }
  }
}

void scan_source(std::string_view path, std::string_view text,
                 Report& report) {
  scan_source_lines(path, lex_lines(text), report);
}

bool scan_source_file(const std::string& path, Report& report,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  scan_source(path, buf.str(), report);
  return true;
}

bool collect_sources(const std::vector<std::string>& paths,
                     std::vector<std::string>& out, std::string* error) {
  namespace fs = std::filesystem;
  const auto is_cpp = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      if (error) *error = "no such file or directory: " + path;
      return false;
    }
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec))
        if (it->is_regular_file() && is_cpp(it->path()))
          out.push_back(normalize_path(it->path().string()));
      if (ec) {
        if (error) *error = "cannot traverse " + path + ": " + ec.message();
        return false;
      }
    } else {
      out.push_back(normalize_path(path));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

bool collect_sources_from_compdb(const std::string& compdb_path,
                                 std::vector<std::string>& out,
                                 std::string* error) {
  namespace fs = std::filesystem;
  std::ifstream in(compdb_path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open compilation database: " + compdb_path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::json::Value doc;
  std::string parse_error;
  if (!obs::json::parse(buf.str(), doc, &parse_error) || !doc.is_array()) {
    if (error)
      *error = compdb_path + ": not a compile_commands.json array (" +
               (parse_error.empty() ? "top-level value is not an array"
                                    : parse_error) +
               ")";
    return false;
  }
  for (const auto& entry : doc.array) {
    const obs::json::Value* file = entry.find("file");
    if (file == nullptr || !file->is_string()) continue;
    fs::path p(file->string);
    if (p.is_relative()) {
      const obs::json::Value* dir = entry.find("directory");
      if (dir != nullptr && dir->is_string()) p = fs::path(dir->string) / p;
    }
    out.push_back(normalize_path(p.string()));
    // The TU's sibling header, when present: annotations and inline
    // method bodies live there.
    for (const char* ext : {".h", ".hh", ".hpp"}) {
      fs::path header = p;
      header.replace_extension(ext);
      std::error_code ec;
      if (fs::is_regular_file(header, ec))
        out.push_back(normalize_path(header.string()));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

}  // namespace dsp::analysis
