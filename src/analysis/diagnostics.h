// Diagnostic model of the dsp-analyze static rule engine.
//
// Every rule violation becomes one Diagnostic: a stable rule ID (W* =
// workload lint, S* = schedule constraint check, P* = preemption audit
// replay — see rules.h for the catalog), a severity, the subject it is
// about ("job 3 task 7", "decision 412") and a human-readable explanation.
// Passes append into a shared Report, which renders either compiler-style
// text lines or the machine-readable JSON consumed by tools/json_check and
// CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dsp::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* to_string(Severity s);

/// One finding of one rule.
struct Diagnostic {
  std::string rule;     ///< Stable rule ID, e.g. "W001".
  Severity severity = Severity::kError;
  std::string subject;  ///< What the finding is about ("job 3 task 7").
  std::string message;  ///< Human-readable explanation.
};

/// Accumulates the diagnostics of one analysis run.
class Report {
 public:
  /// Appends a finding with the rule's catalog severity (rules.h).
  /// Unknown rule IDs default to kError. Dropped silently when a rule
  /// filter is set and does not contain `rule`.
  void add(std::string_view rule, std::string subject, std::string message);

  /// Appends a finding with an explicit severity (same filter rules).
  void add(std::string_view rule, Severity severity, std::string subject,
           std::string message);

  /// Restricts the report to the given rule IDs; diagnostics for other
  /// rules are discarded at add() time. An empty list (the default)
  /// accepts every rule.
  void set_rule_filter(std::vector<std::string> rules);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// Merges another report's diagnostics (subject to this report's filter).
  void merge(const Report& other);

  /// Wall time of the scan that produced this report; when set (>= 0)
  /// write_json adds a "scan": {"seconds": n} section.
  void set_scan_seconds(double seconds) { scan_seconds_ = seconds; }
  double scan_seconds() const { return scan_seconds_; }

  /// Compiler-style text, one line per diagnostic:
  ///   W003 deadline-infeasible-by-critical-path error job 2: ...
  /// followed by a one-line summary.
  void print_text(std::ostream& out) const;

  /// Machine-readable JSON:
  ///   {"analyzer": "dsp-analyze",
  ///    "input": {"kind": ..., "path": ...},
  ///    "diagnostics": [{"rule", "name", "severity", "subject", "message"}],
  ///    "summary": {"error": n, "warning": n, "info": n}}
  void write_json(std::ostream& out, std::string_view input_kind,
                  std::string_view input_path) const;

 private:
  bool accepts(std::string_view rule) const;

  std::vector<Diagnostic> diagnostics_;
  std::vector<std::string> rule_filter_;
  double scan_seconds_ = -1.0;
};

}  // namespace dsp::analysis
