#include "analysis/valueflow.h"

#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/domains.h"

namespace dsp::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kInt32Max = 2147483647.0;

// A function body larger than this is skipped: the token stream is no
// longer cheap to fixpoint and this codebase has no such functions.
constexpr std::size_t kMaxTokens = 6000;
constexpr std::size_t kMaxBlocks = 400;

std::string simple_name(const std::string& op) {
  std::size_t p = op.rfind('.');
  std::string s = p == std::string::npos ? op : op.substr(p + 1);
  p = s.rfind("::");
  if (p != std::string::npos) s = s.substr(p + 2);
  return s;
}

bool is_relational_op(const std::string& op) {
  return op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
         op == "!=";
}

/// Compact re-rendering of an Expr for finding messages.
std::string expr_text(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kNum:
    case Expr::Kind::kStr:
    case Expr::Kind::kVar:
    case Expr::Kind::kOpaque: return e.op;
    case Expr::Kind::kUnary:
      if (e.kids.empty()) return e.op;
      if (e.op.rfind("post", 0) == 0)
        return expr_text(e.kids[0]) + e.op.substr(4);
      return e.op + expr_text(e.kids[0]);
    case Expr::Kind::kBinary:
      if (e.kids.size() != 2) return e.op;
      return expr_text(e.kids[0]) + " " + e.op + " " + expr_text(e.kids[1]);
    case Expr::Kind::kTernary:
      if (e.kids.size() != 3) return "?:";
      return expr_text(e.kids[0]) + " ? " + expr_text(e.kids[1]) + " : " +
             expr_text(e.kids[2]);
    case Expr::Kind::kCall: return e.op + "(...)";
    case Expr::Kind::kCast:
      return std::string("(") + to_string(e.decl_type) + ")" +
             (e.kids.empty() ? "" : expr_text(e.kids[0]));
    case Expr::Kind::kIndex:
      if (e.kids.size() != 2) return "[]";
      return expr_text(e.kids[0]) + "[" + expr_text(e.kids[1]) + "]";
    case Expr::Kind::kAssign:
      if (e.kids.size() != 2) return e.op;
      return expr_text(e.kids[0]) + " " + e.op + " " + expr_text(e.kids[1]);
    case Expr::Kind::kDecl: return e.op;
    case Expr::Kind::kReturn:
      return e.kids.empty() ? "return" : "return " + expr_text(e.kids[0]);
  }
  return "";
}

std::string range_text(const Interval& v) {
  std::ostringstream out;
  const auto bound = [&](double b) {
    if (b == kInf) out << "+inf";
    else if (b == -kInf) out << "-inf";
    else out << b;
  };
  out << "[";
  bound(v.lo);
  out << ", ";
  bound(v.hi);
  out << "]";
  return out.str();
}

/// Container growth calls whose size argument a hostile config must not
/// control (T002).
bool is_alloc_call(const std::string& simple) {
  return simple == "resize" || simple == "reserve" || simple == "assign" ||
         simple == "make_unique" || simple == "make_shared";
}

/// V003 scope: float equality matters where it decides scheduling and
/// preemption (the determinism the engine promises), not in the LP /
/// analysis utility code whose exact-zero sparsity checks are idiomatic.
/// Out-of-tree fixture paths count as hot, same as srclint's D003/C003.
bool v003_scope(const std::string& path) {
  return path_has(path, "src/core") || path_has(path, "src/sim") ||
         path_has(path, "src/dag") || !path_has(path, "src");
}

class ValueflowAnalyzer : public IntervalOracle {
 public:
  ValueflowAnalyzer(CppIndex& index,
                    const std::map<std::string, std::vector<Line>>& lines,
                    Report& report)
      : index_(index), lines_(lines), report_(report) {}

  void run() {
    for (std::size_t i = 0; i < index_.functions.size(); ++i)
      analyze_fn(static_cast<int>(i));
  }

  Interval call_interval(const std::string& callee) override {
    const std::string simple = simple_name(callee);
    const auto mit = oracle_memo_.find(simple);
    if (mit != oracle_memo_.end()) return mit->second;
    if (oracle_depth_ >= 3 || oracle_active_.count(simple))
      return Interval::top();
    const auto bit = index_.by_name.find(simple);
    if (bit == index_.by_name.end() || bit->second.empty() ||
        bit->second.size() > 3)
      return Interval::top();

    oracle_active_.insert(simple);
    ++oracle_depth_;
    Interval summary;
    bool any = false;
    for (const int idx : bit->second) {
      FnCtx* fx = ctx_for(idx);
      if (fx == nullptr || fx->oversized) {
        any = false;
        break;
      }
      IntervalDomain dom(&fx->types, &fx->cache, this);
      IntervalState boundary = dom.boundary();
      bool fn_any = false;
      Interval fn_itv;
      for (const BasicBlock& b : fx->cfg.blocks) {
        for (const CfgStmt& s : b.stmts) {
          const Expr& e = fx->cache.parsed(s);
          if (e.kind != Expr::Kind::kReturn || e.kids.empty()) continue;
          const Interval r = dom.eval(e.kids[0], boundary);
          fn_itv = fn_any ? join(fn_itv, r) : r;
          fn_any = true;
        }
      }
      if (!fn_any) {
        any = false;
        break;
      }
      summary = any ? join(summary, fn_itv) : fn_itv;
      any = true;
    }
    --oracle_depth_;
    oracle_active_.erase(simple);
    const Interval result = any ? summary : Interval::top();
    oracle_memo_.emplace(simple, result);
    return result;
  }

 private:
  struct FnCtx {
    Cfg cfg;
    StmtCache cache;
    TypeEnv types;
    bool oversized = false;
  };

  /// Builds (and caches) the CFG + parse cache + type environment of one
  /// indexed function. Null when its file's lines are unavailable.
  FnCtx* ctx_for(int fn_idx) {
    const auto it = ctx_.find(fn_idx);
    if (it != ctx_.end()) return it->second.get();
    const FunctionInfo& fn = index_.functions[static_cast<std::size_t>(fn_idx)];
    const auto lit = lines_.find(fn.file);
    if (lit == lines_.end()) {
      ctx_.emplace(fn_idx, nullptr);
      return nullptr;
    }
    auto fx = std::make_unique<FnCtx>();
    const std::vector<CfgTok> toks =
        cfg_tokenize(lit->second, fn.begin_line, fn.end_line);
    if (toks.size() > kMaxTokens) {
      fx->oversized = true;
    } else {
      fx->cfg = build_cfg(fn, lit->second);
      if (fx->cfg.blocks.size() > kMaxBlocks) fx->oversized = true;
      else fx->types = collect_types(fx->cfg, fx->cache);
    }
    FnCtx* raw = fx.get();
    ctx_.emplace(fn_idx, std::move(fx));
    return raw;
  }

  void emit(const char* rule, const FunctionInfo& fn, int line,
            const std::string& detail, std::string message) {
    if (index_.allowed_at(fn.file, line, rule)) return;
    const std::string subject = fn.file + ":" + std::to_string(line);
    if (!emitted_.insert(std::string(rule) + "|" + subject + "|" + detail)
             .second)
      return;
    report_.add(rule, subject, std::move(message));
  }

  // ---- per-statement rule walk -------------------------------------------

  struct WalkCtx {
    const FunctionInfo* fn = nullptr;
    FnCtx* fx = nullptr;
    const IntervalDomain* idom = nullptr;
    const TaintDomain* tdom = nullptr;
    /// Vars already reported by T000/T001/T002 in this function — T003
    /// is the catch-all and must not double-report them.
    std::set<std::string>* sink_reported = nullptr;
  };

  void report_taint(const char* rule, const WalkCtx& w, int line,
                    const Expr& use, const Taint& t,
                    const std::string& what) {
    std::ostringstream msg;
    msg << "`" << expr_text(use) << "` " << what << " derives from "
        << (t.kind == "parse" ? "parsed text" : "an environment variable")
        << " (" << t.source;
    if (t.line > 0) msg << " at line " << t.line;
    msg << ") with no clamp or comparison guard on this path";
    emit(rule, *w.fn, line, expr_text(use), msg.str());
    if (w.sink_reported != nullptr)
      visit_exprs(use, [&](const Expr& k) {
        if (k.kind == Expr::Kind::kVar) w.sink_reported->insert(k.op);
      });
  }

  void check_expr(const Expr& e, const IntervalState& ist,
                  const TaintState& tst, const WalkCtx& w, bool in_compare,
                  int stmt_line) {
    const int line = e.line > 0 ? e.line : stmt_line;
    switch (e.kind) {
      case Expr::Kind::kDecl: {
        for (const Expr& k : e.kids)
          check_expr(k, ist, tst, w, false, stmt_line);
        return;
      }
      case Expr::Kind::kAssign: {
        if (e.kids.size() != 2) return;
        // The LHS itself is written, not read; its subscripts are read.
        if (e.kids[0].kind == Expr::Kind::kIndex)
          check_expr(e.kids[0], ist, tst, w, false, stmt_line);
        check_expr(e.kids[1], ist, tst, w, false, stmt_line);
        return;
      }
      case Expr::Kind::kReturn:
        for (const Expr& k : e.kids)
          check_expr(k, ist, tst, w, false, stmt_line);
        return;
      case Expr::Kind::kCast: {
        if (e.kids.empty()) return;
        check_expr(e.kids[0], ist, tst, w, in_compare, stmt_line);
        const int width = bit_width(e.decl_type);
        if (width == 32) {
          const Interval v = w.idom->eval(e.kids[0], ist);
          const double tmin = is_unsigned(e.decl_type) ? 0.0 : -2147483648.0;
          const double tmax = is_unsigned(e.decl_type) ? 4294967295.0
                                                       : kInt32Max;
          // A violated bound at a 64-bit type extreme (the residue of a
          // widened counter re-clamped by a vacuous full-range bound) is
          // an artifact, not evidence; real count/time evidence in this
          // codebase is orders of magnitude below 2^63.
          constexpr double kVacuous = 9.2e18;
          const bool hi_bad = v.hi > tmax && v.hi < kVacuous;
          const bool lo_bad = v.lo < tmin && v.lo > -kVacuous;
          if (v.refined && (hi_bad || lo_bad))
            emit("V002", *w.fn, line, expr_text(e),
                 "cast of `" + expr_text(e.kids[0]) + "` (range " +
                     range_text(v) + ") to " + to_string(e.decl_type) +
                     " cannot represent the analyzed range");
        }
        return;
      }
      case Expr::Kind::kUnary:
        if (e.op == "&") return;  // address-of: a write target, not a read
        for (const Expr& k : e.kids)
          check_expr(k, ist, tst, w, in_compare, stmt_line);
        return;
      case Expr::Kind::kTernary: {
        if (e.kids.size() != 3) return;
        check_expr(e.kids[0], ist, tst, w, in_compare, stmt_line);
        IntervalState ist_t = ist;
        w.idom->refine(e.kids[0], true, ist_t);
        IntervalState ist_f = ist;
        w.idom->refine(e.kids[0], false, ist_f);
        if (ist_t.reachable)
          check_expr(e.kids[1], ist_t, tst, w, in_compare, stmt_line);
        if (ist_f.reachable)
          check_expr(e.kids[2], ist_f, tst, w, in_compare, stmt_line);
        return;
      }
      case Expr::Kind::kBinary: {
        if (e.kids.size() != 2) return;
        if (e.op == "&&" || e.op == "||") {
          check_expr(e.kids[0], ist, tst, w, true, stmt_line);
          IntervalState ist2 = ist;
          w.idom->refine(e.kids[0], e.op == "&&", ist2);
          if (ist2.reachable)
            check_expr(e.kids[1], ist2, tst, w, true, stmt_line);
          return;
        }
        if (is_relational_op(e.op)) {
          if ((e.op == "==" || e.op == "!=") && v003_scope(w.fn->file) &&
              e.kids[0].kind != Expr::Kind::kNum &&
              e.kids[1].kind != Expr::Kind::kNum) {
            // Comparison against a literal (exact sentinel / default) is
            // the sanctioned exact-float idiom; two computed floats are
            // not.
            const ValType lt = static_type(e.kids[0], w.fx->types);
            const ValType rt = static_type(e.kids[1], w.fx->types);
            if (lt == ValType::kFloat || rt == ValType::kFloat)
              emit("V003", *w.fn, line, expr_text(e),
                   "floating-point `" + e.op + "` on `" + expr_text(e) +
                       "`; rounding makes exact comparison unstable");
          }
          check_expr(e.kids[0], ist, tst, w, true, stmt_line);
          check_expr(e.kids[1], ist, tst, w, true, stmt_line);
          return;
        }
        check_expr(e.kids[0], ist, tst, w, in_compare, stmt_line);
        check_expr(e.kids[1], ist, tst, w, in_compare, stmt_line);
        if (e.op == "/" || e.op == "%") {
          const Interval d = w.idom->eval(e.kids[1], ist);
          if (d.zero_witness && d.contains(0.0))
            emit("V000", *w.fn, line, expr_text(e),
                 "divisor `" + expr_text(e.kids[1]) + "` (range " +
                     range_text(d) +
                     ") carries a zero witness: a concrete path reaches "
                     "this division with a hard zero");
        } else if (e.op == "-") {
          const ValType t = static_type(e, w.fx->types);
          if (is_unsigned(t)) {
            const Interval a = w.idom->eval(e.kids[0], ist);
            const Interval b = w.idom->eval(e.kids[1], ist);
            if (a.refined && b.refined && a.lo > -kInf && b.hi < kInf &&
                a.lo < b.hi)
              emit("V001", *w.fn, line, expr_text(e),
                   "unsigned `" + expr_text(e) + "` with ranges " +
                       range_text(a) + " - " + range_text(b) +
                       " can wrap: the right side may exceed the left");
          }
        } else if (e.op == "<<" || e.op == ">>") {
          ValType lt = static_type(e.kids[0], w.fx->types);
          const int width = bit_width(lt) > 0 ? bit_width(lt) : 0;
          if (width > 0) {
            const Interval s = w.idom->eval(e.kids[1], ist);
            const bool neg = s.lo < 0.0 && s.lo > -kInf;
            const bool wide = s.hi >= width && s.hi < kInf;
            if (neg || wide)
              emit("V004", *w.fn, line, expr_text(e),
                   "shift amount `" + expr_text(e.kids[1]) + "` (range " +
                       range_text(s) + ") " +
                       (neg ? "can be negative"
                            : "reaches the width of the shifted type") +
                       " (" + std::to_string(width) + " bits)");
          }
        }
        return;
      }
      case Expr::Kind::kIndex: {
        if (e.kids.size() != 2) return;
        check_expr(e.kids[0], ist, tst, w, in_compare, stmt_line);
        check_expr(e.kids[1], ist, tst, w, false, stmt_line);
        const Taint t = w.tdom->eval(e.kids[1], tst);
        if (t.tainted)
          report_taint("T000", w, line, e.kids[1], t, "used as a subscript");
        return;
      }
      case Expr::Kind::kCall: {
        const std::string simple = simple_name(e.op);
        const bool sanitizing = simple == "min" || simple == "max" ||
                                simple == "clamp" || simple == "env_int_min";
        for (const Expr& k : e.kids)
          check_expr(k, ist, tst, w, in_compare || sanitizing, stmt_line);
        if (is_alloc_call(simple) && !e.kids.empty()) {
          const Taint t = w.tdom->eval(e.kids[0], tst);
          if (t.tainted)
            report_taint("T002", w, line, e.kids[0], t,
                         "used as an allocation size in `" + simple + "`");
        }
        return;
      }
      case Expr::Kind::kVar: {
        if (in_compare) return;
        const Taint t = w.tdom->eval(e, tst);
        if (t.tainted && t.kind == "env" &&
            w.sink_reported->count(e.op) == 0 &&
            t003_done_.insert(w.fn->qual + "|" + e.op + "|" + t.source)
                .second)
          emit("T003", *w.fn, line, e.op,
               "env knob `" + e.op + "` (" + t.source +
                   ") used without any clamp or comparison guard between "
                   "read and use");
        return;
      }
      default: return;
    }
  }

  /// Loop-bound rules (V005/T001) on a loop edge's condition.
  void check_loop_cond(const Expr& cond, const IntervalState& ist,
                       const TaintState& tst, const WalkCtx& w,
                       int head_line) {
    if (cond.kind == Expr::Kind::kUnary && cond.op == "!" &&
        !cond.kids.empty()) {
      check_loop_cond(cond.kids[0], ist, tst, w, head_line);
      return;
    }
    if (cond.kind != Expr::Kind::kBinary) return;
    if (cond.op == "&&" || cond.op == "||") {
      for (const Expr& k : cond.kids)
        check_loop_cond(k, ist, tst, w, head_line);
      return;
    }
    if (!is_relational_op(cond.op) || cond.kids.size() != 2) return;
    for (int side = 0; side < 2; ++side) {
      const Expr& counter = cond.kids[static_cast<std::size_t>(side)];
      const Expr& bound = cond.kids[static_cast<std::size_t>(1 - side)];
      // T001: a tainted bound makes the trip count hostile-controlled.
      const Taint t = w.tdom->eval(bound, tst);
      if (t.tainted)
        report_taint("T001", w, head_line, bound, t, "used as a loop bound");
      // V005: 32-bit counter, 64-bit bound that provably exceeds it.
      if (counter.kind != Expr::Kind::kVar) continue;
      const ValType ct = static_type(counter, w.fx->types);
      const ValType bt = static_type(bound, w.fx->types);
      if (ct != ValType::kInt32 || !is_integer(bt) || bit_width(bt) != 64)
        continue;
      const Interval bv = w.idom->eval(bound, ist);
      if (bv.hi > kInt32Max && bv.hi < kInf)
        emit("V005", *w.fn, head_line, expr_text(cond),
             "32-bit loop counter `" + counter.op +
                 "` bounded by 64-bit `" + expr_text(bound) + "` (range " +
                 range_text(bv) + ") exceeding INT32_MAX");
    }
  }

  void analyze_fn(int fn_idx) {
    const FunctionInfo& fn = index_.functions[static_cast<std::size_t>(fn_idx)];
    FnCtx* fx = ctx_for(fn_idx);
    if (fx == nullptr || fx->oversized) return;
    bool has_stmts = false;
    for (const BasicBlock& blk : fx->cfg.blocks)
      has_stmts = has_stmts || !blk.stmts.empty();
    if (!has_stmts) return;

    IntervalDomain idom(&fx->types, &fx->cache, this);
    TaintDomain tdom(&fx->cache);
    const DataflowResult<IntervalDomain> ires =
        solve_forward(fx->cfg, idom);
    const DataflowResult<TaintDomain> tres = solve_forward(fx->cfg, tdom);

    std::set<std::string> sink_reported;
    WalkCtx w;
    w.fn = &fn;
    w.fx = fx;
    w.idom = &idom;
    w.tdom = &tdom;
    w.sink_reported = &sink_reported;

    for (std::size_t b = 0; b < fx->cfg.blocks.size(); ++b) {
      IntervalState ist = ires.in[b];
      TaintState tst = tres.in[b];
      if (!ist.reachable || !tst.reachable) continue;
      const BasicBlock& blk = fx->cfg.blocks[b];
      for (const CfgStmt& s : blk.stmts) {
        const Expr& e = fx->cache.parsed(s);
        check_expr(e, ist, tst, w, false, s.line);
        idom.transfer(e, ist);
        tdom.transfer(e, tst);
      }
      // Loop conditions live on the head's branch edges (and on a
      // do/while latch's back edge).
      for (const CfgEdge& edge : blk.succ) {
        if (edge.cond.empty()) continue;
        const bool loop_edge =
            (blk.is_loop_head &&
             (edge.kind == EdgeKind::kTrue || edge.kind == EdgeKind::kFalse)) ||
            edge.kind == EdgeKind::kBack;
        if (!loop_edge) continue;
        check_loop_cond(fx->cache.parsed_cond(edge), ist, tst, w,
                        blk.stmts.empty() ? blk.line : blk.stmts.back().line);
        break;  // one condition per loop head
      }
    }
  }

  CppIndex& index_;
  const std::map<std::string, std::vector<Line>>& lines_;
  Report& report_;
  std::map<int, std::unique_ptr<FnCtx>> ctx_;
  std::set<std::string> emitted_;
  std::set<std::string> t003_done_;
  std::map<std::string, Interval> oracle_memo_;
  std::set<std::string> oracle_active_;
  int oracle_depth_ = 0;
};

}  // namespace

void analyze_value_index(
    CppIndex& index,
    const std::map<std::string, std::vector<Line>>& lines_by_file,
    Report& report) {
  index.finalize();
  ValueflowAnalyzer analyzer(index, lines_by_file, report);
  analyzer.run();
}

bool analyze_value_files(const std::vector<std::string>& files, Report& report,
                         std::string* error) {
  CppIndex index;
  std::map<std::string, std::vector<Line>> lines_by_file;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path;
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string npath = normalize_path(path);
    index_source(npath, text, index);
    lines_by_file.emplace(npath, lex_lines(text));
  }
  analyze_value_index(index, lines_by_file, report);
  return true;
}

}  // namespace dsp::analysis
