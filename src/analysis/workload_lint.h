// Workload/DAG lint pass (rules W000-W005).
//
// Pre-run static checks over a workload: structural validity (cycles,
// dangling parent references, sizes/demands/deadline ordering) plus two
// feasibility lower bounds against a target cluster — a job whose
// critical-path time on the *fastest* node already exceeds its deadline
// (W003) can never meet it under any schedule (Eq. (2) is a lower bound on
// constraint (6)), and a task whose demand fits no node (W004) can never be
// placed at all.
#pragma once

#include <string>

#include "analysis/diagnostics.h"
#include "dag/job.h"
#include "dag/validate.h"
#include "sim/cluster.h"

namespace dsp::analysis {

/// Options for lint_workload.
struct WorkloadLintOptions {
  /// Cluster the feasibility rules (W003/W004) check against; when null
  /// those rules are skipped (pure structural lint).
  const ClusterSpec* cluster = nullptr;
  /// DAG shape caps forwarded to validate_job (0 disables a cap).
  DagLimits limits;
};

/// Runs W003-W005 over finalized jobs, appending findings to `report`.
void lint_workload(const JobSet& jobs, const WorkloadLintOptions& options,
                   Report& report);

/// Loads a workload trace CSV for analysis. Loader failures become
/// diagnostics instead of hard errors: cyclic graphs map to W001, parent
/// references outside the job to W002, and everything else (I/O, malformed
/// rows) to W000. Jobs that parsed cleanly are returned and can still be
/// linted.
JobSet load_workload_for_analysis(const std::string& path,
                                  double reference_rate, Report& report);

}  // namespace dsp::analysis
