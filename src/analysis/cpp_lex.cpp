#include "analysis/cpp_lex.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dsp::analysis {

std::string normalize_path(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_has(const std::string& path, std::string_view pat) {
  for (std::size_t pos = path.find(pat); pos != std::string::npos;
       pos = path.find(pat, pos + 1)) {
    if (pos != 0 && path[pos - 1] != '/') continue;
    const std::size_t end = pos + pat.size();
    if (pat.back() == '.' || end == path.size() || path[end] == '/')
      return true;
  }
  return false;
}

std::vector<Line> lex_lines(std::string_view text) {
  enum class State { kCode, kString, kChar, kRawString, kLineComment, kBlockComment };
  std::vector<Line> lines(1);
  State state = State::kCode;
  std::string raw_delim;       // the )delim" terminator of a raw string
  bool continuation = false;   // previous line ended a directive with '\'
  bool seen_code_on_line = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    Line& line = lines.back();
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      const std::string& code = line.code;
      continuation = line.preprocessor && !code.empty() &&
                     code.find_last_not_of(" \t") != std::string::npos &&
                     code[code.find_last_not_of(" \t")] == '\\';
      lines.emplace_back();
      seen_code_on_line = false;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '"') {
          // R"delim( ... )delim" — capture the closing sentinel.
          if (!line.code.empty() && line.code.back() == 'R' &&
              (line.code.size() < 2 ||
               !(std::isalnum(static_cast<unsigned char>(
                     line.code[line.code.size() - 2])) ||
                 line.code[line.code.size() - 2] == '_'))) {
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') raw_delim += text[j++];
            raw_delim += '"';
            state = State::kRawString;
            line.code += '"';
            break;
          }
          state = State::kString;
          line.code += '"';
          break;
        }
        if (c == '\'') {
          // Skip digit separators (1'000'000): preceded by an alnum.
          if (!line.code.empty() &&
              std::isalnum(static_cast<unsigned char>(line.code.back()))) {
            line.code += ' ';
            break;
          }
          state = State::kChar;
          line.code += '\'';
          break;
        }
        if (!seen_code_on_line && !std::isspace(static_cast<unsigned char>(c))) {
          seen_code_on_line = true;
          line.preprocessor = continuation || c == '#';
        }
        line.code += c;
        break;
      }
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
          line.code += "  ";
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          line.code += quote;
        } else {
          line.code += ' ';
        }
        break;
      }
      case State::kRawString: {
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          line.code += '"';
          state = State::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
      case State::kLineComment: {
        line.comment += c;
        line.code += ' ';
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          line.code += "  ";
          ++i;
        } else {
          line.comment += c;
          line.code += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

std::vector<std::string> parse_allows(const std::string& comment) {
  std::vector<std::string> ids;
  static const std::string kTag = "dsp-tidy: allow(";
  const std::size_t tag = comment.find(kTag);
  if (tag == std::string::npos) return ids;
  std::size_t pos = tag + kTag.size();
  std::string id;
  for (; pos < comment.size() && comment[pos] != ')'; ++pos) {
    const char c = comment[pos];
    if (c == ',') {
      if (!id.empty()) ids.push_back(std::move(id));
      id.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      id += c;
    }
  }
  if (!id.empty()) ids.push_back(std::move(id));
  return ids;
}

bool allowed(const std::vector<std::string>& allows, std::string_view id) {
  return std::find(allows.begin(), allows.end(), id) != allows.end();
}

const SourceCache::Entry& SourceCache::load_file(const std::string& path) {
  auto it = entries_.find(path);
  if (it != entries_.end()) return it->second;
  Entry entry;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    entry.error = "cannot open file: " + path;
  } else {
    std::ostringstream buf;
    buf << in.rdbuf();
    entry.text = buf.str();
    entry.lines = lex_lines(entry.text);
    entry.ok = true;
  }
  return entries_.emplace(path, std::move(entry)).first->second;
}

}  // namespace dsp::analysis
