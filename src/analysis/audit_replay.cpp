#include "analysis/audit_replay.h"

#include <cstdarg>
#include <cstdio>

namespace dsp::analysis {
namespace {

/// Flat gid addressing mirroring the engine's (job-major, task order).
struct GidMap {
  std::vector<Gid> offsets;
  Gid total = 0;

  explicit GidMap(const JobSet& jobs) {
    offsets.reserve(jobs.size());
    for (const Job& job : jobs) {
      offsets.push_back(total);
      total += static_cast<Gid>(job.task_count());
    }
  }

  bool contains(Gid g) const { return g < total; }

  /// Job index owning `g` (offsets are sorted; binary search).
  std::size_t job_of(Gid g) const {
    std::size_t lo = 0, hi = offsets.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (offsets[mid] <= g) lo = mid;
      else hi = mid;
    }
    return lo;
  }

  TaskIndex index_of(Gid g, std::size_t job) const {
    return static_cast<TaskIndex>(g - offsets[job]);
  }
};

std::string subject_of(std::size_t i, const obs::PreemptDecision& d) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "decision %zu (t=%lld us, node %d)", i,
                static_cast<long long>(d.time), d.node);
  return buf;
}

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[160];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

void replay_audit(const std::vector<obs::PreemptDecision>& decisions,
                  const AuditReplayOptions& options, Report& report) {
  const JobSet* jobs = options.workload;
  static const JobSet kNoJobs;
  const GidMap gids(jobs ? *jobs : kNoJobs);
  const double tol = options.tol;

  SimTime last_time = kNoTime;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const obs::PreemptDecision& d = decisions[i];
    const bool fired = d.outcome == obs::PreemptOutcome::kFired;
    const bool suppressed = d.outcome == obs::PreemptOutcome::kSuppressedPP;
    const bool has_victim = d.victim != kInvalidGid;

    // ---- P000: trail integrity. --------------------------------------
    if (last_time != kNoTime && d.time < last_time) {
      report.add("P000", subject_of(i, d),
                 "engine time goes backwards (previous decision at t=" +
                     std::to_string(last_time) + " us)");
    }
    last_time = d.time;
    bool gids_valid = jobs != nullptr;
    if (jobs) {
      if (!gids.contains(d.candidate)) {
        report.add("P000", subject_of(i, d),
                   "candidate gid " + std::to_string(d.candidate) +
                       " does not exist in the workload (" +
                       std::to_string(gids.total) + " tasks)");
        gids_valid = false;
      }
      if (has_victim && !gids.contains(d.victim)) {
        report.add("P000", subject_of(i, d),
                   "victim gid " + std::to_string(d.victim) +
                       " does not exist in the workload (" +
                       std::to_string(gids.total) + " tasks)");
        gids_valid = false;
      }
    }

    // ---- P002: condition C1 on non-urgent fires. ---------------------
    if (fired && !d.urgent && has_victim &&
        d.candidate_priority <= d.victim_priority + tol) {
      report.add("P002", subject_of(i, d),
                 fmt("fired with candidate priority %.6g <= victim priority "
                     "%.6g (C1 requires strictly greater)",
                     d.candidate_priority, d.victim_priority));
    }

    // ---- P004: the normalized-priority gate. -------------------------
    if (suppressed) {
      if (!d.pp) {
        report.add("P004", subject_of(i, d),
                   "suppressed by the PP gate although normalized preemption "
                   "was disabled");
      } else if (d.normalized_gap > d.rho + tol) {
        report.add("P004", subject_of(i, d),
                   fmt("suppressed although P-tilde %.6g > rho %.6g (the gate "
                       "only suppresses gaps at or below rho)",
                       d.normalized_gap, d.rho));
      }
    }
    if (fired && !d.urgent && d.pp && has_victim && d.normalized_gap != 0.0 &&
        d.normalized_gap <= d.rho - tol) {
      report.add("P004", subject_of(i, d),
                 fmt("fired with P-tilde %.6g <= rho %.6g; the PP gate should "
                     "have suppressed this preemption",
                     d.normalized_gap, d.rho));
    }

    // ---- Dependency-aware rules need the workload's DAGs. ------------
    if (!gids_valid || !has_victim) continue;
    const std::size_t cj = gids.job_of(d.candidate);
    const std::size_t vj = gids.job_of(d.victim);
    if (cj != vj) continue;  // tasks of different jobs never depend
    const Job& job = (*jobs)[cj];
    if (!job.finalized()) continue;
    const TaskIndex ct = gids.index_of(d.candidate, cj);
    const TaskIndex vt = gids.index_of(d.victim, vj);

    // ---- P003: condition C2 — the candidate must not depend on the
    // victim it displaced (it would stall waiting for its own input).
    if (fired && job.graph().depends_on(ct, vt)) {
      report.add("P003", subject_of(i, d),
                 "fired although candidate task " + std::to_string(ct) +
                     " (job " + std::to_string(job.id()) +
                     ") transitively depends on victim task " +
                     std::to_string(vt) + " (C2)");
    }

    // ---- P001: Formula 12 monotonicity down the DAG. -----------------
    if ((fired || suppressed) && job.graph().depends_on(vt, ct) &&
        d.candidate_priority > tol && d.victim_priority > tol &&
        d.candidate_priority <= d.victim_priority + tol) {
      report.add(
          "P001", subject_of(i, d),
          fmt("candidate is an ancestor of the victim but its priority %.6g "
              "does not dominate the victim's %.6g; Formula 12 aggregates "
              "descendant priorities scaled by gamma+1 >= 1",
              d.candidate_priority, d.victim_priority));
    }
  }
}

}  // namespace dsp::analysis
