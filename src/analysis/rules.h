// Rule catalog of the dsp-analyze / dsp-tidy static rule engines.
//
// Five rule families:
//   W* — workload/DAG lint (pre-run): structural validity plus
//        critical-path feasibility lower bounds.
//   S* — schedule constraint check: a solver-produced placement is
//        verified directly against the paper's §III ILP constraints
//        (4)-(11) without running the engine.
//   P* — preemption audit replay: every recorded Algorithm-1 decision is
//        re-derived statically — C1/C2 and the P-tilde > rho gate must
//        have held, and priorities must respect the Formula 12/13
//        structure (ancestors aggregate descendants, Fig. 3).
//   D* — source-level determinism lint (dsp_tidy, srclint.h): rejects
//        nondeterminism at the source level — ambient randomness, wall
//        clocks, hash-order iteration, stray threads — because the
//        bit-identical priorities/preemption decisions the engine
//        promises at any thread count must hold by construction, not
//        just under determinism_test.
//   C* — source-level concurrency/robustness lint (dsp_tidy): lock
//        discipline (unguarded globals, I/O under a lock, manual
//        lock/unlock), raw new/delete, unchecked hot-path indexing, and
//        console output bypassing util/log.
//   V* — value-range rules (dsp_tidy --dataflow, valueflow.h): interval
//        abstract interpretation over per-function CFGs catches the
//        numeric traps the scheduler math invites — division by a
//        witnessed zero (a t_rem or rate that a real path zeroes),
//        unsigned subtraction that wraps on tick/deadline chains,
//        narrowing casts, float ==, oversized shifts and 32-bit loop
//        counters bounded by 64-bit quantities.
//   T* — taint rules (dsp_tidy --dataflow): values entering from env
//        vars, workload CSV fields or parsed text must pass a clamp or
//        comparison guard before becoming an array index, loop bound or
//        allocation size.
// IDs are stable: tools, CI filters and fixtures reference them by name.
#pragma once

#include <span>
#include <string_view>

#include "analysis/diagnostics.h"

namespace dsp::analysis {

/// Static description of one rule.
struct RuleInfo {
  const char* id;       ///< Stable ID ("W001").
  const char* name;     ///< Slug ("dag-cycle").
  Severity severity;    ///< Default severity of findings.
  const char* summary;  ///< One-line description (shown by `dsp_analyze --rules help`).
  const char* paper_ref;  ///< Paper constraint/formula/algorithm it enforces.
};

/// Every rule, ordered by family then number.
std::span<const RuleInfo> rule_catalog();

/// Catalog lookup; nullptr for unknown IDs.
const RuleInfo* find_rule(std::string_view id);

}  // namespace dsp::analysis
