#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "analysis/rules.h"

namespace dsp::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

namespace {

/// Escapes a string for embedding in a JSON literal.
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void Report::add(std::string_view rule, std::string subject,
                 std::string message) {
  const RuleInfo* info = find_rule(rule);
  add(rule, info ? info->severity : Severity::kError, std::move(subject),
      std::move(message));
}

void Report::add(std::string_view rule, Severity severity, std::string subject,
                 std::string message) {
  if (!accepts(rule)) return;
  diagnostics_.push_back(
      {std::string(rule), severity, std::move(subject), std::move(message)});
}

void Report::set_rule_filter(std::vector<std::string> rules) {
  rule_filter_ = std::move(rules);
}

bool Report::accepts(std::string_view rule) const {
  if (rule_filter_.empty()) return true;
  return std::find(rule_filter_.begin(), rule_filter_.end(), rule) !=
         rule_filter_.end();
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.severity == s) ++n;
  return n;
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diagnostics_) {
    if (!accepts(d.rule)) continue;
    diagnostics_.push_back(d);
  }
}

void Report::print_text(std::ostream& out) const {
  for (const Diagnostic& d : diagnostics_) {
    const RuleInfo* info = find_rule(d.rule);
    out << d.rule << ' ' << (info ? info->name : "?") << ' '
        << to_string(d.severity) << ' ' << d.subject << ": " << d.message
        << '\n';
  }
  out << (diagnostics_.empty() ? "clean" : "found") << ": "
      << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
      << " warning(s), " << count(Severity::kInfo) << " note(s)\n";
}

void Report::write_json(std::ostream& out, std::string_view input_kind,
                        std::string_view input_path) const {
  out << "{\n  \"analyzer\": \"dsp-analyze\",\n  \"input\": {\"kind\": ";
  write_json_string(out, input_kind);
  out << ", \"path\": ";
  write_json_string(out, input_path);
  out << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    const RuleInfo* info = find_rule(d.rule);
    out << (i ? ",\n    " : "\n    ") << "{\"rule\": ";
    write_json_string(out, d.rule);
    out << ", \"name\": ";
    write_json_string(out, info ? info->name : "?");
    out << ", \"severity\": ";
    write_json_string(out, to_string(d.severity));
    out << ", \"subject\": ";
    write_json_string(out, d.subject);
    out << ", \"message\": ";
    write_json_string(out, d.message);
    out << '}';
  }
  out << (diagnostics_.empty() ? "]" : "\n  ]");
  if (scan_seconds_ >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", scan_seconds_);
    out << ",\n  \"scan\": {\"seconds\": " << buf << "}";
  }
  out << ",\n  \"summary\": {\"error\": " << count(Severity::kError)
      << ", \"warning\": " << count(Severity::kWarning)
      << ", \"info\": " << count(Severity::kInfo) << "}\n}\n";
}

}  // namespace dsp::analysis
