#include "analysis/lockflow.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "analysis/callgraph.h"
#include "analysis/cpp_lex.h"

namespace dsp::analysis {
namespace {

/// D006 polices the deterministic hot path, like D003/C003: src/core and
/// src/sim, plus out-of-tree files so the seeded fixtures fire.
bool in_flow_scope(const std::string& path) {
  return path_has(path, "src/core") || path_has(path, "src/sim") ||
         !path_has(path, "src");
}

bool is_ident(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

std::string normalize_expr(const std::string& s) {
  std::string out;
  for (const char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  while (!out.empty() && (out.front() == '&' || out.front() == '*'))
    out.erase(out.begin());
  if (out.rfind("this->", 0) == 0) out.erase(0, 6);
  return out;
}

/// Same member-qualification rule the indexer uses, applied in the
/// caller's class context (for L004 argument substitution).
std::string qualify(const CppIndex& index, const std::string& expr,
                    const std::string& cls) {
  if (cls.empty() || !is_ident(expr)) return expr;
  if (index.member_types.count({cls, expr}) > 0 || expr.back() == '_')
    return cls + "::" + expr;
  return expr;
}

/// Drops the trailing '(' regex matches keep ("printf(" -> "printf").
std::string pretty_token(std::string token) {
  if (!token.empty() && token.back() == '(') token.pop_back();
  return token;
}

std::string lock_class(const std::string& lock) {
  const std::size_t sep = lock.rfind("::");
  return sep == std::string::npos ? "" : lock.substr(0, sep);
}

std::string subject_of(const Chain& chain) {
  return chain.front().file + ":" + std::to_string(chain.front().line);
}

/// A `dsp-tidy: allow(ID)` on any line of the evidence chain silences
/// the finding.
bool chain_allowed(const CppIndex& index, const Chain& chain,
                   std::string_view id) {
  for (const ChainStep& step : chain)
    if (index.allowed_at(step.file, step.line, id)) return true;
  return false;
}

/// One directed lock-order edge A -> B with its evidence chain.
struct LockEdge {
  Chain chain;
};

class FlowAnalyzer {
 public:
  FlowAnalyzer(CppIndex& index, Report& report)
      : index_(index), graph_(index), report_(report) {}

  void run();

 private:
  void collect_edges_and_l001_l002_l004();
  void check_l000();
  void check_l003();
  void check_d006();

  void add_edge(const std::string& from, const std::string& to, Chain chain);

  CppIndex& index_;
  CallGraph graph_;
  Report& report_;

  /// (held lock, acquired lock) -> first evidence chain.
  std::map<std::pair<std::string, std::string>, LockEdge> edges_;
  std::set<std::string> emitted_;  ///< Dedupe keys for findings.
};

void FlowAnalyzer::add_edge(const std::string& from, const std::string& to,
                            Chain chain) {
  const auto key = std::make_pair(from, to);
  if (edges_.count(key) > 0) return;
  edges_.emplace(key, LockEdge{std::move(chain)});
}

void FlowAnalyzer::collect_edges_and_l001_l002_l004() {
  for (std::size_t i = 0; i < index_.functions.size(); ++i) {
    const FunctionInfo& fn = index_.functions[i];

    // Direct acquisitions while already holding something.
    for (const LockAcq& acq : fn.acquisitions) {
      for (const std::string& held : acq.held_before) {
        Chain chain = {{fn.file, acq.line, fn.qual,
                        "holding " + held + ", acquires " + acq.lock}};
        if (held == acq.lock) {
          if (!chain_allowed(index_, chain, "L001") &&
              emitted_.insert("L001@" + subject_of(chain) + acq.lock).second)
            report_.add("L001", subject_of(chain),
                        "non-recursive mutex " + acq.lock +
                            " re-acquired while already held: " +
                            format_chain(chain));
        } else {
          add_edge(held, acq.lock, std::move(chain));
        }
      }
    }

    // Calls made while holding locks: propagate callee summaries.
    for (const CallSite& call : fn.calls) {
      const std::vector<int> targets = graph_.resolve(fn, call);

      // L004 needs the call even when nothing is held.
      for (const int t : targets) {
        const FunctionInfo& callee = index_.functions[t];
        for (const std::string& req : callee.requires_locks) {
          std::string resolved = req;
          const auto pit = std::find(callee.params.begin(),
                                     callee.params.end(), req);
          if (pit != callee.params.end()) {
            const std::size_t arg_idx =
                static_cast<std::size_t>(pit - callee.params.begin());
            if (arg_idx >= call.args.size()) continue;  // unresolvable
            resolved = qualify(index_, normalize_expr(call.args[arg_idx]),
                               fn.cls);
          }
          if (std::find(call.held.begin(), call.held.end(), resolved) !=
              call.held.end())
            continue;
          Chain chain = {{fn.file, call.line, fn.qual,
                          "calls " + callee.qual + " which requires " +
                              resolved + " without holding it"}};
          if (chain_allowed(index_, chain, "L004")) continue;
          const std::string key =
              "L004@" + subject_of(chain) + callee.qual + resolved;
          if (!emitted_.insert(key).second) continue;
          report_.add("L004", subject_of(chain),
                      callee.qual + " is annotated DSP_REQUIRES(" + resolved +
                          ") but the caller does not hold it: " +
                          format_chain(chain));
        }
      }

      if (call.held.empty()) continue;
      for (const int t : targets) {
        const FunctionSummary& ts = graph_.summary(t);
        const FunctionInfo& callee = index_.functions[t];
        const ChainStep step{fn.file, call.line, fn.qual,
                             "calls " + callee.qual};

        for (const auto& [lock, li] : ts.acquires) {
          Chain chain;
          chain.push_back(step);
          chain.insert(chain.end(), li.chain.begin(), li.chain.end());
          for (const std::string& held : call.held) {
            if (held != lock) {
              Chain edge_chain = chain;
              edge_chain.front().note =
                  "holding " + held + ", calls " + callee.qual;
              add_edge(held, lock, std::move(edge_chain));
              continue;
            }
            // Same lock re-acquired down the call path (L001): only a
            // real self-deadlock when it is the same instance — a bare
            // (file-scope) lock always is; a member lock only along an
            // unbroken this-call chain within the lock's own class.
            const std::string cls = lock_class(lock);
            if (!cls.empty() &&
                !(call.this_call && li.via_this && fn.cls == cls))
              continue;
            if (chain_allowed(index_, chain, "L001")) continue;
            if (!emitted_.insert("L001@" + subject_of(chain) + lock).second)
              continue;
            report_.add("L001", subject_of(chain),
                        "non-recursive mutex " + lock +
                            " re-acquired along the call path: " +
                            format_chain(chain));
          }
        }

        if (!ts.io.empty()) {
          Chain chain;
          chain.push_back(step);
          chain.insert(chain.end(), ts.io.front().chain.begin(),
                       ts.io.front().chain.end());
          chain.front().note =
              "holding " + call.held.front() + ", calls " + callee.qual;
          if (!chain_allowed(index_, chain, "L002") &&
              emitted_
                  .insert("L002@" + subject_of(chain) + ts.io.front().token)
                  .second)
            report_.add("L002", subject_of(chain),
                        "blocking/console I/O (" +
                            pretty_token(ts.io.front().token) +
                            ") reachable while " + call.held.front() +
                            " is held: " + format_chain(chain));
        }
      }
    }
  }
}

void FlowAnalyzer::check_l000() {
  // Locks that participate in any edge.
  std::set<std::string> locks;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : edges_) {
    locks.insert(key.first);
    locks.insert(key.second);
    adj[key.first].push_back(key.second);
  }

  // BFS path A -> ... -> B over order edges; returns the concatenated
  // evidence chains, empty when unreachable.
  const auto path_chain = [&](const std::string& from,
                              const std::string& to) -> Chain {
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue = {from};
    parent[from] = "";
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::string cur = queue[qi];
      if (cur == to && qi > 0) break;
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (parent.count(next) > 0) continue;
        parent[next] = cur;
        queue.push_back(next);
      }
    }
    if (parent.count(to) == 0 || (from == to)) return {};
    Chain out;
    std::vector<std::pair<std::string, std::string>> hops;
    for (std::string cur = to; cur != from || hops.empty();) {
      const std::string par = parent[cur];
      hops.push_back({par, cur});
      cur = par;
      if (cur == from) break;
    }
    std::reverse(hops.begin(), hops.end());
    for (const auto& hop : hops) {
      const Chain& c = edges_.at(hop).chain;
      out.insert(out.end(), c.begin(), c.end());
    }
    return out;
  };

  for (const std::string& a : locks) {
    for (const std::string& b : locks) {
      if (a >= b) continue;  // each unordered pair once
      const Chain forward = path_chain(a, b);
      if (forward.empty()) continue;
      const Chain backward = path_chain(b, a);
      if (backward.empty()) continue;
      if (chain_allowed(index_, forward, "L000") ||
          chain_allowed(index_, backward, "L000"))
        continue;
      if (!emitted_.insert("L000@" + a + "/" + b).second) continue;
      report_.add("L000", subject_of(forward),
                  "lock-order inversion between " + a + " and " + b +
                      ": one path takes " + a + " then " + b + " [" +
                      format_chain(forward) + "] while another takes " + b +
                      " then " + a + " [" + format_chain(backward) + "]");
    }
  }
}

void FlowAnalyzer::check_l003() {
  for (std::size_t i = 0; i < index_.functions.size(); ++i) {
    const FunctionInfo& fn = index_.functions[i];
    for (const ParallelForSite& pf : fn.parallel_fors) {
      const int cb = graph_.resolve_callback(fn, pf.callback);
      if (cb < 0) continue;
      const FunctionSummary& ts = graph_.summary(cb);
      const FunctionInfo& cbinfo = index_.functions[cb];
      for (const auto& [member, write_chain] : ts.unguarded_writes) {
        Chain chain;
        chain.push_back({fn.file, pf.line, fn.qual,
                         "parallel_for over " + cbinfo.qual});
        chain.insert(chain.end(), write_chain.begin(), write_chain.end());
        if (chain_allowed(index_, chain, "L003")) continue;
        if (!emitted_.insert("L003@" + subject_of(chain) + member).second)
          continue;
        report_.add("L003", subject_of(chain),
                    "parallel_for callback reaches a write to " + member +
                        ", which has no DSP_GUARDED_BY annotation and is "
                        "not atomic; concurrent chunks race: " +
                        format_chain(chain));
      }
    }
  }
}

void FlowAnalyzer::check_d006() {
  for (std::size_t i = 0; i < index_.functions.size(); ++i) {
    const FunctionInfo& fn = index_.functions[i];
    if (!in_flow_scope(fn.file)) continue;
    if (!fn.nondet_sites.empty()) continue;  // D000-D003's territory
    const FunctionSummary& ts = graph_.summary(static_cast<int>(i));
    for (const auto& [token, si] : ts.nondet) {
      if (si.chain.size() < 2) continue;  // interprocedural only
      const ChainStep& sink = si.chain.back();
      const std::string sink_key =
          "D006@" + sink.file + ":" + std::to_string(sink.line) + token;
      if (chain_allowed(index_, si.chain, "D006")) continue;
      if (!emitted_.insert(sink_key).second) continue;
      report_.add("D006", subject_of(si.chain),
                  "deterministic entry point " + fn.qual +
                      " reaches nondeterminism source " + pretty_token(token) +
                      " through its call chain: " + format_chain(si.chain));
    }
  }
}

void FlowAnalyzer::run() {
  collect_edges_and_l001_l002_l004();
  check_l000();
  check_l003();
  check_d006();
}

}  // namespace

void analyze_flow_index(CppIndex& index, Report& report) {
  index.finalize();
  FlowAnalyzer analyzer(index, report);
  analyzer.run();
}

bool analyze_flow_files(const std::vector<std::string>& files, Report& report,
                        std::string* error) {
  CppIndex index;
  for (const std::string& file : files)
    if (!index_source_file(file, index, error)) return false;
  analyze_flow_index(index, report);
  return true;
}

}  // namespace dsp::analysis
