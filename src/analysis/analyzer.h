// dsp-analyze front-end: file-level entry points composing the passes.
//
// Each entry point loads one input artifact, routes load failures into the
// family's *000 parse rule, runs the family's rules, and returns the
// report. tools/dsp_analyze is a thin CLI over these; tests call them
// in-process.
#pragma once

#include <string>

#include "analysis/audit_replay.h"
#include "analysis/diagnostics.h"
#include "analysis/schedule_check.h"
#include "analysis/workload_lint.h"

namespace dsp::analysis {

/// Workload lint (W rules) over a trace CSV against `cluster`.
/// `reference_rate` derives per-level task deadlines at load, exactly as
/// the simulator would. `filter` restricts the rules (empty = all).
Report analyze_workload_file(const std::string& path,
                             const ClusterSpec& cluster, double reference_rate,
                             std::vector<std::string> filter = {});

/// Schedule constraint check (S rules) over a schedule JSON.
Report analyze_schedule_file(const std::string& path,
                             std::vector<std::string> filter = {});

/// Audit replay (P rules) over an audit-trail JSON; `workload_path`
/// optionally names the trace CSV the trail was recorded against (enables
/// P001/P003 and gid validation).
Report analyze_audit_file(const std::string& path,
                          const std::string& workload_path,
                          double reference_rate,
                          std::vector<std::string> filter = {});

/// Parses a cluster spec string: "ec2:<n>", "real:<n>", or
/// "uniform:<n>:<mips>:<mem_gb>:<slots>". Returns false (with a message)
/// on malformed input.
bool parse_cluster_spec(const std::string& text, ClusterSpec& out,
                        std::string* error);

}  // namespace dsp::analysis
