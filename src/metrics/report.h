// Reporting helpers: turn RunMetrics grids into the tables the paper plots.
//
// Each figure bench produces a MetricSeries — methods x sweep-points — and
// renders one table per metric, with rows matching the paper's x-axis
// (number of jobs) and columns matching its legend (methods).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/run_metrics.h"
#include "util/table.h"

namespace dsp {

/// A grid of run results: one row per sweep point, one column per method.
class MetricSeries {
 public:
  MetricSeries(std::vector<std::string> methods, std::vector<long long> xs,
               std::string x_label = "jobs");

  /// Stores the result for (method index, sweep index).
  /// Throws std::out_of_range when either index is outside the grid.
  void set(std::size_t method, std::size_t x, RunMetrics metrics);

  /// Throws std::out_of_range when either index is outside the grid.
  const RunMetrics& at(std::size_t method, std::size_t x) const;
  const std::vector<std::string>& methods() const { return methods_; }
  const std::vector<long long>& xs() const { return xs_; }
  const std::string& x_label() const { return x_label_; }

  /// Renders one metric as a table, e.g.
  ///   table("Fig 5(a) makespan (s)", [](auto& m){ return
  ///   to_seconds(m.makespan); });
  Table table(const std::string& title,
              const std::function<double(const RunMetrics&)>& extract,
              int precision = 2) const;

  /// Convenience tables for the paper's standard metrics.
  Table makespan_table(const std::string& title) const;
  Table throughput_table(const std::string& title) const;
  Table disorders_table(const std::string& title) const;
  Table waiting_table(const std::string& title) const;
  Table preemptions_table(const std::string& title) const;

 private:
  std::vector<std::string> methods_;
  std::vector<long long> xs_;
  std::string x_label_;
  std::vector<RunMetrics> grid_;  // row-major: x index * methods + method
};

/// One-line human summary of a run (examples use this).
std::string summarize(const RunMetrics& m);

/// Per-size-class breakdown (small/medium/large): job count, mean
/// completion time, mean task wait, deadline hit rate. Built from
/// RunMetrics::job_records.
Table job_class_table(const RunMetrics& m, const std::string& title);

/// Writes one run's metrics as a flat JSON object (makespan, throughput,
/// waiting, preemption-audit counters, failures, locality, overheads).
void write_json(std::ostream& out, const RunMetrics& m);

/// Writes a series as {"x_label","methods","xs","cells":[{method,x,...}]}.
void write_json(std::ostream& out, const MetricSeries& s);

}  // namespace dsp
