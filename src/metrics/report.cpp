#include "metrics/report.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.h"

namespace dsp {
namespace {

[[noreturn]] void throw_grid_range(const char* fn, std::size_t method,
                                   std::size_t x, std::size_t methods,
                                   std::size_t xs) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "MetricSeries::%s(method=%zu, x=%zu) out of range: grid is "
                "%zu methods x %zu sweep points",
                fn, method, x, methods, xs);
  throw std::out_of_range(buf);
}

}  // namespace

MetricSeries::MetricSeries(std::vector<std::string> methods,
                           std::vector<long long> xs, std::string x_label)
    : methods_(std::move(methods)),
      xs_(std::move(xs)),
      x_label_(std::move(x_label)),
      grid_(methods_.size() * xs_.size()) {}

void MetricSeries::set(std::size_t method, std::size_t x, RunMetrics metrics) {
  if (method >= methods_.size() || x >= xs_.size())
    throw_grid_range("set", method, x, methods_.size(), xs_.size());
  grid_[x * methods_.size() + method] = std::move(metrics);
}

const RunMetrics& MetricSeries::at(std::size_t method, std::size_t x) const {
  if (method >= methods_.size() || x >= xs_.size())
    throw_grid_range("at", method, x, methods_.size(), xs_.size());
  return grid_[x * methods_.size() + method];
}

Table MetricSeries::table(const std::string& title,
                          const std::function<double(const RunMetrics&)>& extract,
                          int precision) const {
  Table t(title);
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), methods_.begin(), methods_.end());
  t.set_header(std::move(header));
  for (std::size_t x = 0; x < xs_.size(); ++x) {
    std::vector<std::string> row{std::to_string(xs_[x])};
    for (std::size_t m = 0; m < methods_.size(); ++m)
      row.push_back(fmt(extract(at(m, x)), precision));
    t.add_row(std::move(row));
  }
  return t;
}

Table MetricSeries::makespan_table(const std::string& title) const {
  return table(title, [](const RunMetrics& m) { return to_seconds(m.makespan); });
}

Table MetricSeries::throughput_table(const std::string& title) const {
  return table(title,
               [](const RunMetrics& m) { return m.throughput_tasks_per_ms(); },
               4);
}

Table MetricSeries::disorders_table(const std::string& title) const {
  return table(title,
               [](const RunMetrics& m) { return static_cast<double>(m.disorders); },
               0);
}

Table MetricSeries::waiting_table(const std::string& title) const {
  return table(title, [](const RunMetrics& m) { return m.avg_job_waiting_s(); });
}

Table MetricSeries::preemptions_table(const std::string& title) const {
  return table(
      title, [](const RunMetrics& m) { return static_cast<double>(m.preemptions); },
      0);
}

Table job_class_table(const RunMetrics& m, const std::string& title) {
  Table t(title);
  t.set_header({"class", "jobs", "avg-completion(s)", "avg-wait(s)",
                "deadline-met"});
  for (JobSize cls : {JobSize::kSmall, JobSize::kMedium, JobSize::kLarge}) {
    std::size_t n = 0, met = 0;
    double wait = 0.0;
    for (const auto& r : m.job_records) {
      if (r.size_class != cls) continue;
      ++n;
      if (r.met_deadline) ++met;
      wait += r.mean_task_wait_s;
    }
    t.add_row({to_string(cls), fmt_count(static_cast<long long>(n)),
               fmt(m.avg_completion_s(&cls)),
               fmt(n ? wait / static_cast<double>(n) : 0.0),
               n ? fmt(100.0 * static_cast<double>(met) /
                           static_cast<double>(n),
                       1) + "%"
                 : "-"});
  }
  return t;
}

void write_json(std::ostream& out, const RunMetrics& m) {
  using obs::write_json_number;
  // Never the first field, so always prefixes a comma.
  auto field_u = [&out](const char* k, std::uint64_t v) {
    out << ",\"" << k << "\":" << v;
  };
  out << '{';
  out << "\"makespan_s\":";
  write_json_number(out, to_seconds(m.makespan));
  out << ",\"throughput_tasks_per_ms\":";
  write_json_number(out, m.throughput_tasks_per_ms());
  out << ",\"throughput_jobs_per_hour\":";
  write_json_number(out, m.throughput_jobs_per_hour());
  field_u("tasks_finished", m.tasks_finished);
  field_u("jobs_finished", m.jobs_finished);
  field_u("jobs_met_deadline", m.jobs_met_deadline);
  field_u("deadline_misses", m.deadline_misses);
  field_u("disorders", m.disorders);
  out << ",\"avg_job_waiting_s\":";
  write_json_number(out, m.avg_job_waiting_s());
  out << ",\"avg_completion_s\":";
  write_json_number(out, m.avg_completion_s());
  field_u("preemptions", m.preemptions);
  field_u("suppressed_preemptions", m.suppressed_preemptions);
  field_u("preempt_evaluations", m.preempt_evaluations);
  field_u("preempt_blocked_dependency", m.preempt_blocked_dependency);
  field_u("preempt_no_victim", m.preempt_no_victim);
  field_u("node_failures", m.node_failures);
  field_u("tasks_killed_by_failure", m.tasks_killed_by_failure);
  out << ",\"work_lost_mi\":";
  write_json_number(out, m.work_lost_mi);
  field_u("locality_local", m.locality_local);
  field_u("locality_remote", m.locality_remote);
  out << ",\"locality_hit_rate\":";
  write_json_number(out, m.locality_hit_rate());
  out << ",\"slot_utilization\":";
  write_json_number(out, m.slot_utilization);
  out << ",\"overhead_s\":";
  write_json_number(out, m.overhead_s);
  out << ",\"sim_wall_s\":";
  write_json_number(out, m.sim_wall_s);
  out << '}';
}

void write_json(std::ostream& out, const MetricSeries& s) {
  out << "{\"x_label\":";
  obs::write_json_string(out, s.x_label());
  out << ",\"methods\":[";
  for (std::size_t m = 0; m < s.methods().size(); ++m) {
    if (m) out << ',';
    obs::write_json_string(out, s.methods()[m]);
  }
  out << "],\"xs\":[";
  for (std::size_t x = 0; x < s.xs().size(); ++x) {
    if (x) out << ',';
    out << s.xs()[x];
  }
  out << "],\"cells\":[";
  bool first = true;
  for (std::size_t x = 0; x < s.xs().size(); ++x) {
    for (std::size_t m = 0; m < s.methods().size(); ++m) {
      if (!first) out << ',';
      first = false;
      out << "{\"method\":";
      obs::write_json_string(out, s.methods()[m]);
      out << ",\"x\":" << s.xs()[x] << ",\"metrics\":";
      write_json(out, s.at(m, x));
      out << '}';
    }
  }
  out << "]}";
}

std::string summarize(const RunMetrics& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "makespan=%s tasks=%llu jobs=%llu (deadline-met %llu) "
      "throughput=%.4f tasks/ms avg-wait=%.2fs preemptions=%llu "
      "(suppressed %llu) disorders=%llu util=%.1f%%",
      format_time(m.makespan).c_str(),
      static_cast<unsigned long long>(m.tasks_finished),
      static_cast<unsigned long long>(m.jobs_finished),
      static_cast<unsigned long long>(m.jobs_met_deadline),
      m.throughput_tasks_per_ms(), m.avg_job_waiting_s(),
      static_cast<unsigned long long>(m.preemptions),
      static_cast<unsigned long long>(m.suppressed_preemptions),
      static_cast<unsigned long long>(m.disorders), m.slot_utilization * 100.0);
  return buf;
}

}  // namespace dsp
