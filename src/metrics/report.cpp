#include "metrics/report.h"

#include <cassert>
#include <cstdio>

namespace dsp {

MetricSeries::MetricSeries(std::vector<std::string> methods,
                           std::vector<long long> xs, std::string x_label)
    : methods_(std::move(methods)),
      xs_(std::move(xs)),
      x_label_(std::move(x_label)),
      grid_(methods_.size() * xs_.size()) {}

void MetricSeries::set(std::size_t method, std::size_t x, RunMetrics metrics) {
  assert(method < methods_.size() && x < xs_.size());
  grid_[x * methods_.size() + method] = std::move(metrics);
}

const RunMetrics& MetricSeries::at(std::size_t method, std::size_t x) const {
  assert(method < methods_.size() && x < xs_.size());
  return grid_[x * methods_.size() + method];
}

Table MetricSeries::table(const std::string& title,
                          const std::function<double(const RunMetrics&)>& extract,
                          int precision) const {
  Table t(title);
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), methods_.begin(), methods_.end());
  t.set_header(std::move(header));
  for (std::size_t x = 0; x < xs_.size(); ++x) {
    std::vector<std::string> row{std::to_string(xs_[x])};
    for (std::size_t m = 0; m < methods_.size(); ++m)
      row.push_back(fmt(extract(at(m, x)), precision));
    t.add_row(std::move(row));
  }
  return t;
}

Table MetricSeries::makespan_table(const std::string& title) const {
  return table(title, [](const RunMetrics& m) { return to_seconds(m.makespan); });
}

Table MetricSeries::throughput_table(const std::string& title) const {
  return table(title,
               [](const RunMetrics& m) { return m.throughput_tasks_per_ms(); },
               4);
}

Table MetricSeries::disorders_table(const std::string& title) const {
  return table(title,
               [](const RunMetrics& m) { return static_cast<double>(m.disorders); },
               0);
}

Table MetricSeries::waiting_table(const std::string& title) const {
  return table(title, [](const RunMetrics& m) { return m.avg_job_waiting_s(); });
}

Table MetricSeries::preemptions_table(const std::string& title) const {
  return table(
      title, [](const RunMetrics& m) { return static_cast<double>(m.preemptions); },
      0);
}

Table job_class_table(const RunMetrics& m, const std::string& title) {
  Table t(title);
  t.set_header({"class", "jobs", "avg-completion(s)", "avg-wait(s)",
                "deadline-met"});
  for (JobSize cls : {JobSize::kSmall, JobSize::kMedium, JobSize::kLarge}) {
    std::size_t n = 0, met = 0;
    double wait = 0.0;
    for (const auto& r : m.job_records) {
      if (r.size_class != cls) continue;
      ++n;
      if (r.met_deadline) ++met;
      wait += r.mean_task_wait_s;
    }
    t.add_row({to_string(cls), fmt_count(static_cast<long long>(n)),
               fmt(m.avg_completion_s(&cls)),
               fmt(n ? wait / static_cast<double>(n) : 0.0),
               n ? fmt(100.0 * static_cast<double>(met) /
                           static_cast<double>(n),
                       1) + "%"
                 : "-"});
  }
  return t;
}

std::string summarize(const RunMetrics& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "makespan=%s tasks=%llu jobs=%llu (deadline-met %llu) "
      "throughput=%.4f tasks/ms avg-wait=%.2fs preemptions=%llu "
      "(suppressed %llu) disorders=%llu util=%.1f%%",
      format_time(m.makespan).c_str(),
      static_cast<unsigned long long>(m.tasks_finished),
      static_cast<unsigned long long>(m.jobs_finished),
      static_cast<unsigned long long>(m.jobs_met_deadline),
      m.throughput_tasks_per_ms(), m.avg_job_waiting_s(),
      static_cast<unsigned long long>(m.preemptions),
      static_cast<unsigned long long>(m.suppressed_preemptions),
      static_cast<unsigned long long>(m.disorders), m.slot_utilization * 100.0);
  return buf;
}

}  // namespace dsp
