// Umbrella header for the DSP library.
//
// DSP — Dependency-aware Scheduling and Preemption — reproduces Liu et
// al., "Leveraging Dependency in Scheduling and Preemption for High
// Throughput in Data-Parallel Clusters" (IEEE CLUSTER 2018) as a
// self-contained C++20 library. Include this header to get the full
// public API; fine-grained headers are listed per subsystem below.
//
// Typical use:
//
//   #include "dsp.h"
//   using namespace dsp;
//
//   WorkloadConfig cfg;                       // §V workload recipe
//   cfg.job_count = 150;
//   auto jobs = WorkloadGenerator(cfg, 42).generate();
//
//   DspSystem system;                         // Table II defaults
//   RunMetrics m = system.run(ClusterSpec::real_cluster(), jobs);
//
// See README.md for a walkthrough and DESIGN.md for the architecture.
#pragma once

// Job / task / dependency-DAG model.
#include "dag/job.h"        // Job, JobSet, JobSize, JobTier
#include "dag/task.h"       // Task, Resources, data-locality fields
#include "dag/task_graph.h" // TaskGraph: levels, chains, reachability
#include "dag/validate.h"   // structural validation + DAG shape limits

// LP / ILP solver substrate (the CPLEX stand-in).
#include "lp/milp.h"     // branch & bound, relax-and-round helper
#include "lp/model.h"    // Model / LinearExpr / Solution
#include "lp/simplex.h"  // two-phase primal simplex

// Workload synthesis and trace I/O.
#include "trace/stats.h"     // workload shape statistics
#include "trace/trace_io.h"  // CSV trace reader/writer
#include "trace/workload.h"  // WorkloadGenerator (§V recipe)

// Discrete-event cluster simulator.
#include "sim/cluster.h"    // NodeSpec, ClusterSpec (real_cluster / ec2)
#include "sim/engine.h"     // Engine, EngineParams
#include "sim/failures.h"   // FailurePlan: outages + stragglers
#include "sim/invariants.h" // whole-run invariant checking
#include "sim/observer.h"   // SimObserver hooks
#include "sim/policy.h"     // Scheduler / PreemptionPolicy interfaces
#include "sim/recorder.h"   // TimelineRecorder (Gantt traces)
#include "sim/run_metrics.h"

// The DSP system (paper's contribution).
#include "core/dsp_scheduler.h"  // §III offline scheduling (3 modes)
#include "core/dsp_system.h"     // DspSystem façade + simulate()
#include "core/ilp_model.h"      // §III ILP construction + solving
#include "core/params.h"         // DspParams (Table II)
#include "core/preemption.h"     // §IV Algorithm 1 + PP
#include "core/priority.h"       // Formulas 12-13

// Baselines evaluated in §V.
#include "baselines/aalo.h"
#include "baselines/preempt_baselines.h"  // Amoeba, Natjam, SRPT
#include "baselines/tetris.h"

// Reporting.
#include "metrics/report.h"  // MetricSeries, summarize()
