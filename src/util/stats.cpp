#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dsp {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  assert(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double median_of(std::span<const double> values) { return percentile(values, 0.5); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "%10.3g | ", bin_lo(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof line, " %zu\n", counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace dsp
