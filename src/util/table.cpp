#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace dsp {

std::string Table::render() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  if (!title_.empty()) {
    out += "== ";
    out += title_;
    out += " ==\n";
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out += cell;
      if (i + 1 < widths.size()) out.append(widths[i] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out.append(total > 2 ? total - 2 : total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string Table::render_csv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += cells[i];
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_count(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace dsp
