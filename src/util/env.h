// Environment-variable knobs for the benchmark harness.
//
// Benches scale the paper's workloads with DSP_SCALE and select seeds with
// DSP_SEED so the full suite can be re-run at paper scale when time allows.
#pragma once

#include <cstdint>
#include <string>

namespace dsp {

/// Reads an environment double; returns `fallback` when unset or malformed.
double env_double(const char* name, double fallback);

/// Reads an environment integer; returns `fallback` when unset or malformed.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads an environment integer that must be at least `min_value`
/// (thread counts, scale factors). Unset returns `fallback` silently;
/// a malformed value falls back to `fallback` and a parsed value below
/// `min_value` clamps to it — both with a logged warning, so a typo'd
/// DSP_THREADS=O2 or DSP_THREADS=-1 never degrades a run silently.
std::int64_t env_int_min(const char* name, std::int64_t fallback,
                         std::int64_t min_value);

/// Reads an environment string; returns `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace dsp
