#include "util/thread_pool.h"

#include <algorithm>

namespace dsp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  if (workers <= 1 || n == 1) {
    // Run inline: no queue traffic, and the single-worker pool behaves
    // exactly like a plain loop.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Block distribution into ~4 chunks per worker: bounds per-task queue
  // overhead while leaving slack for uneven chunk runtimes.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  // Wait for every chunk before propagating, so `fn` (captured by
  // reference) cannot dangle under a still-running chunk.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace dsp
