#include "util/rng.h"

#include <cassert>

namespace dsp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng((*this)() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace dsp
