// Deterministic random number generation for workload synthesis and tests.
//
// A small xoshiro256** engine (public-domain algorithm by Blackman & Vigna)
// plus the handful of distributions the workload generator needs. We do not
// use <random>'s distributions because their outputs are not specified
// bit-exactly across standard library implementations; experiments must be
// reproducible from a seed alone.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <vector>

namespace dsp {

/// xoshiro256** pseudo-random engine with SplitMix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed standard
/// algorithms such as std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine; distinct seeds yield independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Re-seeds in place (SplitMix64 expansion of the 64-bit seed).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Heavy-tailed task-size model.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate). Poisson inter-arrivals.
  double exponential(double rate);

  /// Bounded Pareto on [lo, hi] with tail index alpha. Heavy-tailed sizes.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Forks a child engine whose stream is independent of this one.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dsp
