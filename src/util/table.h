// Console table rendering for benchmark harness output.
//
// The figure benches print the same series the paper plots; a fixed-width
// table keeps them diff-able run to run and greppable by the EXPERIMENTS.md
// tooling.
#pragma once

#include <string>
#include <vector>

namespace dsp {

/// A simple column-aligned text table with an optional title.
///
/// Usage:
///   Table t{"Fig 5(a): makespan (s) vs #jobs, real cluster"};
///   t.set_header({"jobs", "DSP", "Aalo", ...});
///   t.add_row({"150", "812.4", ...});
///   std::cout << t.render();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells) { header_ = std::move(cells); }
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with aligned columns and a separator under the header.
  std::string render() const;

  /// Renders as CSV (header first), for machine consumption.
  std::string render_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double v, int precision = 2);

/// Formats an integer count.
std::string fmt_count(long long v);

}  // namespace dsp
