// Leveled logging with zero cost when disabled.
//
// The simulator is deterministic, so debug-level event traces are the main
// debugging tool; keep them cheap to turn on (DSP_LOG=debug env var) and
// free when off.
#pragma once

#include <cstdio>
#include <string>

namespace dsp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Short upper-case tag for a level ("DEBUG", "INFO", ...).
const char* to_string(LogLevel level);

namespace log_detail {
/// Current threshold; initialized from the DSP_LOG environment variable
/// (debug|info|warn|error|off), defaulting to warn.
LogLevel threshold();
void set_threshold(LogLevel level);
/// Formats one complete log line including the trailing newline:
///   "[dsp LEVEL +T.TTTs] message\n"
/// where T.TTT is `elapsed_s`, the monotonic seconds since logging
/// started. Split out from emit() so it is unit-testable.
std::string format_line(LogLevel level, double elapsed_s, const char* message);
/// Formats and writes one line to stderr with a single fwrite, so lines
/// from concurrent callers never interleave mid-line.
void emit(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace log_detail

/// True when messages at `level` would be emitted.
inline bool log_enabled(LogLevel level) { return level >= log_detail::threshold(); }

/// Overrides the threshold (tests use this to silence warnings).
inline void set_log_level(LogLevel level) { log_detail::set_threshold(level); }

#define DSP_LOG_AT(level, ...)                                   \
  do {                                                           \
    if (::dsp::log_enabled(level))                               \
      ::dsp::log_detail::emit(level, __VA_ARGS__);               \
  } while (0)

#define DSP_DEBUG(...) DSP_LOG_AT(::dsp::LogLevel::kDebug, __VA_ARGS__)
#define DSP_INFO(...) DSP_LOG_AT(::dsp::LogLevel::kInfo, __VA_ARGS__)
#define DSP_WARN(...) DSP_LOG_AT(::dsp::LogLevel::kWarn, __VA_ARGS__)
#define DSP_ERROR(...) DSP_LOG_AT(::dsp::LogLevel::kError, __VA_ARGS__)

}  // namespace dsp
