#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace dsp::log_detail {
namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kWarn;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("DSP_LOG"))};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void emit(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[dsp %s] %s\n", level_name(level), buf);
}

}  // namespace dsp::log_detail
