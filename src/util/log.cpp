#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace dsp {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace dsp

namespace dsp::log_detail {
namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kWarn;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("DSP_LOG"))};
  return level;
}

/// Monotonic seconds since the first log call (the process logging epoch).
double elapsed_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

}  // namespace

LogLevel threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

std::string format_line(LogLevel level, double elapsed_s,
                        const char* message) {
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[dsp %s +%.3fs] ", to_string(level),
                elapsed_s);
  std::string line = prefix;
  line += message;
  line += '\n';
  return line;
}

void emit(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  // One fwrite per line: stdio locks the stream per call, so concurrent
  // callers cannot interleave mid-line.
  const std::string line = format_line(level, elapsed_seconds(), buf);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace dsp::log_detail
