// Lightweight descriptive statistics used by the metrics and bench layers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dsp {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; O(1) space.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Returns the p-quantile (p in [0,1]) with linear interpolation.
/// Copies and sorts; intended for post-run reporting, not hot paths.
double percentile(std::span<const double> values, double p);

/// Arithmetic mean of a span; 0 when empty.
double mean_of(std::span<const double> values);

/// Median (50th percentile).
double median_of(std::span<const double> values);

/// Simple histogram over [lo, hi) with uniform bins, for bench reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation; out-of-range values clamp into the edge bins.
  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  std::size_t total() const { return total_; }

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;

  /// Renders an ASCII sketch, one line per bin.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dsp
