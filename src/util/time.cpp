#include "util/time.h"

#include <cstdio>

namespace dsp {

std::string format_time(SimTime t) {
  if (t == kNoTime) return "--";
  const bool neg = t < 0;
  if (neg) t = -t;
  char buf[64];
  if (t >= kHour) {
    const auto h = t / kHour;
    const auto m = (t % kHour) / kMinute;
    std::snprintf(buf, sizeof buf, "%s%lldh%02lldm", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m));
  } else if (t >= kMinute) {
    const auto m = t / kMinute;
    const auto s = (t % kMinute) / kSecond;
    std::snprintf(buf, sizeof buf, "%s%lldm%02llds", neg ? "-" : "",
                  static_cast<long long>(m), static_cast<long long>(s));
  } else if (t >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.1fs", neg ? "-" : "", to_seconds(t));
  } else {
    std::snprintf(buf, sizeof buf, "%s%.1fms", neg ? "-" : "", to_millis(t));
  }
  return buf;
}

}  // namespace dsp
