#include "util/env.h"

#include <cstdlib>

#include "util/log.h"

namespace dsp {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

std::int64_t env_int_min(const char* name, std::int64_t fallback,
                         std::int64_t min_value) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (!end || *end != '\0') {
    DSP_WARN("%s=\"%s\" is not an integer; using %lld", name, v,
             static_cast<long long>(fallback));
    return fallback;
  }
  if (parsed < min_value) {
    DSP_WARN("%s=%lld is below the minimum %lld; clamping", name,
             static_cast<long long>(parsed),
             static_cast<long long>(min_value));
    return min_value;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string{v} : fallback;
}

}  // namespace dsp
