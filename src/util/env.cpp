#include "util/env.h"

#include <cstdlib>

namespace dsp {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string{v} : fallback;
}

}  // namespace dsp
