// Clang Thread Safety Analysis annotations and annotated sync primitives.
//
// Wraps the attribute spellings from the Clang Thread Safety Analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) behind DSP_*
// macros that compile away on non-Clang compilers, plus a std::mutex
// wrapper (Mutex / MutexLock / CondVar) that carries the capability
// attributes — libstdc++'s own mutex types are unannotated, so locking
// through them is invisible to the analysis. Configure with
// -DDSP_THREAD_SAFETY=ON (Clang only) to promote every violation of the
// declared lock discipline to a compile error; on GCC the whole layer is
// zero-cost documentation.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DSP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DSP_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define DSP_CAPABILITY(x) DSP_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases
/// it in its destructor (MutexLock below).
#define DSP_SCOPED_CAPABILITY DSP_THREAD_ANNOTATION(scoped_lockable)
/// Data member that may only be read or written while holding `x`.
#define DSP_GUARDED_BY(x) DSP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by `x`.
#define DSP_PT_GUARDED_BY(x) DSP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that must be called with the capability held.
#define DSP_REQUIRES(...) \
  DSP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that must be called with the capability NOT held.
#define DSP_EXCLUDES(...) DSP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function that acquires the capability and does not release it.
#define DSP_ACQUIRE(...) \
  DSP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define DSP_RELEASE(...) \
  DSP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability when it returns `ret`.
#define DSP_TRY_ACQUIRE(ret, ...) \
  DSP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Escape hatch: the function body is excluded from the analysis.
#define DSP_NO_THREAD_SAFETY_ANALYSIS \
  DSP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dsp {

/// std::mutex carrying the capability attributes. Lock it through
/// MutexLock; the raw lock/unlock exist for the RAII types and for
/// interop (CondVar) only.
class DSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DSP_ACQUIRE() { mu_.lock(); }      // dsp-tidy: allow(C005)
  void unlock() DSP_RELEASE() { mu_.unlock(); }  // dsp-tidy: allow(C005)
  bool try_lock() DSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std APIs that need one (CondVar's wait).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex — the annotated replacement for
/// std::scoped_lock / std::lock_guard (CP.20: use RAII, never plain
/// lock/unlock).
class DSP_SCOPED_CAPABILITY MutexLock {
 public:
  // dsp-tidy: allow(C005) — this IS the RAII wrapper the rule points to.
  explicit MutexLock(Mutex& mu) DSP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }  // dsp-tidy: allow(C005)
  ~MutexLock() DSP_RELEASE() { mu_.unlock(); }  // dsp-tidy: allow(C005)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a Mutex the caller already holds via
/// MutexLock. wait() atomically releases the mutex, blocks, and
/// reacquires before returning, so the caller's capability set is
/// unchanged — which is exactly what DSP_REQUIRES expresses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) DSP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dsp
