// Minimal CSV reading/writing for trace files.
//
// Supports the subset of RFC 4180 the trace format needs: comma separation,
// double-quote quoting with "" escapes, and both \n and \r\n line endings.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dsp {

/// Parses one CSV line into fields (handles quoted fields).
std::vector<std::string> parse_csv_line(std::string_view line);

/// Escapes a field for CSV output (quotes when it contains , " or newline).
std::string csv_escape(std::string_view field);

/// Streaming CSV reader over an istream.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Reads the next record; returns false at EOF. Skips blank lines.
  bool next(std::vector<std::string>& fields);

  /// 1-based line number of the last record read (for error messages).
  std::size_t line_number() const { return line_; }

 private:
  std::istream& in_;
  std::size_t line_ = 0;
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one record.
  void write(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

}  // namespace dsp
