// Task-based thread pool for running independent simulations in parallel.
//
// Follows the Core Guidelines' "think in terms of tasks, not threads"
// (CP.4): callers submit callables and get futures; threads are an
// implementation detail, joined by RAII on destruction (CP.23/CP.25).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace dsp {

/// Fixed-size worker pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a callable; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Indices are dealt out in contiguous blocks (~4 per worker); with a
  /// single worker (or n == 1) the loop runs inline on the caller. The
  /// first exception thrown by fn is rethrown after all chunks finish.
  /// Must not be called from a pool worker (the inner wait would deadlock
  /// once every worker blocks).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ DSP_GUARDED_BY(mutex_);
  bool stop_ DSP_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written only in the ctor
};

}  // namespace dsp
