// Simulation time: fixed-point microseconds.
//
// The simulator keeps time as a signed 64-bit count of microseconds so that
// event ordering is exact and runs are bit-reproducible across platforms.
// Doubles appear only at the boundary (task sizes in MI divided by node MIPS
// rates); conversions round to the nearest microsecond.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <string>

namespace dsp {

/// Simulation timestamp / duration in microseconds.
using SimTime = std::int64_t;

/// Sentinel for "no time" / unset timestamps.
inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::min();

/// Largest representable time; used as an event-horizon sentinel.
inline constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

/// Converts seconds (double) to SimTime, rounding to nearest microsecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Converts a SimTime to fractional seconds.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a SimTime to fractional milliseconds.
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts minutes (double) to SimTime.
constexpr SimTime from_minutes(double m) { return from_seconds(m * 60.0); }

/// Renders a SimTime as a compact human-readable string ("2h03m", "41.2s").
std::string format_time(SimTime t);

}  // namespace dsp
