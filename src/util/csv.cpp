#include "util/csv.h"

namespace dsp {

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

bool CsvReader::next(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    // Skip blank lines and comment lines.
    if (line.empty() || line == "\r") continue;
    if (line[0] == '#') continue;
    fields = parse_csv_line(line);
    return true;
  }
  return false;
}

void CsvWriter::write(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace dsp
