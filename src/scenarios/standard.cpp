#include "scenarios/standard.h"

#include "baselines/aalo.h"
#include "baselines/preempt_baselines.h"
#include "baselines/tetris.h"
#include "core/dsp_scheduler.h"
#include "core/preemption.h"

namespace dsp {

DspParams StandardScenarioFactory::dsp_params(const ScenarioSpec& spec) {
  DspParams p;
  p.gamma = spec.knobs.gamma;
  p.delta = spec.knobs.delta;
  p.adaptive_delta = spec.knobs.adaptive_delta;
  p.normalized_pp = spec.knobs.normalized_pp;
  p.rho = spec.knobs.rho;
  p.straggler_mitigation = spec.knobs.straggler_mitigation;
  return p;
}

std::unique_ptr<Scheduler> StandardScenarioFactory::make_scheduler(
    const ScenarioSpec& spec) const {
  switch (spec.sched) {
    case SchedKind::kDsp: {
      DspScheduler::Options options;
      // gamma feeds both the offline ranking weight and the online
      // priority (Formula 12); ablations sweep them together.
      options.gamma = spec.knobs.gamma;
      options.locality_aware = spec.knobs.locality_aware;
      return std::make_unique<DspScheduler>(options);
    }
    case SchedKind::kAalo:
      return std::make_unique<AaloScheduler>();
    case SchedKind::kTetrisSimDep:
      return std::make_unique<TetrisScheduler>(
          TetrisScheduler::Dependency::kSimple);
    case SchedKind::kTetrisNoDep:
      return std::make_unique<TetrisScheduler>(
          TetrisScheduler::Dependency::kNone);
  }
  return nullptr;
}

std::unique_ptr<PreemptionPolicy> StandardScenarioFactory::make_policy(
    const ScenarioSpec& spec) const {
  switch (spec.policy) {
    case PolicyKind::kDsp:
      return std::make_unique<DspPreemption>(dsp_params(spec));
    case PolicyKind::kDspNoPp: {
      DspParams params = dsp_params(spec);
      params.normalized_pp = false;
      return std::make_unique<DspPreemption>(params);
    }
    case PolicyKind::kAmoeba:
      return std::make_unique<AmoebaPolicy>();
    case PolicyKind::kNatjam:
      return std::make_unique<NatjamPolicy>();
    case PolicyKind::kSrpt:
      return std::make_unique<SrptPolicy>();
    case PolicyKind::kNone:
      return nullptr;
  }
  return nullptr;
}

RunMetrics run_standard_scenario(const ScenarioSpec& spec,
                                 obs::EventLog* event_log) {
  return run_scenario(spec, StandardScenarioFactory{}, event_log);
}

std::vector<RunMetrics> run_standard_grid(const std::vector<ScenarioSpec>& grid,
                                          const GridOptions& options) {
  return run_scenario_grid(grid, StandardScenarioFactory{}, options);
}

}  // namespace dsp
