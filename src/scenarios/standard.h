// The standard ScenarioFactory: maps ScenarioSpec's declarative policy
// pair and knobs onto the concrete DSP system (core/) and the paper's
// baselines (baselines/).
//
// This is the link-layer complement of sim/scenario.h: the sim library
// defines the spec and the runners without depending on any policy
// implementation; this library (dsp_scenarios) closes the loop for the
// methods the paper evaluates. Experiment drivers that need a policy
// outside this set supply their own ScenarioFactory instead.
#pragma once

#include <vector>

#include "core/params.h"
#include "sim/scenario.h"

namespace dsp {

/// Builds the paper's schedulers and preemption policies from a spec:
///   - SchedKind::kDsp       DspScheduler (gamma, locality_aware knobs)
///   - SchedKind::kAalo      AaloScheduler
///   - SchedKind::kTetris*   TetrisScheduler (simple / no dependency)
///   - PolicyKind::kDsp      DspPreemption over the full knob set
///   - PolicyKind::kDspNoPp  DspPreemption with the PP filter forced off
///   - PolicyKind::kAmoeba/kNatjam/kSrpt   the §V baselines
///   - PolicyKind::kNone     null (offline scheduling only)
/// Knob defaults equal Table II, so a default ScenarioSpec reproduces the
/// headline DSP configuration bit-for-bit.
class StandardScenarioFactory : public ScenarioFactory {
 public:
  std::unique_ptr<Scheduler> make_scheduler(
      const ScenarioSpec& spec) const override;
  std::unique_ptr<PreemptionPolicy> make_policy(
      const ScenarioSpec& spec) const override;

  /// The DspParams a spec's knobs translate to (also used by kDspNoPp,
  /// which then clears normalized_pp). Exposed so ablation drivers can
  /// inspect or extend the mapping.
  static DspParams dsp_params(const ScenarioSpec& spec);
};

/// run_scenario with the standard factory.
RunMetrics run_standard_scenario(const ScenarioSpec& spec,
                                 obs::EventLog* event_log = nullptr);

/// run_scenario_grid with the standard factory.
std::vector<RunMetrics> run_standard_grid(
    const std::vector<ScenarioSpec>& grid, const GridOptions& options = {});

}  // namespace dsp
