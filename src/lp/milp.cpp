#include "lp/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/env.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace dsp::lp {
namespace {

/// Index of the most fractional integral variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double int_tol) {
  int best = -1;
  double best_frac_dist = int_tol;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    if (!model.var(static_cast<VarId>(i)).is_integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// One open branch-and-bound node: a single bound delta over the parent
/// chain (O(1) state per node) plus the parent relaxation's basis, shared
/// by both children for warm-starting.
struct OpenNode {
  double bound;       // parent relaxation objective, minimize direction
  std::uint64_t seq;  // creation order: total tie-break, deterministic
  int var;            // branched variable (-1 at the root)
  double lo, hi;      // effective bounds of `var` at this node
  int slot;           // wave slot that solved the parent (fast warm path)
  std::shared_ptr<const OpenNode> parent;
  std::shared_ptr<const Basis> warm;  // parent's optimal basis (nullable)
};

using NodePtr = std::shared_ptr<const OpenNode>;

/// Effective bounds of `var` along the node chain: the delta nearest the
/// leaf wins (each delta is already intersected with its ancestors').
std::pair<double, double> chain_bounds(const OpenNode* node, int var,
                                       const Model& model) {
  for (const OpenNode* p = node; p != nullptr; p = p->parent.get())
    if (p->var == var) return {p->lo, p->hi};
  const Variable& v = model.var(static_cast<VarId>(var));
  return {v.lower, v.upper};
}

/// Applies the chain's accumulated bound deltas to a fresh-bounds solver.
void apply_chain(BoundedSimplex& ctx, const OpenNode* node,
                 std::vector<int>& seen) {
  ctx.reset_bounds();
  seen.clear();
  for (const OpenNode* p = node; p != nullptr; p = p->parent.get()) {
    if (p->var < 0) continue;
    if (std::find(seen.begin(), seen.end(), p->var) != seen.end()) continue;
    seen.push_back(p->var);
    ctx.set_var_bounds(static_cast<VarId>(p->var), p->lo, p->hi);
  }
}

}  // namespace

MilpSolver::MilpSolver() = default;
MilpSolver::MilpSolver(Options opts) : opts_(std::move(opts)) {}
MilpSolver::~MilpSolver() = default;

ThreadPool* MilpSolver::pool() const {
  if (resolved_threads_ == 0) {
    // env_int_min warns and clamps on malformed / zero / negative
    // DSP_THREADS values instead of silently falling through.
    const std::int64_t want = opts_.threads > 0
                                  ? opts_.threads
                                  : env_int_min("DSP_THREADS", 1, 1);
    resolved_threads_ = static_cast<int>(want);
    if (resolved_threads_ > 1)
      pool_ = std::make_unique<ThreadPool>(
          static_cast<unsigned>(resolved_threads_));
  }
  return pool_.get();
}

Solution MilpSolver::solve(const Model& model) const {
  DSP_PROFILE("lp.milp_solve_s");
  last_nodes_ = 0;
  last_warm_hits_ = 0;
  const double dir_sign =
      model.direction() == Direction::kMinimize ? 1.0 : -1.0;

  // One reusable simplex per wave slot, built lazily (small searches
  // never touch most slots). Slot assignment is deterministic, so
  // parallel execution touches disjoint state and the merge order is
  // fixed by the wave layout, not by thread scheduling.
  const std::size_t wave_cap =
      static_cast<std::size_t>(std::max(1, opts_.parallel_nodes));
  std::vector<std::unique_ptr<BoundedSimplex>> ctx(wave_cap);
  auto ensure_ctx = [&](std::size_t slot) -> BoundedSimplex& {
    if (ctx[slot] == nullptr)
      ctx[slot] = std::make_unique<BoundedSimplex>(model, opts_.lp);
    return *ctx[slot];
  };

  // Min-heap on (bound, seq): best-bound search with a deterministic
  // total order.
  auto cmp = [](const NodePtr& a, const NodePtr& b) {
    if (a->bound != b->bound) return a->bound > b->bound;
    return a->seq > b->seq;
  };
  std::priority_queue<NodePtr, std::vector<NodePtr>, decltype(cmp)> open(cmp);
  std::uint64_t next_seq = 0;

  Solution incumbent;
  incumbent.status = SolveStatus::kNoSolution;
  double incumbent_obj = kInf;  // in minimize direction

  auto note_warm = [&](const BoundedSimplex& bs) {
    if (bs.stats().warm_used) ++last_warm_hits_;
  };

  // ---- Root: optionally warm-started from the previous solve's root
  // basis when the model shape matches (cross-period reuse). ----
  NodePtr root;
  {
    const Basis* warm = nullptr;
    if (opts_.warm_start && !period_basis_.empty() &&
        period_vars_ == model.var_count() &&
        period_rows_ == model.constraint_count())
      warm = &period_basis_;
    Basis root_basis;
    const Solution rel = ensure_ctx(0).solve(warm, &root_basis);
    ++last_nodes_;
    DSP_COUNT("lp.milp_nodes");
    note_warm(*ctx[0]);
    if (rel.status == SolveStatus::kOptimal && opts_.warm_start) {
      period_basis_ = root_basis;
      period_vars_ = model.var_count();
      period_rows_ = model.constraint_count();
    }
    if (rel.status == SolveStatus::kInfeasible)
      return {SolveStatus::kInfeasible, 0.0, {}};
    if (rel.status == SolveStatus::kUnbounded)
      return {SolveStatus::kUnbounded, 0.0, {}};
    if (rel.status != SolveStatus::kOptimal) return {rel.status, 0.0, {}};
    const int frac_var = most_fractional(model, rel.x, opts_.int_tol);
    if (frac_var < 0) {
      Solution sol = rel;
      sol.status = SolveStatus::kOptimal;
      return sol;
    }
    const double root_obj = dir_sign * rel.objective;
    root = std::make_shared<OpenNode>(
        OpenNode{root_obj, next_seq++, -1, 0.0, 0.0, 0, nullptr, nullptr});
    auto basis = opts_.warm_start
                     ? std::make_shared<const Basis>(std::move(root_basis))
                     : nullptr;
    const auto fv = static_cast<std::size_t>(frac_var);
    const double val = rel.x[fv];
    const auto [blo, bhi] = chain_bounds(root.get(), frac_var, model);
    open.push(std::make_shared<OpenNode>(OpenNode{
        root_obj, next_seq++, frac_var, blo,
        std::min(bhi, std::floor(val)), 0, root, basis}));
    open.push(std::make_shared<OpenNode>(OpenNode{
        root_obj, next_seq++, frac_var, std::max(blo, std::ceil(val)),
        bhi, 0, root, basis}));
  }

  // ---- Wave loop: pop up to `parallel_nodes` best nodes, solve their
  // relaxations in parallel, then merge serially in wave order. ----
  std::vector<NodePtr> wave;
  std::vector<NodePtr> deferred;
  std::vector<Solution> wave_sol(wave_cap);
  std::vector<Basis> wave_basis(wave_cap);
  std::vector<SimplexSolver::SolveStats> wave_stats(wave_cap);
  std::vector<int> slot_of;
  std::vector<char> slot_used;
  ThreadPool* workers = pool();

  while (!open.empty() && last_nodes_ < opts_.max_nodes) {
    if (open.top()->bound >= incumbent_obj - opts_.gap_tol)
      break;  // best-bound pruning: the whole heap is dominated

    // Collect the wave, one node per slot. A node whose preferred slot
    // (the one that solved its parent) is already claimed is deferred to
    // a later wave rather than spilled to a cold slot: sibling nodes
    // share their parent's basis, and solving them back-to-back on the
    // parent's context keeps both on the fast warm path (the first
    // reuses the live tableau, the second restores the snapshot).
    wave.clear();
    deferred.clear();
    slot_used.assign(wave_cap, 0);
    const auto budget =
        static_cast<std::size_t>(opts_.max_nodes - last_nodes_);
    while (wave.size() < std::min(wave_cap, budget) && !open.empty() &&
           open.top()->bound < incumbent_obj - opts_.gap_tol) {
      NodePtr node = open.top();
      open.pop();
      const int want = node->slot;
      const bool routable =
          want >= 0 && static_cast<std::size_t>(want) < wave_cap;
      if (routable && slot_used[static_cast<std::size_t>(want)] != 0) {
        deferred.push_back(std::move(node));
        continue;
      }
      if (routable) slot_used[static_cast<std::size_t>(want)] = 1;
      wave.push_back(std::move(node));
    }
    for (NodePtr& node : deferred) open.push(std::move(node));
    if (wave.empty()) break;

    // Each wave entry runs on its preferred slot (unique by the deferral
    // above); entries without a routable preference fill the free slots
    // in wave order. The assignment depends only on the wave contents,
    // never on thread scheduling.
    slot_of.assign(wave.size(), -1);
    for (std::size_t k = 0; k < wave.size(); ++k) {
      const int want = wave[k]->slot;
      if (want >= 0 && static_cast<std::size_t>(want) < wave_cap)
        slot_of[k] = want;
    }
    slot_used.assign(wave_cap, 0);
    for (std::size_t k = 0; k < wave.size(); ++k)
      if (slot_of[k] >= 0) slot_used[static_cast<std::size_t>(slot_of[k])] = 1;
    for (std::size_t k = 0, next = 0; k < wave.size(); ++k) {
      if (slot_of[k] >= 0) continue;
      while (slot_used[next] != 0) ++next;
      slot_of[k] = static_cast<int>(next);
      slot_used[next] = 1;
    }
    for (std::size_t k = 0; k < wave.size(); ++k)
      ensure_ctx(static_cast<std::size_t>(slot_of[k]));  // before the fork

    auto solve_slot = [&](std::size_t k) {
      thread_local std::vector<int> seen;
      BoundedSimplex& bs = *ctx[static_cast<std::size_t>(slot_of[k])];
      apply_chain(bs, wave[k].get(), seen);
      const Basis* warm =
          opts_.warm_start ? wave[k]->warm.get() : nullptr;
      wave_sol[k] = bs.solve(warm, &wave_basis[k]);
      wave_stats[k] = bs.stats();
    };
    // The slot assignment is a bijection from wave entries to slots, so
    // the worker running index k is the only writer of its simplex and
    // of the k-indexed result arrays.
    if (workers != nullptr && wave.size() > 1)
      workers->parallel_for(wave.size(), solve_slot);  // dsp-tidy: allow(L003)
    else
      for (std::size_t k = 0; k < wave.size(); ++k) solve_slot(k);

    // Serial merge in wave order == (bound, seq) order: incumbents and
    // child creation are independent of thread interleaving.
    for (std::size_t k = 0; k < wave.size(); ++k) {
      ++last_nodes_;
      DSP_COUNT("lp.milp_nodes");
      if (wave_stats[k].warm_used) ++last_warm_hits_;
      const NodePtr& node = wave[k];
      // An earlier slot in this wave may have improved the incumbent.
      if (node->bound >= incumbent_obj - opts_.gap_tol) continue;
      const Solution& rel = wave_sol[k];
      if (rel.status != SolveStatus::kOptimal) continue;  // prune
      const double rel_obj = dir_sign * rel.objective;
      if (rel_obj >= incumbent_obj - opts_.gap_tol) continue;

      const int frac_var = most_fractional(model, rel.x, opts_.int_tol);
      if (frac_var < 0) {
        // Integral: new incumbent.
        incumbent = rel;
        incumbent.status = SolveStatus::kOptimal;
        incumbent_obj = rel_obj;
        continue;
      }
      const auto fv = static_cast<std::size_t>(frac_var);
      const double val = rel.x[fv];
      const auto [blo, bhi] = chain_bounds(node.get(), frac_var, model);
      auto basis =
          opts_.warm_start
              ? std::make_shared<const Basis>(std::move(wave_basis[k]))
              : nullptr;
      open.push(std::make_shared<OpenNode>(OpenNode{
          rel_obj, next_seq++, frac_var, blo,
          std::min(bhi, std::floor(val)), slot_of[k], node, basis}));
      open.push(std::make_shared<OpenNode>(OpenNode{
          rel_obj, next_seq++, frac_var, std::max(blo, std::ceil(val)),
          bhi, slot_of[k], node, basis}));
    }
  }

  if (incumbent.status == SolveStatus::kOptimal) {
    // Exhausted the tree => proven optimal; otherwise best-so-far.
    const bool proven = open.empty() ||
                        open.top()->bound >= incumbent_obj - opts_.gap_tol;
    incumbent.status = proven ? SolveStatus::kOptimal : SolveStatus::kNodeLimit;
    return incumbent;
  }
  // No incumbent: an exhausted tree proves there is no integral feasible
  // point; otherwise the node cap stopped us before finding one.
  return {open.empty() ? SolveStatus::kInfeasible : SolveStatus::kNoSolution,
          0.0,
          {}};
}

bool round_to_integers(const Model& model, std::vector<double>& x, double tol) {
  if (x.size() != model.var_count()) return false;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const Variable& v = model.var(static_cast<VarId>(i));
    if (!v.is_integer) continue;
    x[i] = std::round(x[i]);
    x[i] = std::clamp(x[i], v.lower, v.upper);
  }
  return model.is_feasible(x, tol);
}

}  // namespace dsp::lp
