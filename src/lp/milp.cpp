#include "lp/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/profiler.h"
#include "util/log.h"

namespace dsp::lp {
namespace {

/// Index of the most fractional integral variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double int_tol) {
  int best = -1;
  double best_frac_dist = int_tol;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    if (!model.var(static_cast<VarId>(i)).is_integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

Solution MilpSolver::solve(const Model& model) const {
  DSP_PROFILE("lp.milp_solve_s");
  last_nodes_ = 0;
  SimplexSolver lp_solver(opts_.lp);
  const double dir_sign =
      model.direction() == Direction::kMinimize ? 1.0 : -1.0;

  // The base model is copied per node with tightened bounds. Rather than
  // copying the whole Model (constraints dominate), we keep a mutable copy
  // and swap variable bounds in and out around each relaxation solve.
  Model work = model;

  struct OpenNode {
    double bound;
    std::vector<std::pair<VarId, std::pair<double, double>>> var_bounds;
  };
  auto cmp = [](const OpenNode& a, const OpenNode& b) { return a.bound > b.bound; };
  std::priority_queue<OpenNode, std::vector<OpenNode>, decltype(cmp)> open(cmp);

  Solution incumbent;
  incumbent.status = SolveStatus::kNoSolution;
  double incumbent_obj = kInf;  // in minimize direction

  auto solve_relaxation = [&](const OpenNode& node) -> Solution {
    // Apply bounds.
    std::vector<std::pair<VarId, std::pair<double, double>>> saved;
    saved.reserve(node.var_bounds.size());
    for (const auto& [var, bounds] : node.var_bounds) {
      auto& v = work.mutable_var(var);
      saved.emplace_back(var, std::make_pair(v.lower, v.upper));
      v.lower = std::max(v.lower, bounds.first);
      v.upper = std::min(v.upper, bounds.second);
    }
    Solution sol = lp_solver.solve(work);
    // Restore.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      auto& v = work.mutable_var(it->first);
      v.lower = it->second.first;
      v.upper = it->second.second;
    }
    return sol;
  };

  OpenNode root{-kInf, {}};
  {
    const Solution rel = solve_relaxation(root);
    ++last_nodes_;
    if (rel.status == SolveStatus::kInfeasible) return {SolveStatus::kInfeasible, 0.0, {}};
    if (rel.status == SolveStatus::kUnbounded) return {SolveStatus::kUnbounded, 0.0, {}};
    if (rel.status != SolveStatus::kOptimal) return {rel.status, 0.0, {}};
    const int frac_var = most_fractional(model, rel.x, opts_.int_tol);
    if (frac_var < 0) {
      Solution sol = rel;
      sol.status = SolveStatus::kOptimal;
      return sol;
    }
    root.bound = dir_sign * rel.objective;
    const double val = rel.x[static_cast<std::size_t>(frac_var)];
    OpenNode down = root, up = root;
    down.var_bounds.emplace_back(frac_var, std::make_pair(-kInf, std::floor(val)));
    up.var_bounds.emplace_back(frac_var, std::make_pair(std::ceil(val), kInf));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  while (!open.empty() && last_nodes_ < opts_.max_nodes) {
    OpenNode node = open.top();
    open.pop();
    if (node.bound >= incumbent_obj - opts_.gap_tol) break;  // best-bound pruning

    const Solution rel = solve_relaxation(node);
    ++last_nodes_;
    if (rel.status != SolveStatus::kOptimal) continue;  // infeasible/limit: prune
    const double rel_obj = dir_sign * rel.objective;
    if (rel_obj >= incumbent_obj - opts_.gap_tol) continue;

    const int frac_var = most_fractional(model, rel.x, opts_.int_tol);
    if (frac_var < 0) {
      // Integral: new incumbent.
      incumbent = rel;
      incumbent.status = SolveStatus::kOptimal;
      incumbent_obj = rel_obj;
      continue;
    }
    const double val = rel.x[static_cast<std::size_t>(frac_var)];
    OpenNode down{rel_obj, node.var_bounds};
    down.var_bounds.emplace_back(frac_var, std::make_pair(-kInf, std::floor(val)));
    OpenNode up{rel_obj, std::move(node.var_bounds)};
    up.var_bounds.emplace_back(frac_var, std::make_pair(std::ceil(val), kInf));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (incumbent.status == SolveStatus::kOptimal) {
    // Exhausted the tree => proven optimal; otherwise best-so-far.
    const bool proven = open.empty() ||
                        open.top().bound >= incumbent_obj - opts_.gap_tol;
    incumbent.status = proven ? SolveStatus::kOptimal : SolveStatus::kNodeLimit;
    return incumbent;
  }
  // No incumbent: an exhausted tree proves there is no integral feasible
  // point; otherwise the node cap stopped us before finding one.
  return {open.empty() ? SolveStatus::kInfeasible : SolveStatus::kNoSolution,
          0.0,
          {}};
}

bool round_to_integers(const Model& model, std::vector<double>& x, double tol) {
  if (x.size() != model.var_count()) return false;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const Variable& v = model.var(static_cast<VarId>(i));
    if (!v.is_integer) continue;
    x[i] = std::round(x[i]);
    x[i] = std::clamp(x[i], v.lower, v.upper);
  }
  return model.is_feasible(x, tol);
}

}  // namespace dsp::lp
