// Linear/integer programming model builder.
//
// The paper solves its §III makespan formulation with CPLEX; this module is
// the from-scratch substitute. A Model is a list of bounded (optionally
// integral) variables, linear constraints and a linear objective; it is
// solved by SimplexSolver (continuous relaxation) or MilpSolver (branch &
// bound over the integral variables).
#pragma once

#include <cassert>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace dsp::lp {

/// Variable index within a Model.
using VarId = int;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Constraint sense.
enum class Sense { kLe, kGe, kEq };

/// Sparse linear expression: sum of coeff * var terms.
class LinearExpr {
 public:
  LinearExpr() = default;

  /// Adds `coeff * var`; repeated vars are merged by the solvers.
  LinearExpr& add(VarId var, double coeff) {
    terms_.emplace_back(var, coeff);
    return *this;
  }

  const std::vector<std::pair<VarId, double>>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

 private:
  std::vector<std::pair<VarId, double>> terms_;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double objective = 0.0;  ///< Coefficient in the objective.
  bool is_integer = false;
  std::string name;
};

/// Constraint row.
struct Constraint {
  LinearExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Optimization direction.
enum class Direction { kMinimize, kMaximize };

/// An LP/MILP model under construction.
class Model {
 public:
  /// Adds a continuous variable; returns its id.
  VarId add_var(double lower, double upper, double objective,
                std::string name = {}) {
    vars_.push_back({lower, upper, objective, false, std::move(name)});
    return static_cast<VarId>(vars_.size()) - 1;
  }

  /// Adds an integer variable.
  VarId add_int_var(double lower, double upper, double objective,
                    std::string name = {}) {
    vars_.push_back({lower, upper, objective, true, std::move(name)});
    return static_cast<VarId>(vars_.size()) - 1;
  }

  /// Adds a binary (0/1) variable.
  VarId add_binary_var(double objective, std::string name = {}) {
    return add_int_var(0.0, 1.0, objective, std::move(name));
  }

  /// Adds a constraint `expr sense rhs`.
  void add_constraint(LinearExpr expr, Sense sense, double rhs,
                      std::string name = {}) {
    constraints_.push_back({std::move(expr), sense, rhs, std::move(name)});
  }

  void set_direction(Direction d) { direction_ = d; }
  Direction direction() const { return direction_; }

  std::size_t var_count() const { return vars_.size(); }
  std::size_t constraint_count() const { return constraints_.size(); }
  const Variable& var(VarId v) const { return vars_.at(static_cast<std::size_t>(v)); }
  /// Mutable access for bound tightening (branch & bound uses this).
  Variable& mutable_var(VarId v) { return vars_.at(static_cast<std::size_t>(v)); }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// True when any variable is integral (i.e. MILP, not plain LP).
  bool has_integers() const {
    for (const auto& v : vars_)
      if (v.is_integer) return true;
    return false;
  }

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const {
    assert(x.size() == vars_.size());
    double obj = 0.0;
    for (std::size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objective * x[i];
    return obj;
  }

  /// Checks feasibility of a point within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  Direction direction_ = Direction::kMinimize;
};

/// Solver status.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  ///< Simplex hit its pivot cap.
  kNodeLimit,       ///< Branch & bound hit its node cap (best incumbent returned).
  kNoSolution,      ///< Node/iteration limit hit with no incumbent found.
};

const char* to_string(SolveStatus s);

/// Result of an LP or MILP solve.
struct Solution {
  SolveStatus status = SolveStatus::kNoSolution;
  double objective = 0.0;
  std::vector<double> x;  ///< One value per model variable.

  bool ok() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kNodeLimit;
  }
};

}  // namespace dsp::lp
