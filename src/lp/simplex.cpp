#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/log.h"

namespace dsp::lp {
namespace {

/// Degenerate iterations tolerated before switching to Bland's rule.
constexpr int kBlandTrigger = 24;
/// Candidate-list capacity for partial pricing.
constexpr std::size_t kCandidateCap = 16;
/// A basic value within this of its bound counts as feasible.
constexpr double kPrimalFeasTol = 1e-7;
/// A reduced cost within this of the right sign counts as dual feasible.
constexpr double kDualFeasTol = 1e-7;
/// Smallest acceptable pivot element during warm refactorization.
constexpr double kPivotTol = 1e-8;

}  // namespace

// ---------------------------------------------------------------------
// Construction: bounds-independent matrix, built once per model.
// ---------------------------------------------------------------------

BoundedSimplex::BoundedSimplex(const Model& model, SimplexSolver::Options opts)
    : opts_(opts),
      model_(&model),
      nv_(model.var_count()),
      m_(model.constraint_count()),
      n_(nv_ + m_),
      width_(n_ + m_),
      a0_(m_ * width_, 0.0),
      b0_(m_, 0.0),
      obj_(width_, 0.0),
      lo_(width_, 0.0),
      hi_(width_, 0.0),
      beta_(m_, 0.0),
      z_(width_, 0.0),
      status_(width_, VarStatus::kAtLower),
      basic_(m_, -1) {
  const double sign = model.direction() == Direction::kMinimize ? 1.0 : -1.0;
  for (std::size_t j = 0; j < nv_; ++j) {
    const Variable& v = model.var(static_cast<VarId>(j));
    obj_[j] = sign * v.objective;
    lo_[j] = v.lower;
    hi_[j] = v.upper;
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const Constraint& c = model.constraints()[i];
    double* arow = a0_.data() + i * width_;
    for (const auto& [var, coeff] : c.expr.terms())
      arow[static_cast<std::size_t>(var)] += coeff;
    const std::size_t s = nv_ + i;
    arow[s] = 1.0;
    b0_[i] = c.rhs;
    // Slack bounds encode the sense: Ax + s = b with s >= 0 (Le),
    // s <= 0 (Ge) or s == 0 (Eq); bound rows never exist.
    switch (c.sense) {
      case Sense::kLe: lo_[s] = 0.0; hi_[s] = kInf; break;
      case Sense::kGe: lo_[s] = -kInf; hi_[s] = 0.0; break;
      case Sense::kEq: lo_[s] = 0.0; hi_[s] = 0.0; break;
    }
  }
  // Artificial region: fixed at zero until a cold start opens some up.
  pivot_cols_.reserve(width_);
}

void BoundedSimplex::set_var_bounds(VarId v, double lower, double upper) {
  const auto j = static_cast<std::size_t>(v);
  assert(j < nv_);
  lo_[j] = lower;
  hi_[j] = upper;
}

void BoundedSimplex::reset_bounds() {
  for (std::size_t j = 0; j < nv_; ++j) {
    const Variable& v = model_->var(static_cast<VarId>(j));
    lo_[j] = v.lower;
    hi_[j] = v.upper;
  }
}

// ---------------------------------------------------------------------
// Small helpers over the working state.
// ---------------------------------------------------------------------

double BoundedSimplex::value_of(std::size_t j) const {
  switch (status_[j]) {
    case VarStatus::kAtLower: return lo_[j];
    case VarStatus::kAtUpper: return hi_[j];
    case VarStatus::kFree: return 0.0;
    case VarStatus::kBasic: break;
  }
  assert(false && "value_of expects a nonbasic column");
  return 0.0;
}

bool BoundedSimplex::fixed(std::size_t j) const {
  return std::isfinite(lo_[j]) && std::isfinite(hi_[j]) &&
         hi_[j] - lo_[j] <= opts_.tol;
}

/// beta_i -= delta * T[i][enter] for every row (except `skip_row`): the
/// effect of moving nonbasic `enter` by `delta` on the basic values.
void BoundedSimplex::apply_step(std::size_t enter, double delta,
                                std::size_t skip_row) {
  if (delta == 0.0) return;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == skip_row) continue;
    const double aij = row(i)[enter];
    if (aij != 0.0) beta_[i] -= delta * aij;
  }
}

/// Gauss-Jordan pivot on (prow, pcol): pivot row scaled, pivot column
/// eliminated everywhere else, reduced costs updated in place. Only the
/// pivot row's nonzero columns are touched in the other rows.
void BoundedSimplex::pivot(std::size_t prow, std::size_t pcol) {
  double* pr = row(prow);
  const double inv = 1.0 / pr[pcol];
  const std::size_t ncols = n_ + n_art_;

  pivot_cols_.clear();
  for (std::size_t j = 0; j < ncols; ++j) {
    if (pr[j] == 0.0) continue;
    pr[j] *= inv;
    pivot_cols_.push_back(static_cast<std::uint32_t>(j));
  }
  pr[pcol] = 1.0;  // clean up rounding

  for (std::size_t i = 0; i < m_; ++i) {
    if (i == prow) continue;
    double* ar = row(i);
    const double factor = ar[pcol];
    if (factor == 0.0) continue;
    for (const std::uint32_t j : pivot_cols_) ar[j] -= factor * pr[j];
    ar[pcol] = 0.0;
  }
  const double zfactor = z_[pcol];
  if (zfactor != 0.0) {
    for (const std::uint32_t j : pivot_cols_) z_[j] -= zfactor * pr[j];
    z_[pcol] = 0.0;
  }
}

void BoundedSimplex::compute_reduced_costs(const std::vector<double>& cost) {
  const std::size_t ncols = n_ + n_art_;
  std::copy(cost.begin(), cost.begin() + static_cast<std::ptrdiff_t>(ncols),
            z_.begin());
  for (std::size_t i = 0; i < m_; ++i) {
    const double y = cost[static_cast<std::size_t>(basic_[i])];
    if (y == 0.0) continue;
    const double* arow = row(i);
    for (std::size_t j = 0; j < ncols; ++j) z_[j] -= y * arow[j];
  }
}

/// beta = rhs~ - sum over nonbasic columns at a nonzero value.
void BoundedSimplex::compute_beta(const std::vector<double>& rhs) {
  beta_ = rhs;
  const std::size_t ncols = n_ + n_art_;
  for (std::size_t j = 0; j < ncols; ++j) {
    if (status_[j] == VarStatus::kBasic) continue;
    const double v = value_of(j);
    if (v == 0.0) continue;
    for (std::size_t i = 0; i < m_; ++i) {
      const double aij = row(i)[j];
      if (aij != 0.0) beta_[i] -= aij * v;
    }
  }
}

bool BoundedSimplex::primal_feasible() const {
  for (std::size_t i = 0; i < m_; ++i) {
    const auto b = static_cast<std::size_t>(basic_[i]);
    if (beta_[i] < lo_[b] - kPrimalFeasTol ||
        beta_[i] > hi_[b] + kPrimalFeasTol)
      return false;
  }
  return true;
}

bool BoundedSimplex::dual_feasible() const {
  const std::size_t ncols = n_ + n_art_;
  for (std::size_t j = 0; j < ncols; ++j) {
    if (status_[j] == VarStatus::kBasic || fixed(j)) continue;
    switch (status_[j]) {
      case VarStatus::kAtLower:
        if (z_[j] < -kDualFeasTol) return false;
        break;
      case VarStatus::kAtUpper:
        if (z_[j] > kDualFeasTol) return false;
        break;
      case VarStatus::kFree:
        if (std::abs(z_[j]) > kDualFeasTol) return false;
        break;
      case VarStatus::kBasic: break;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Primal simplex: pricing.
// ---------------------------------------------------------------------

namespace {

/// Eligibility of nonbasic column j to enter under reduced cost z.
inline bool primal_eligible(VarStatus st, double zj, double tol) {
  switch (st) {
    case VarStatus::kAtLower: return zj < -tol;
    case VarStatus::kAtUpper: return zj > tol;
    case VarStatus::kFree: return std::abs(zj) > tol;
    case VarStatus::kBasic: return false;
  }
  return false;
}

}  // namespace

/// Bland: entering = lowest-index eligible column (cannot cycle).
int BoundedSimplex::price_primal(bool /*bland*/) const {
  const std::size_t ncols = n_ + n_art_;
  for (std::size_t j = 0; j < ncols; ++j) {
    if (status_[j] == VarStatus::kBasic || fixed(j)) continue;
    if (primal_eligible(status_[j], z_[j], opts_.tol))
      return static_cast<int>(j);
  }
  return -1;
}

/// Partial pricing: drain the candidate list most-attractive-first,
/// re-checking stored columns against current reduced costs; a full
/// refresh scan runs only when the list is dry.
int BoundedSimplex::price_primal_candidates() {
  for (int attempt = 0; attempt < 2; ++attempt) {
    int best = -1;
    double best_score = opts_.tol;
    std::size_t keep = 0;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      const std::size_t j = candidates_[c];
      if (status_[j] == VarStatus::kBasic || fixed(j) ||
          !primal_eligible(status_[j], z_[j], opts_.tol))
        continue;  // stale: drop
      candidates_[keep++] = static_cast<std::uint32_t>(j);
      // Largest |z| wins; ties break on the lower column index, keeping
      // entering choices deterministic.
      if (std::abs(z_[j]) > best_score) {
        best_score = std::abs(z_[j]);
        best = static_cast<int>(j);
      }
    }
    candidates_.resize(keep);
    if (best >= 0) return best;
    if (attempt == 0) refresh_candidates();
  }
  return -1;
}

/// Full scan collecting the kCandidateCap most attractive columns.
void BoundedSimplex::refresh_candidates() {
  candidates_.clear();
  const std::size_t ncols = n_ + n_art_;
  for (std::size_t j = 0; j < ncols; ++j) {
    if (status_[j] == VarStatus::kBasic || fixed(j) ||
        !primal_eligible(status_[j], z_[j], opts_.tol))
      continue;
    if (candidates_.size() < kCandidateCap) {
      candidates_.push_back(static_cast<std::uint32_t>(j));
      continue;
    }
    std::size_t worst = 0;
    for (std::size_t c = 1; c < candidates_.size(); ++c)
      if (std::abs(z_[candidates_[c]]) < std::abs(z_[candidates_[worst]]))
        worst = c;
    if (std::abs(z_[j]) > std::abs(z_[candidates_[worst]]))
      candidates_[worst] = static_cast<std::uint32_t>(j);
  }
}

// ---------------------------------------------------------------------
// Primal simplex iteration (bounded ratio test with bound flips).
// ---------------------------------------------------------------------

BoundedSimplex::LoopStatus BoundedSimplex::primal_loop(int& budget) {
  const double tol = opts_.tol;
  int degenerate_streak = 0;
  candidates_.clear();

  while (budget-- > 0) {
    const bool bland = degenerate_streak >= kBlandTrigger;
    const int enter = bland ? price_primal(true) : price_primal_candidates();
    if (enter < 0) return LoopStatus::kOptimal;
    const auto e = static_cast<std::size_t>(enter);

    // Direction: up from lower, down from upper; free columns follow the
    // sign of their reduced cost.
    const double d =
        status_[e] == VarStatus::kAtUpper ||
                (status_[e] == VarStatus::kFree && z_[e] > tol)
            ? -1.0
            : 1.0;

    // Bounded ratio test: the entering column moves until a basic
    // variable hits a bound (pivot) or the entering column hits its own
    // opposite bound (flip, no pivot).
    const bool has_range = status_[e] != VarStatus::kFree &&
                           std::isfinite(lo_[e]) && std::isfinite(hi_[e]);
    double best_t = has_range ? hi_[e] - lo_[e] : kInf;
    int leave = -1;  // -1 = bound flip
    for (std::size_t i = 0; i < m_; ++i) {
      const double rate = d * row(i)[e];
      const auto b = static_cast<std::size_t>(basic_[i]);
      double t;
      if (rate > tol) {
        if (!std::isfinite(lo_[b])) continue;
        t = (beta_[i] - lo_[b]) / rate;
      } else if (rate < -tol) {
        if (!std::isfinite(hi_[b])) continue;
        t = (beta_[i] - hi_[b]) / rate;
      } else {
        continue;
      }
      if (t < 0.0) t = 0.0;  // roundoff already past the bound
      // Strictly better rows win; ties keep the smallest basic index
      // (Bland tie-break), and a tie with the entering column's own
      // range keeps the cheaper bound flip.
      if (t < best_t - tol ||
          (leave >= 0 && std::abs(t - best_t) <= tol &&
           basic_[i] < basic_[static_cast<std::size_t>(leave)])) {
        best_t = t;
        leave = static_cast<int>(i);
      }
    }
    if (!std::isfinite(best_t)) return LoopStatus::kUnbounded;

    ++stats_.iterations;
    if (bland) ++stats_.bland_pivots;
    degenerate_streak = best_t <= tol ? degenerate_streak + 1 : 0;

    if (leave < 0) {
      // Bound flip: the entering column crosses to its other bound.
      apply_step(e, d * best_t, m_);
      status_[e] = status_[e] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                     : VarStatus::kAtLower;
      continue;
    }
    const auto r = static_cast<std::size_t>(leave);
    const auto lv = static_cast<std::size_t>(basic_[r]);
    const double leave_rate = d * row(r)[e];
    const double newval = value_of(e) + d * best_t;
    apply_step(e, d * best_t, r);
    status_[lv] = leave_rate > 0.0 ? VarStatus::kAtLower : VarStatus::kAtUpper;
    status_[e] = VarStatus::kBasic;
    pivot(r, e);
    basic_[r] = static_cast<std::int32_t>(e);
    beta_[r] = newval;
  }
  return LoopStatus::kIterationLimit;
}

// ---------------------------------------------------------------------
// Dual simplex iteration: repairs primal feasibility after bound changes
// while preserving dual feasibility — the warm-start workhorse.
// ---------------------------------------------------------------------

BoundedSimplex::LoopStatus BoundedSimplex::dual_loop(int& budget) {
  const double tol = opts_.tol;
  const std::size_t ncols = n_ + n_art_;
  int degenerate_streak = 0;

  while (budget-- > 0) {
    // Leaving row: most violated basic; under Bland, the violated basic
    // with the lowest variable index (anti-cycling).
    const bool bland = degenerate_streak >= kBlandTrigger;
    int r = -1;
    double best_viol = kPrimalFeasTol;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basic_[i]);
      double viol = 0.0;
      if (beta_[i] < lo_[b] - kPrimalFeasTol) viol = lo_[b] - beta_[i];
      else if (beta_[i] > hi_[b] + kPrimalFeasTol) viol = beta_[i] - hi_[b];
      if (viol <= kPrimalFeasTol) continue;
      if (bland) {
        if (r < 0 || basic_[i] < basic_[static_cast<std::size_t>(r)])
          r = static_cast<int>(i);
      } else if (viol > best_viol ||
                 (r < 0 && viol > kPrimalFeasTol)) {
        best_viol = viol;
        r = static_cast<int>(i);
      }
    }
    if (r < 0) return LoopStatus::kOptimal;  // primal feasible
    const auto ri = static_cast<std::size_t>(r);
    const auto lv = static_cast<std::size_t>(basic_[ri]);
    const bool below = beta_[ri] < lo_[lv];

    // Dual ratio test: the entering column must move the leaving basic
    // toward its violated bound; the minimum |z|/|a| ratio preserves
    // dual feasibility, ties break on the lowest column index.
    const double* arow = row(ri);
    int enter = -1;
    double best_ratio = kInf;
    for (std::size_t j = 0; j < ncols; ++j) {
      if (status_[j] == VarStatus::kBasic || fixed(j)) continue;
      const double a = arow[j];
      if (std::abs(a) <= tol) continue;
      bool ok;
      switch (status_[j]) {
        case VarStatus::kAtLower: ok = below ? a < 0.0 : a > 0.0; break;
        case VarStatus::kAtUpper: ok = below ? a > 0.0 : a < 0.0; break;
        default: ok = true; break;  // free: either direction
      }
      if (!ok) continue;
      const double ratio = std::abs(z_[j]) / std::abs(a);
      if (ratio < best_ratio - tol) {
        best_ratio = ratio;
        enter = static_cast<int>(j);
      }
    }
    if (enter < 0) return LoopStatus::kInfeasible;
    const auto e = static_cast<std::size_t>(enter);

    ++stats_.iterations;
    ++stats_.dual_iterations;
    if (bland) ++stats_.bland_pivots;
    degenerate_streak =
        std::abs(z_[e]) <= tol ? degenerate_streak + 1 : 0;

    const double target = below ? lo_[lv] : hi_[lv];
    const double delta = (beta_[ri] - target) / arow[e];
    const double newval = value_of(e) + delta;
    apply_step(e, delta, ri);
    status_[lv] = below ? VarStatus::kAtLower : VarStatus::kAtUpper;
    status_[e] = VarStatus::kBasic;
    pivot(ri, e);
    basic_[ri] = static_cast<std::int32_t>(e);
    beta_[ri] = newval;
  }
  return LoopStatus::kIterationLimit;
}

// ---------------------------------------------------------------------
// Warm start: refactorize an imported basis, absorb bound changes.
// ---------------------------------------------------------------------

bool BoundedSimplex::try_warm_start(const Basis& warm) {
  if (warm.basic.size() != m_ || warm.status.size() != n_) return false;
  n_art_ = 0;

  // Import and validate the basis assignment.
  std::vector<char> is_basic(n_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::int32_t b = warm.basic[i];
    basic_[i] = b;
    if (b < 0) continue;  // dead row: re-seeded with an artificial below
    const auto bj = static_cast<std::size_t>(b);
    if (bj >= n_ || is_basic[bj] || warm.status[bj] != VarStatus::kBasic)
      return false;
    is_basic[bj] = 1;
  }
  for (std::size_t j = 0; j < n_; ++j) {
    VarStatus st = warm.status[j];
    if (st == VarStatus::kBasic) {
      if (!is_basic[j]) return false;
    } else {
      // Bounds may have changed since the basis was exported (that is the
      // point of warm-starting a B&B child): snap the status to a bound
      // that exists under the current bounds.
      if (st == VarStatus::kAtLower && !std::isfinite(lo_[j]))
        st = std::isfinite(hi_[j]) ? VarStatus::kAtUpper : VarStatus::kFree;
      else if (st == VarStatus::kAtUpper && !std::isfinite(hi_[j]))
        st = std::isfinite(lo_[j]) ? VarStatus::kAtLower : VarStatus::kFree;
      else if (st == VarStatus::kFree && std::isfinite(lo_[j]))
        st = VarStatus::kAtLower;
      else if (st == VarStatus::kFree && std::isfinite(hi_[j]))
        st = VarStatus::kAtUpper;
    }
    status_[j] = st;
  }
  // Dead rows keep a fixed-at-zero artificial basic so the basis square.
  for (std::size_t i = 0; i < m_; ++i) {
    if (basic_[i] >= 0) continue;
    const std::size_t q = n_ + n_art_++;
    lo_[q] = 0.0;
    hi_[q] = 0.0;
    status_[q] = VarStatus::kBasic;
    basic_[i] = static_cast<std::int32_t>(q);
  }

  // Fresh tableau + rhs; artificial columns for dead rows.
  std::memcpy(tab_.data(), a0_.data(), m_ * width_ * sizeof(double));
  setup_rhs_ = b0_;
  std::vector<double>& rhs = setup_rhs_;
  for (std::size_t i = 0; i < m_; ++i)
    if (static_cast<std::size_t>(basic_[i]) >= n_)
      row(i)[static_cast<std::size_t>(basic_[i])] = 1.0;

  // Refactorize: make every basic column an identity column. Rows basic
  // in their own slack (or their dead-row artificial) are identity by
  // construction and stay so — pivot rows can never pick up a
  // coefficient in those columns — so they keep their pairing; only
  // structural (or foreign-slack) basic columns need elimination.
  //
  // The exported (row, column) pairing is not always eliminable in row
  // order (fixed-position pivots can be zero even for a nonsingular
  // basis), so each column claims the free row with the largest pivot
  // — partial pivoting — and the pairing is rebuilt as rows are
  // claimed. beta_ is recomputed below, so re-pairing is free.
  std::vector<std::size_t> elim_cols;
  std::vector<char> row_free(m_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    const auto j = static_cast<std::size_t>(basic_[i]);
    if (j == nv_ + i || j >= n_) continue;
    elim_cols.push_back(j);
    row_free[i] = 1;
  }
  for (const std::size_t j : elim_cols) {
    std::size_t r = m_;
    double best = kPivotTol;
    for (std::size_t i = 0; i < m_; ++i) {
      if (row_free[i] == 0) continue;
      const double a = std::abs(row(i)[j]);
      if (a > best) {
        best = a;
        r = i;
      }
    }
    if (r == m_) return false;  // numerically singular basis
    row_free[r] = 0;
    basic_[r] = static_cast<std::int32_t>(j);
    double* pr = row(r);
    const double inv = 1.0 / pr[j];
    const std::size_t ncols = n_ + n_art_;
    pivot_cols_.clear();
    for (std::size_t k = 0; k < ncols; ++k) {
      if (pr[k] == 0.0) continue;
      pr[k] *= inv;
      pivot_cols_.push_back(static_cast<std::uint32_t>(k));
    }
    pr[j] = 1.0;
    rhs[r] *= inv;
    for (std::size_t i2 = 0; i2 < m_; ++i2) {
      if (i2 == r) continue;
      double* ar = row(i2);
      const double factor = ar[j];
      if (factor == 0.0) continue;
      for (const std::uint32_t k : pivot_cols_) ar[k] -= factor * pr[k];
      ar[j] = 0.0;
      rhs[i2] -= factor * rhs[r];
    }
  }

  // Caller computes beta and reduced costs from setup_rhs_.
  return true;
}

// ---------------------------------------------------------------------
// Fast warm paths: reuse this context's own factorized tableau.
// ---------------------------------------------------------------------

bool BoundedSimplex::matches_own_basis(const Basis& warm) const {
  if (!own_valid_ || warm.basic.size() != m_ || warm.status.size() != n_)
    return false;
  return warm.basic == own_basis_.basic && warm.status == own_basis_.status;
}

bool BoundedSimplex::matches_prev_basis(const Basis& warm) const {
  if (!prev_valid_ || warm.basic.size() != m_ || warm.status.size() != n_)
    return false;
  return warm.basic == prev_basis_.basic && warm.status == prev_basis_.status;
}

/// Snapshots the current factorized (pre-repair) tableau keyed by the
/// warm basis that produced it. One memcpy; restored by siblings seeded
/// with the same basis.
void BoundedSimplex::save_prev_state(const Basis& warm) {
  prev_basis_ = warm;
  prev_rhs_ = setup_rhs_;
  prev_tab_.assign(tab_.begin(), tab_.end());
  prev_status_.assign(status_.begin(), status_.end());
  prev_basic_.assign(basic_.begin(), basic_.end());
  prev_nart_ = n_art_;
  prev_valid_ = true;
}

/// Restores the snapshot; the caller recomputes beta and reduced costs
/// (bounds usually changed). The snapshot stays valid for further
/// restores.
void BoundedSimplex::restore_prev_state() {
  std::memcpy(tab_.data(), prev_tab_.data(), tab_.size() * sizeof(double));
  status_.assign(prev_status_.begin(), prev_status_.end());
  basic_.assign(prev_basic_.begin(), prev_basic_.end());
  n_art_ = prev_nart_;
  setup_rhs_ = prev_rhs_;
}

/// Re-snaps every nonbasic status to a bound that exists under the
/// current bounds (bounds may have changed since the status was set).
void BoundedSimplex::snap_nonbasic_statuses() {
  for (std::size_t j = 0; j < n_; ++j) {
    VarStatus st = status_[j];
    if (st == VarStatus::kBasic) continue;
    if (st == VarStatus::kAtLower && !std::isfinite(lo_[j]))
      st = std::isfinite(hi_[j]) ? VarStatus::kAtUpper : VarStatus::kFree;
    else if (st == VarStatus::kAtUpper && !std::isfinite(hi_[j]))
      st = std::isfinite(lo_[j]) ? VarStatus::kAtLower : VarStatus::kFree;
    else if (st == VarStatus::kFree && std::isfinite(lo_[j]))
      st = VarStatus::kAtLower;
    else if (st == VarStatus::kFree && std::isfinite(hi_[j]))
      st = VarStatus::kAtUpper;
    status_[j] = st;
  }
}

/// Records the exported basis and the factorized rhs of the current
/// (optimal) tableau so the next solve seeded with this exact basis can
/// skip refactorization. The rhs is recovered from beta:
///   rhs_i = beta_i + sum over nonbasic j of T[i][j] * value(j).
void BoundedSimplex::save_own_state() {
  own_basis_.basic.assign(m_, -1);
  for (std::size_t i = 0; i < m_; ++i)
    if (static_cast<std::size_t>(basic_[i]) < n_)
      own_basis_.basic[i] = basic_[i];
  own_basis_.status.assign(status_.begin(),
                           status_.begin() + static_cast<std::ptrdiff_t>(n_));
  pivot_cols_.clear();  // scratch: nonbasic columns with nonzero value
  for (std::size_t j = 0; j < n_ + n_art_; ++j)
    if (status_[j] != VarStatus::kBasic && value_of(j) != 0.0)
      pivot_cols_.push_back(static_cast<std::uint32_t>(j));
  own_rhs_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    double r = beta_[i];
    const double* tr = row(i);
    for (const std::uint32_t j : pivot_cols_) r += tr[j] * value_of(j);
    own_rhs_[i] = r;
  }
  own_valid_ = true;
}

// ---------------------------------------------------------------------
// Cold start: slack basis + Phase-I artificials for violated rows.
// ---------------------------------------------------------------------

void BoundedSimplex::cold_start() {
  n_art_ = 0;
  for (std::size_t j = 0; j < nv_; ++j) {
    if (std::isfinite(lo_[j])) status_[j] = VarStatus::kAtLower;
    else if (std::isfinite(hi_[j])) status_[j] = VarStatus::kAtUpper;
    else status_[j] = VarStatus::kFree;
  }
  for (std::size_t i = 0; i < m_; ++i) {
    status_[nv_ + i] = VarStatus::kBasic;
    basic_[i] = static_cast<std::int32_t>(nv_ + i);
  }
  std::memcpy(tab_.data(), a0_.data(), m_ * width_ * sizeof(double));
  compute_beta(b0_);

  // Rows whose slack value lands outside the slack bounds get a basic
  // Phase-I artificial carrying the residual; the slack snaps to its
  // nearest bound. Rows already within bounds need nothing.
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t s = nv_ + i;
    if (beta_[i] >= lo_[s] - kPrimalFeasTol &&
        beta_[i] <= hi_[s] + kPrimalFeasTol)
      continue;
    const bool snap_low = beta_[i] < lo_[s];
    const double sval = snap_low ? lo_[s] : hi_[s];
    const double resid = beta_[i] - sval;
    const std::size_t q = n_ + n_art_++;
    if (resid < 0.0) {
      // Negate the row so the basic artificial column is an identity
      // column (+1) — the tableau invariant every update relies on.
      double* arow = row(i);
      for (std::size_t j = 0; j < n_; ++j) arow[j] = -arow[j];
    }
    row(i)[q] = 1.0;
    lo_[q] = 0.0;
    hi_[q] = kInf;  // open during Phase I; frozen to zero afterwards
    status_[s] = snap_low ? VarStatus::kAtLower : VarStatus::kAtUpper;
    status_[q] = VarStatus::kBasic;
    basic_[i] = static_cast<std::int32_t>(q);
    beta_[i] = std::abs(resid);
  }
}

/// Pivots every basic Phase-I artificial out of the basis where a usable
/// structural/slack column exists; rows with none are redundant and keep
/// their artificial (fixed at zero) as a placeholder.
void BoundedSimplex::expel_artificials() {
  for (std::size_t i = 0; i < m_; ++i) {
    const auto b = static_cast<std::size_t>(basic_[i]);
    if (b < n_) continue;
    int enter = -1;
    const double* arow = row(i);
    for (std::size_t j = 0; j < n_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (std::abs(arow[j]) > kPrimalFeasTol) {
        enter = static_cast<int>(j);
        break;
      }
    }
    if (enter < 0) continue;  // redundant row
    const auto e = static_cast<std::size_t>(enter);
    const double delta = beta_[i] / arow[e];  // artificial exits at zero
    const double newval = value_of(e) + delta;
    apply_step(e, delta, i);
    status_[b] = VarStatus::kAtLower;
    status_[e] = VarStatus::kBasic;
    pivot(i, e);
    basic_[i] = static_cast<std::int32_t>(e);
    beta_[i] = newval;
  }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

Solution BoundedSimplex::extract(const Model& model, Basis* out) {
  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.x.resize(nv_);
  for (std::size_t j = 0; j < nv_; ++j)
    sol.x[j] = status_[j] == VarStatus::kBasic ? 0.0 : value_of(j);
  for (std::size_t i = 0; i < m_; ++i) {
    const auto b = static_cast<std::size_t>(basic_[i]);
    if (b < nv_) sol.x[b] = beta_[i];
  }
  // Clamp tiny bound violations from pivoting round-off.
  for (std::size_t j = 0; j < nv_; ++j)
    sol.x[j] = std::clamp(sol.x[j], lo_[j], hi_[j]);
  sol.objective = model.objective_value(sol.x);
  save_own_state();
  if (out != nullptr) *out = own_basis_;
  return sol;
}

Solution BoundedSimplex::solve(const Basis* warm, Basis* out) {
  DSP_PROFILE("lp.simplex_solve_s");
  stats_ = {};
  if (tab_.empty()) tab_.resize(m_ * width_, 0.0);

  for (std::size_t j = 0; j < n_; ++j)
    if (lo_[j] > hi_[j] + opts_.tol) return {SolveStatus::kInfeasible, 0.0, {}};

  int budget = opts_.max_iterations;

  // Decide the fast path before invalidating: any solve mutates the
  // tableau, so the own-state snapshot is good for exactly one reuse.
  const bool own_fast = warm != nullptr && matches_own_basis(*warm);
  own_valid_ = false;

  // ---- Warm path: repair the basis with the dual simplex. Three entry
  // tiers, cheapest first: (1) the warm basis is the one this context
  // just exported — its tableau is already factorized, reuse in place;
  // (2) the warm basis matches the pre-repair snapshot of the previous
  // warm solve — sibling branch-and-bound nodes share their parent's
  // basis — restore it with a memcpy; (3) import the basis and
  // refactorize from scratch. ----
  if (warm != nullptr && !warm->empty()) {
    bool ready = true;
    if (own_fast) {
      DSP_COUNT("lp.warm_start_fast");
      setup_rhs_ = own_rhs_;
    } else if (matches_prev_basis(*warm)) {
      DSP_COUNT("lp.warm_start_fast");
      restore_prev_state();
    } else {
      ready = try_warm_start(*warm);  // fills setup_rhs_
    }
    if (ready) {
      snap_nonbasic_statuses();
      compute_beta(setup_rhs_);
      cost_.assign(obj_.begin(), obj_.end());
      compute_reduced_costs(cost_);
      save_prev_state(*warm);
      LoopStatus st = LoopStatus::kOptimal;
      bool usable = true;
      if (dual_feasible()) {
        st = dual_loop(budget);
        if (st == LoopStatus::kOptimal) st = primal_loop(budget);
      } else if (primal_feasible()) {
        st = primal_loop(budget);
      } else {
        usable = false;  // doubly infeasible basis: cold restart
      }
      if (usable) {
        stats_.warm_used = true;
        DSP_COUNT("lp.warm_start_hit");
        switch (st) {
          case LoopStatus::kOptimal: return extract(*model_, out);
          case LoopStatus::kInfeasible:
            return {SolveStatus::kInfeasible, 0.0, {}};
          case LoopStatus::kUnbounded:
            return {SolveStatus::kUnbounded, 0.0, {}};
          case LoopStatus::kIterationLimit:
            return {SolveStatus::kIterationLimit, 0.0, {}};
        }
      }
    }
    if (!stats_.warm_used) DSP_COUNT("lp.warm_start_miss");
  }

  // ---- Cold path: slack basis, Phase I on artificials, Phase II. ----
  cold_start();
  if (n_art_ > 0) {
    cost_.assign(width_, 0.0);
    for (std::size_t q = n_; q < n_ + n_art_; ++q) cost_[q] = 1.0;
    compute_reduced_costs(cost_);
    const LoopStatus st = primal_loop(budget);
    if (st == LoopStatus::kIterationLimit)
      return {SolveStatus::kIterationLimit, 0.0, {}};
    double art_sum = 0.0;
    for (std::size_t i = 0; i < m_; ++i)
      if (static_cast<std::size_t>(basic_[i]) >= n_)
        art_sum += std::max(0.0, beta_[i]);
    if (art_sum > 1e-6) return {SolveStatus::kInfeasible, 0.0, {}};
    expel_artificials();
    for (std::size_t q = n_; q < n_ + n_art_; ++q) hi_[q] = 0.0;  // freeze
  }

  cost_.assign(obj_.begin(), obj_.end());
  compute_reduced_costs(cost_);
  switch (primal_loop(budget)) {
    case LoopStatus::kOptimal: return extract(*model_, out);
    case LoopStatus::kUnbounded: return {SolveStatus::kUnbounded, 0.0, {}};
    case LoopStatus::kInfeasible: return {SolveStatus::kInfeasible, 0.0, {}};
    case LoopStatus::kIterationLimit: break;
  }
  return {SolveStatus::kIterationLimit, 0.0, {}};
}

// ---------------------------------------------------------------------
// SimplexSolver facade.
// ---------------------------------------------------------------------

Solution SimplexSolver::solve(const Model& model) const {
  return solve(model, nullptr);
}

Solution SimplexSolver::solve(const Model& model, Basis* basis) const {
  BoundedSimplex bs(model, opts_);
  Solution sol = bs.solve(basis, basis);
  stats_ = bs.stats();
  return sol;
}

}  // namespace dsp::lp
