#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/profiler.h"
#include "util/log.h"

namespace dsp::lp {
namespace {

/// Internal row in `Ax (sense) b` form over the translated variables.
struct Row {
  std::vector<double> coeffs;  // dense over internal columns
  Sense sense;
  double rhs;
};

/// Mapping from a model variable to internal column(s).
struct VarMap {
  int pos_col = -1;   // column for the shifted/positive part
  int neg_col = -1;   // column for the negative part (free vars only)
  double shift = 0.0; // model value = internal value + shift (pos part)
};

/// Dense simplex tableau over a single flat row-major buffer.
///
/// Pricing is a two-tier scheme: a candidate list of attractively priced
/// columns is refreshed by full scans and drained by most-negative-first
/// (Dantzig) selection; a run of degenerate pivots switches to Bland's
/// lowest-index rule until the objective moves again, which preserves the
/// classic anti-cycling termination guarantee.
class Tableau {
 public:
  // rows: m constraint rows in equality form (slack/artificials appended by
  // caller); the objective row is maintained separately.
  Tableau(std::size_t m, std::size_t n)
      : m_(m), n_(n), a_(m * n, 0.0), b_(m, 0.0), basis_(m, -1) {
    pivot_cols_.reserve(n_);
  }

  double* row(std::size_t i) { return a_.data() + i * n_; }
  const double* row(std::size_t i) const { return a_.data() + i * n_; }
  std::vector<double>& b() { return b_; }
  std::vector<int>& basis() { return basis_; }
  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Runs simplex minimizing cost^T x over the current basis.
  /// `allowed[j]` = false bans column j from entering (used to freeze
  /// artificials in phase 2). Returns status and spends from `budget`.
  SolveStatus minimize(const std::vector<double>& cost,
                       const std::vector<char>& allowed, double tol,
                       int& budget) {
    // Reduced-cost row: z_j = cost_j - c_B^T B^-1 A_j, maintained densely.
    std::vector<double> z(n_);
    compute_reduced_costs(cost, z);

    candidates_.clear();
    int degenerate_streak = 0;

    while (budget-- > 0) {
      // Anti-cycling: after a run of non-improving pivots fall back to
      // Bland's lowest-index rule, which cannot cycle.
      const bool bland = degenerate_streak >= kBlandTrigger;
      const int enter = bland ? price_bland(z, allowed, tol)
                              : price_candidates(z, allowed, tol);
      if (enter < 0) return SolveStatus::kOptimal;

      // Ratio test; Bland tie-break on smallest basis variable index.
      int leave_row = -1;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double aij = row(i)[static_cast<std::size_t>(enter)];
        if (aij > tol) {
          const double ratio = b_[i] / aij;
          if (leave_row < 0 || ratio < best_ratio - tol ||
              (std::abs(ratio - best_ratio) <= tol &&
               basis_[i] < basis_[static_cast<std::size_t>(leave_row)])) {
            leave_row = static_cast<int>(i);
            best_ratio = ratio;
          }
        }
      }
      if (leave_row < 0) return SolveStatus::kUnbounded;

      degenerate_streak = best_ratio <= tol ? degenerate_streak + 1 : 0;
      pivot(static_cast<std::size_t>(leave_row), static_cast<std::size_t>(enter),
            &z);
    }
    return SolveStatus::kIterationLimit;
  }

  /// Extracts the current basic solution over internal columns.
  std::vector<double> solution() const {
    std::vector<double> x(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      if (basis_[i] >= 0) x[static_cast<std::size_t>(basis_[i])] = b_[i];
    return x;
  }

  /// Attempts to pivot every basic artificial (column >= first_artificial)
  /// out of the basis; rows where that is impossible are redundant and
  /// zeroed.
  void expel_artificials(std::size_t first_artificial, double tol) {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < 0 || static_cast<std::size_t>(basis_[i]) < first_artificial)
        continue;
      int enter = -1;
      const double* arow = row(i);
      for (std::size_t j = 0; j < first_artificial; ++j) {
        if (std::abs(arow[j]) > tol) {
          enter = static_cast<int>(j);
          break;
        }
      }
      if (enter >= 0) {
        pivot(i, static_cast<std::size_t>(enter), nullptr);
      } else {
        // Redundant row: every structural coefficient is 0.
        std::fill(row(i), row(i) + n_, 0.0);
        b_[i] = 0.0;
        basis_[i] = -1;
      }
    }
  }

 private:
  /// Degenerate pivots tolerated before switching to Bland's rule.
  static constexpr int kBlandTrigger = 24;
  /// Candidate-list capacity: only this many attractively priced columns
  /// are kept per full pricing scan.
  static constexpr std::size_t kCandidateCap = 16;

  /// Bland: entering = lowest-index allowed column with z_j < -tol.
  int price_bland(const std::vector<double>& z, const std::vector<char>& allowed,
                  double tol) const {
    for (std::size_t j = 0; j < n_; ++j)
      if (allowed[j] && z[j] < -tol) return static_cast<int>(j);
    return -1;
  }

  /// Partial pricing: drain the candidate list most-negative-first,
  /// re-checking each stored column against the current reduced costs and
  /// refreshing the list with a full scan only when it runs dry.
  int price_candidates(const std::vector<double>& z,
                       const std::vector<char>& allowed, double tol) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      int best = -1;
      double best_z = -tol;
      std::size_t keep = 0;
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        const std::size_t j = candidates_[c];
        if (!allowed[j] || z[j] >= -tol) continue;  // stale: drop
        candidates_[keep++] = j;
        // Most negative wins; ties break on the lower column index, which
        // keeps entering choices deterministic.
        if (z[j] < best_z) {
          best_z = z[j];
          best = static_cast<int>(j);
        }
      }
      candidates_.resize(keep);
      if (best >= 0) return best;
      if (attempt == 0) refresh_candidates(z, allowed, tol);
    }
    return -1;
  }

  /// Full scan collecting the `kCandidateCap` most negative reduced costs.
  void refresh_candidates(const std::vector<double>& z,
                          const std::vector<char>& allowed, double tol) {
    candidates_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (!allowed[j] || z[j] >= -tol) continue;
      if (candidates_.size() < kCandidateCap) {
        candidates_.push_back(j);
        continue;
      }
      // Replace the least negative stored candidate when j beats it.
      std::size_t worst = 0;
      for (std::size_t c = 1; c < candidates_.size(); ++c)
        if (z[candidates_[c]] > z[candidates_[worst]]) worst = c;
      if (z[j] < z[candidates_[worst]]) candidates_[worst] = j;
    }
  }

  void compute_reduced_costs(const std::vector<double>& cost,
                             std::vector<double>& z) const {
    // z_j = cost_j - sum_i y_i a_ij with y_i the basic cost of row i.
    // Accumulated row-major: one pass per row with a nonzero multiplier.
    std::copy(cost.begin(), cost.end(), z.begin());
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < 0) continue;
      const double y = cost[static_cast<std::size_t>(basis_[i])];
      if (y == 0.0) continue;
      const double* arow = row(i);
      for (std::size_t j = 0; j < n_; ++j) z[j] -= y * arow[j];
    }
  }

  /// Gauss-Jordan pivot on (row, col). `z` (when non-null) is updated in
  /// place. Only the pivot row's nonzero columns are touched in the other
  /// rows — the tableau stays sparse for long stretches of a solve, and
  /// skipping structural zeros is where the flat layout pays off.
  void pivot(std::size_t prow, std::size_t pcol, std::vector<double>* z) {
    double* pr = row(prow);
    const double pivot_val = pr[pcol];
    assert(std::abs(pivot_val) > 0.0);
    const double inv = 1.0 / pivot_val;

    // Scale the pivot row and collect its nonzero columns once.
    pivot_cols_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (pr[j] == 0.0) continue;
      pr[j] *= inv;
      pivot_cols_.push_back(static_cast<std::uint32_t>(j));
    }
    b_[prow] *= inv;
    pr[pcol] = 1.0;  // clean up rounding

    for (std::size_t i = 0; i < m_; ++i) {
      if (i == prow) continue;
      double* ar = row(i);
      const double factor = ar[pcol];
      if (factor == 0.0) continue;
      for (const std::uint32_t j : pivot_cols_) ar[j] -= factor * pr[j];
      ar[pcol] = 0.0;
      b_[i] -= factor * b_[prow];
    }
    if (z != nullptr) {
      const double zfactor = (*z)[pcol];
      if (zfactor != 0.0) {
        for (const std::uint32_t j : pivot_cols_) (*z)[j] -= zfactor * pr[j];
        (*z)[pcol] = 0.0;
      }
    }
    basis_[prow] = static_cast<int>(pcol);
  }

  std::size_t m_, n_;
  std::vector<double> a_;  // flat row-major: a_[i * n_ + j]
  std::vector<double> b_;
  std::vector<int> basis_;
  std::vector<std::uint32_t> pivot_cols_;   // scratch: pivot row's nonzeros
  std::vector<std::size_t> candidates_;     // partial-pricing candidate list
};

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  DSP_PROFILE("lp.simplex_solve_s");
  const double tol = opts_.tol;
  last_iterations_ = 0;

  // ---- Translate model variables to internal non-negative columns. ----
  std::vector<VarMap> vmap(model.var_count());
  int ncols = 0;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const Variable& v = model.var(static_cast<VarId>(i));
    if (v.lower > v.upper + tol) return {SolveStatus::kInfeasible, 0.0, {}};
    if (std::isfinite(v.lower)) {
      vmap[i].pos_col = ncols++;
      vmap[i].shift = v.lower;
    } else {
      // Free (or upper-bounded-only) variable: x = pos - neg.
      vmap[i].pos_col = ncols++;
      vmap[i].neg_col = ncols++;
      vmap[i].shift = 0.0;
    }
  }

  // ---- Build rows: model constraints + finite upper bounds. ----
  const auto n_struct = static_cast<std::size_t>(ncols);
  std::vector<Row> rows;
  rows.reserve(model.constraint_count() + model.var_count());

  auto expr_to_dense = [&](const LinearExpr& expr, std::vector<double>& coeffs,
                           double& shift_sum) {
    coeffs.assign(n_struct, 0.0);
    shift_sum = 0.0;
    for (const auto& [var, coeff] : expr.terms()) {
      const auto& vm = vmap[static_cast<std::size_t>(var)];
      coeffs[static_cast<std::size_t>(vm.pos_col)] += coeff;
      if (vm.neg_col >= 0) coeffs[static_cast<std::size_t>(vm.neg_col)] -= coeff;
      shift_sum += coeff * vm.shift;
    }
  };

  for (const auto& c : model.constraints()) {
    Row row;
    double shift_sum = 0.0;
    expr_to_dense(c.expr, row.coeffs, shift_sum);
    row.sense = c.sense;
    row.rhs = c.rhs - shift_sum;
    rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const Variable& v = model.var(static_cast<VarId>(i));
    if (!std::isfinite(v.upper)) continue;
    Row row;
    row.coeffs.assign(n_struct, 0.0);
    row.coeffs[static_cast<std::size_t>(vmap[i].pos_col)] = 1.0;
    if (vmap[i].neg_col >= 0)
      row.coeffs[static_cast<std::size_t>(vmap[i].neg_col)] = -1.0;
    row.sense = Sense::kLe;
    row.rhs = v.upper - vmap[i].shift;
    rows.push_back(std::move(row));
  }

  // Normalize: rhs >= 0 by negating rows.
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      for (auto& c : row.coeffs) c = -c;
      row.rhs = -row.rhs;
      if (row.sense == Sense::kLe) row.sense = Sense::kGe;
      else if (row.sense == Sense::kGe) row.sense = Sense::kLe;
    }
  }

  // ---- Count slack and artificial columns. ----
  const std::size_t m = rows.size();
  std::size_t n_slack = 0, n_art = 0;
  for (const auto& row : rows) {
    if (row.sense != Sense::kEq) ++n_slack;
    if (row.sense != Sense::kLe) ++n_art;  // Ge and Eq need artificials
  }
  const std::size_t total_cols = n_struct + n_slack + n_art;
  const std::size_t first_art = n_struct + n_slack;

  Tableau tab(m, total_cols);
  {
    std::size_t slack_at = n_struct;
    std::size_t art_at = first_art;
    for (std::size_t i = 0; i < m; ++i) {
      double* arow = tab.row(i);
      std::copy(rows[i].coeffs.begin(), rows[i].coeffs.end(), arow);
      tab.b()[i] = rows[i].rhs;
      switch (rows[i].sense) {
        case Sense::kLe:
          arow[slack_at] = 1.0;
          tab.basis()[i] = static_cast<int>(slack_at);
          ++slack_at;
          break;
        case Sense::kGe:
          arow[slack_at] = -1.0;
          ++slack_at;
          arow[art_at] = 1.0;
          tab.basis()[i] = static_cast<int>(art_at);
          ++art_at;
          break;
        case Sense::kEq:
          arow[art_at] = 1.0;
          tab.basis()[i] = static_cast<int>(art_at);
          ++art_at;
          break;
      }
    }
  }

  int budget = opts_.max_iterations;
  const std::vector<char> all_allowed(total_cols, 1);

  // ---- Phase 1: minimize artificial sum. ----
  if (n_art > 0) {
    std::vector<double> phase1_cost(total_cols, 0.0);
    for (std::size_t j = first_art; j < total_cols; ++j) phase1_cost[j] = 1.0;
    const SolveStatus st = tab.minimize(phase1_cost, all_allowed, tol, budget);
    last_iterations_ = opts_.max_iterations - budget;
    if (st == SolveStatus::kIterationLimit)
      return {SolveStatus::kIterationLimit, 0.0, {}};
    // Residual artificial value > tol means no feasible point exists.
    double art_sum = 0.0;
    const auto x = tab.solution();
    for (std::size_t j = first_art; j < total_cols; ++j) art_sum += x[j];
    if (art_sum > 1e-6) return {SolveStatus::kInfeasible, 0.0, {}};
    tab.expel_artificials(first_art, tol);
  }

  // ---- Phase 2: original objective over structural+slack columns. ----
  const double sign = model.direction() == Direction::kMinimize ? 1.0 : -1.0;
  std::vector<double> cost(total_cols, 0.0);
  double const_term = 0.0;
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const Variable& v = model.var(static_cast<VarId>(i));
    const auto& vm = vmap[i];
    cost[static_cast<std::size_t>(vm.pos_col)] += sign * v.objective;
    if (vm.neg_col >= 0) cost[static_cast<std::size_t>(vm.neg_col)] -= sign * v.objective;
    const_term += v.objective * vm.shift;
  }
  std::vector<char> allowed(total_cols, 1);
  for (std::size_t j = first_art; j < total_cols; ++j) allowed[j] = 0;

  const SolveStatus st = tab.minimize(cost, allowed, tol, budget);
  last_iterations_ = opts_.max_iterations - budget;
  if (st == SolveStatus::kUnbounded) return {SolveStatus::kUnbounded, 0.0, {}};
  if (st == SolveStatus::kIterationLimit)
    return {SolveStatus::kIterationLimit, 0.0, {}};

  // ---- Recover model-space solution. ----
  const auto internal = tab.solution();
  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.x.resize(model.var_count());
  for (std::size_t i = 0; i < model.var_count(); ++i) {
    const auto& vm = vmap[i];
    double val = internal[static_cast<std::size_t>(vm.pos_col)] + vm.shift;
    if (vm.neg_col >= 0) val -= internal[static_cast<std::size_t>(vm.neg_col)];
    // Clamp tiny bound violations from pivoting round-off.
    const Variable& v = model.var(static_cast<VarId>(i));
    val = std::clamp(val, v.lower, v.upper);
    sol.x[i] = val;
  }
  sol.objective = model.objective_value(sol.x);
  (void)const_term;
  return sol;
}

}  // namespace dsp::lp
