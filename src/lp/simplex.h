// Two-phase primal simplex over a dense tableau.
//
// Designed for the small-to-medium models the DSP ILP scheduler produces
// (hundreds of variables/rows). The tableau lives in one flat row-major
// buffer (a single allocation; pivots stream contiguous memory), entering
// columns are chosen by candidate-list partial pricing (full column scans
// only when the list runs dry), and row updates touch only the pivot
// row's nonzero columns. A run of degenerate pivots falls back to Bland's
// anti-cycling rule, which guarantees termination; an iteration cap
// guards against pathological inputs.
//
// General bounds are handled by translation: variables are shifted so the
// working lower bound is 0, free variables are split into positive parts,
// and finite upper bounds become explicit rows.
#pragma once

#include "lp/model.h"

namespace dsp::lp {

/// Dense two-phase primal simplex LP solver.
///
/// Integrality markers on variables are ignored — this solves the
/// continuous relaxation. Use MilpSolver for integral models.
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 100000;  ///< Total pivot cap across both phases.
    double tol = 1e-9;            ///< Numerical tolerance.
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options opts) : opts_(opts) {}

  /// Solves the continuous relaxation of `model`.
  Solution solve(const Model& model) const;

  /// Pivot count of the most recent solve (for benchmarks).
  int last_iterations() const { return last_iterations_; }

 private:
  Options opts_;
  mutable int last_iterations_ = 0;
};

}  // namespace dsp::lp
