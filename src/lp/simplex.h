// Bounded-variable simplex with basis warm-start.
//
// Designed for the small-to-medium models the DSP ILP scheduler produces
// (hundreds of variables/rows) and for the re-solve patterns that dominate
// its hot path: branch-and-bound children differing from their parent by a
// single variable bound, and consecutive scheduling periods producing
// structurally identical models with shifted data.
//
// Simple variable bounds are handled implicitly — every nonbasic variable
// sits at its lower or upper bound (or at zero when free) — so finite
// bounds never become constraint rows and the row count m is the model's
// constraint count alone. The tableau lives in one flat row-major buffer;
// entering columns are chosen by candidate-list partial pricing; a run of
// degenerate steps falls back to Bland's anti-cycling rule in both the
// primal and the dual iteration, which guarantees termination; an
// iteration cap guards against pathological inputs.
//
// Warm start: a Basis (per-row basic column + per-column status) exported
// from a previous optimal solve can seed a new solve. The basis is
// refactorized (rows whose own slack is basic are identity and cost
// nothing), bound changes are absorbed by clamping nonbasic values, and
// the remaining primal infeasibility is repaired by a dual simplex pass —
// the textbook mechanism that makes LP-based branch & bound tractable.
// A singular or doubly infeasible warm basis falls back to a cold start.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.h"

namespace dsp::lp {

/// Status of one column in a simplex basis.
enum class VarStatus : std::uint8_t {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFree = 3,  ///< Nonbasic at value 0 (both bounds infinite).
};

/// A simplex basis snapshot: enough to warm-start a later solve.
///
/// `basic[i]` is the column basic in row i (-1 for a redundant row whose
/// Phase-I artificial could not be expelled); `status[j]` covers the
/// structural and slack columns. Obtained from SimplexSolver::solve /
/// BoundedSimplex::solve and opaque to callers otherwise.
struct Basis {
  std::vector<std::int32_t> basic;
  std::vector<VarStatus> status;

  bool empty() const { return basic.empty(); }
  void clear() {
    basic.clear();
    status.clear();
  }
};

/// Dense bounded-variable simplex LP solver.
///
/// Integrality markers on variables are ignored — this solves the
/// continuous relaxation. Use MilpSolver for integral models.
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 100000;  ///< Pivot/flip cap across all phases.
    double tol = 1e-9;            ///< Numerical tolerance.
  };

  /// Counters for the most recent solve (benchmarks, tests, obs).
  struct SolveStats {
    int iterations = 0;       ///< Pivots + bound flips, all phases.
    int dual_iterations = 0;  ///< Pivots taken by the dual simplex.
    int bland_pivots = 0;     ///< Iterations chosen under Bland's rule.
    bool warm_used = false;   ///< A warm basis was accepted (not cold).
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options opts) : opts_(opts) {}

  /// Solves the continuous relaxation of `model` from a cold start.
  Solution solve(const Model& model) const;

  /// Solves with a warm-start basis. When `basis` is non-null and
  /// non-empty it seeds the solve (falling back to a cold start if it is
  /// unusable); on an optimal exit the final basis is written back to
  /// `*basis`, so a caller re-solving a drifting model can thread the
  /// basis through consecutive calls.
  Solution solve(const Model& model, Basis* basis) const;

  /// Pivot count of the most recent solve (for benchmarks).
  int last_iterations() const { return stats_.iterations; }
  const SolveStats& last_stats() const { return stats_; }

 private:
  Options opts_;
  mutable SolveStats stats_;
};

/// Reusable bounded-variable simplex bound to one Model's constraint
/// matrix. Construction builds the (bounds-independent) initial matrix
/// once; callers may then override variable bounds and re-solve many
/// times — exactly the branch-and-bound access pattern, where each child
/// node differs from its parent by a single bound. MilpSolver keeps one
/// instance per search worker.
class BoundedSimplex {
 public:
  BoundedSimplex(const Model& model, SimplexSolver::Options opts);

  /// Overrides the bounds of structural variable `v` for later solves.
  void set_var_bounds(VarId v, double lower, double upper);

  /// Restores every structural bound to the model's.
  void reset_bounds();

  /// Solves under the current bounds. `warm` (nullable / possibly empty)
  /// seeds the basis; `out` (nullable) receives the optimal basis.
  Solution solve(const Basis* warm, Basis* out);

  const SimplexSolver::SolveStats& stats() const { return stats_; }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

 private:
  enum class LoopStatus { kOptimal, kUnbounded, kInfeasible, kIterationLimit };

  double* row(std::size_t i) { return tab_.data() + i * width_; }
  const double* row(std::size_t i) const { return tab_.data() + i * width_; }
  double value_of(std::size_t j) const;
  bool fixed(std::size_t j) const;

  bool try_warm_start(const Basis& warm);
  bool matches_own_basis(const Basis& warm) const;
  bool matches_prev_basis(const Basis& warm) const;
  void snap_nonbasic_statuses();
  void save_own_state();
  void save_prev_state(const Basis& warm);
  void restore_prev_state();
  void cold_start();
  LoopStatus primal_loop(int& budget);
  LoopStatus dual_loop(int& budget);
  int price_primal(bool bland) const;
  int price_primal_candidates();
  void refresh_candidates();
  void pivot(std::size_t prow, std::size_t pcol);
  void apply_step(std::size_t enter, double delta, std::size_t skip_row);
  void compute_reduced_costs(const std::vector<double>& cost);
  void compute_beta(const std::vector<double>& rhs);
  bool dual_feasible() const;
  bool primal_feasible() const;
  void expel_artificials();
  Solution extract(const Model& model, Basis* out);

  SimplexSolver::Options opts_;
  SimplexSolver::SolveStats stats_;
  const Model* model_;

  std::size_t nv_;     // structural columns (model variables)
  std::size_t m_;      // constraint rows
  std::size_t n_;      // structural + slack columns
  std::size_t width_;  // n_ + m_: room for Phase-I artificials
  std::size_t n_art_ = 0;  // artificials in use this solve

  std::vector<double> a0_;    // initial matrix (m_ x width_), slack identity
  std::vector<double> b0_;    // initial rhs
  std::vector<double> obj_;   // minimize-direction cost over width_
  std::vector<double> lo_, hi_;  // current bounds over width_

  // Working state, rebuilt per solve.
  std::vector<double> tab_;      // tableau (m_ x width_)
  std::vector<double> beta_;     // values of basic variables per row
  std::vector<double> z_;        // reduced costs
  std::vector<double> cost_;     // cost vector of the current phase
  std::vector<VarStatus> status_;
  std::vector<std::int32_t> basic_;
  std::vector<std::uint32_t> pivot_cols_;  // scratch: pivot row nonzeros
  std::vector<std::uint32_t> candidates_;  // partial-pricing candidates

  // Fast warm paths. After an optimal solve the context remembers the
  // basis it exported plus the refactorized rhs of its tableau; a later
  // solve seeded with that exact basis (branch & bound re-solving a
  // child of the node this context just solved) skips the tableau reset
  // and refactorization entirely — the tableau is already factorized —
  // and only recomputes beta under the new bounds.
  bool own_valid_ = false;
  Basis own_basis_;
  std::vector<double> own_rhs_;
  // Additionally, every warm solve snapshots its factorized-but-not-yet-
  // repaired tableau, keyed by the seed basis. Sibling nodes share their
  // parent's basis, so when the second sibling lands on this context the
  // snapshot restores with a memcpy instead of a refactorization.
  bool prev_valid_ = false;
  Basis prev_basis_;
  std::vector<double> prev_rhs_;
  std::vector<double> prev_tab_;
  std::vector<VarStatus> prev_status_;
  std::vector<std::int32_t> prev_basic_;
  std::size_t prev_nart_ = 0;
  std::vector<double> setup_rhs_;  // rhs of the factorized warm tableau
};

}  // namespace dsp::lp
