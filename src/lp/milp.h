// Branch-and-bound MILP solver on top of SimplexSolver.
//
// Best-bound (priority-queue) search branching on the most fractional
// integer variable. Suited to the small exact instances the DSP ILP
// scheduler solves and to cross-validating the scheduling heuristic; a node
// cap returns the best incumbent on larger models.
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace dsp::lp {

/// Branch & bound MILP solver.
class MilpSolver {
 public:
  struct Options {
    int max_nodes = 20000;        ///< Search-tree node cap.
    double int_tol = 1e-6;        ///< Integrality tolerance.
    double gap_tol = 1e-9;        ///< Absolute optimality gap to stop early.
    SimplexSolver::Options lp{};  ///< Options for relaxation solves.
  };

  MilpSolver() = default;
  explicit MilpSolver(Options opts) : opts_(opts) {}

  /// Solves `model` to optimality (kOptimal), or returns the best incumbent
  /// under the node cap (kNodeLimit), or kNoSolution/kInfeasible/kUnbounded.
  Solution solve(const Model& model) const;

  /// Nodes explored during the most recent solve.
  int last_nodes() const { return last_nodes_; }

 private:
  Options opts_;
  mutable int last_nodes_ = 0;
};

/// Rounds an LP-relaxation solution to the nearest integral point and
/// repairs simple bound violations; the relax-and-round scheduling mode
/// (paper §III: "relax ... then use integer rounding") uses this.
/// Returns false when the rounded point is infeasible for `model`.
bool round_to_integers(const Model& model, std::vector<double>& x,
                       double tol = 1e-6);

}  // namespace dsp::lp
