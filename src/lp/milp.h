// Branch-and-bound MILP solver on top of the bounded-variable simplex.
//
// Best-bound search branching on the most fractional integer variable.
// Open nodes are parent-delta records (one branched bound each, O(1) per
// node) carrying a shared pointer to the parent's optimal basis; child
// relaxations warm-start from that basis and are repaired by a dual
// simplex pass instead of a cold Phase-I/Phase-II solve. Nodes are
// explored in fixed-size waves fanned out over util::ThreadPool; because
// the wave size is an option — never a function of the thread count —
// and incumbents merge in node-sequence order, the chosen solution and
// the node count are bit-identical at any DSP_THREADS. Suited to the
// small exact instances the DSP ILP scheduler solves and to
// cross-validating the scheduling heuristic; a node cap returns the best
// incumbent on larger models.
#pragma once

#include <memory>

#include "lp/model.h"
#include "lp/simplex.h"

namespace dsp {
class ThreadPool;
}

namespace dsp::lp {

/// Branch & bound MILP solver.
///
/// A MilpSolver instance may be reused across solves — consecutive calls
/// with structurally identical models (same variable/constraint counts,
/// the cross-period scheduling pattern) warm-start the root relaxation
/// from the previous solve's root basis. Instances are not safe for
/// concurrent solve() calls.
class MilpSolver {
 public:
  struct Options {
    int max_nodes = 20000;   ///< Search-tree node cap.
    double int_tol = 1e-6;   ///< Integrality tolerance.
    double gap_tol = 1e-9;   ///< Absolute optimality gap to stop early.
    bool warm_start = true;  ///< Warm-start child LPs from the parent basis
                             ///< (and the root from the previous solve).
    int parallel_nodes = 8;  ///< Open nodes solved per wave. Fixed work
                             ///< unit: results are identical at any thread
                             ///< count. 1 = strict best-bound order.
    int threads = 0;         ///< Worker threads for wave solves; <= 0
                             ///< reads DSP_THREADS (default 1).
    SimplexSolver::Options lp{};  ///< Options for relaxation solves.
  };

  MilpSolver();
  explicit MilpSolver(Options opts);
  ~MilpSolver();

  MilpSolver(const MilpSolver&) = delete;
  MilpSolver& operator=(const MilpSolver&) = delete;

  /// Solves `model` to optimality (kOptimal), or returns the best incumbent
  /// under the node cap (kNodeLimit), or kNoSolution/kInfeasible/kUnbounded.
  Solution solve(const Model& model) const;

  /// Nodes explored during the most recent solve.
  int last_nodes() const { return last_nodes_; }

  /// Warm-started LP solves out of all LP solves in the most recent call
  /// (observability; also exported as lp.warm_start_hit / _miss).
  int last_warm_hits() const { return last_warm_hits_; }

 private:
  ThreadPool* pool() const;

  Options opts_;
  mutable int last_nodes_ = 0;
  mutable int last_warm_hits_ = 0;

  // Cross-period root warm start: the previous solve's root basis plus
  // the model shape it belongs to.
  mutable Basis period_basis_;
  mutable std::size_t period_vars_ = 0;
  mutable std::size_t period_rows_ = 0;

  mutable int resolved_threads_ = 0;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Rounds an LP-relaxation solution to the nearest integral point and
/// repairs simple bound violations; the relax-and-round scheduling mode
/// (paper §III: "relax ... then use integer rounding") uses this.
/// Returns false when the rounded point is infeasible for `model`.
bool round_to_integers(const Model& model, std::vector<double>& x,
                       double tol = 1e-6);

}  // namespace dsp::lp
