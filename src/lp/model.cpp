#include "lp/model.h"

#include <cmath>

namespace dsp::lp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNodeLimit: return "node-limit";
    case SolveStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const auto& v = vars_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.is_integer && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.expr.terms())
      lhs += coeff * x[static_cast<std::size_t>(var)];
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace dsp::lp
