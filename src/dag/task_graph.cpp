#include "dag/task_graph.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "util/log.h"

namespace dsp {

void TaskGraph::add_edge(TaskIndex parent, TaskIndex child) {
  assert(!finalized_);
  assert(parent < n_ && child < n_ && parent != child);
  edges_.emplace_back(parent, child);
}

bool TaskGraph::finalize() {
  assert(!finalized_);
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // CSR children.
  child_offsets_.assign(n_ + 1, 0);
  parent_offsets_.assign(n_ + 1, 0);
  for (const auto& [p, c] : edges_) {
    ++child_offsets_[p + 1];
    ++parent_offsets_[c + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) {
    child_offsets_[i] += child_offsets_[i - 1];
    parent_offsets_[i] += parent_offsets_[i - 1];
  }
  child_data_.resize(edges_.size());
  parent_data_.resize(edges_.size());
  {
    std::vector<std::uint32_t> cpos(child_offsets_.begin(), child_offsets_.end() - 1);
    std::vector<std::uint32_t> ppos(parent_offsets_.begin(), parent_offsets_.end() - 1);
    for (const auto& [p, c] : edges_) {
      child_data_[cpos[p]++] = c;
      parent_data_[ppos[c]++] = p;
    }
  }

  // Kahn's algorithm, min-index first for determinism.
  std::vector<std::uint32_t> indegree(n_);
  for (std::size_t t = 0; t < n_; ++t)
    indegree[t] = parent_offsets_[t + 1] - parent_offsets_[t];
  std::priority_queue<TaskIndex, std::vector<TaskIndex>, std::greater<>> ready;
  for (std::size_t t = 0; t < n_; ++t)
    if (indegree[t] == 0) ready.push(static_cast<TaskIndex>(t));

  topo_.clear();
  topo_.reserve(n_);
  level_.assign(n_, 1);
  while (!ready.empty()) {
    const TaskIndex t = ready.top();
    ready.pop();
    topo_.push_back(t);
    for (TaskIndex c : children(t)) {
      level_[c] = std::max(level_[c], level_[t] + 1);
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (topo_.size() != n_) {
    DSP_WARN("TaskGraph::finalize: cycle detected (%zu of %zu tasks ordered)",
             topo_.size(), n_);
    topo_.clear();
    return false;
  }

  depth_ = 0;
  roots_.clear();
  leaves_.clear();
  for (std::size_t t = 0; t < n_; ++t) {
    depth_ = std::max(depth_, level_[t]);
    if (parents(static_cast<TaskIndex>(t)).empty())
      roots_.push_back(static_cast<TaskIndex>(t));
    if (children(static_cast<TaskIndex>(t)).empty())
      leaves_.push_back(static_cast<TaskIndex>(t));
  }
  finalized_ = true;
  return true;
}

std::span<const TaskIndex> TaskGraph::parents(TaskIndex t) const {
  assert(t < n_);
  return {parent_data_.data() + parent_offsets_[t],
          parent_data_.data() + parent_offsets_[t + 1]};
}

std::span<const TaskIndex> TaskGraph::children(TaskIndex t) const {
  assert(t < n_);
  return {child_data_.data() + child_offsets_[t],
          child_data_.data() + child_offsets_[t + 1]};
}

std::span<const TaskIndex> TaskGraph::topo_order() const {
  assert(finalized_);
  return topo_;
}

int TaskGraph::level(TaskIndex t) const {
  assert(finalized_ && t < n_);
  return level_[t];
}

std::size_t TaskGraph::descendant_count(TaskIndex t) const {
  assert(finalized_ && t < n_);
  if (descendant_count_.empty()) {
    // One BFS per task. Diamonds make descendant sets non-additive, so a
    // reverse-topological sum would over-count; explicit traversal is exact.
    descendant_count_.resize(n_);
    std::vector<std::uint32_t> stamp(n_, 0);
    std::vector<TaskIndex> stack;
    for (std::size_t s = 0; s < n_; ++s) {
      const auto mark = static_cast<std::uint32_t>(s + 1);
      std::size_t count = 0;
      stack.assign(1, static_cast<TaskIndex>(s));
      stamp[s] = mark;
      while (!stack.empty()) {
        const TaskIndex u = stack.back();
        stack.pop_back();
        for (TaskIndex c : children(u)) {
          if (stamp[c] != mark) {
            stamp[c] = mark;
            ++count;
            stack.push_back(c);
          }
        }
      }
      descendant_count_[s] = count;
    }
  }
  return descendant_count_[t];
}

std::vector<std::size_t> TaskGraph::descendants_per_level(TaskIndex t) const {
  assert(finalized_ && t < n_);
  std::vector<std::size_t> per_level;
  std::vector<std::uint8_t> seen(n_, 0);
  std::vector<TaskIndex> frontier{t};
  seen[t] = 1;
  while (!frontier.empty()) {
    std::vector<TaskIndex> next;
    for (TaskIndex u : frontier)
      for (TaskIndex c : children(u))
        if (!seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
    if (!next.empty()) per_level.push_back(next.size());
    frontier = std::move(next);
  }
  return per_level;
}

bool TaskGraph::depends_on(TaskIndex descendant, TaskIndex ancestor) const {
  assert(finalized_ && descendant < n_ && ancestor < n_);
  if (descendant == ancestor) return false;
  // Level is monotone along edges: an ancestor always has a strictly
  // smaller level, so prune early.
  if (level_[ancestor] >= level_[descendant]) return false;
  // Upward BFS from `descendant`; stamped scratch avoids per-call clears.
  thread_local std::vector<std::uint32_t> stamp;
  thread_local std::uint32_t mark = 0;
  thread_local std::vector<TaskIndex> stack;
  if (stamp.size() < n_) stamp.assign(n_, 0);
  if (++mark == 0) {  // stamp wrap: reset
    std::fill(stamp.begin(), stamp.end(), 0);
    mark = 1;
  }
  stack.assign(1, descendant);
  stamp[descendant] = mark;
  while (!stack.empty()) {
    const TaskIndex u = stack.back();
    stack.pop_back();
    for (TaskIndex p : parents(u)) {
      if (p == ancestor) return true;
      if (stamp[p] != mark && level_[p] > level_[ancestor]) {
        stamp[p] = mark;
        stack.push_back(p);
      }
    }
  }
  return false;
}

std::vector<std::vector<TaskIndex>> TaskGraph::chains(std::size_t limit) const {
  assert(finalized_);
  std::vector<std::vector<TaskIndex>> result;
  std::vector<TaskIndex> path;
  // Iterative DFS from each root, emitting root->leaf paths.
  struct Frame {
    TaskIndex node;
    std::size_t next_child;
  };
  for (TaskIndex r : roots_) {
    std::vector<Frame> stack{{r, 0}};
    path.assign(1, r);
    while (!stack.empty()) {
      if (result.size() >= limit) return result;
      auto& frame = stack.back();
      const auto kids = children(frame.node);
      if (kids.empty() && frame.next_child == 0) {
        result.push_back(path);
        frame.next_child = 1;  // mark emitted, fall through to pop
        continue;
      }
      if (frame.next_child < kids.size()) {
        const TaskIndex c = kids[frame.next_child++];
        stack.push_back({c, 0});
        path.push_back(c);
      } else {
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return result;
}

std::string Resources::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{cpu=%.2f mem=%.2f disk=%.2f bw=%.2f}", cpu,
                mem, disk, bw);
  return buf;
}

}  // namespace dsp
