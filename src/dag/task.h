// Task and resource-demand model.
//
// A job is split into tasks (paper §III); each task has a size in Millions
// of Instructions (MI) and a multi-resource demand vector (CPU cores, memory
// GB, disk MB, bandwidth MB/s) matching the paper's evaluation setup, where
// CPU/memory come from the Google trace and disk/bandwidth are the fixed
// per-task constants of §V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace dsp {

/// Job identifier, unique within a workload.
using JobId = std::uint32_t;

/// Task index within its job (the `j` of T_ij).
using TaskIndex = std::uint32_t;

inline constexpr JobId kInvalidJob = ~JobId{0};
inline constexpr TaskIndex kInvalidTask = ~TaskIndex{0};

/// Multi-resource vector: the four dimensions the paper's evaluation uses.
struct Resources {
  double cpu = 0.0;   ///< CPU cores (fractional allowed).
  double mem = 0.0;   ///< Memory in GB.
  double disk = 0.0;  ///< Disk in MB.
  double bw = 0.0;    ///< Network bandwidth in MB/s.

  /// True when every component of `demand` fits within this vector.
  bool fits(const Resources& demand) const {
    return demand.cpu <= cpu + 1e-9 && demand.mem <= mem + 1e-9 &&
           demand.disk <= disk + 1e-9 && demand.bw <= bw + 1e-9;
  }

  Resources& operator+=(const Resources& o) {
    cpu += o.cpu;
    mem += o.mem;
    disk += o.disk;
    bw += o.bw;
    return *this;
  }

  Resources& operator-=(const Resources& o) {
    cpu -= o.cpu;
    mem -= o.mem;
    disk -= o.disk;
    bw -= o.bw;
    return *this;
  }

  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) { return a -= b; }

  /// Dot product — the core of Tetris' alignment score.
  double dot(const Resources& o) const {
    return cpu * o.cpu + mem * o.mem + disk * o.disk + bw * o.bw;
  }

  /// Component-wise maximum, used for capacity normalization.
  static Resources max_of(const Resources& a, const Resources& b) {
    return Resources{a.cpu > b.cpu ? a.cpu : b.cpu, a.mem > b.mem ? a.mem : b.mem,
                     a.disk > b.disk ? a.disk : b.disk, a.bw > b.bw ? a.bw : b.bw};
  }

  std::string to_string() const;
};

/// One task T_ij of a job.
///
/// Dependency structure lives in the owning TaskGraph; the task records only
/// its intrinsic properties plus the level/deadline attributes derived once
/// when the job is finalized.
struct Task {
  TaskIndex index = kInvalidTask;  ///< Position within the job.
  double size_mi = 0.0;            ///< Size l_ij in Millions of Instructions.
  Resources demand;                ///< Peak resource demand while running.

  // Data locality (paper §VI future work). When `input_nodes` is
  // non-empty, the task's input data of `input_mb` megabytes lives on
  // those cluster nodes; running anywhere else first fetches the data over
  // the network (EngineParams::remote_read_bw_mbps).
  std::vector<int> input_nodes;
  double input_mb = 0.0;

  // Derived at job finalization:
  int level = 0;             ///< 1-based DAG level (roots = 1).
  SimTime deadline = kNoTime;  ///< Per-task deadline t^d_ij (absolute).

  /// True when the task's input data is resident on `node` (tasks without
  /// input constraints are local everywhere).
  bool input_local_to(int node) const {
    if (input_nodes.empty()) return true;
    for (int n : input_nodes)
      if (n == node) return true;
    return false;
  }
};

}  // namespace dsp
