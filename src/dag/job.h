// Job model: a deadline-constrained DAG of tasks.
#pragma once

#include <string>
#include <vector>

#include "dag/task.h"
#include "dag/task_graph.h"
#include "util/time.h"

namespace dsp {

/// Size class from the paper's workload recipe (§V): a large job has 2000
/// tasks, medium 1000, small several hundred (scaled in our benches).
enum class JobSize { kSmall, kMedium, kLarge };

/// Natjam's two-tier job taxonomy; other policies ignore it.
enum class JobTier { kProduction, kResearch };

const char* to_string(JobSize s);
const char* to_string(JobTier t);

/// A job J_i: tasks + dependency DAG + arrival/deadline.
class Job {
 public:
  Job() = default;
  Job(JobId id, std::size_t task_count)
      : id_(id), tasks_(task_count), graph_(task_count) {
    for (std::size_t j = 0; j < task_count; ++j)
      tasks_[j].index = static_cast<TaskIndex>(j);
  }

  JobId id() const { return id_; }
  void set_id(JobId id) { id_ = id; }

  SimTime arrival() const { return arrival_; }
  void set_arrival(SimTime t) { arrival_ = t; }

  /// Absolute completion deadline t^d_i.
  SimTime deadline() const { return deadline_; }
  void set_deadline(SimTime t) { deadline_ = t; }

  JobSize size_class() const { return size_class_; }
  void set_size_class(JobSize s) { size_class_ = s; }

  JobTier tier() const { return tier_; }
  void set_tier(JobTier t) { tier_ = t; }

  std::size_t task_count() const { return tasks_.size(); }
  Task& task(TaskIndex j) { return tasks_.at(j); }
  const Task& task(TaskIndex j) const { return tasks_.at(j); }
  const std::vector<Task>& tasks() const { return tasks_; }

  TaskGraph& graph() { return graph_; }
  const TaskGraph& graph() const { return graph_; }

  /// Adds dependency parent -> child (child waits for parent).
  void add_dependency(TaskIndex parent, TaskIndex child) {
    graph_.add_edge(parent, child);
  }

  /// Finalizes the DAG, assigns per-task levels and computes per-task
  /// deadlines with the paper's per-level rule:
  ///   t^d(level l) = t^d_i - sum_{k=l+1..L} max_j { t_jk }
  /// where execution times are estimated at `reference_rate` MIPS.
  /// Returns false on a cyclic dependency graph.
  bool finalize(double reference_rate);

  /// True once finalize() succeeded.
  bool finalized() const { return graph_.finalized(); }

  /// Total work in MI across all tasks.
  double total_work_mi() const;

  /// Critical-path execution time at `rate` MIPS: the longest dependency
  /// chain measured in summed task durations. A lower bound on the job's
  /// completion time on any cluster whose fastest node runs at `rate`.
  SimTime critical_path_time(double rate) const;

 private:
  JobId id_ = kInvalidJob;
  SimTime arrival_ = 0;
  SimTime deadline_ = kMaxTime;
  JobSize size_class_ = JobSize::kSmall;
  JobTier tier_ = JobTier::kProduction;
  std::vector<Task> tasks_;
  TaskGraph graph_;
};

/// A batch of jobs submitted in one scheduling period.
using JobSet = std::vector<Job>;

/// Sum of task counts across a job set.
std::size_t total_tasks(const JobSet& jobs);

}  // namespace dsp
