#include "dag/job.h"

#include <algorithm>
#include <cassert>

namespace dsp {

const char* to_string(JobSize s) {
  switch (s) {
    case JobSize::kSmall: return "small";
    case JobSize::kMedium: return "medium";
    case JobSize::kLarge: return "large";
  }
  return "?";
}

const char* to_string(JobTier t) {
  switch (t) {
    case JobTier::kProduction: return "production";
    case JobTier::kResearch: return "research";
  }
  return "?";
}

bool Job::finalize(double reference_rate) {
  if (reference_rate <= 0.0) return false;
  if (!graph_.finalized() && !graph_.finalize()) return false;

  const int depth = graph_.depth();
  for (auto& t : tasks_) t.level = graph_.level(t.index);

  // Per-level worst-case execution time at the reference rate.
  std::vector<SimTime> max_exec(static_cast<std::size_t>(depth) + 1, 0);
  for (const auto& t : tasks_) {
    const SimTime exec = from_seconds(t.size_mi / reference_rate);
    auto& slot = max_exec[static_cast<std::size_t>(t.level)];
    slot = std::max(slot, exec);
  }

  // t^d(level l) = job deadline - sum of per-level maxima below l. The
  // kMaxTime "no deadline" sentinel propagates up unchanged instead of
  // being dragged below INT64_MAX by the subtraction.
  std::vector<SimTime> level_deadline(static_cast<std::size_t>(depth) + 1, deadline_);
  for (int l = depth - 1; l >= 1; --l) {
    const SimTime above = level_deadline[static_cast<std::size_t>(l) + 1];
    level_deadline[static_cast<std::size_t>(l)] =
        above == kMaxTime ? kMaxTime
                          : above - max_exec[static_cast<std::size_t>(l) + 1];
  }

  for (auto& t : tasks_)
    t.deadline = level_deadline[static_cast<std::size_t>(t.level)];
  return true;
}

double Job::total_work_mi() const {
  double total = 0.0;
  for (const auto& t : tasks_) total += t.size_mi;
  return total;
}

SimTime Job::critical_path_time(double rate) const {
  assert(graph_.finalized() && rate > 0.0);
  // Longest path in summed execution time, one pass over topo order.
  std::vector<SimTime> finish(tasks_.size(), 0);
  SimTime best = 0;
  for (TaskIndex t : graph_.topo_order()) {
    SimTime start = 0;
    for (TaskIndex p : graph_.parents(t)) start = std::max(start, finish[p]);
    finish[t] = start + from_seconds(tasks_[t].size_mi / rate);
    best = std::max(best, finish[t]);
  }
  return best;
}

std::size_t total_tasks(const JobSet& jobs) {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.task_count();
  return n;
}

}  // namespace dsp
