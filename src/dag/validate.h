// Structural validation of jobs and DAGs.
//
// The workload generator and the CSV trace reader both funnel jobs through
// validate_job() so malformed inputs fail loudly before reaching the
// simulator.
#pragma once

#include <string>
#include <vector>

#include "dag/job.h"

namespace dsp {

/// Constraints the paper imposes on generated DAGs (§V): depth at most 5
/// levels, at most 15 direct dependents per task. Zero disables a check.
struct DagLimits {
  int max_depth = 0;
  std::size_t max_fanout = 0;
};

/// Validates a finalized job; returns a list of human-readable problems
/// (empty = valid). Checks: finalized acyclic graph, positive task sizes,
/// non-negative demands, deadline after arrival, monotone per-level task
/// deadlines, and the optional DAG shape limits.
std::vector<std::string> validate_job(const Job& job, const DagLimits& limits = {});

/// Validates every job in a set; problems are prefixed with the job id.
std::vector<std::string> validate_jobs(const JobSet& jobs,
                                       const DagLimits& limits = {});

}  // namespace dsp
