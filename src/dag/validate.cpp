#include "dag/validate.h"

#include <cstdarg>
#include <cstdio>

namespace dsp {
namespace {

std::string problem(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string problem(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::vector<std::string> validate_job(const Job& job, const DagLimits& limits) {
  std::vector<std::string> problems;
  if (!job.finalized()) {
    problems.push_back("job not finalized (or dependency graph is cyclic)");
    return problems;
  }
  if (job.task_count() == 0) problems.push_back("job has no tasks");
  if (job.deadline() != kMaxTime && job.deadline() <= job.arrival())
    problems.push_back(problem("deadline %lld <= arrival %lld",
                               static_cast<long long>(job.deadline()),
                               static_cast<long long>(job.arrival())));

  const TaskGraph& g = job.graph();
  for (TaskIndex t = 0; t < job.task_count(); ++t) {
    const Task& task = job.task(t);
    if (task.size_mi <= 0.0)
      problems.push_back(problem("task %u has non-positive size %.3f", t, task.size_mi));
    if (task.demand.cpu < 0 || task.demand.mem < 0 || task.demand.disk < 0 ||
        task.demand.bw < 0)
      problems.push_back(problem("task %u has negative resource demand", t));
    if (limits.max_fanout && g.children(t).size() > limits.max_fanout)
      problems.push_back(problem("task %u has fan-out %zu > limit %zu", t,
                                 g.children(t).size(), limits.max_fanout));
    // Children must not have earlier deadlines than parents: the per-level
    // rule guarantees this when levels are consistent.
    for (TaskIndex c : g.children(t)) {
      if (job.task(c).deadline < task.deadline)
        problems.push_back(
            problem("task %u deadline precedes its parent %u's deadline", c, t));
    }
  }
  if (limits.max_depth && g.depth() > limits.max_depth)
    problems.push_back(
        problem("DAG depth %d > limit %d", g.depth(), limits.max_depth));
  return problems;
}

std::vector<std::string> validate_jobs(const JobSet& jobs, const DagLimits& limits) {
  std::vector<std::string> all;
  for (const auto& job : jobs) {
    for (auto& p : validate_job(job, limits)) {
      all.push_back(problem("job %u: %s", job.id(), p.c_str()));
    }
  }
  return all;
}

}  // namespace dsp
