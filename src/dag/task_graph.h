// Dependency DAG over the tasks of one job.
//
// Edges point parent -> child: the child cannot start until every parent has
// finished (paper §III's chain model generalized to the DAG of Fig. 1/3).
// The graph is built incrementally, then `finalize()` computes the CSR
// adjacency, a topological order and 1-based levels; most queries require a
// finalized graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/task.h"

namespace dsp {

/// A directed acyclic dependency graph over task indices [0, size).
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Creates a graph over `n` tasks with no edges.
  explicit TaskGraph(std::size_t n) : n_(n) {}

  /// Number of tasks.
  std::size_t size() const { return n_; }

  /// Number of dependency edges.
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds edge parent -> child. Must be called before finalize().
  /// Duplicate edges are tolerated and deduplicated by finalize().
  void add_edge(TaskIndex parent, TaskIndex child);

  /// Builds adjacency, topological order and levels.
  /// Returns false (leaving the graph unfinalized) if a cycle exists.
  bool finalize();

  /// True once finalize() succeeded.
  bool finalized() const { return finalized_; }

  /// Direct parents of `t` (tasks it depends on).
  std::span<const TaskIndex> parents(TaskIndex t) const;

  /// Direct children of `t` (tasks depending on it).
  std::span<const TaskIndex> children(TaskIndex t) const;

  /// A topological order (parents before children). Deterministic:
  /// Kahn's algorithm with smallest-index-first tie breaking.
  std::span<const TaskIndex> topo_order() const;

  /// 1-based level of `t`: roots are level 1; otherwise
  /// 1 + max(level of parents). This is the level index of §IV-B's
  /// per-level deadline computation.
  int level(TaskIndex t) const;

  /// Total number of levels L (0 for an empty graph).
  int depth() const { return depth_; }

  /// Tasks with no parents.
  std::span<const TaskIndex> roots() const { return roots_; }

  /// Tasks with no children.
  std::span<const TaskIndex> leaves() const { return leaves_; }

  /// Number of transitive descendants of `t` (its full dependent set).
  /// O(V+E) per call; cached after the first full sweep.
  std::size_t descendant_count(TaskIndex t) const;

  /// Number of descendants of `t` at each relative depth below it:
  /// result[0] = direct children, result[1] = grandchildren, ...
  /// (the "dependent tasks in each level" of §IV-A, Fig. 3).
  std::vector<std::size_t> descendants_per_level(TaskIndex t) const;

  /// True if `ancestor` is a (transitive) ancestor of `descendant`,
  /// i.e. `descendant` depends on `ancestor`. Condition C2 of Algorithm 1
  /// queries this between a waiting and a running task of the same job.
  bool depends_on(TaskIndex descendant, TaskIndex ancestor) const;

  /// Enumerates all maximal root-to-leaf chains (paper's C^q_i sets).
  /// Exponential in the worst case; callers guard with `limit` — once more
  /// than `limit` chains exist, enumeration stops and the first `limit`
  /// are returned.
  std::vector<std::vector<TaskIndex>> chains(std::size_t limit = 4096) const;

 private:
  void build_reachability_cache() const;

  std::size_t n_ = 0;
  bool finalized_ = false;
  std::vector<std::pair<TaskIndex, TaskIndex>> edges_;  // staged until finalize

  // CSR adjacency (valid after finalize).
  std::vector<std::uint32_t> child_offsets_, parent_offsets_;
  std::vector<TaskIndex> child_data_, parent_data_;
  std::vector<TaskIndex> topo_;
  std::vector<int> level_;
  std::vector<TaskIndex> roots_, leaves_;
  int depth_ = 0;

  // Lazy caches.
  mutable std::vector<std::size_t> descendant_count_;  // empty until computed
};

}  // namespace dsp
