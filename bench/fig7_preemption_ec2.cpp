// Figure 7: the Fig. 6 preemption comparison repeated on Amazon EC2
// (30 nodes). The paper's cross-testbed observations: waiting times are
// longer and preemptions more frequent than on the (larger, faster) real
// cluster, with the same method ordering.
#define DSP_FIG6_NO_MAIN
#include "fig6_preemption_cluster.cpp"

int main(int argc, char** argv) {
  const auto cli = dsp::bench::BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  dsp::bench::run_preemption_figure("Fig 7", "fig7_preemption_ec2",
                                    dsp::ClusterProfile::kEc2, cli);
  return 0;
}
