// google-benchmark micro-benchmarks for the hot paths: DAG analytics,
// priority computation, simplex pivoting, workload generation, and raw
// simulator event throughput.
#include <benchmark/benchmark.h>

#include "core/dsp_scheduler.h"
#include "core/dsp_system.h"
#include "core/priority.h"
#include "lp/simplex.h"
#include "sim/engine.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace dsp {
namespace {

Job make_bench_job(std::size_t tasks, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.task_scale = static_cast<double>(tasks) / 1000.0;
  WorkloadGenerator gen(cfg, seed);
  return gen.make_job(0, JobSize::kMedium, 0);
}

// ---------------------------------------------------------------------

void BM_TaskGraphFinalize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    TaskGraph g(n);
    for (std::size_t e = 0; e < n * 2; ++e) {
      const auto a = static_cast<TaskIndex>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      const auto b = static_cast<TaskIndex>(
          rng.uniform_int(a + 1, static_cast<std::int64_t>(n) - 1));
      g.add_edge(a, b);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.finalize());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TaskGraphFinalize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DependencyWeights(benchmark::State& state) {
  const Job job = make_bench_job(static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state)
    benchmark::DoNotOptimize(DspScheduler::dependency_weights(job, 0.5));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(job.task_count()));
}
BENCHMARK(BM_DependencyWeights)->Arg(100)->Arg(1000);

void BM_DependsOnQuery(benchmark::State& state) {
  const Job job = make_bench_job(1000, 17);
  const TaskGraph& g = job.graph();
  Rng rng(19);
  for (auto _ : state) {
    const auto a = static_cast<TaskIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(job.task_count()) - 1));
    const auto b = static_cast<TaskIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(job.task_count()) - 1));
    benchmark::DoNotOptimize(a == b ? false : g.depends_on(a, b));
  }
}
BENCHMARK(BM_DependsOnQuery);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig cfg;
    cfg.job_count = static_cast<std::size_t>(state.range(0));
    cfg.task_scale = 0.05;
    WorkloadGenerator gen(cfg, 29);
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(10)->Arg(50);

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  lp::Model m;
  for (int v = 0; v < n; ++v) m.add_var(0.0, 10.0, rng.uniform(-5.0, 5.0));
  for (int c = 0; c < n; ++c) {
    lp::LinearExpr e;
    for (int v = 0; v < n; ++v) e.add(v, rng.uniform(0.0, 3.0));
    m.add_constraint(std::move(e), lp::Sense::kLe, rng.uniform(5.0, 20.0));
  }
  lp::SimplexSolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(m));
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(30)->Arg(60);

void BM_PriorityComputeJob(benchmark::State& state) {
  // Full engine context so waiting/remaining queries are realistic.
  JobSet jobs;
  jobs.push_back(make_bench_job(static_cast<std::size_t>(state.range(0)), 37));
  DspScheduler sched;
  EngineParams ep;
  ep.period = kMaxTime / 4;  // never reschedule
  ep.epoch = kMaxTime / 4;
  Engine engine(ClusterSpec::ec2(4), std::move(jobs), sched, nullptr, ep);
  // Schedule manually by invoking the period logic through run? Instead,
  // compute priorities on the unstarted engine: states are kUnscheduled,
  // which exercises the same recursion with zero-cost leaves.
  DspParams params;
  DependencyPriority priority(params);
  std::vector<double> out(engine.total_task_count());
  for (auto _ : state) {
    priority.compute_job(engine, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.total_task_count()));
}
BENCHMARK(BM_PriorityComputeJob)->Arg(100)->Arg(1000);

void BM_EndToEndSimulation(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig cfg;
    cfg.job_count = static_cast<std::size_t>(state.range(0));
    cfg.task_scale = 0.02;
    WorkloadGenerator gen(cfg, 41);
    DspSystem dsp;
    EngineParams ep;
    ep.period = 5 * kMinute;
    ep.epoch = 30 * kSecond;
    benchmark::DoNotOptimize(dsp.run(ClusterSpec::ec2(10), gen.generate(), ep));
  }
}
BENCHMARK(BM_EndToEndSimulation)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsp

BENCHMARK_MAIN();
