// google-benchmark micro-benchmarks for the hot paths: DAG analytics,
// priority computation, simplex pivoting, workload generation, and raw
// simulator event throughput.
//
// Supports `--json <path>` (in addition to the standard benchmark
// flags): per-benchmark real times are captured and written through
// BenchJsonReport as scalars named `<bench>_<args>_ns`, which is how the
// committed BENCH_hotpath.json baseline is produced (same filter as the
// ci.sh bench-diff stage): micro_bench --json bench/BENCH_hotpath.json
// --benchmark_filter='BM_Simplex|BM_Milp|BM_PriorityComputeJob|
// BM_ComputeAll|BM_EngineRun|BM_SweepGrid' (filter on one line).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/dsp_scheduler.h"
#include "core/ilp_model.h"
#include "lp/milp.h"
#include "core/dsp_system.h"
#include "core/priority.h"
#include "lp/simplex.h"
#include "obs/events.h"
#include "sim/engine.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace dsp {
namespace {

Job make_bench_job(std::size_t tasks, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.task_scale = static_cast<double>(tasks) / 1000.0;
  WorkloadGenerator gen(cfg, seed);
  return gen.make_job(0, JobSize::kMedium, 0);
}

// ---------------------------------------------------------------------

void BM_TaskGraphFinalize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    TaskGraph g(n);
    for (std::size_t e = 0; e < n * 2; ++e) {
      const auto a = static_cast<TaskIndex>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      const auto b = static_cast<TaskIndex>(
          rng.uniform_int(a + 1, static_cast<std::int64_t>(n) - 1));
      g.add_edge(a, b);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.finalize());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TaskGraphFinalize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DependencyWeights(benchmark::State& state) {
  const Job job = make_bench_job(static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state)
    benchmark::DoNotOptimize(DspScheduler::dependency_weights(job, 0.5));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(job.task_count()));
}
BENCHMARK(BM_DependencyWeights)->Arg(100)->Arg(1000);

void BM_DependsOnQuery(benchmark::State& state) {
  const Job job = make_bench_job(1000, 17);
  const TaskGraph& g = job.graph();
  Rng rng(19);
  for (auto _ : state) {
    const auto a = static_cast<TaskIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(job.task_count()) - 1));
    const auto b = static_cast<TaskIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(job.task_count()) - 1));
    benchmark::DoNotOptimize(a == b ? false : g.depends_on(a, b));
  }
}
BENCHMARK(BM_DependsOnQuery);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig cfg;
    cfg.job_count = static_cast<std::size_t>(state.range(0));
    cfg.task_scale = 0.05;
    WorkloadGenerator gen(cfg, 29);
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(10)->Arg(50);

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  lp::Model m;
  for (int v = 0; v < n; ++v) m.add_var(0.0, 10.0, rng.uniform(-5.0, 5.0));
  for (int c = 0; c < n; ++c) {
    lp::LinearExpr e;
    for (int v = 0; v < n; ++v) e.add(v, rng.uniform(0.0, 3.0));
    m.add_constraint(std::move(e), lp::Sense::kLe, rng.uniform(5.0, 20.0));
  }
  lp::SimplexSolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(m));
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(30)->Arg(60);

void BM_SimplexSolveFlat(benchmark::State& state) {
  // Sparse model (~25% density) — the shape the flat tableau's
  // zero-coefficient skip and candidate-list pricing are built for.
  const int n = static_cast<int>(state.range(0));
  Rng rng(43);
  lp::Model m;
  for (int v = 0; v < n; ++v) m.add_var(0.0, 10.0, rng.uniform(-5.0, 5.0));
  for (int c = 0; c < n; ++c) {
    lp::LinearExpr e;
    e.add(c, rng.uniform(0.5, 3.0));  // anchor: no empty rows
    for (int v = 0; v < n; ++v)
      if (v != c && rng.uniform(0.0, 1.0) < 0.25)
        e.add(v, rng.uniform(0.5, 3.0));
    m.add_constraint(std::move(e), lp::Sense::kLe, rng.uniform(5.0, 20.0));
  }
  lp::SimplexSolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(m));
}
BENCHMARK(BM_SimplexSolveFlat)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void BM_SimplexWarmRestart(benchmark::State& state) {
  // The branch-and-bound access pattern in isolation: solve once cold,
  // then repeatedly tighten one bound and re-solve from the stored
  // optimal basis (dual repair instead of Phase I + II from scratch).
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  lp::Model m;
  for (int v = 0; v < n; ++v) m.add_var(0.0, 10.0, rng.uniform(-5.0, 5.0));
  for (int c = 0; c < n; ++c) {
    lp::LinearExpr e;
    for (int v = 0; v < n; ++v) e.add(v, rng.uniform(0.0, 3.0));
    m.add_constraint(std::move(e), lp::Sense::kLe, rng.uniform(5.0, 20.0));
  }
  lp::BoundedSimplex bs(m, {});
  lp::Basis base;
  const lp::Solution cold = bs.solve(nullptr, &base);
  // Tighten past the optimal value of the first nonzero variable so the
  // warm solve has actual repair work.
  std::size_t var = 0;
  for (std::size_t v = 0; v < cold.x.size(); ++v)
    if (cold.x[v] > 0.5) var = v;
  const double cut = cold.x[var] * 0.5;
  for (auto _ : state) {
    lp::Basis warm = base;
    bs.set_var_bounds(static_cast<lp::VarId>(var), 0.0, cut);
    benchmark::DoNotOptimize(bs.solve(&warm, nullptr));
    bs.reset_bounds();
  }
}
BENCHMARK(BM_SimplexWarmRestart)->Arg(30)->Arg(60);

void BM_MilpSolve(benchmark::State& state) {
  // Full branch & bound over the paper's §III model on an instance whose
  // relaxation is fractional. Arg toggles warm starting (child nodes from
  // the parent basis, the root from the previous solve): 0 = everything
  // cold, 1 = warm. Serial so the comparison isolates the basis reuse.
  IlpProblem p;
  p.machine_rates = {1.0, 1.4};
  p.tasks.resize(5);
  p.tasks[0].size_mi = 4.0;
  p.tasks[1].size_mi = 1.0;
  p.tasks[1].parents = {0};
  p.tasks[2].size_mi = 3.0;
  p.tasks[2].parents = {1};
  p.tasks[3].size_mi = 5.0;
  p.tasks[3].parents = {2};
  p.tasks[4].size_mi = 2.0;
  const lp::Model m = build_ilp_model(p, /*enforce_deadlines=*/true);
  lp::MilpSolver::Options o;
  o.warm_start = state.range(0) != 0;
  o.threads = 1;
  lp::MilpSolver solver(o);
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(m));
  state.SetItemsProcessed(state.iterations() * solver.last_nodes());
}
BENCHMARK(BM_MilpSolve)->Arg(0)->Arg(1);

void BM_PriorityComputeJob(benchmark::State& state) {
  // Full engine context so waiting/remaining queries are realistic.
  JobSet jobs;
  jobs.push_back(make_bench_job(static_cast<std::size_t>(state.range(0)), 37));
  DspScheduler sched;
  EngineParams ep;
  ep.period = kMaxTime / 4;  // never reschedule
  ep.epoch = kMaxTime / 4;
  Engine engine(ClusterSpec::ec2(4), std::move(jobs), sched, nullptr, ep);
  // Schedule manually by invoking the period logic through run? Instead,
  // compute priorities on the unstarted engine: states are kUnscheduled,
  // which exercises the same recursion with zero-cost leaves.
  DspParams params;
  DependencyPriority priority(params);
  std::vector<double> out(engine.total_task_count());
  for (auto _ : state) {
    priority.compute_job(engine, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.total_task_count()));
}
BENCHMARK(BM_PriorityComputeJob)->Arg(100)->Arg(1000);

/// Runs the benchmark loop against a live mid-run engine: a preemption
/// policy that, on one chosen epoch, times repeated compute_all calls.
/// cold=true invalidates the incremental cache before every call (full
/// recompute); cold=false leaves all jobs clean, timing the incremental
/// skip path a second same-epoch call takes.
class ComputeAllBenchPolicy : public PreemptionPolicy {
 public:
  ComputeAllBenchPolicy(benchmark::State& state, bool cold)
      : state_(state), cold_(cold), priority_(params_) {}
  const char* name() const override { return "ComputeAllBench"; }

  void on_epoch(Engine& engine) override {
    if (++epoch_ != 5) return;  // mid-run: queues and running sets are live
    std::vector<double> out;
    const auto range = priority_.compute_all(engine, out);  // prime caches
    for (auto _ : state_) {
      if (cold_) priority_.invalidate();
      benchmark::DoNotOptimize(priority_.compute_all(engine, out));
    }
    state_.SetItemsProcessed(state_.iterations() *
                             static_cast<std::int64_t>(range.live_tasks));
  }

 private:
  benchmark::State& state_;
  const bool cold_;
  DspParams params_;
  DependencyPriority priority_;
  int epoch_ = 0;
};

void compute_all_bench(benchmark::State& state, bool cold) {
  WorkloadConfig cfg;
  cfg.job_count = static_cast<std::size_t>(state.range(0));
  cfg.task_scale = 0.02;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 50.0;
  const JobSet jobs = WorkloadGenerator(cfg, 47).generate();
  DspScheduler sched;
  ComputeAllBenchPolicy policy(state, cold);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(ClusterSpec::ec2(6), jobs, sched, &policy, ep);
  engine.run();
}

void BM_ComputeAllIncremental(benchmark::State& state) {
  compute_all_bench(state, /*cold=*/false);
}
BENCHMARK(BM_ComputeAllIncremental)->Arg(20)->Arg(60);

void BM_ComputeAllFullRecompute(benchmark::State& state) {
  compute_all_bench(state, /*cold=*/true);
}
BENCHMARK(BM_ComputeAllFullRecompute)->Arg(20)->Arg(60);

void BM_EventLogEmit(benchmark::State& state) {
  // Flight-recorder emit cost: range(0)==0 rings only, ==1 rings plus a
  // JSONL sink (to the null device, so the cost measured is formatting +
  // buffered fwrite, not disk). The acceptance bar is that recorder-on
  // adds <5% to a fig8-style end-to-end run; at ~10^5 events per run a
  // sub-microsecond emit keeps it far below that.
  obs::EventLog log(1 << 12);
  if (state.range(0) != 0 && !log.open_sink("/dev/null")) {
    state.SkipWithError("cannot open /dev/null sink");
    return;
  }
  obs::Event e{.kind = obs::EventKind::kTaskDispatch,
               .job = 3,
               .task = 17,
               .node = 2,
               .a = 1.5};
  SimTime t = 0;
  for (auto _ : state) {
    e.time = ++t;
    log.emit(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLogEmit)->Arg(0)->Arg(1);

void BM_EndToEndSimulation(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig cfg;
    cfg.job_count = static_cast<std::size_t>(state.range(0));
    cfg.task_scale = 0.02;
    WorkloadGenerator gen(cfg, 41);
    DspSystem dsp;
    EngineParams ep;
    ep.period = 5 * kMinute;
    ep.epoch = 30 * kSecond;
    benchmark::DoNotOptimize(dsp.run(ClusterSpec::ec2(10), gen.generate(), ep));
  }
}
BENCHMARK(BM_EndToEndSimulation)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_EngineRun(benchmark::State& state) {
  // One scenario-layer run (the cost of a single dsp_sweep grid cell):
  // spec -> cluster + workload + policy pair -> Engine::run.
  for (auto _ : state) {
    ScenarioSpec spec;
    spec.name = "bm-engine-run";
    spec.cluster.profile = ClusterProfile::kEc2;
    spec.workload.job_count = static_cast<std::size_t>(state.range(0));
    spec.workload.task_scale = 0.02;
    spec.seed = 41;
    benchmark::DoNotOptimize(run_standard_scenario(spec));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineRun)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_SweepGrid(benchmark::State& state) {
  // A dsp_sweep-shaped grid fanned over the thread pool; Arg = workers.
  // The 4-worker point against the 1-worker point is the scaling check.
  std::vector<ScenarioSpec> grid;
  for (PolicyKind policy : {PolicyKind::kDsp, PolicyKind::kDspNoPp,
                            PolicyKind::kAmoeba, PolicyKind::kNatjam,
                            PolicyKind::kSrpt, PolicyKind::kNone}) {
    ScenarioSpec spec;
    spec.name = std::string("bm-sweep-") + to_string(policy);
    spec.cluster.profile = ClusterProfile::kEc2;
    spec.workload.job_count = 20;
    spec.workload.task_scale = 0.02;
    spec.policy = policy;
    spec.seed = 41;
    grid.push_back(std::move(spec));
  }
  GridOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(run_standard_grid(grid, options));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_SweepGrid)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// --json support
// ---------------------------------------------------------------------

/// Console reporter that also captures (name, adjusted real time) per
/// completed run for the JSON baseline.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // GetAdjustedRealTime is in the run's display unit; normalize to ns.
      const double ns = run.GetAdjustedRealTime() * 1e9 /
                        benchmark::GetTimeUnitMultiplier(run.time_unit);
      captured.emplace_back(run.benchmark_name(), ns);
    }
    ConsoleReporter::ReportRuns(report);
  }
  std::vector<std::pair<std::string, double>> captured;
};

/// "BM_SimplexSolve/60" -> "BM_SimplexSolve_60": scalar keys must stay
/// addressable by json_check's dotted paths.
std::string scalar_key(std::string name) {
  for (char& c : name)
    if (c == '/' || c == '.' || c == ':') c = '_';
  return name + "_ns";
}

}  // namespace
}  // namespace dsp

int main(int argc, char** argv) {
  // Extract --json <path> before benchmark::Initialize sees (and rejects)
  // it; everything else passes through to the library.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "micro_bench: --json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());

  dsp::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    dsp::bench::BenchJsonReport report("micro", dsp::bench::BenchEnv{});
    for (const auto& [name, ns] : reporter.captured)
      report.add_scalar(dsp::scalar_key(name), ns);
    if (!report.write(json_path)) return 1;
  }
  return 0;
}
