// Ablation: exact ILP vs relax-and-round vs the list-scheduling heuristic.
//
// On instances small enough for branch & bound, compares schedule quality
// (makespan) and solve time of the three DSP scheduling modes — the
// cross-validation behind DESIGN.md's claim that the heuristic stands in
// for CPLEX at cluster scale.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/ilp_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

dsp::IlpProblem random_instance(dsp::Rng& rng, int tasks, int machines) {
  dsp::IlpProblem p;
  for (int m = 0; m < machines; ++m)
    p.machine_rates.push_back(rng.uniform(800.0, 2000.0));
  for (int t = 0; t < tasks; ++t) {
    dsp::IlpTask task;
    task.size_mi = rng.uniform(500.0, 4000.0);
    if (t > 0 && rng.chance(0.6))
      task.parents.push_back(static_cast<int>(rng.uniform_int(0, t - 1)));
    p.tasks.push_back(std::move(task));
  }
  return p;
}

double heuristic_makespan(const dsp::IlpProblem& p) {
  // Greedy EFT in topological order — the core of DspScheduler's
  // heuristic, applied directly to the instance.
  const std::size_t T = p.tasks.size();
  std::vector<double> machine_free(p.machine_rates.size(), 0.0);
  std::vector<double> finish(T, 0.0);
  double makespan = 0.0;
  for (std::size_t t = 0; t < T; ++t) {  // indices are topological by build
    double dep = 0.0;
    for (int parent : p.tasks[t].parents)
      dep = std::max(dep, finish[static_cast<std::size_t>(parent)]);
    double best = 1e300;
    std::size_t best_m = 0;
    for (std::size_t m = 0; m < p.machine_rates.size(); ++m) {
      const double eft = std::max(dep, machine_free[m]) +
                         p.tasks[t].size_mi / p.machine_rates[m];
      if (eft < best) {
        best = eft;
        best_m = m;
      }
    }
    machine_free[best_m] = best;
    finish[t] = best;
    makespan = std::max(makespan, best);
  }
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: exact ILP vs relax-round vs heuristic", env);
  BenchJsonReport report("ablation_ilp", env);

  Table table("schedule quality + solve time on random small instances");
  table.set_header({"instance", "exact(s)", "relax-round(s)", "heuristic(s)",
                    "rr/exact", "heur/exact", "exact-ms", "rr-ms"});

  Rng rng(env.seed);
  RunningStat rr_ratio, heur_ratio;
  for (int i = 0; i < 8; ++i) {
    const int tasks = static_cast<int>(rng.uniform_int(4, 6));
    const int machines = static_cast<int>(rng.uniform_int(2, 3));
    const IlpProblem p = random_instance(rng, tasks, machines);

    const auto t0 = std::chrono::steady_clock::now();
    const IlpScheduleResult exact = solve_ilp_schedule(p);
    const auto t1 = std::chrono::steady_clock::now();
    const IlpScheduleResult rr = solve_relax_round(p);
    const auto t2 = std::chrono::steady_clock::now();
    const double heur = heuristic_makespan(p);

    if (!exact.ok() || !rr.ok()) continue;
    const double exact_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double rr_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    rr_ratio.add(rr.makespan_s / exact.makespan_s);
    heur_ratio.add(heur / exact.makespan_s);
    table.add_row({std::to_string(tasks) + "t/" + std::to_string(machines) + "m",
                   fmt(exact.makespan_s, 3), fmt(rr.makespan_s, 3),
                   fmt(heur, 3), fmt(rr.makespan_s / exact.makespan_s, 3),
                   fmt(heur / exact.makespan_s, 3), fmt(exact_ms, 1),
                   fmt(rr_ms, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nmean ratio vs exact: relax-round %.3f, heuristic %.3f\n",
              rr_ratio.mean(), heur_ratio.mean());
  report.add_scalar("rr_over_exact_mean", rr_ratio.mean());
  report.add_scalar("heur_over_exact_mean", heur_ratio.mean());
  report.write_if_requested(cli);
  return 0;
}
