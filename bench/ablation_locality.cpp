// Ablation: data locality (§VI future work).
//
// Root tasks read replicated input datasets; running off the data nodes
// costs a remote fetch. Sweeps the input-pinned fraction and compares
// locality-aware DSP placement against locality-blind placement.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: data locality", env);
  BenchJsonReport report("ablation_locality", env);

  const std::size_t jobs_n = 200;
  const ScenarioSpec base = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
  const std::size_t cluster_nodes = make_cluster(base.cluster).size();

  Table table("locality-aware vs blind placement (200 jobs, EC2 profile)");
  table.set_header({"pinned-fraction", "variant", "hit-rate", "makespan(s)",
                    "throughput(t/ms)", "overhead(s)"});

  for (double fraction : {0.0, 0.4, 0.8}) {
    for (bool aware : {true, false}) {
      ScenarioSpec spec = base;
      spec.workload.locality_nodes = cluster_nodes;
      spec.workload.locality_fraction = fraction;
      spec.workload.input_mb_mu = 6.5;
      spec.knobs.locality_aware = aware;
      const RunMetrics m = run_standard_scenario(spec);
      table.add_row({fmt(fraction, 1), aware ? "aware" : "blind",
                     fmt(m.locality_hit_rate(), 3),
                     fmt(to_seconds(m.makespan)),
                     fmt(m.throughput_tasks_per_ms(), 4),
                     fmt(m.overhead_s, 0)});
      report.add_run("pinned=" + fmt(fraction, 1) +
                         (aware ? "-aware" : "-blind"),
                     m);
      if (fraction == 0.0) break;  // variants identical with no pinning
    }
  }
  std::fputs(table.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
