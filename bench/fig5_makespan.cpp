// Figure 5: makespan vs number of jobs for the scheduling methods.
//   5(a) real cluster (50 nodes)   5(b) Amazon EC2 (30 nodes)
// Methods: DSP, Aalo, TetrisW/SimDep, TetrisW/oDep.
// Paper shape: makespan grows with job count and orders
//   DSP < Aalo < TetrisW/SimDep < TetrisW/oDep.
#include <cstdio>

#include "bench_common.h"

namespace dsp::bench {
namespace {

void run_testbed(const char* title, ClusterProfile profile,
                 const BenchEnv& env, BenchJsonReport& report) {
  const std::vector<SchedKind> methods{SchedKind::kDsp, SchedKind::kAalo,
                                       SchedKind::kTetrisSimDep,
                                       SchedKind::kTetrisNoDep};
  std::vector<std::string> names;
  for (auto m : methods) names.emplace_back(to_string(m));
  MetricSeries series(names, env.job_counts());

  for (std::size_t xi = 0; xi < env.job_counts().size(); ++xi) {
    const auto jobs_n = static_cast<std::size_t>(env.job_counts()[xi]);
    for (std::size_t mi = 0; mi < methods.size(); ++mi)
      series.set(mi, xi,
                 run_standard_scenario(
                     scheduler_scenario(methods[mi], profile, jobs_n, env)));
  }

  std::fputs(series.makespan_table(std::string(title) + ": makespan (s) vs #jobs")
                 .render()
                 .c_str(),
             stdout);
  std::fputs("\n", stdout);
  report.add_series(title, series);
}

}  // namespace
}  // namespace dsp::bench

int main(int argc, char** argv) {
  using namespace dsp::bench;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  const BenchEnv env;
  print_bench_header("Figure 5: makespan of scheduling methods", env);
  BenchJsonReport report("fig5_makespan", env);
  run_testbed("Fig 5(a) real cluster", dsp::ClusterProfile::kRealCluster, env,
              report);
  run_testbed("Fig 5(b) Amazon EC2", dsp::ClusterProfile::kEc2, env, report);
  report.write_if_requested(cli);
  return 0;
}
