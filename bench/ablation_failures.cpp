// Ablation: fault tolerance (the paper's §VI future work).
//
// Injects node outages at increasing rates and stragglers, comparing DSP
// against the preemption baselines. Checkpoint-restart pays off: DSP and
// the checkpointed baselines lose little work, while SRPT (no checkpoints)
// re-executes everything its failed nodes had in flight.
#include <cstdio>

#include "bench_common.h"
#include "sim/failures.h"

namespace {

dsp::RunMetrics run_with_plan(dsp::bench::PolicyKind policy,
                              const dsp::ClusterSpec& cluster,
                              const dsp::JobSet& jobs,
                              const dsp::FailurePlan& plan) {
  using namespace dsp;
  DspScheduler scheduler;
  const auto p = dsp::bench::make_policy(policy);
  Engine engine(cluster, jobs, scheduler, p.get(),
                dsp::bench::paper_engine_params());
  if (!plan.empty()) engine.set_failure_plan(plan);
  return engine.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: node failures and stragglers", env);
  BenchJsonReport report("ablation_failures", env);

  const std::size_t jobs_n = 300;
  const auto jobs = make_workload(jobs_n, env.scale, env.seed);
  const ClusterSpec cluster = ClusterSpec::ec2();
  const SimTime horizon = 40 * kHour;

  // ---- Outage-rate sweep for DSP --------------------------------------
  Table sweep("DSP under increasing outage rates (300 jobs, EC2 profile)");
  sweep.set_header({"MTBF(h)", "failures", "tasks-killed", "makespan(s)",
                    "throughput(t/ms)", "work-lost(MI)"});
  for (double mtbf_hours : {0.0, 8.0, 4.0, 2.0, 1.0}) {
    FailurePlan plan;
    if (mtbf_hours > 0.0)
      plan = FailurePlan::random_outages(cluster, horizon, mtbf_hours,
                                         /*mttr_minutes=*/5.0, env.seed + 1);
    const RunMetrics m = run_with_plan(PolicyKind::kDsp, cluster, jobs, plan);
    report.add_run("dsp-mtbf=" +
                       (mtbf_hours == 0.0 ? std::string("none")
                                          : fmt(mtbf_hours, 1) + "h"),
                   m);
    sweep.add_row({mtbf_hours == 0.0 ? "none" : fmt(mtbf_hours, 1),
                   fmt_count(static_cast<long long>(m.node_failures)),
                   fmt_count(static_cast<long long>(m.tasks_killed_by_failure)),
                   fmt(to_seconds(m.makespan)),
                   fmt(m.throughput_tasks_per_ms(), 4), fmt(m.work_lost_mi, 0)});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::fputs("\n", stdout);

  // ---- Policy comparison under a fixed failure plan --------------------
  const FailurePlan shared =
      FailurePlan::random_outages(cluster, horizon, 4.0, 5.0, env.seed + 2);
  Table cmp("preemption policies under MTBF=4h outages");
  cmp.set_header({"policy", "makespan(s)", "throughput(t/ms)", "tasks-killed",
                  "work-lost(MI)"});
  for (PolicyKind policy : {PolicyKind::kDsp, PolicyKind::kDspNoPp,
                            PolicyKind::kAmoeba, PolicyKind::kNatjam,
                            PolicyKind::kSrpt}) {
    const RunMetrics m = run_with_plan(policy, cluster, jobs, shared);
    report.add_run(std::string("mtbf4h-") + to_string(policy), m);
    cmp.add_row({to_string(policy), fmt(to_seconds(m.makespan)),
                 fmt(m.throughput_tasks_per_ms(), 4),
                 fmt_count(static_cast<long long>(m.tasks_killed_by_failure)),
                 fmt(m.work_lost_mi, 0)});
  }
  std::fputs(cmp.render().c_str(), stdout);
  std::fputs("\n", stdout);

  // ---- Straggler impact and mitigation ---------------------------------
  Table strag("DSP under stragglers (0.4x nodes), with/without mitigation");
  strag.set_header(
      {"straggler-load", "mitigation", "makespan(s)", "throughput(t/ms)"});
  struct Level {
    const char* name;
    SimTime mean_gap;
  };
  for (const Level& level : {Level{"none", 0}, Level{"light", 2 * kHour},
                             Level{"heavy", 30 * kMinute}}) {
    FailurePlan plan;
    if (level.mean_gap > 0)
      plan = FailurePlan::random_stragglers(cluster, horizon, level.mean_gap,
                                            10 * kMinute, 0.4, env.seed + 3);
    for (bool mitigate : {false, true}) {
      DspScheduler scheduler;
      DspParams params;
      params.straggler_mitigation = mitigate;
      DspPreemption policy(params);
      Engine engine(cluster, jobs, scheduler, &policy, paper_engine_params());
      if (!plan.empty()) engine.set_failure_plan(plan);
      const RunMetrics m = engine.run();
      strag.add_row({level.name, mitigate ? "on" : "off",
                     fmt(to_seconds(m.makespan)),
                     fmt(m.throughput_tasks_per_ms(), 4)});
      if (level.mean_gap == 0) break;  // identical with no stragglers
    }
  }
  std::fputs(strag.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
