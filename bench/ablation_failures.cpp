// Ablation: fault tolerance (the paper's §VI future work).
//
// Injects node outages at increasing rates and stragglers, comparing DSP
// against the preemption baselines. Checkpoint-restart pays off: DSP and
// the checkpointed baselines lose little work, while SRPT (no checkpoints)
// re-executes everything its failed nodes had in flight.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: node failures and stragglers", env);
  BenchJsonReport report("ablation_failures", env);

  const std::size_t jobs_n = 300;

  // ---- Outage-rate sweep for DSP --------------------------------------
  Table sweep("DSP under increasing outage rates (300 jobs, EC2 profile)");
  sweep.set_header({"MTBF(h)", "failures", "tasks-killed", "makespan(s)",
                    "throughput(t/ms)", "work-lost(MI)"});
  for (double mtbf_hours : {0.0, 8.0, 4.0, 2.0, 1.0}) {
    ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
    if (mtbf_hours > 0.0) {
      spec.failures.kind = FailureRecipe::Kind::kOutages;
      spec.failures.mtbf_hours = mtbf_hours;
      spec.failures.mttr_minutes = 5.0;
      spec.failures.seed = env.seed + 1;
    }
    const RunMetrics m = run_standard_scenario(spec);
    report.add_run("dsp-mtbf=" +
                       (mtbf_hours == 0.0 ? std::string("none")
                                          : fmt(mtbf_hours, 1) + "h"),
                   m);
    sweep.add_row({mtbf_hours == 0.0 ? "none" : fmt(mtbf_hours, 1),
                   fmt_count(static_cast<long long>(m.node_failures)),
                   fmt_count(static_cast<long long>(m.tasks_killed_by_failure)),
                   fmt(to_seconds(m.makespan)),
                   fmt(m.throughput_tasks_per_ms(), 4), fmt(m.work_lost_mi, 0)});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::fputs("\n", stdout);

  // ---- Policy comparison under a fixed failure plan --------------------
  // The recipe pins its own plan seed, so every policy sees the same
  // outage schedule (plan generation is deterministic per cluster + seed).
  Table cmp("preemption policies under MTBF=4h outages");
  cmp.set_header({"policy", "makespan(s)", "throughput(t/ms)", "tasks-killed",
                  "work-lost(MI)"});
  for (PolicyKind policy : {PolicyKind::kDsp, PolicyKind::kDspNoPp,
                            PolicyKind::kAmoeba, PolicyKind::kNatjam,
                            PolicyKind::kSrpt}) {
    ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
    spec.policy = policy;
    spec.failures.kind = FailureRecipe::Kind::kOutages;
    spec.failures.mtbf_hours = 4.0;
    spec.failures.mttr_minutes = 5.0;
    spec.failures.seed = env.seed + 2;
    const RunMetrics m = run_standard_scenario(spec);
    report.add_run(std::string("mtbf4h-") + to_string(policy), m);
    cmp.add_row({to_string(policy), fmt(to_seconds(m.makespan)),
                 fmt(m.throughput_tasks_per_ms(), 4),
                 fmt_count(static_cast<long long>(m.tasks_killed_by_failure)),
                 fmt(m.work_lost_mi, 0)});
  }
  std::fputs(cmp.render().c_str(), stdout);
  std::fputs("\n", stdout);

  // ---- Straggler impact and mitigation ---------------------------------
  Table strag("DSP under stragglers (0.4x nodes), with/without mitigation");
  strag.set_header(
      {"straggler-load", "mitigation", "makespan(s)", "throughput(t/ms)"});
  struct Level {
    const char* name;
    SimTime mean_gap;
  };
  for (const Level& level : {Level{"none", 0}, Level{"light", 2 * kHour},
                             Level{"heavy", 30 * kMinute}}) {
    for (bool mitigate : {false, true}) {
      ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
      spec.knobs.straggler_mitigation = mitigate;
      if (level.mean_gap > 0) {
        spec.failures.kind = FailureRecipe::Kind::kStragglers;
        spec.failures.mean_gap = level.mean_gap;
        spec.failures.mean_duration = 10 * kMinute;
        spec.failures.factor = 0.4;
        spec.failures.seed = env.seed + 3;
      }
      const RunMetrics m = run_standard_scenario(spec);
      strag.add_row({level.name, mitigate ? "on" : "off",
                     fmt(to_seconds(m.makespan)),
                     fmt(m.throughput_tasks_per_ms(), 4)});
      if (level.mean_gap == 0) break;  // identical with no stragglers
    }
  }
  std::fputs(strag.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
