// Ablation: gamma, the level-weighting coefficient of Formula 12.
//
// gamma in (0,1) controls how strongly higher-level tasks (those whose
// completion unlocks deeper subtrees) are prioritized. gamma -> 0 flattens
// the dependency signal toward plain leaf priorities; larger gamma
// amplifies it. The paper sets gamma = 0.5 (Table II) and defers the
// sensitivity study to future work — this bench is that study.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: gamma (Formula 12 level weighting)", env);
  BenchJsonReport report("ablation_gamma", env);

  const std::size_t jobs_n = 300;

  Table table("gamma sweep: " + std::to_string(jobs_n) + " jobs, EC2 profile");
  table.set_header({"gamma", "throughput(t/ms)", "makespan(s)", "avg-wait(s)",
                    "preemptions", "deadline-met"});
  for (double gamma : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    // gamma feeds both the scheduler (level weights) and the preemption
    // policy (urgency); the knob plumbs it to both via the factory.
    ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
    spec.knobs.gamma = gamma;
    const RunMetrics m = run_standard_scenario(spec);
    table.add_row({fmt(gamma, 1), fmt(m.throughput_tasks_per_ms(), 4),
                   fmt(to_seconds(m.makespan)), fmt(m.avg_job_waiting_s()),
                   fmt_count(static_cast<long long>(m.preemptions)),
                   fmt_count(static_cast<long long>(m.jobs_met_deadline))});
    report.add_run("gamma=" + fmt(gamma, 1), m);
  }
  std::fputs(table.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
