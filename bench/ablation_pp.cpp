// Ablation: normalized-priority preemption (PP).
//
// Sweeps rho (the PP gap threshold) and compares against PP disabled
// (DSPW/oPP). Expectation (paper §IV-B): PP cuts the preemption count —
// removing churn preemptions whose context-switch cost exceeds their
// throughput gain — without hurting (and usually helping) throughput.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: normalized-priority preemption (PP)", env);
  BenchJsonReport report("ablation_pp", env);

  const std::size_t jobs_n = 300;

  struct Variant {
    std::string name;
    bool pp;
    double rho;
  };
  // rho acts as a rank-distance threshold (see DspParams::rho): the sweep
  // spans "no filtering" through "suppress everything but rank-distant
  // swaps".
  const std::vector<Variant> variants{
      {"no-PP", false, 0.0},    {"rho=10", true, 10.0},
      {"rho=100", true, 100.0}, {"rho=200", true, 200.0},
      {"rho=500", true, 500.0}, {"rho=2000", true, 2000.0},
  };

  Table table("PP ablation: " + std::to_string(jobs_n) + " jobs, EC2 profile");
  table.set_header({"variant", "preemptions", "suppressed", "throughput(t/ms)",
                    "makespan(s)", "avg-wait(s)"});
  for (const auto& v : variants) {
    ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
    spec.knobs.normalized_pp = v.pp;
    if (v.pp) spec.knobs.rho = v.rho;
    const RunMetrics m = run_standard_scenario(spec);
    table.add_row({v.name, fmt_count(static_cast<long long>(m.preemptions)),
                   fmt_count(static_cast<long long>(m.suppressed_preemptions)),
                   fmt(m.throughput_tasks_per_ms(), 4),
                   fmt(to_seconds(m.makespan)), fmt(m.avg_job_waiting_s())});
    report.add_run(v.name, m);
  }
  std::fputs(table.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
