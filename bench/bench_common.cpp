#include "bench_common.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace dsp::bench {

JobSet make_workload(std::size_t jobs, double scale, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = scale;
  return WorkloadGenerator(cfg, seed).generate();
}

EngineParams paper_engine_params() {
  EngineParams p;
  p.period = 5 * kMinute;  // paper §V: "ran the scheduling periodically
                           // every 5mins"
  p.epoch = 30 * kSecond;
  return p;
}

ScenarioSpec fig_scenario(ClusterProfile profile, std::size_t jobs,
                          const BenchEnv& env) {
  ScenarioSpec spec;
  spec.name = std::string(to_string(profile)) + "-j" + std::to_string(jobs);
  spec.cluster.profile = profile;
  spec.workload.job_count = jobs;
  spec.workload.task_scale = env.scale;
  spec.engine = paper_engine_params();
  spec.seed = env.seed;
  return spec;
}

ScenarioSpec scheduler_scenario(SchedKind kind, ClusterProfile profile,
                                std::size_t jobs, const BenchEnv& env) {
  ScenarioSpec spec = fig_scenario(profile, jobs, env);
  spec.sched = kind;
  // Fig. 5 compares the *full* DSP system against scheduling-only
  // baselines: DSP keeps its online preemption; the baselines have none.
  spec.policy =
      kind == SchedKind::kDsp ? PolicyKind::kDsp : PolicyKind::kNone;
  return spec;
}

ScenarioSpec policy_scenario(PolicyKind kind, ClusterProfile profile,
                             std::size_t jobs, const BenchEnv& env) {
  ScenarioSpec spec = fig_scenario(profile, jobs, env);
  spec.sched = SchedKind::kDsp;  // DSP's initial schedule for every method
  spec.policy = kind;
  return spec;
}

void print_bench_header(const std::string& name, const BenchEnv& env) {
  std::printf("### %s  (DSP_SCALE=%g DSP_SEED=%llu DSP_POINTS=%zu)\n\n",
              name.c_str(), env.scale,
              static_cast<unsigned long long>(env.seed), env.points);
}

BenchCli BenchCli::parse(int argc, char** argv) {
  BenchCli cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a path\n", argv[0]);
        cli.ok = false;
        return cli;
      }
      cli.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>]\n"
                   "  --json <path>  dump run metrics + the metrics "
                   "registry as JSON\n",
                   argv[0]);
      cli.ok = false;
      return cli;
    }
  }
  return cli;
}

BenchJsonReport::BenchJsonReport(std::string bench, BenchEnv env)
    : bench_(std::move(bench)), env_(env) {}

void BenchJsonReport::add_series(const std::string& name,
                                 const MetricSeries& series) {
  std::ostringstream os;
  write_json(os, series);
  series_.emplace_back(name, os.str());
}

void BenchJsonReport::add_run(const std::string& name,
                              const RunMetrics& metrics) {
  std::ostringstream os;
  write_json(os, metrics);
  runs_.emplace_back(name, os.str());
}

void BenchJsonReport::add_scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

bool BenchJsonReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << "{\"bench\":";
  obs::write_json_string(out, bench_);
  out << ",\"env\":{\"scale\":";
  obs::write_json_number(out, env_.scale);
  out << ",\"seed\":" << env_.seed << ",\"points\":" << env_.points << '}';
  out << ",\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":";
    obs::write_json_string(out, series_[i].first);
    out << ",\"data\":" << series_[i].second << '}';
  }
  out << "],\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":";
    obs::write_json_string(out, runs_[i].first);
    out << ",\"metrics\":" << runs_[i].second << '}';
  }
  out << "],\"scalars\":{";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    if (i) out << ',';
    obs::write_json_string(out, scalars_[i].first);
    out << ':';
    obs::write_json_number(out, scalars_[i].second);
  }
  out << "},\"registry\":";
  obs::default_registry().to_json(out);
  out << "}\n";
  return out.good();
}

void BenchJsonReport::write_if_requested(const BenchCli& cli) const {
  if (cli.json_path.empty()) return;
  if (write(cli.json_path))
    std::printf("\nJSON report written to %s\n", cli.json_path.c_str());
}

}  // namespace dsp::bench
