#include "bench_common.h"

#include <cstdio>

namespace dsp::bench {

JobSet make_workload(std::size_t jobs, double scale, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = scale;
  return WorkloadGenerator(cfg, seed).generate();
}

EngineParams paper_engine_params() {
  EngineParams p;
  p.period = 5 * kMinute;  // paper §V: "ran the scheduling periodically
                           // every 5mins"
  p.epoch = 30 * kSecond;
  return p;
}

const char* to_string(SchedKind k) {
  switch (k) {
    case SchedKind::kDsp: return "DSP";
    case SchedKind::kAalo: return "Aalo";
    case SchedKind::kTetrisSimDep: return "TetrisW/SimDep";
    case SchedKind::kTetrisNoDep: return "TetrisW/oDep";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(SchedKind k) {
  switch (k) {
    case SchedKind::kDsp: return std::make_unique<DspScheduler>();
    case SchedKind::kAalo: return std::make_unique<AaloScheduler>();
    case SchedKind::kTetrisSimDep:
      return std::make_unique<TetrisScheduler>(
          TetrisScheduler::Dependency::kSimple);
    case SchedKind::kTetrisNoDep:
      return std::make_unique<TetrisScheduler>(
          TetrisScheduler::Dependency::kNone);
  }
  return nullptr;
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kDsp: return "DSP";
    case PolicyKind::kDspNoPp: return "DSPW/oPP";
    case PolicyKind::kAmoeba: return "Amoeba";
    case PolicyKind::kNatjam: return "Natjam";
    case PolicyKind::kSrpt: return "SRPT";
  }
  return "?";
}

std::unique_ptr<PreemptionPolicy> make_policy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kDsp: return std::make_unique<DspPreemption>();
    case PolicyKind::kDspNoPp: {
      DspParams params;
      params.normalized_pp = false;
      return std::make_unique<DspPreemption>(params);
    }
    case PolicyKind::kAmoeba: return std::make_unique<AmoebaPolicy>();
    case PolicyKind::kNatjam: return std::make_unique<NatjamPolicy>();
    case PolicyKind::kSrpt: return std::make_unique<SrptPolicy>();
  }
  return nullptr;
}

RunMetrics run_scheduler(SchedKind kind, const ClusterSpec& cluster,
                         const JobSet& jobs) {
  const auto scheduler = make_scheduler(kind);
  // Fig. 5 compares the *full* DSP system against scheduling-only
  // baselines: DSP keeps its online preemption; the baselines have none.
  std::unique_ptr<PreemptionPolicy> policy;
  if (kind == SchedKind::kDsp) policy = make_policy(PolicyKind::kDsp);
  return simulate(cluster, jobs, *scheduler, policy.get(),
                  paper_engine_params());
}

RunMetrics run_policy(PolicyKind kind, const ClusterSpec& cluster,
                      const JobSet& jobs) {
  DspScheduler scheduler;  // DSP's initial schedule for every method
  const auto policy = make_policy(kind);
  return simulate(cluster, jobs, scheduler, policy.get(),
                  paper_engine_params());
}

void print_bench_header(const std::string& name, const BenchEnv& env) {
  std::printf("### %s  (DSP_SCALE=%g DSP_SEED=%llu DSP_POINTS=%zu)\n\n",
              name.c_str(), env.scale,
              static_cast<unsigned long long>(env.seed), env.points);
}

}  // namespace dsp::bench
