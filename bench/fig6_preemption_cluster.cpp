// Figure 6: preemption methods on the real cluster (50 nodes), all running
// on DSP's initial schedule.
//   6(a) # dependency disorders   — DSP = 0 < Natjam ~ Amoeba < SRPT
//   6(b) throughput (tasks/ms)    — SRPT < Amoeba ~ Natjam < DSPW/oPP < DSP
//   6(c) average job waiting time — DSP < DSPW/oPP < Natjam ~ SRPT < Amoeba
//   6(d) # preemptions            — DSP < DSPW/oPP < Natjam < Amoeba < SRPT
#include <cstdio>

#include "bench_common.h"

namespace dsp::bench {

void run_preemption_figure(const char* figure, const char* bench_name,
                           ClusterProfile profile, const BenchCli& cli) {
  const BenchEnv env;
  print_bench_header(std::string(figure) + ": preemption methods", env);

  const std::vector<PolicyKind> methods{PolicyKind::kDsp, PolicyKind::kDspNoPp,
                                        PolicyKind::kAmoeba, PolicyKind::kNatjam,
                                        PolicyKind::kSrpt};
  std::vector<std::string> names;
  for (auto m : methods) names.emplace_back(to_string(m));
  MetricSeries series(names, env.job_counts());

  for (std::size_t xi = 0; xi < env.job_counts().size(); ++xi) {
    const auto jobs_n = static_cast<std::size_t>(env.job_counts()[xi]);
    for (std::size_t mi = 0; mi < methods.size(); ++mi)
      series.set(mi, xi,
                 run_standard_scenario(
                     policy_scenario(methods[mi], profile, jobs_n, env)));
  }

  const std::string f = figure;
  std::fputs(series.disorders_table(f + "(a): # of disorders vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(series.throughput_table(f + "(b): throughput (tasks/ms) vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(series.waiting_table(f + "(c): avg job waiting time (s) vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(series.preemptions_table(f + "(d): # of preemptions vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);

  BenchJsonReport report(bench_name, env);
  report.add_series(figure, series);
  report.write_if_requested(cli);
}

}  // namespace dsp::bench

#ifndef DSP_FIG6_NO_MAIN
int main(int argc, char** argv) {
  const auto cli = dsp::bench::BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  dsp::bench::run_preemption_figure("Fig 6", "fig6_preemption_cluster",
                                    dsp::ClusterProfile::kRealCluster, cli);
  return 0;
}
#endif
