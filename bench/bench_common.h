// Shared harness for the figure-reproduction benches.
//
// The figure binaries describe their experiments as ScenarioSpec grids
// (sim/scenario.h) and run them through the standard factory
// (scenarios/standard.h): one spec per (testbed, method, job count) cell,
// executed sequentially so the flight-recorder environment knobs
// (DSP_EVENT_LOG) keep their one-run-per-sink semantics. tools/dsp_sweep
// is the parallel front-end over the same specs.
//
// Scaling: the paper runs up to 750 jobs x up to 2000 tasks for hours on
// 50 physical servers. The benches keep the paper's job counts and
// small/medium/large mix but scale per-job task counts by DSP_SCALE
// (default 0.05). Override with:
//   DSP_SCALE=1.0  paper-scale task counts (slow)
//   DSP_SEED=7     workload seed
//   DSP_POINTS=3   how many x-axis points to run (default all 5)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "scenarios/standard.h"
#include "sim/cluster.h"
#include "trace/workload.h"
#include "util/env.h"

namespace dsp::bench {

/// Environment-configured bench settings.
struct BenchEnv {
  double scale = env_double("DSP_SCALE", 0.1);
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("DSP_SEED", 42));
  std::size_t points = static_cast<std::size_t>(env_int("DSP_POINTS", 5));

  /// The paper's Fig. 5-7 x-axis: 150..750 step 150 (truncated to
  /// `points`).
  std::vector<long long> job_counts() const {
    std::vector<long long> xs{150, 300, 450, 600, 750};
    if (xs.size() > points) xs.resize(points);
    return xs;
  }

  /// The paper's Fig. 8 x-axis: 500..2500 step 500.
  std::vector<long long> scalability_counts() const {
    std::vector<long long> xs{500, 1000, 1500, 2000, 2500};
    if (xs.size() > points) xs.resize(points);
    return xs;
  }
};

/// Generates the paper's workload for `jobs` jobs at the given scale.
JobSet make_workload(std::size_t jobs, double scale, std::uint64_t seed);

/// Engine parameters used by all figure benches (paper: scheduling every
/// 5 minutes; preemption each epoch).
EngineParams paper_engine_params();

// The method identifiers moved into dsp:: with the scenario layer
// (sim/scenario.h); re-exported so figure code keeps its spelling.
// to_string(SchedKind/PolicyKind) resolves to the dsp:: display names
// ("DSP", "TetrisW/oDep", ...) via argument-dependent lookup.
using SchedKind = dsp::SchedKind;
using PolicyKind = dsp::PolicyKind;

/// Base spec for one figure cell: the given testbed profile, the paper's
/// workload recipe at `jobs` jobs and env.scale, env.seed, and
/// paper_engine_params(). Callers then pick the policy pair.
ScenarioSpec fig_scenario(ClusterProfile profile, std::size_t jobs,
                          const BenchEnv& env);

/// Spec for one Fig. 5/8 scheduler-comparison run. The paper compares the
/// *full* DSP system against scheduling-only baselines: DSP keeps its
/// online preemption, every other scheduler runs offline-only.
ScenarioSpec scheduler_scenario(SchedKind kind, ClusterProfile profile,
                                std::size_t jobs, const BenchEnv& env);

/// Spec for one Fig. 6/7 preemption-comparison run ("we use our initial
/// schedule for all preemption methods": DSP scheduling for everyone).
ScenarioSpec policy_scenario(PolicyKind kind, ClusterProfile profile,
                             std::size_t jobs, const BenchEnv& env);

/// Prints a one-line header for a bench binary.
void print_bench_header(const std::string& name, const BenchEnv& env);

/// Command-line flags shared by every bench binary.
struct BenchCli {
  std::string json_path;  ///< --json <path>; empty = no JSON dump.
  bool ok = true;         ///< False on unknown flags (usage was printed).

  /// Parses `--json <path>` (and `--help`). Unknown flags set ok=false.
  static BenchCli parse(int argc, char** argv);
};

/// Machine-readable bench report: named series / single runs / scalars
/// plus a snapshot of the default metrics registry. Written as one JSON
/// object:
///   {"bench":...,"env":{"scale","seed","points"},
///    "series":[{"name",...}],"runs":[{"name","metrics"}],
///    "scalars":{...},"registry":{"counters","gauges","histograms"}}
class BenchJsonReport {
 public:
  BenchJsonReport(std::string bench, BenchEnv env);

  void add_series(const std::string& name, const MetricSeries& series);
  void add_run(const std::string& name, const RunMetrics& metrics);
  void add_scalar(const std::string& name, double value);

  /// Serializes the report (including obs::default_registry()) to `path`.
  /// Returns false and warns on I/O failure.
  bool write(const std::string& path) const;

  /// If cli names a --json path, writes there and prints a confirmation.
  void write_if_requested(const BenchCli& cli) const;

 private:
  std::string bench_;
  BenchEnv env_;
  std::vector<std::pair<std::string, std::string>> series_;  // name, json
  std::vector<std::pair<std::string, std::string>> runs_;    // name, json
  std::vector<std::pair<std::string, double>> scalars_;
};

}  // namespace dsp::bench
