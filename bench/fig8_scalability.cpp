// Figure 8: DSP scalability — makespan (a) and throughput (b) as the job
// count grows from 500 to 2500 on both testbeds. Paper shape: makespan
// grows and throughput decays gradually, flattening at high job counts.
#include <cstdio>

#include "bench_common.h"

namespace dsp::bench {
namespace {

void run(const BenchCli& cli) {
  BenchEnv env;
  print_bench_header("Figure 8: DSP scalability", env);

  const std::vector<std::string> testbeds{"real-cluster", "EC2"};
  MetricSeries series(testbeds, env.scalability_counts());

  for (std::size_t xi = 0; xi < env.scalability_counts().size(); ++xi) {
    const auto jobs_n =
        static_cast<std::size_t>(env.scalability_counts()[xi]);
    series.set(0, xi,
               run_standard_scenario(scheduler_scenario(
                   SchedKind::kDsp, ClusterProfile::kRealCluster, jobs_n, env)));
    series.set(1, xi,
               run_standard_scenario(scheduler_scenario(
                   SchedKind::kDsp, ClusterProfile::kEc2, jobs_n, env)));
  }

  std::fputs(series.makespan_table("Fig 8(a): DSP makespan (s) vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(series.throughput_table("Fig 8(b): DSP throughput (tasks/ms) vs #jobs")
                 .render().c_str(), stdout);
  std::fputs("\n", stdout);

  BenchJsonReport report("fig8_scalability", env);
  report.add_series("Fig 8", series);
  report.write_if_requested(cli);
}

}  // namespace
}  // namespace dsp::bench

int main(int argc, char** argv) {
  const auto cli = dsp::bench::BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  dsp::bench::run(cli);
  return 0;
}
