// Ablation: delta, the preempting-task window (Algorithm 1).
//
// DSP only considers the first delta fraction of each waiting queue as
// preemptors "to save overhead" (§IV-B), and adapts delta to the observed
// preemption rate. This bench sweeps fixed deltas against the adaptive
// controller.
#include <cstdio>

#include "bench_common.h"
#include "core/dsp_system.h"
#include "core/preemption.h"

int main(int argc, char** argv) {
  using namespace dsp::bench;
  using namespace dsp;
  const auto cli = BenchCli::parse(argc, argv);
  if (!cli.ok) return 2;
  BenchEnv env;
  print_bench_header("Ablation: delta window (Algorithm 1)", env);
  BenchJsonReport report("ablation_delta", env);

  const std::size_t jobs_n = 300;
  const auto jobs = make_workload(jobs_n, env.scale, env.seed);

  Table table("delta sweep: " + std::to_string(jobs_n) + " jobs, EC2 profile");
  table.set_header({"delta", "preemptions", "throughput(t/ms)", "makespan(s)",
                    "avg-wait(s)", "final-delta"});

  // This bench reads policy.current_delta() after the run, so it keeps a
  // concrete DspPreemption instead of going through run_standard_scenario;
  // the knob-to-params mapping still comes from the factory.
  auto run_variant = [&](const std::string& name, double delta, bool adaptive) {
    ScenarioSpec spec = fig_scenario(ClusterProfile::kEc2, jobs_n, env);
    spec.knobs.delta = delta;
    spec.knobs.adaptive_delta = adaptive;
    const auto sched = StandardScenarioFactory().make_scheduler(spec);
    DspPreemption policy(StandardScenarioFactory::dsp_params(spec));
    const RunMetrics m =
        simulate(make_cluster(spec.cluster), jobs, *sched, &policy, spec.engine);
    table.add_row({name, fmt_count(static_cast<long long>(m.preemptions)),
                   fmt(m.throughput_tasks_per_ms(), 4),
                   fmt(to_seconds(m.makespan)), fmt(m.avg_job_waiting_s()),
                   fmt(policy.current_delta(), 3)});
    report.add_run(name, m);
  };

  for (double delta : {0.1, 0.35, 0.6, 0.9})
    run_variant("fixed " + fmt(delta, 2), delta, false);
  run_variant("adaptive (0.35 start)", 0.35, true);

  std::fputs(table.render().c_str(), stdout);
  report.write_if_requested(cli);
  return 0;
}
