// json_check: validates a JSON file and (optionally) that a list of
// dot-separated paths exist in it. Exit 0 on success, 1 on failure.
//
// Used by the bench_json_smoke CTest to verify that `fig5_makespan
// --json out.json` writes a well-formed report with the documented
// schema (see bench/bench_common.h BenchJsonReport).
//
//   json_check <file.json> [path ...]
//   json_check out.json bench env.scale series registry.counters
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json> [dotted.path ...]\n",
                 argv[0]);
    return 1;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  dsp::obs::json::Value root;
  std::string error;
  if (!dsp::obs::json::parse(text, root, &error)) {
    std::fprintf(stderr, "json_check: %s: parse error: %s\n", argv[1],
                 error.c_str());
    return 1;
  }

  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (!root.at_path(argv[i])) {
      std::fprintf(stderr, "json_check: %s: missing path %s\n", argv[1],
                   argv[i]);
      ++missing;
    }
  }
  if (missing) return 1;

  std::printf("json_check: %s OK (%d path%s checked)\n", argv[1], argc - 2,
              argc - 2 == 1 ? "" : "s");
  return 0;
}
