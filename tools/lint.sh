#!/usr/bin/env bash
# Static lint for src/ and tools/. Uses clang-tidy (.clang-tidy profile)
# when installed; otherwise falls back to a strict-warning GCC pass over
# every translation unit, which catches the overlap of the profile that
# GCC can see (override hygiene, shadowing, dangerous conversions).
#
# Usage: tools/lint.sh [build-dir]          (default: build)
# Also invoked by the dsp_lint CMake target with BUILD_DIR exported.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-${1:-build}}"

# Prefer the compilation database (CMAKE_EXPORT_COMPILE_COMMANDS is on by
# default) so lint sees exactly the translation units the build compiles;
# fall back to a find sweep when no build directory exists yet.
if [ -f "$BUILD_DIR/compile_commands.json" ]; then
  sources=$(grep -o '"file": *"[^"]*"' "$BUILD_DIR/compile_commands.json" \
    | sed 's/.*"file": *"//; s/"$//' \
    | grep -E '/(src|tools)/.*\.cpp$' | sort -u)
fi
if [ -z "${sources:-}" ]; then
  sources=$(find src tools -name '*.cpp' | sort)
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint: clang-tidy over $(echo "$sources" | wc -l) files"
  # shellcheck disable=SC2086
  clang-tidy -p "$BUILD_DIR" --quiet $sources
  echo "lint: clean"
  exit 0
fi

echo "lint: clang-tidy not found; strict-warning GCC fallback"
CXX="${CXX:-g++}"
WARNINGS=(
  -Wall -Wextra -Werror
  -Wshadow
  -Wnon-virtual-dtor
  -Woverloaded-virtual
  -Wsuggest-override
  -Wcast-qual
  -Wdouble-promotion
  -Wformat=2
  -Wimplicit-fallthrough
  -Wno-error=double-promotion
)
status=0
for f in $sources; do
  if ! "$CXX" -std=c++20 -fsyntax-only "${WARNINGS[@]}" -Isrc "$f"; then
    echo "lint: $f FAILED"
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "lint: clean"
fi
exit "$status"
