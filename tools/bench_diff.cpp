// bench_diff: compares the `scalars` of two BENCH_*.json reports (see
// bench/bench_common.h BenchJsonReport) and fails on relative
// regressions beyond a threshold.
//
//   bench_diff <base.json> <candidate.json> [--threshold <pct>] [--json <out>]
//
// Every scalar present in both files is compared as
// (candidate - base) / base; scalars only in one file are listed but
// never fail the run (benchmarks come and go). Exit 0 when no compared
// scalar regresses more than the threshold (default 5%), 1 on a
// regression, 2 on usage/parse errors or an empty comparison set.
//
// The bench-diff CI stage runs this against the committed
// bench/BENCH_hotpath.json baseline; thresholds there are generous
// because CI machines are noisy — the check catches order-of-magnitude
// slips, not single-digit drift.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/table.h"

namespace dsp {
namespace {

bool load_scalars(const std::string& path,
                  std::vector<std::pair<std::string, double>>& out,
                  std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::json::Value root;
  if (!obs::json::parse(buf.str(), root, &error)) {
    error = path + ": " + error;
    return false;
  }
  const obs::json::Value* scalars = root.find("scalars");
  if (scalars == nullptr || !scalars->is_object()) {
    error = path + ": no \"scalars\" object";
    return false;
  }
  for (const auto& [key, value] : scalars->object)
    if (value.is_number()) out.emplace_back(key, value.number);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <base.json> <candidate.json>"
               " [--threshold <pct>] [--json <out.json>]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace dsp

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string json_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) return dsp::usage(argv[0]);
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0') return dsp::usage(argv[0]);
    } else if (arg == "--json") {
      if (i + 1 >= argc) return dsp::usage(argv[0]);
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return dsp::usage(argv[0]);
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.size() != 2) return dsp::usage(argv[0]);

  std::vector<std::pair<std::string, double>> base, cand;
  std::string error;
  if (!dsp::load_scalars(pos[0], base, error) ||
      !dsp::load_scalars(pos[1], cand, error)) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }

  auto find = [](const std::vector<std::pair<std::string, double>>& v,
                 const std::string& key) -> const double* {
    for (const auto& [k, x] : v)
      if (k == key) return &x;
    return nullptr;
  };

  struct Row {
    std::string key;
    double base_v, cand_v, delta_pct;
    bool regressed;
  };
  std::vector<Row> rows;
  std::size_t only_base = 0, only_cand = 0;
  for (const auto& [key, bv] : base) {
    const double* cv = find(cand, key);
    if (cv == nullptr) {
      ++only_base;
      continue;
    }
    const double delta_pct = bv != 0.0 ? (*cv - bv) / bv * 100.0 : 0.0;
    rows.push_back({key, bv, *cv, delta_pct, delta_pct > threshold_pct});
  }
  for (const auto& [key, cv] : cand)
    if (find(base, key) == nullptr) ++only_cand;

  if (rows.empty()) {
    std::fprintf(stderr,
                 "bench_diff: no common scalars between %s and %s\n",
                 pos[0].c_str(), pos[1].c_str());
    return 2;
  }

  dsp::Table t{"Benchmark comparison (threshold " +
               dsp::fmt(threshold_pct, 1) + "%)"};
  t.set_header({"scalar", "base", "candidate", "delta%", "verdict"});
  std::size_t regressions = 0;
  for (const Row& r : rows) {
    if (r.regressed) ++regressions;
    t.add_row({r.key, dsp::fmt(r.base_v, 1), dsp::fmt(r.cand_v, 1),
               dsp::fmt(r.delta_pct, 1), r.regressed ? "REGRESSED" : "ok"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n%zu compared, %zu regression%s", rows.size(), regressions,
              regressions == 1 ? "" : "s");
  if (only_base || only_cand)
    std::printf(" (%zu only in base, %zu only in candidate)", only_base,
                only_cand);
  std::printf("\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot open %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"report\":\"bench_diff\",\"base\":\""
        << dsp::obs::json_escape(pos[0]) << "\",\"candidate\":\""
        << dsp::obs::json_escape(pos[1]) << "\",\"threshold_pct\":";
    dsp::obs::write_json_number(out, threshold_pct);
    out << ",\"compared\":" << rows.size()
        << ",\"regressions\":" << regressions << ",\"scalars\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (i) out << ",";
      out << "{\"name\":\"" << dsp::obs::json_escape(r.key)
          << "\",\"base\":";
      dsp::obs::write_json_number(out, r.base_v);
      out << ",\"candidate\":";
      dsp::obs::write_json_number(out, r.cand_v);
      out << ",\"delta_pct\":";
      dsp::obs::write_json_number(out, r.delta_pct);
      out << ",\"regressed\":" << (r.regressed ? "true" : "false") << "}";
    }
    out << "]}\n";
    if (!out) return 2;
  }
  return regressions == 0 ? 0 : 1;
}
