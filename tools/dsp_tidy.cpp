// dsp_tidy: source-level determinism & concurrency lint for the repo's
// own C++ (src/analysis/srclint), plus the dsp-flow interprocedural
// lock-order & determinism analysis (src/analysis/lockflow).
//
//   dsp_tidy <path...> [--flow] [--json <path|->] [--rules <ids>]
//            [--compdb <compile_commands.json>]
//   dsp_tidy rules | --list-rules
//
// Paths may be files or directories (directories recurse over
// .h/.hh/.hpp/.cc/.cpp/.cxx); --compdb scans the translation units of a
// CMake compile_commands.json (plus same-stem headers) instead. Rule
// packs: D* determinism, C* concurrency/robustness (line rules), L*
// lock flow (--flow) — see `dsp_tidy --list-rules` or rules.h. Findings
// are printed compiler-style ("D001 std-random-device error
// src/x.cpp:12: ..."); --json writes the same machine-readable document
// dsp_analyze emits (json_check-compatible).
//
// --flow runs ONLY the interprocedural rules (L000-L004, D006) so its
// findings never overlap the line rules; run both modes for full
// coverage (tools/ci.sh does).
//
// Exit codes: 0 = no error-severity findings, 1 = at least one error
// finding, 2 = usage or I/O problem.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lockflow.h"
#include "analysis/rules.h"
#include "analysis/srclint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <path...> [--flow] [--json <path|->] [--rules <ids>]"
               " [--compdb <file>]\n"
               "       %s rules | --list-rules\n",
               argv0, argv0);
  return 2;
}

std::vector<std::string> split_rules(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool is_source_rule(const char* id) {
  return id[0] == 'D' || id[0] == 'C' || id[0] == 'L';
}

int list_rules() {
  std::printf("%-6s %-38s %-8s %s\n", "ID", "NAME", "SEVERITY", "PAPER");
  for (const auto& rule : dsp::analysis::rule_catalog()) {
    if (!is_source_rule(rule.id)) continue;
    std::printf("%-6s %-38s %-8s %s\n", rule.id, rule.name,
                dsp::analysis::to_string(rule.severity), rule.paper_ref);
    std::printf("       %s\n", rule.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "rules") == 0 ||
      std::strcmp(argv[1], "--list-rules") == 0)
    return list_rules();

  std::vector<std::string> paths;
  std::string json_path;
  std::string compdb_path;
  std::vector<std::string> filter;
  bool flow = false;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = need_value("--json");
      if (!v) return 2;
      json_path = v;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      const char* v = need_value("--rules");
      if (!v) return 2;
      filter = split_rules(v);
    } else if (std::strcmp(argv[i], "--compdb") == 0) {
      const char* v = need_value("--compdb");
      if (!v) return 2;
      compdb_path = v;
    } else if (std::strcmp(argv[i], "--flow") == 0) {
      flow = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      return usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() && compdb_path.empty()) return usage(argv[0]);
  for (const std::string& id : filter) {
    if (!dsp::analysis::find_rule(id)) {
      std::fprintf(stderr, "%s: unknown rule id %s (see `%s rules`)\n",
                   argv[0], id.c_str(), argv[0]);
      return 2;
    }
  }

  std::string error;
  std::vector<std::string> files;
  if (!compdb_path.empty()) {
    if (!dsp::analysis::collect_sources_from_compdb(compdb_path, files,
                                                    &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 2;
    }
  }
  if (!paths.empty() &&
      !dsp::analysis::collect_sources(paths, files, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }

  dsp::analysis::Report report;
  report.set_rule_filter(filter);
  if (flow) {
    if (!dsp::analysis::analyze_flow_files(files, report, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 2;
    }
  } else {
    for (const std::string& file : files) {
      if (!dsp::analysis::scan_source_file(file, report, &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        return 2;
      }
    }
  }

  const std::string input =
      paths.empty() ? compdb_path
      : paths.size() == 1
          ? paths.front()
          : paths.front() + " (+" + std::to_string(paths.size() - 1) +
                " more)";
  if (json_path.empty()) {
    report.print_text(std::cout);
  } else if (json_path == "-") {
    report.write_json(std::cout, "source", input);
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   json_path.c_str());
      return 2;
    }
    report.write_json(out, "source", input);
    report.print_text(std::cout);  // keep the human-readable summary
  }
  return report.has_errors() ? 1 : 0;
}
