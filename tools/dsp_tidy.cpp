// dsp_tidy: source-level determinism & concurrency lint for the repo's
// own C++ (src/analysis/srclint), the dsp-flow interprocedural
// lock-order & determinism analysis (src/analysis/lockflow) and the
// dsp-dataflow value-range & taint analysis (src/analysis/valueflow).
//
//   dsp_tidy <path...> [--srclint] [--flow] [--dataflow]
//            [--json <path|->] [--rules <ids>] [--baseline <file>]
//            [--compdb <compile_commands.json>]
//   dsp_tidy rules | --list-rules
//
// Paths may be files or directories (directories recurse over
// .h/.hh/.hpp/.cc/.cpp/.cxx); --compdb scans the translation units of a
// CMake compile_commands.json (plus same-stem headers) instead. Rule
// packs: D* determinism, C* concurrency/robustness (line rules), L*
// lock flow (--flow), V* value-range and T* taint (--dataflow) — see
// `dsp_tidy --list-rules` or rules.h. Findings are printed
// compiler-style ("D001 std-random-device error src/x.cpp:12: ...");
// --json writes the same machine-readable document dsp_analyze emits
// (json_check-compatible), including the scan wall time.
//
// Mode flags combine: `--srclint --flow --dataflow` runs all three
// analyses over one shared SourceCache/CppIndex, so each file is read,
// lexed and indexed exactly once. With no mode flag the line rules run
// alone (the historical default); --flow and --dataflow each run ONLY
// their own rule family, so findings never overlap across modes.
//
// --baseline <file>: when <file> does not exist, every current finding
// is written to it (keyed rule + file + message, line numbers elided so
// unrelated edits don't shift the baseline) and the run reports clean.
// When it exists, findings recorded in it are suppressed and only NEW
// findings are reported — the adoption path for turning the analyses on
// over a codebase with known debt.
//
// Exit codes: 0 = no error-severity findings, 1 = at least one error
// finding, 2 = usage or I/O problem.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lockflow.h"
#include "analysis/rules.h"
#include "analysis/srclint.h"
#include "analysis/valueflow.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <path...> [--srclint] [--flow] [--dataflow]\n"
      "       %*s [--json <path|->] [--rules <ids>] [--baseline <file>]\n"
      "       %*s [--compdb <file>]\n"
      "       %s rules | --list-rules\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0);
  return 2;
}

std::vector<std::string> split_rules(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool is_source_rule(const char* id) {
  return id[0] == 'D' || id[0] == 'C' || id[0] == 'L' || id[0] == 'V' ||
         id[0] == 'T';
}

int list_rules() {
  std::printf("%-6s %-38s %-8s %s\n", "ID", "NAME", "SEVERITY", "PAPER");
  for (const auto& rule : dsp::analysis::rule_catalog()) {
    if (!is_source_rule(rule.id)) continue;
    std::printf("%-6s %-38s %-8s %s\n", rule.id, rule.name,
                dsp::analysis::to_string(rule.severity), rule.paper_ref);
    std::printf("       %s\n", rule.summary);
  }
  return 0;
}

/// Line-number-free identity of a finding for --baseline files: edits
/// above a finding must not make it "new".
std::string baseline_key(const dsp::analysis::Diagnostic& d) {
  std::string file = d.subject;
  const std::size_t colon = file.rfind(':');
  if (colon != std::string::npos &&
      file.find_first_not_of("0123456789", colon + 1) == std::string::npos)
    file.resize(colon);
  std::string msg;
  for (const char c : d.message) {
    if (c == '\n') msg += "\\n";
    else if (c == '\t') msg += "\\t";
    else msg += c;
  }
  return d.rule + "\t" + file + "\t" + msg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "rules") == 0 ||
      std::strcmp(argv[1], "--list-rules") == 0)
    return list_rules();

  std::vector<std::string> paths;
  std::string json_path;
  std::string compdb_path;
  std::string baseline_path;
  std::vector<std::string> filter;
  bool srclint = false;
  bool flow = false;
  bool dataflow = false;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = need_value("--json");
      if (!v) return 2;
      json_path = v;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      const char* v = need_value("--rules");
      if (!v) return 2;
      filter = split_rules(v);
    } else if (std::strcmp(argv[i], "--compdb") == 0) {
      const char* v = need_value("--compdb");
      if (!v) return 2;
      compdb_path = v;
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      const char* v = need_value("--baseline");
      if (!v) return 2;
      baseline_path = v;
    } else if (std::strcmp(argv[i], "--srclint") == 0) {
      srclint = true;
    } else if (std::strcmp(argv[i], "--flow") == 0) {
      flow = true;
    } else if (std::strcmp(argv[i], "--dataflow") == 0) {
      dataflow = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      return usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() && compdb_path.empty()) return usage(argv[0]);
  if (!srclint && !flow && !dataflow) srclint = true;  // historical default
  for (const std::string& id : filter) {
    if (!dsp::analysis::find_rule(id)) {
      std::fprintf(stderr, "%s: unknown rule id %s (see `%s rules`)\n",
                   argv[0], id.c_str(), argv[0]);
      return 2;
    }
  }

  std::string error;
  std::vector<std::string> files;
  if (!compdb_path.empty()) {
    if (!dsp::analysis::collect_sources_from_compdb(compdb_path, files,
                                                    &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 2;
    }
  }
  if (!paths.empty() &&
      !dsp::analysis::collect_sources(paths, files, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }

  const auto scan_start = std::chrono::steady_clock::now();
  dsp::analysis::Report report;
  report.set_rule_filter(filter);

  // One read + lex per file feeds every requested mode; --flow and
  // --dataflow additionally share a single CppIndex.
  dsp::analysis::SourceCache cache;
  dsp::analysis::CppIndex index;
  std::map<std::string, std::vector<dsp::analysis::Line>> lines_by_file;
  const bool need_index = flow || dataflow;
  for (const std::string& file : files) {
    const auto& entry = cache.load_file(file);
    if (!entry.ok) {
      std::fprintf(stderr, "%s: %s\n", argv[0], entry.error.c_str());
      return 2;
    }
    if (srclint) dsp::analysis::scan_source_lines(file, entry.lines, report);
    if (need_index) {
      dsp::analysis::index_source_lines(file, entry.lines, index);
      lines_by_file.emplace(dsp::analysis::normalize_path(file), entry.lines);
    }
  }
  if (flow) dsp::analysis::analyze_flow_index(index, report);
  if (dataflow)
    dsp::analysis::analyze_value_index(index, lines_by_file, report);
  report.set_scan_seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scan_start)
          .count());

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::ofstream out(baseline_path);
      if (!out) {
        std::fprintf(stderr, "%s: cannot write baseline %s\n", argv[0],
                     baseline_path.c_str());
        return 2;
      }
      for (const auto& d : report.diagnostics()) out << baseline_key(d) << '\n';
      std::fprintf(stdout, "dsp_tidy: wrote baseline (%zu findings) to %s\n",
                   report.diagnostics().size(), baseline_path.c_str());
      dsp::analysis::Report fresh;
      fresh.set_scan_seconds(report.scan_seconds());
      report = fresh;
    } else {
      std::set<std::string> known;
      for (std::string line; std::getline(in, line);)
        if (!line.empty()) known.insert(line);
      dsp::analysis::Report fresh;
      for (const auto& d : report.diagnostics())
        if (known.count(baseline_key(d)) == 0)
          fresh.add(d.rule, d.severity, d.subject, d.message);
      fresh.set_scan_seconds(report.scan_seconds());
      report = fresh;
    }
  }

  const std::string input =
      paths.empty() ? compdb_path
      : paths.size() == 1
          ? paths.front()
          : paths.front() + " (+" + std::to_string(paths.size() - 1) +
                " more)";
  if (json_path.empty()) {
    report.print_text(std::cout);
  } else if (json_path == "-") {
    report.write_json(std::cout, "source", input);
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   json_path.c_str());
      return 2;
    }
    report.write_json(out, "source", input);
    report.print_text(std::cout);  // keep the human-readable summary
  }
  return report.has_errors() ? 1 : 0;
}
