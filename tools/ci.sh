#!/usr/bin/env bash
# Full local CI: tier-1 build + tests, sanitizer presets, static lint,
# and the dsp-analyze rule engine over the shipped fixtures.
#
# Stages (each skippable via DSP_CI_SKIP="stage1 stage2 ..."):
#   tier1    cmake + build + full ctest in ./build
#   asan     address/undefined preset: build + full ctest
#   tsan     thread preset: build + the concurrency-focused tests
#            (the rest of the suite is single-threaded; running it
#            under TSan adds minutes, not coverage)
#   ubsan    undefined-behaviour preset (+ -fsanitize=integer where the
#            compiler supports it): build + full ctest
#   lint     tools/lint.sh (clang-tidy or strict-warning fallback)
#   srclint  dsp_tidy self-scan of src/ (must be clean, --json validated
#            by json_check) plus the seeded per-rule fixtures, which must
#            each fail naming exactly their rule
#   flow     dsp_tidy --flow interprocedural lock-order/determinism
#            analysis: src/ must scan clean in under 5 seconds (--json
#            validated by json_check), and the seeded lockflow fixtures
#            must each fail naming exactly their rule
#   dataflow dsp_tidy --dataflow value-range & taint analysis: the full
#            three-mode scan of src/ must be clean in under 10 seconds
#            (--json with scan.seconds validated by json_check), the
#            seeded valueflow fixtures must each fail naming exactly
#            their rule, and the --baseline write/suppress round trip
#            must work
#   threadsafety  clang++ build with -DDSP_THREAD_SAFETY=ON so the
#            Clang Thread Safety Analysis annotations are checked as
#            errors; skipped (with a notice) when clang++ is not
#            installed
#   analyze  dsp_analyze over examples/workloads and the analysis
#            fixtures, with --json output validated by json_check
#   bench-smoke  micro_bench hot-path benchmarks at a tiny min_time,
#            with the --json report validated by json_check
#   bench-diff  micro_bench scalars compared against the committed
#            bench/BENCH_hotpath.json baseline via bench_diff; the
#            threshold is generous (CI machines are noisy) — it
#            catches order-of-magnitude slips, not drift
#   report-smoke  flight recorder end to end: quickstart with
#            DSP_EVENT_LOG, dsp_report --json validated by json_check,
#            and a first-divergence diff of DSP_THREADS=1 vs =4
#            same-seed logs, which must report zero divergence
#   sweep-smoke  dsp_sweep over a small scenario grid at --threads 1
#            and 4: the two --json reports must be byte-identical (the
#            grid runner's determinism contract) and pass json_check
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP="${DSP_CI_SKIP:-}"

skipped() { [[ " $SKIP " == *" $1 "* ]]; }
banner() { echo; echo "==== ci: $1 ===="; }

if ! skipped tier1; then
  banner "tier1 build + tests"
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
fi

if ! skipped asan; then
  banner "asan preset"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j
  ctest --preset asan -j
fi

if ! skipped tsan; then
  banner "tsan preset (concurrency tests)"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j
  ctest --preset tsan -R 'thread_pool_stress_test|util_test|determinism_test'
fi

if ! skipped ubsan; then
  banner "ubsan preset"
  cmake --preset ubsan >/dev/null
  cmake --build --preset ubsan -j
  ctest --preset ubsan -j
fi

if ! skipped lint; then
  banner "lint"
  BUILD_DIR=build tools/lint.sh
fi

if ! skipped srclint; then
  banner "srclint (dsp_tidy source rules)"
  TIDY=build/tools/dsp_tidy
  JSON_CHECK=build/tools/json_check
  srclint_tmp=$(mktemp -d)

  echo "dsp_tidy src/ (self-scan must be clean)"
  "$TIDY" src/ --json "$srclint_tmp/tidy.json"
  "$JSON_CHECK" "$srclint_tmp/tidy.json" analyzer input.kind diagnostics summary.error

  # Seeded-violation fixtures must fail with exactly their rule.
  for f in tests/fixtures/srclint/[dc][0-9]*.cpp; do
    base=$(basename "$f")
    rule=$(echo "${base%%_*}" | tr '[:lower:]' '[:upper:]')
    if "$TIDY" "$f" >"$srclint_tmp/seed.txt" 2>&1; then
      echo "ci: $f unexpectedly scanned clean (wanted $rule)"; exit 1
    fi
    grep -q "$rule" "$srclint_tmp/seed.txt" || { echo "ci: $f did not report $rule"; exit 1; }
    if "$TIDY" "$f" --rules "$rule" >/dev/null 2>&1; then
      echo "ci: $f clean under --rules $rule"; exit 1
    fi
    echo "seeded $rule ok ($f)"
  done

  echo "dsp_tidy tests/fixtures/srclint/clean.cpp"
  "$TIDY" tests/fixtures/srclint/clean.cpp >/dev/null
  rm -rf "$srclint_tmp"
fi

if ! skipped flow; then
  banner "flow (dsp_tidy --flow interprocedural analysis)"
  TIDY=build/tools/dsp_tidy
  JSON_CHECK=build/tools/json_check
  flow_tmp=$(mktemp -d)

  echo "dsp_tidy --flow src/ (must be clean, and fast)"
  flow_start=$(date +%s)
  "$TIDY" --flow src/ --json "$flow_tmp/flow.json"
  flow_elapsed=$(( $(date +%s) - flow_start ))
  "$JSON_CHECK" "$flow_tmp/flow.json" analyzer input.kind diagnostics summary.error
  if [ "$flow_elapsed" -ge 5 ]; then
    echo "ci: flow scan took ${flow_elapsed}s (budget: < 5s)"; exit 1
  fi
  echo "flow scan clean in ${flow_elapsed}s"

  # Seeded interprocedural fixtures must fail with exactly their rule.
  for f in tests/fixtures/lockflow/[ld][0-9]*.cpp; do
    base=$(basename "$f")
    rule=$(echo "${base%%_*}" | tr '[:lower:]' '[:upper:]')
    if "$TIDY" --flow "$f" >"$flow_tmp/seed.txt" 2>&1; then
      echo "ci: $f unexpectedly scanned clean (wanted $rule)"; exit 1
    fi
    grep -q "$rule" "$flow_tmp/seed.txt" || { echo "ci: $f did not report $rule"; exit 1; }
    echo "seeded $rule ok ($f)"
  done

  echo "dsp_tidy --flow tests/fixtures/lockflow/clean.cpp"
  "$TIDY" --flow tests/fixtures/lockflow/clean.cpp >/dev/null
  rm -rf "$flow_tmp"
fi

if ! skipped dataflow; then
  banner "dataflow (dsp_tidy --dataflow value-range & taint analysis)"
  TIDY=build/tools/dsp_tidy
  JSON_CHECK=build/tools/json_check
  df_tmp=$(mktemp -d)

  echo "dsp_tidy --srclint --flow --dataflow src/ (must be clean, and fast)"
  df_start=$(date +%s)
  "$TIDY" --srclint --flow --dataflow src/ --json "$df_tmp/dataflow.json"
  df_elapsed=$(( $(date +%s) - df_start ))
  "$JSON_CHECK" "$df_tmp/dataflow.json" \
    analyzer input.kind diagnostics scan.seconds summary.error
  if [ "$df_elapsed" -ge 10 ]; then
    echo "ci: three-mode scan took ${df_elapsed}s (budget: < 10s)"; exit 1
  fi
  echo "three-mode scan clean in ${df_elapsed}s"

  # Seeded value-range / taint fixtures must fail with exactly their rule.
  for f in tests/fixtures/valueflow/[vt][0-9]*.cpp; do
    base=$(basename "$f")
    rule=$(echo "${base%%_*}" | tr '[:lower:]' '[:upper:]')
    if "$TIDY" --dataflow "$f" >"$df_tmp/seed.txt" 2>&1; then
      echo "ci: $f unexpectedly scanned clean (wanted $rule)"; exit 1
    fi
    grep -q "$rule" "$df_tmp/seed.txt" || { echo "ci: $f did not report $rule"; exit 1; }
    if "$TIDY" --dataflow "$f" --rules "$rule" >/dev/null 2>&1; then
      echo "ci: $f clean under --rules $rule"; exit 1
    fi
    echo "seeded $rule ok ($f)"
  done

  echo "dsp_tidy --dataflow tests/fixtures/valueflow/clean.cpp"
  "$TIDY" --dataflow tests/fixtures/valueflow/clean.cpp >/dev/null

  echo "dsp_tidy --baseline round trip"
  seed_any=$(ls tests/fixtures/valueflow/[vt][0-9]*.cpp | head -1)
  "$TIDY" --dataflow "$seed_any" --baseline "$df_tmp/baseline.txt" >/dev/null
  [ -s "$df_tmp/baseline.txt" ] || { echo "ci: baseline write produced no entries"; exit 1; }
  "$TIDY" --dataflow "$seed_any" --baseline "$df_tmp/baseline.txt" >/dev/null \
    || { echo "ci: baselined findings still reported"; exit 1; }
  rm -rf "$df_tmp"
fi

if ! skipped threadsafety; then
  banner "thread-safety analysis (clang)"
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . \
      -DCMAKE_CXX_COMPILER=clang++ -DDSP_THREAD_SAFETY=ON >/dev/null
    cmake --build build-tsa -j
    echo "thread-safety: clean"
  else
    echo "thread-safety: clang++ not installed; skipping (annotations"
    echo "compile away under GCC — see src/util/thread_annotations.h)"
  fi
fi

if ! skipped analyze; then
  banner "dsp-analyze over fixtures"
  ANALYZE=build/tools/dsp_analyze
  JSON_CHECK=build/tools/json_check
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT

  for f in examples/workloads/*.csv tests/fixtures/analysis/clean_workload.csv; do
    echo "analyze workload $f"
    "$ANALYZE" workload "$f" --json "$tmp/out.json" >/dev/null
    "$JSON_CHECK" "$tmp/out.json" analyzer input.kind diagnostics summary.error
  done
  echo "analyze schedule tests/fixtures/analysis/clean_schedule.json"
  "$ANALYZE" schedule tests/fixtures/analysis/clean_schedule.json \
    --json "$tmp/out.json" >/dev/null
  "$JSON_CHECK" "$tmp/out.json" analyzer summary.error
  echo "analyze audit tests/fixtures/analysis/clean_audit.json"
  "$ANALYZE" audit tests/fixtures/analysis/clean_audit.json \
    --workload tests/fixtures/analysis/audit_workload.csv \
    --json "$tmp/out.json" >/dev/null
  "$JSON_CHECK" "$tmp/out.json" analyzer summary.error

  # Seeded-violation fixtures must fail with exactly their rule.
  declare -A seeded=(
    [workload]="w000_malformed.csv:W000 w001_cycle.csv:W001 w002_bad_parent.csv:W002 w003_tight_deadline.csv:W003 w004_oversized_demand.csv:W004 w005_invalid_structure.csv:W005"
    [schedule]="s000_malformed.json:S000 s001_dependency_order.json:S001 s002_node_overlap.json:S002 s003_deadline_violation.json:S003 s004_unplaced_task.json:S004 s005_makespan_understated.json:S005"
    [audit]="p000_malformed.json:P000 p001_monotonicity.json:P001 p002_priority_gap.json:P002 p003_dependency_on_victim.json:P003 p004_rho_normalization.json:P004"
  )
  for mode in workload schedule audit; do
    for pair in ${seeded[$mode]}; do
      file="tests/fixtures/analysis/${pair%%:*}"
      rule="${pair##*:}"
      extra=""
      [ "$mode" = audit ] && extra="--workload tests/fixtures/analysis/audit_workload.csv"
      if "$ANALYZE" "$mode" "$file" $extra --rules "$rule" >"$tmp/seed.txt" 2>&1; then
        echo "ci: $file unexpectedly analyzed clean (wanted $rule)"; exit 1
      fi
      grep -q "$rule" "$tmp/seed.txt" || { echo "ci: $file did not report $rule"; exit 1; }
      echo "seeded $rule ok ($file)"
    done
  done
fi

if ! skipped bench-smoke; then
  banner "bench smoke (micro_bench hot paths)"
  # No EXIT trap here: the analyze stage may already own it.
  smoke_tmp=$(mktemp -d)
  build/bench/micro_bench \
    --benchmark_filter='BM_Simplex|BM_Milp|BM_PriorityComputeJob|BM_ComputeAll' \
    --benchmark_min_time=0.05 \
    --json "$smoke_tmp/micro.json"
  build/tools/json_check "$smoke_tmp/micro.json" \
    bench env.scale env.seed env.points series runs scalars \
    scalars.BM_SimplexSolve_60_ns scalars.BM_MilpSolve_1_ns scalars.BM_PriorityComputeJob_1000_ns \
    scalars.BM_ComputeAllIncremental_20_ns \
    registry.counters registry.gauges registry.histograms
  rm -rf "$smoke_tmp"
fi

if ! skipped bench-diff; then
  banner "bench diff (vs committed BENCH_hotpath.json)"
  diff_tmp=$(mktemp -d)
  build/bench/micro_bench \
    --benchmark_filter='BM_Simplex|BM_Milp|BM_PriorityComputeJob|BM_ComputeAll|BM_EngineRun|BM_SweepGrid' \
    --benchmark_min_time=0.05 \
    --json "$diff_tmp/micro.json" >/dev/null
  build/tools/bench_diff bench/BENCH_hotpath.json "$diff_tmp/micro.json" \
    --threshold 100 --json "$diff_tmp/diff.json"
  build/tools/json_check "$diff_tmp/diff.json" \
    report compared regressions threshold_pct scalars
  rm -rf "$diff_tmp"
fi

if ! skipped report-smoke; then
  banner "report smoke (flight recorder + dsp_report)"
  report_tmp=$(mktemp -d)
  REPORT=build/tools/dsp_report
  JSON_CHECK=build/tools/json_check

  echo "quickstart with DSP_EVENT_LOG (threads 1 and 4)"
  DSP_EVENT_LOG="$report_tmp/t1.jsonl" DSP_THREADS=1 \
    build/examples/quickstart >/dev/null
  DSP_EVENT_LOG="$report_tmp/t4.jsonl" DSP_THREADS=4 \
    build/examples/quickstart >/dev/null

  echo "dsp_report --json"
  "$REPORT" "$report_tmp/t1.jsonl" --json "$report_tmp/report.json" >/dev/null
  "$JSON_CHECK" "$report_tmp/report.json" \
    report events jobs.count jobs.completed queueing_delay_s.count \
    preempt_latency_s.count preempt.decisions utilization.epochs \
    utilization.mean per_job

  echo "dsp_report diff (same seed, threads 1 vs 4: must be identical)"
  "$REPORT" diff "$report_tmp/t1.jsonl" "$report_tmp/t4.jsonl" \
    --json "$report_tmp/diff.json"
  "$JSON_CHECK" "$report_tmp/diff.json" report divergence events_a events_b
  rm -rf "$report_tmp"
fi

if ! skipped sweep-smoke; then
  banner "sweep smoke (dsp_sweep grid, threads 1 vs 4)"
  sweep_tmp=$(mktemp -d)
  SWEEP=build/tools/dsp_sweep
  JSON_CHECK=build/tools/json_check

  echo "dsp_sweep small grid at --threads 1 and --threads 4"
  "$SWEEP" --cluster ec2 --sched dsp --policy dsp,srpt,none \
    --jobs 10,20 --seeds 42 --scale 0.02 \
    --threads 1 --json "$sweep_tmp/t1.json" >/dev/null
  "$SWEEP" --cluster ec2 --sched dsp --policy dsp,srpt,none \
    --jobs 10,20 --seeds 42 --scale 0.02 \
    --threads 4 --json "$sweep_tmp/t4.json" >/dev/null

  echo "reports must be byte-identical (determinism contract)"
  cmp "$sweep_tmp/t1.json" "$sweep_tmp/t4.json"

  "$JSON_CHECK" "$sweep_tmp/t1.json" \
    sweep.scale sweep.scenarios scenarios
  rm -rf "$sweep_tmp"
fi

echo
echo "==== ci: all stages passed ===="
