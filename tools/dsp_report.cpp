// dsp_report: run analytics and first-divergence diff over flight
// recorder event logs (JSONL, written via DSP_EVENT_LOG — see
// src/obs/events.h).
//
//   dsp_report <log.jsonl> [--json <out.json>]
//       Per-job timelines, queueing-delay and preemption-latency
//       histograms, and a per-epoch cluster-utilization time series.
//       Text tables on stdout; --json writes a machine-readable report
//       (validated by json_check in the report-smoke CI stage).
//
//   dsp_report diff <a.jsonl> <b.jsonl> [--json <out.json>]
//       Byte-compares the two logs line by line and pinpoints the
//       earliest differing event. Because every emit point sits in the
//       engine's serial loop, logs from same-seed runs must be
//       bit-identical at any DSP_THREADS — a non-empty diff localizes a
//       determinism bug to the first event where the runs disagree.
//       Exit 0 when identical, 1 on divergence, 2 on usage/parse errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/table.h"
#include "util/time.h"

namespace dsp {
namespace {

constexpr double kUsPerSecond = 1e6;

/// Everything the analytics mode derives from one parsed log.
struct RunReport {
  struct JobRow {
    std::uint32_t job = 0;
    double tasks = 0.0;       // from kJobArrival payload a
    SimTime arrival = -1;
    SimTime first_dispatch = -1;
    SimTime complete = -1;
    bool completed = false;
    bool deadline_met = false;
    double mean_wait_s = 0.0;  // from kJobComplete payload a
  };
  struct EpochUtil {
    std::uint32_t epoch = 0;
    double util = 0.0;  // occupied-slot-time / (slots * wall)
  };

  std::size_t events = 0;
  double slots = 0.0;  // from kRunInfo payload b (0 when absent)
  std::vector<JobRow> jobs;
  obs::Histo queueing_delay;    // enqueue -> dispatch, seconds
  obs::Histo preempt_latency;   // preempt -> re-dispatch, seconds
  std::vector<EpochUtil> utilization;
  std::uint64_t preempt_decisions = 0;
  std::uint64_t preempt_fired = 0;
};

// Out-parameter because RunReport is non-movable (Histo owns a Mutex).
void analyze(const std::vector<obs::Event>& events, RunReport& r) {
  r.events = events.size();

  std::map<std::uint32_t, RunReport::JobRow> jobs;
  std::map<Gid, SimTime> enqueued_at;   // pending enqueue per task
  std::map<Gid, SimTime> preempted_at;  // awaiting re-dispatch per task

  // Slot-occupancy integration between epoch boundaries. A slot is
  // occupied while a task runs on it or hoards it; kEpoch events close
  // the current bucket.
  int occupied = 0;
  SimTime last_time = 0;
  SimTime bucket_start = 0;
  double bucket_busy_us = 0.0;  // sum of occupied * dt
  std::uint32_t bucket_epoch = 0;
  auto close_bucket = [&](SimTime now) {
    const double wall_us = static_cast<double>(now - bucket_start);
    if (wall_us > 0.0 && r.slots > 0.0)
      r.utilization.push_back(
          {bucket_epoch, bucket_busy_us / (r.slots * wall_us)});
    bucket_start = now;
    bucket_busy_us = 0.0;
  };

  for (const obs::Event& e : events) {
    bucket_busy_us += static_cast<double>(occupied) *
                      static_cast<double>(e.time - last_time);
    last_time = e.time;

    switch (e.kind) {
      case obs::EventKind::kRunInfo:
        r.slots = e.b;
        break;
      case obs::EventKind::kJobArrival: {
        RunReport::JobRow& row = jobs[e.job];
        row.job = e.job;
        row.tasks = e.a;
        row.arrival = e.time;
        break;
      }
      case obs::EventKind::kJobComplete: {
        RunReport::JobRow& row = jobs[e.job];
        row.job = e.job;
        row.complete = e.time;
        row.completed = true;
        row.deadline_met = (e.flags & obs::kEventFlagDeadlineMet) != 0;
        row.mean_wait_s = e.a;
        break;
      }
      case obs::EventKind::kTaskEnqueue:
        enqueued_at[e.task] = e.time;
        break;
      case obs::EventKind::kTaskDispatch: {
        RunReport::JobRow& row = jobs[e.job];
        row.job = e.job;
        if (row.first_dispatch < 0) row.first_dispatch = e.time;
        if (auto it = enqueued_at.find(e.task); it != enqueued_at.end()) {
          r.queueing_delay.add(
              static_cast<double>(e.time - it->second) / kUsPerSecond);
          enqueued_at.erase(it);
        }
        if (auto it = preempted_at.find(e.task); it != preempted_at.end()) {
          r.preempt_latency.add(
              static_cast<double>(e.time - it->second) / kUsPerSecond);
          preempted_at.erase(it);
        }
        ++occupied;
        break;
      }
      case obs::EventKind::kHoardStart:
        ++occupied;
        break;
      case obs::EventKind::kTaskFinish:
      case obs::EventKind::kHoardEvict:
        if (occupied > 0) --occupied;
        break;
      case obs::EventKind::kTaskPreempt:
        preempted_at[e.task] = e.time;
        if (occupied > 0) --occupied;
        break;
      case obs::EventKind::kPreemptDecision: {
        ++r.preempt_decisions;
        // PreemptOutcome::kFired is ordinal 0 in the flag bits.
        if (((e.flags >> obs::kEventFlagOutcomeShift) & 0x3) == 0)
          ++r.preempt_fired;
        break;
      }
      case obs::EventKind::kEpoch:
        close_bucket(e.time);
        bucket_epoch = static_cast<std::uint32_t>(e.a);
        break;
      default:
        break;
    }
  }
  close_bucket(last_time);

  r.jobs.reserve(jobs.size());
  for (auto& [id, row] : jobs) r.jobs.push_back(row);
}

std::string fmt_time_s(SimTime t) {
  return t < 0 ? std::string("-") : fmt(to_seconds(t), 3);
}

void print_text(const RunReport& r) {
  Table jobs{"Per-job timeline (times in s)"};
  jobs.set_header({"job", "tasks", "arrival", "first_dispatch", "complete",
                   "span", "deadline", "mean_wait"});
  for (const auto& j : r.jobs) {
    const double span =
        j.completed && j.arrival >= 0 ? to_seconds(j.complete - j.arrival) : -1;
    jobs.add_row({fmt_count(j.job), fmt_count(static_cast<long long>(j.tasks)),
                  fmt_time_s(j.arrival), fmt_time_s(j.first_dispatch),
                  fmt_time_s(j.complete), span < 0 ? "-" : fmt(span, 3),
                  j.completed ? (j.deadline_met ? "met" : "miss") : "-",
                  fmt(j.mean_wait_s, 3)});
  }
  std::fputs(jobs.render().c_str(), stdout);

  Table histos{"Latency distributions (s)"};
  histos.set_header(
      {"metric", "count", "mean", "p50", "p95", "p99", "max"});
  for (const auto& [name, h] :
       {std::pair<const char*, const obs::Histo*>{"queueing_delay",
                                                  &r.queueing_delay},
        {"preempt_latency", &r.preempt_latency}}) {
    const auto s = h->snapshot();
    histos.add_row({name, fmt_count(static_cast<long long>(s.count)),
                    fmt(s.mean, 4), fmt(s.p50, 4), fmt(s.p95, 4),
                    fmt(s.p99, 4), fmt(s.max, 4)});
  }
  std::fputs(histos.render().c_str(), stdout);

  Table util{"Cluster utilization per epoch"};
  util.set_header({"epoch", "util"});
  for (const auto& u : r.utilization)
    util.add_row({fmt_count(u.epoch), fmt(u.util, 4)});
  std::fputs(util.render().c_str(), stdout);

  std::printf("\n%zu events; %llu preempt decisions (%llu fired)\n", r.events,
              static_cast<unsigned long long>(r.preempt_decisions),
              static_cast<unsigned long long>(r.preempt_fired));
}

void write_histo_json(std::ostream& out, const obs::Histo& h) {
  const auto s = h.snapshot();
  out << "{\"count\":" << s.count << ",\"mean\":";
  obs::write_json_number(out, s.mean);
  out << ",\"p50\":";
  obs::write_json_number(out, s.p50);
  out << ",\"p95\":";
  obs::write_json_number(out, s.p95);
  out << ",\"p99\":";
  obs::write_json_number(out, s.p99);
  out << ",\"max\":";
  obs::write_json_number(out, s.max);
  out << "}";
}

bool write_json_report(const RunReport& r, const std::string& log_path,
                       const std::string& out_path) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "dsp_report: cannot open %s\n", out_path.c_str());
    return false;
  }
  std::size_t completed = 0, met = 0;
  for (const auto& j : r.jobs) {
    completed += j.completed ? 1 : 0;
    met += j.deadline_met ? 1 : 0;
  }
  double util_sum = 0.0;
  for (const auto& u : r.utilization) util_sum += u.util;

  out << "{\"report\":\"run\",\"log\":\"" << obs::json_escape(log_path)
      << "\",\"events\":" << r.events << ",\"jobs\":{\"count\":"
      << r.jobs.size() << ",\"completed\":" << completed
      << ",\"deadline_met\":" << met << "},\"queueing_delay_s\":";
  write_histo_json(out, r.queueing_delay);
  out << ",\"preempt_latency_s\":";
  write_histo_json(out, r.preempt_latency);
  out << ",\"preempt\":{\"decisions\":" << r.preempt_decisions
      << ",\"fired\":" << r.preempt_fired << "}";
  out << ",\"utilization\":{\"epochs\":" << r.utilization.size()
      << ",\"mean\":";
  obs::write_json_number(
      out, r.utilization.empty()
               ? 0.0
               : util_sum / static_cast<double>(r.utilization.size()));
  out << ",\"series\":[";
  for (std::size_t i = 0; i < r.utilization.size(); ++i) {
    if (i) out << ",";
    out << "{\"epoch\":" << r.utilization[i].epoch << ",\"util\":";
    obs::write_json_number(out, r.utilization[i].util);
    out << "}";
  }
  out << "]},\"per_job\":[";
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    const auto& j = r.jobs[i];
    if (i) out << ",";
    out << "{\"job\":" << j.job << ",\"tasks\":"
        << static_cast<long long>(j.tasks) << ",\"arrival_s\":";
    obs::write_json_number(out, j.arrival < 0 ? -1.0 : to_seconds(j.arrival));
    out << ",\"complete_s\":";
    obs::write_json_number(out,
                           j.complete < 0 ? -1.0 : to_seconds(j.complete));
    out << ",\"completed\":" << (j.completed ? "true" : "false")
        << ",\"deadline_met\":" << (j.deadline_met ? "true" : "false")
        << ",\"mean_wait_s\":";
    obs::write_json_number(out, j.mean_wait_s);
    out << "}";
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

/// Reads all lines of `path` (without trailing newlines). False on I/O
/// failure.
bool read_lines(const std::string& path, std::vector<std::string>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return true;
}

int run_diff(const std::string& a_path, const std::string& b_path,
             const std::string& json_path) {
  std::vector<std::string> a, b;
  if (!read_lines(a_path, a)) {
    std::fprintf(stderr, "dsp_report: cannot open %s\n", a_path.c_str());
    return 2;
  }
  if (!read_lines(b_path, b)) {
    std::fprintf(stderr, "dsp_report: cannot open %s\n", b_path.c_str());
    return 2;
  }

  // First divergence: the earliest line index where the logs disagree,
  // including one log simply ending before the other.
  long long divergence = -1;
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      divergence = static_cast<long long>(i);
      break;
    }
  }
  if (divergence < 0 && a.size() != b.size())
    divergence = static_cast<long long>(common);

  const std::string line_a =
      divergence >= 0 && static_cast<std::size_t>(divergence) < a.size()
          ? a[static_cast<std::size_t>(divergence)]
          : std::string();
  const std::string line_b =
      divergence >= 0 && static_cast<std::size_t>(divergence) < b.size()
          ? b[static_cast<std::size_t>(divergence)]
          : std::string();

  if (divergence < 0) {
    std::printf("identical: %zu events\n", a.size());
  } else {
    std::printf("first divergence at event %lld\n", divergence);
    std::printf("  a: %s\n", line_a.empty() ? "<end of log>" : line_a.c_str());
    std::printf("  b: %s\n", line_b.empty() ? "<end of log>" : line_b.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "dsp_report: cannot open %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"report\":\"diff\",\"a\":\"" << obs::json_escape(a_path)
        << "\",\"b\":\"" << obs::json_escape(b_path)
        << "\",\"events_a\":" << a.size() << ",\"events_b\":" << b.size()
        << ",\"divergence\":" << divergence << ",\"line_a\":\""
        << obs::json_escape(line_a) << "\",\"line_b\":\""
        << obs::json_escape(line_b) << "\"}\n";
    if (!out) return 2;
  }
  return divergence < 0 ? 0 : 1;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <log.jsonl> [--json <out.json>]\n"
               "       %s diff <a.jsonl> <b.jsonl> [--json <out.json>]\n",
               argv0, argv0);
  return 2;
}

}  // namespace
}  // namespace dsp

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return dsp::usage(argv[0]);
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return dsp::usage(argv[0]);
    } else {
      pos.push_back(arg);
    }
  }

  if (pos.size() == 3 && pos[0] == "diff")
    return dsp::run_diff(pos[1], pos[2], json_path);
  if (pos.size() != 1) return dsp::usage(argv[0]);

  const dsp::obs::EventParseResult parsed = dsp::obs::read_event_log(pos[0]);
  if (!parsed.ok()) {
    std::fprintf(stderr, "dsp_report: %s: %s\n", pos[0].c_str(),
                 parsed.error.c_str());
    return 2;
  }
  dsp::RunReport report;
  dsp::analyze(parsed.events, report);
  dsp::print_text(report);
  if (!json_path.empty() && !dsp::write_json_report(report, pos[0], json_path))
    return 2;
  return 0;
}
