// dsp_analyze: static rule engine CLI for workloads, schedules, and
// preemption audit trails (src/analysis).
//
//   dsp_analyze workload <trace.csv> [--cluster <spec>] [--rate <mips>]
//   dsp_analyze schedule <schedule.json>
//   dsp_analyze audit <audit.json> [--workload <trace.csv>] [--rate <mips>]
//   dsp_analyze rules | --list-rules
// Common flags:
//   --json <path|->   machine-readable diagnostics (json_check-compatible)
//   --rules <ids>     comma-separated rule filter, e.g. W001,W003
//   --cluster <spec>  ec2:<n> | real:<n> | uniform:<n>:<mips>:<mem_gb>:<slots>
//                     (default ec2:30, the paper's EC2 testbed)
//
// Exit codes: 0 = no error-severity findings, 1 = at least one error
// finding, 2 = usage or I/O problem.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rules.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s workload <trace.csv> [--cluster <spec>] [--rate "
               "<mips>] [--json <path|->] [--rules <ids>]\n"
               "       %s schedule <schedule.json> [--json ...] [--rules ...]\n"
               "       %s audit <audit.json> [--workload <trace.csv>] [--rate "
               "<mips>] [--json ...] [--rules ...]\n"
               "       %s rules | --list-rules\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

std::vector<std::string> split_rules(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int list_rules() {
  std::printf("%-6s %-38s %-8s %s\n", "ID", "NAME", "SEVERITY", "PAPER");
  for (const auto& rule : dsp::analysis::rule_catalog()) {
    std::printf("%-6s %-38s %-8s %s\n", rule.id, rule.name,
                dsp::analysis::to_string(rule.severity), rule.paper_ref);
    std::printf("       %s\n", rule.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "rules" || mode == "--list-rules") return list_rules();
  if (argc < 3) return usage(argv[0]);
  if (mode != "workload" && mode != "schedule" && mode != "audit")
    return usage(argv[0]);
  const std::string input = argv[2];

  std::string cluster_spec = "ec2:30";
  std::string workload_path;
  std::string json_path;
  std::vector<std::string> filter;
  double reference_rate = 2660.0;
  for (int i = 3; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cluster") == 0) {
      const char* v = need_value("--cluster");
      if (!v) return 2;
      cluster_spec = v;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      const char* v = need_value("--workload");
      if (!v) return 2;
      workload_path = v;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = need_value("--json");
      if (!v) return 2;
      json_path = v;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      const char* v = need_value("--rules");
      if (!v) return 2;
      filter = split_rules(v);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const char* v = need_value("--rate");
      if (!v) return 2;
      char* end = nullptr;
      reference_rate = std::strtod(v, &end);
      if (!end || *end != '\0' || reference_rate <= 0.0) {
        std::fprintf(stderr, "%s: --rate expects a positive MIPS value\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      return usage(argv[0]);
    }
  }
  for (const std::string& id : filter) {
    if (!dsp::analysis::find_rule(id)) {
      std::fprintf(stderr, "%s: unknown rule id %s (see `%s rules`)\n",
                   argv[0], id.c_str(), argv[0]);
      return 2;
    }
  }

  dsp::analysis::Report report;
  if (mode == "workload") {
    dsp::ClusterSpec cluster;
    std::string error;
    if (!dsp::analysis::parse_cluster_spec(cluster_spec, cluster, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 2;
    }
    report = dsp::analysis::analyze_workload_file(input, cluster,
                                                  reference_rate, filter);
  } else if (mode == "schedule") {
    report = dsp::analysis::analyze_schedule_file(input, filter);
  } else {
    report = dsp::analysis::analyze_audit_file(input, workload_path,
                                               reference_rate, filter);
  }

  if (json_path.empty()) {
    report.print_text(std::cout);
  } else if (json_path == "-") {
    report.write_json(std::cout, mode, input);
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   json_path.c_str());
      return 2;
    }
    report.write_json(out, mode, input);
    report.print_text(std::cout);  // keep the human-readable summary
  }
  return report.has_errors() ? 1 : 0;
}
