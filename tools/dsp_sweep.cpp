// dsp_sweep — parallel scenario-grid runner.
//
// Expands the cross product of the --cluster/--sched/--policy/--jobs/
// --seeds axes into a ScenarioSpec grid, runs it over a thread pool
// (sim/scenario.h run_scenario_grid) and reports one row per scenario.
//
//   dsp_sweep --cluster real,ec2 --sched dsp --policy dsp,srpt
//             --jobs 150,300 --seeds 42,43 --threads 4 --json sweep.json
//
// Determinism contract: each scenario is a pure function of its spec.
// The grid is sorted by scenario name before running and sim_wall_s is
// zeroed in the JSON (wall clock is the only non-deterministic field), so
// the report is byte-identical at any --threads setting and any axis
// order on the command line. tools/ci.sh sweep-smoke enforces this.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "obs/metrics.h"
#include "scenarios/standard.h"
#include "sim/scenario.h"
#include "util/time.h"

namespace {

using namespace dsp;

struct Cli {
  std::vector<ClusterProfile> clusters{ClusterProfile::kEc2};
  std::vector<SchedKind> scheds{SchedKind::kDsp};
  std::vector<PolicyKind> policies{PolicyKind::kDsp};
  std::vector<long long> jobs{150};
  std::vector<unsigned long long> seeds{42};
  double scale = 0.05;
  unsigned threads = 0;  // 0 = DSP_THREADS (default 1)
  std::string json_path;
  std::string event_log_dir;
  bool ok = true;
};

std::vector<std::string> split_commas(const char* arg) {
  std::vector<std::string> out;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --cluster real,ec2,uniform   testbed profiles (default ec2)\n"
      "  --sched dsp,aalo,tetris-simdep,tetris-nodep\n"
      "                               schedulers (default dsp)\n"
      "  --policy dsp,dsp-nopp,amoeba,natjam,srpt,none\n"
      "                               preemption policies (default dsp)\n"
      "  --jobs 150,300               job counts (default 150)\n"
      "  --seeds 42,43                workload seeds (default 42)\n"
      "  --scale 0.05                 task_scale multiplier (default 0.05)\n"
      "  --threads N                  workers; 0 reads DSP_THREADS\n"
      "  --json <path>                merged machine-readable report\n"
      "  --event-log-dir <dir>        per-scenario flight-recorder JSONL\n",
      argv0);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  auto need_value = [&](int i) {
    if (i + 1 < argc) return true;
    std::fprintf(stderr, "%s: %s requires a value\n", argv[0], argv[i]);
    cli.ok = false;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--cluster") == 0 && need_value(i)) {
      cli.clusters.clear();
      for (const std::string& s : split_commas(argv[++i])) {
        ClusterProfile p;
        if (!parse_cluster_profile(s, p)) {
          std::fprintf(stderr, "%s: unknown cluster profile '%s'\n", argv[0],
                       s.c_str());
          cli.ok = false;
        } else {
          cli.clusters.push_back(p);
        }
      }
    } else if (std::strcmp(a, "--sched") == 0 && need_value(i)) {
      cli.scheds.clear();
      for (const std::string& s : split_commas(argv[++i])) {
        SchedKind k;
        if (!parse_sched_kind(s, k)) {
          std::fprintf(stderr, "%s: unknown scheduler '%s'\n", argv[0],
                       s.c_str());
          cli.ok = false;
        } else {
          cli.scheds.push_back(k);
        }
      }
    } else if (std::strcmp(a, "--policy") == 0 && need_value(i)) {
      cli.policies.clear();
      for (const std::string& s : split_commas(argv[++i])) {
        PolicyKind k;
        if (!parse_policy_kind(s, k)) {
          std::fprintf(stderr, "%s: unknown policy '%s'\n", argv[0],
                       s.c_str());
          cli.ok = false;
        } else {
          cli.policies.push_back(k);
        }
      }
    } else if (std::strcmp(a, "--jobs") == 0 && need_value(i)) {
      cli.jobs.clear();
      for (const std::string& s : split_commas(argv[++i]))
        cli.jobs.push_back(std::atoll(s.c_str()));
    } else if (std::strcmp(a, "--seeds") == 0 && need_value(i)) {
      cli.seeds.clear();
      for (const std::string& s : split_commas(argv[++i]))
        cli.seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--scale") == 0 && need_value(i)) {
      cli.scale = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--threads") == 0 && need_value(i)) {
      cli.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(a, "--json") == 0 && need_value(i)) {
      cli.json_path = argv[++i];
    } else if (std::strcmp(a, "--event-log-dir") == 0 && need_value(i)) {
      cli.event_log_dir = argv[++i];
    } else if (!cli.ok) {
      break;  // a missing value already failed the parse
    } else {
      usage(argv[0]);
      cli.ok = false;
      break;
    }
  }
  if (cli.ok && (cli.clusters.empty() || cli.scheds.empty() ||
                 cli.policies.empty() || cli.jobs.empty() ||
                 cli.seeds.empty())) {
    std::fprintf(stderr, "%s: every axis needs at least one value\n", argv[0]);
    cli.ok = false;
  }
  return cli;
}

/// CLI token for a policy kind (to_string gives the display name; names
/// must be filesystem-safe and re-parseable).
const char* policy_token(PolicyKind k) {
  switch (k) {
    case PolicyKind::kDsp: return "dsp";
    case PolicyKind::kDspNoPp: return "dsp-nopp";
    case PolicyKind::kAmoeba: return "amoeba";
    case PolicyKind::kNatjam: return "natjam";
    case PolicyKind::kSrpt: return "srpt";
    case PolicyKind::kNone: return "none";
  }
  return "?";
}

const char* sched_token(SchedKind k) {
  switch (k) {
    case SchedKind::kDsp: return "dsp";
    case SchedKind::kAalo: return "aalo";
    case SchedKind::kTetrisSimDep: return "tetris-simdep";
    case SchedKind::kTetrisNoDep: return "tetris-nodep";
  }
  return "?";
}

std::vector<ScenarioSpec> build_grid(const Cli& cli) {
  std::vector<ScenarioSpec> grid;
  for (const ClusterProfile cluster : cli.clusters)
    for (const SchedKind sched : cli.scheds)
      for (const PolicyKind policy : cli.policies)
        for (const long long jobs : cli.jobs)
          for (const unsigned long long seed : cli.seeds) {
            ScenarioSpec spec;
            spec.name = std::string(to_string(cluster)) + "-" +
                        sched_token(sched) + "-" + policy_token(policy) +
                        "-j" + std::to_string(jobs) + "-s" +
                        std::to_string(seed);
            spec.cluster.profile = cluster;
            spec.workload.job_count = static_cast<std::size_t>(jobs);
            spec.workload.task_scale = cli.scale;
            spec.sched = sched;
            spec.policy = policy;
            spec.seed = seed;
            grid.push_back(std::move(spec));
          }
  // Name order, not command-line order: the report is identical no matter
  // how the axes were spelled.
  std::sort(grid.begin(), grid.end(),
            [](const ScenarioSpec& a, const ScenarioSpec& b) {
              return a.name < b.name;
            });
  return grid;
}

bool write_report(const std::string& path, const Cli& cli,
                  const std::vector<ScenarioSpec>& grid,
                  const std::vector<RunMetrics>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "dsp_sweep: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << "{\"sweep\":{\"scale\":";
  obs::write_json_number(out, cli.scale);
  out << ",\"scenarios\":" << grid.size() << '}';
  out << ",\"scenarios\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":";
    obs::write_json_string(out, grid[i].name);
    out << ",\"cluster\":";
    obs::write_json_string(out, to_string(grid[i].cluster.profile));
    out << ",\"sched\":";
    obs::write_json_string(out, to_string(grid[i].sched));
    out << ",\"policy\":";
    obs::write_json_string(out, to_string(grid[i].policy));
    out << ",\"jobs\":" << grid[i].workload.job_count;
    out << ",\"seed\":" << grid[i].seed;
    // sim_wall_s is wall clock — the one field that varies run to run.
    // Zero it so the report is byte-identical across thread counts.
    RunMetrics m = results[i];
    m.sim_wall_s = 0.0;
    out << ",\"metrics\":";
    write_json(out, m);
    out << '}';
  }
  out << "]}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  if (!cli.ok) return 2;

  const std::vector<ScenarioSpec> grid = build_grid(cli);
  GridOptions options;
  options.threads = cli.threads;
  options.event_log_dir = cli.event_log_dir;
  const std::vector<RunMetrics> results =
      run_standard_grid(grid, options);

  std::printf("%-34s %12s %8s %10s %10s\n", "scenario", "makespan_s",
              "jobs", "preempts", "disorders");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RunMetrics& m = results[i];
    std::printf("%-34s %12.1f %8llu %10llu %10llu\n", grid[i].name.c_str(),
                to_seconds(m.makespan),
                static_cast<unsigned long long>(m.jobs_finished),
                static_cast<unsigned long long>(m.preemptions),
                static_cast<unsigned long long>(m.disorders));
  }

  if (!cli.json_path.empty()) {
    if (!write_report(cli.json_path, cli, grid, results)) return 1;
    std::printf("\nJSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
