file(REMOVE_RECURSE
  "CMakeFiles/dsp_sim.dir/cluster.cpp.o"
  "CMakeFiles/dsp_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/dsp_sim.dir/engine.cpp.o"
  "CMakeFiles/dsp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dsp_sim.dir/failures.cpp.o"
  "CMakeFiles/dsp_sim.dir/failures.cpp.o.d"
  "CMakeFiles/dsp_sim.dir/invariants.cpp.o"
  "CMakeFiles/dsp_sim.dir/invariants.cpp.o.d"
  "CMakeFiles/dsp_sim.dir/recorder.cpp.o"
  "CMakeFiles/dsp_sim.dir/recorder.cpp.o.d"
  "libdsp_sim.a"
  "libdsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
