file(REMOVE_RECURSE
  "libdsp_sim.a"
)
