# Empty dependencies file for dsp_sim.
# This may be replaced when dependencies are built.
