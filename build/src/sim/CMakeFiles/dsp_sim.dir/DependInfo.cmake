
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/dsp_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/dsp_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/dsp_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/dsp_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/failures.cpp" "src/sim/CMakeFiles/dsp_sim.dir/failures.cpp.o" "gcc" "src/sim/CMakeFiles/dsp_sim.dir/failures.cpp.o.d"
  "/root/repo/src/sim/invariants.cpp" "src/sim/CMakeFiles/dsp_sim.dir/invariants.cpp.o" "gcc" "src/sim/CMakeFiles/dsp_sim.dir/invariants.cpp.o.d"
  "/root/repo/src/sim/recorder.cpp" "src/sim/CMakeFiles/dsp_sim.dir/recorder.cpp.o" "gcc" "src/sim/CMakeFiles/dsp_sim.dir/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/dsp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
