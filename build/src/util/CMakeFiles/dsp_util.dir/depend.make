# Empty dependencies file for dsp_util.
# This may be replaced when dependencies are built.
