file(REMOVE_RECURSE
  "CMakeFiles/dsp_util.dir/csv.cpp.o"
  "CMakeFiles/dsp_util.dir/csv.cpp.o.d"
  "CMakeFiles/dsp_util.dir/env.cpp.o"
  "CMakeFiles/dsp_util.dir/env.cpp.o.d"
  "CMakeFiles/dsp_util.dir/log.cpp.o"
  "CMakeFiles/dsp_util.dir/log.cpp.o.d"
  "CMakeFiles/dsp_util.dir/rng.cpp.o"
  "CMakeFiles/dsp_util.dir/rng.cpp.o.d"
  "CMakeFiles/dsp_util.dir/stats.cpp.o"
  "CMakeFiles/dsp_util.dir/stats.cpp.o.d"
  "CMakeFiles/dsp_util.dir/table.cpp.o"
  "CMakeFiles/dsp_util.dir/table.cpp.o.d"
  "CMakeFiles/dsp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dsp_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/dsp_util.dir/time.cpp.o"
  "CMakeFiles/dsp_util.dir/time.cpp.o.d"
  "libdsp_util.a"
  "libdsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
