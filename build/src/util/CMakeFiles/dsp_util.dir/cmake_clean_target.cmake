file(REMOVE_RECURSE
  "libdsp_util.a"
)
