# Empty compiler generated dependencies file for dsp_dag.
# This may be replaced when dependencies are built.
