
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/job.cpp" "src/dag/CMakeFiles/dsp_dag.dir/job.cpp.o" "gcc" "src/dag/CMakeFiles/dsp_dag.dir/job.cpp.o.d"
  "/root/repo/src/dag/task_graph.cpp" "src/dag/CMakeFiles/dsp_dag.dir/task_graph.cpp.o" "gcc" "src/dag/CMakeFiles/dsp_dag.dir/task_graph.cpp.o.d"
  "/root/repo/src/dag/validate.cpp" "src/dag/CMakeFiles/dsp_dag.dir/validate.cpp.o" "gcc" "src/dag/CMakeFiles/dsp_dag.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
