file(REMOVE_RECURSE
  "CMakeFiles/dsp_dag.dir/job.cpp.o"
  "CMakeFiles/dsp_dag.dir/job.cpp.o.d"
  "CMakeFiles/dsp_dag.dir/task_graph.cpp.o"
  "CMakeFiles/dsp_dag.dir/task_graph.cpp.o.d"
  "CMakeFiles/dsp_dag.dir/validate.cpp.o"
  "CMakeFiles/dsp_dag.dir/validate.cpp.o.d"
  "libdsp_dag.a"
  "libdsp_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
