file(REMOVE_RECURSE
  "libdsp_dag.a"
)
