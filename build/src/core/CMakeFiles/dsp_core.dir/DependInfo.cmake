
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dsp_scheduler.cpp" "src/core/CMakeFiles/dsp_core.dir/dsp_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/dsp_core.dir/dsp_scheduler.cpp.o.d"
  "/root/repo/src/core/dsp_system.cpp" "src/core/CMakeFiles/dsp_core.dir/dsp_system.cpp.o" "gcc" "src/core/CMakeFiles/dsp_core.dir/dsp_system.cpp.o.d"
  "/root/repo/src/core/ilp_model.cpp" "src/core/CMakeFiles/dsp_core.dir/ilp_model.cpp.o" "gcc" "src/core/CMakeFiles/dsp_core.dir/ilp_model.cpp.o.d"
  "/root/repo/src/core/preemption.cpp" "src/core/CMakeFiles/dsp_core.dir/preemption.cpp.o" "gcc" "src/core/CMakeFiles/dsp_core.dir/preemption.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/core/CMakeFiles/dsp_core.dir/priority.cpp.o" "gcc" "src/core/CMakeFiles/dsp_core.dir/priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/dsp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dsp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
