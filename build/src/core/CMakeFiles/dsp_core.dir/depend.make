# Empty dependencies file for dsp_core.
# This may be replaced when dependencies are built.
