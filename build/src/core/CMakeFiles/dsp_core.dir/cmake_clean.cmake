file(REMOVE_RECURSE
  "CMakeFiles/dsp_core.dir/dsp_scheduler.cpp.o"
  "CMakeFiles/dsp_core.dir/dsp_scheduler.cpp.o.d"
  "CMakeFiles/dsp_core.dir/dsp_system.cpp.o"
  "CMakeFiles/dsp_core.dir/dsp_system.cpp.o.d"
  "CMakeFiles/dsp_core.dir/ilp_model.cpp.o"
  "CMakeFiles/dsp_core.dir/ilp_model.cpp.o.d"
  "CMakeFiles/dsp_core.dir/preemption.cpp.o"
  "CMakeFiles/dsp_core.dir/preemption.cpp.o.d"
  "CMakeFiles/dsp_core.dir/priority.cpp.o"
  "CMakeFiles/dsp_core.dir/priority.cpp.o.d"
  "libdsp_core.a"
  "libdsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
