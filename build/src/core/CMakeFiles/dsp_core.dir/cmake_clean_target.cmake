file(REMOVE_RECURSE
  "libdsp_core.a"
)
