file(REMOVE_RECURSE
  "CMakeFiles/dsp_baselines.dir/aalo.cpp.o"
  "CMakeFiles/dsp_baselines.dir/aalo.cpp.o.d"
  "CMakeFiles/dsp_baselines.dir/preempt_baselines.cpp.o"
  "CMakeFiles/dsp_baselines.dir/preempt_baselines.cpp.o.d"
  "CMakeFiles/dsp_baselines.dir/tetris.cpp.o"
  "CMakeFiles/dsp_baselines.dir/tetris.cpp.o.d"
  "libdsp_baselines.a"
  "libdsp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
