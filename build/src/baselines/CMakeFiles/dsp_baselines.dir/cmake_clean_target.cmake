file(REMOVE_RECURSE
  "libdsp_baselines.a"
)
