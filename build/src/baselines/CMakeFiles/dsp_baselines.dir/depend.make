# Empty dependencies file for dsp_baselines.
# This may be replaced when dependencies are built.
