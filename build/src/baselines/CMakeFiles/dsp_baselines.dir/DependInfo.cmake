
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aalo.cpp" "src/baselines/CMakeFiles/dsp_baselines.dir/aalo.cpp.o" "gcc" "src/baselines/CMakeFiles/dsp_baselines.dir/aalo.cpp.o.d"
  "/root/repo/src/baselines/preempt_baselines.cpp" "src/baselines/CMakeFiles/dsp_baselines.dir/preempt_baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/dsp_baselines.dir/preempt_baselines.cpp.o.d"
  "/root/repo/src/baselines/tetris.cpp" "src/baselines/CMakeFiles/dsp_baselines.dir/tetris.cpp.o" "gcc" "src/baselines/CMakeFiles/dsp_baselines.dir/tetris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dsp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
