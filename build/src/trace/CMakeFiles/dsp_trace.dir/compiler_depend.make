# Empty compiler generated dependencies file for dsp_trace.
# This may be replaced when dependencies are built.
