file(REMOVE_RECURSE
  "CMakeFiles/dsp_trace.dir/stats.cpp.o"
  "CMakeFiles/dsp_trace.dir/stats.cpp.o.d"
  "CMakeFiles/dsp_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dsp_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/dsp_trace.dir/workload.cpp.o"
  "CMakeFiles/dsp_trace.dir/workload.cpp.o.d"
  "libdsp_trace.a"
  "libdsp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
