file(REMOVE_RECURSE
  "libdsp_trace.a"
)
