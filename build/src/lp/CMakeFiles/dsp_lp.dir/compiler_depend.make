# Empty compiler generated dependencies file for dsp_lp.
# This may be replaced when dependencies are built.
