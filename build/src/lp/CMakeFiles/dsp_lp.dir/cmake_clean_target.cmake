file(REMOVE_RECURSE
  "libdsp_lp.a"
)
