file(REMOVE_RECURSE
  "CMakeFiles/dsp_lp.dir/milp.cpp.o"
  "CMakeFiles/dsp_lp.dir/milp.cpp.o.d"
  "CMakeFiles/dsp_lp.dir/model.cpp.o"
  "CMakeFiles/dsp_lp.dir/model.cpp.o.d"
  "CMakeFiles/dsp_lp.dir/simplex.cpp.o"
  "CMakeFiles/dsp_lp.dir/simplex.cpp.o.d"
  "libdsp_lp.a"
  "libdsp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
