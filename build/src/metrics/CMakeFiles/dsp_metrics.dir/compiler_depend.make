# Empty compiler generated dependencies file for dsp_metrics.
# This may be replaced when dependencies are built.
