file(REMOVE_RECURSE
  "CMakeFiles/dsp_metrics.dir/report.cpp.o"
  "CMakeFiles/dsp_metrics.dir/report.cpp.o.d"
  "libdsp_metrics.a"
  "libdsp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
