file(REMOVE_RECURSE
  "libdsp_metrics.a"
)
