# Empty compiler generated dependencies file for deadline_rush.
# This may be replaced when dependencies are built.
