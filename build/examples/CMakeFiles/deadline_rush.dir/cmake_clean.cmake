file(REMOVE_RECURSE
  "CMakeFiles/deadline_rush.dir/deadline_rush.cpp.o"
  "CMakeFiles/deadline_rush.dir/deadline_rush.cpp.o.d"
  "deadline_rush"
  "deadline_rush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_rush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
