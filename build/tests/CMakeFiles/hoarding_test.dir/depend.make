# Empty dependencies file for hoarding_test.
# This may be replaced when dependencies are built.
