# Empty dependencies file for dsp_test_util.
# This may be replaced when dependencies are built.
