file(REMOVE_RECURSE
  "libdsp_test_util.a"
)
