file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_util.dir/test_util.cpp.o"
  "CMakeFiles/dsp_test_util.dir/test_util.cpp.o.d"
  "libdsp_test_util.a"
  "libdsp_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
