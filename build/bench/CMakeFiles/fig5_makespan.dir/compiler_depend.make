# Empty compiler generated dependencies file for fig5_makespan.
# This may be replaced when dependencies are built.
