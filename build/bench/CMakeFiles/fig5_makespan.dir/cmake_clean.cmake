file(REMOVE_RECURSE
  "CMakeFiles/fig5_makespan.dir/fig5_makespan.cpp.o"
  "CMakeFiles/fig5_makespan.dir/fig5_makespan.cpp.o.d"
  "fig5_makespan"
  "fig5_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
