
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_bench.cpp" "bench/CMakeFiles/micro_bench.dir/micro_bench.cpp.o" "gcc" "bench/CMakeFiles/micro_bench.dir/micro_bench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dsp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dsp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dsp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dsp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/dsp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dsp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
