file(REMOVE_RECURSE
  "CMakeFiles/ablation_pp.dir/ablation_pp.cpp.o"
  "CMakeFiles/ablation_pp.dir/ablation_pp.cpp.o.d"
  "ablation_pp"
  "ablation_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
