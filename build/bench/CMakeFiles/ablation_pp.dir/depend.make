# Empty dependencies file for ablation_pp.
# This may be replaced when dependencies are built.
