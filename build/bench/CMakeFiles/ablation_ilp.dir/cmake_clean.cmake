file(REMOVE_RECURSE
  "CMakeFiles/ablation_ilp.dir/ablation_ilp.cpp.o"
  "CMakeFiles/ablation_ilp.dir/ablation_ilp.cpp.o.d"
  "ablation_ilp"
  "ablation_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
