# Empty compiler generated dependencies file for fig7_preemption_ec2.
# This may be replaced when dependencies are built.
