file(REMOVE_RECURSE
  "CMakeFiles/dsp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/dsp_bench_common.dir/bench_common.cpp.o.d"
  "libdsp_bench_common.a"
  "libdsp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
