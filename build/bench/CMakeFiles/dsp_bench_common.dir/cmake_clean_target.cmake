file(REMOVE_RECURSE
  "libdsp_bench_common.a"
)
