# Empty dependencies file for dsp_bench_common.
# This may be replaced when dependencies are built.
