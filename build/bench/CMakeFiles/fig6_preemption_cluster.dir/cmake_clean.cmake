file(REMOVE_RECURSE
  "CMakeFiles/fig6_preemption_cluster.dir/fig6_preemption_cluster.cpp.o"
  "CMakeFiles/fig6_preemption_cluster.dir/fig6_preemption_cluster.cpp.o.d"
  "fig6_preemption_cluster"
  "fig6_preemption_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_preemption_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
