# Empty compiler generated dependencies file for fig6_preemption_cluster.
# This may be replaced when dependencies are built.
