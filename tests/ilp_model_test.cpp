// Tests for the §III ILP model: exact solves vs hand-computed optima,
// relax-and-round feasibility, list scheduling, preemption estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ilp_model.h"
#include "util/rng.h"

namespace dsp {
namespace {

/// Verifies a schedule is feasible: precedence respected and no two tasks
/// overlap on the same machine.
void expect_feasible_schedule(const IlpProblem& p, const IlpScheduleResult& r,
                              double tol = 1e-6) {
  ASSERT_EQ(r.machine_of.size(), p.tasks.size());
  ASSERT_EQ(r.start_s.size(), p.tasks.size());
  auto finish = [&](std::size_t t) {
    const auto m = static_cast<std::size_t>(r.machine_of[t]);
    return r.start_s[t] + p.tasks[t].size_mi / p.machine_rates[m] +
           static_cast<double>(p.tasks[t].n_preempt) * p.recovery_s;
  };
  for (std::size_t t = 0; t < p.tasks.size(); ++t) {
    EXPECT_GE(r.start_s[t], -tol);
    EXPECT_LE(finish(t), r.makespan_s + tol) << "task " << t;
    for (int parent : p.tasks[t].parents)
      EXPECT_GE(r.start_s[t] + tol, finish(static_cast<std::size_t>(parent)))
          << "task " << t << " starts before parent " << parent << " ends";
    for (std::size_t u = t + 1; u < p.tasks.size(); ++u) {
      if (r.machine_of[t] != r.machine_of[u]) continue;
      const bool disjoint = finish(t) <= r.start_s[u] + tol ||
                            finish(u) <= r.start_s[t] + tol;
      EXPECT_TRUE(disjoint) << "overlap between " << t << " and " << u;
    }
  }
}

IlpProblem two_machine_problem() {
  // Four independent unit tasks (1000 MI at 1000 MIPS = 1 s each) on two
  // machines: optimal makespan 2 s.
  IlpProblem p;
  p.machine_rates = {1000.0, 1000.0};
  for (int i = 0; i < 4; ++i) {
    IlpTask t;
    t.size_mi = 1000.0;
    p.tasks.push_back(t);
  }
  return p;
}

// ---------------------------------------------------------------------
// Exact solves
// ---------------------------------------------------------------------

TEST(IlpModelTest, SingleTaskSingleMachine) {
  IlpProblem p;
  p.machine_rates = {500.0};
  IlpTask t;
  t.size_mi = 1000.0;
  p.tasks.push_back(t);
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-5);
  EXPECT_NEAR(r.start_s[0], 0.0, 1e-5);
  expect_feasible_schedule(p, r);
}

TEST(IlpModelTest, IndependentTasksBalanceAcrossMachines) {
  const IlpProblem p = two_machine_problem();
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-4);
  expect_feasible_schedule(p, r);
}

TEST(IlpModelTest, ChainForcesSequentialMakespan) {
  IlpProblem p;
  p.machine_rates = {1000.0, 1000.0};
  for (int i = 0; i < 3; ++i) {
    IlpTask t;
    t.size_mi = 1000.0;
    if (i > 0) t.parents.push_back(i - 1);
    p.tasks.push_back(t);
  }
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 3.0, 1e-4);
  expect_feasible_schedule(p, r);
}

TEST(IlpModelTest, FasterMachinePreferred) {
  IlpProblem p;
  p.machine_rates = {500.0, 2000.0};
  IlpTask t;
  t.size_mi = 2000.0;
  p.tasks.push_back(t);
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.machine_of[0], 1);
  EXPECT_NEAR(r.makespan_s, 1.0, 1e-5);
}

TEST(IlpModelTest, DiamondUsesParallelMiddle) {
  // 0 -> {1,2} -> 3, unit tasks, 2 machines: optimal 3 s (middle pair in
  // parallel).
  IlpProblem p;
  p.machine_rates = {1000.0, 1000.0};
  for (int i = 0; i < 4; ++i) {
    IlpTask t;
    t.size_mi = 1000.0;
    p.tasks.push_back(t);
  }
  p.tasks[1].parents = {0};
  p.tasks[2].parents = {0};
  p.tasks[3].parents = {1, 2};
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 3.0, 1e-4);
  expect_feasible_schedule(p, r);
}

TEST(IlpModelTest, PreemptionPaddingExtendsMakespan) {
  IlpProblem p;
  p.machine_rates = {1000.0};
  p.recovery_s = 0.5;
  IlpTask t;
  t.size_mi = 1000.0;
  t.n_preempt = 2;
  p.tasks.push_back(t);
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-5);  // 1 s exec + 2 * 0.5 s padding
}

TEST(IlpModelTest, InfeasibleDeadlineRelaxedWhenAllowed) {
  IlpProblem p;
  p.machine_rates = {1000.0};
  IlpTask t;
  t.size_mi = 5000.0;
  t.deadline_s = 1.0;  // impossible: needs 5 s
  p.tasks.push_back(t);
  IlpSolveOptions opts;
  opts.relax_deadlines_on_infeasible = true;
  const IlpScheduleResult r = solve_ilp_schedule(p, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.makespan_s, 5.0, 1e-4);
}

TEST(IlpModelTest, InfeasibleDeadlineReportedWhenStrict) {
  IlpProblem p;
  p.machine_rates = {1000.0};
  IlpTask t;
  t.size_mi = 5000.0;
  t.deadline_s = 1.0;
  p.tasks.push_back(t);
  IlpSolveOptions opts;
  opts.relax_deadlines_on_infeasible = false;
  const IlpScheduleResult r = solve_ilp_schedule(p, opts);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(IlpModelTest, DeadlineSteersPlacement) {
  // Two tasks, one machine fast, one slow. Task 0 has a tight deadline
  // only the fast machine meets; the other task must yield it.
  IlpProblem p;
  p.machine_rates = {2000.0, 500.0};
  IlpTask a;
  a.size_mi = 2000.0;
  a.deadline_s = 1.05;
  IlpTask b;
  b.size_mi = 500.0;
  p.tasks = {a, b};
  const IlpScheduleResult r = solve_ilp_schedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.machine_of[0], 0);
  EXPECT_NEAR(r.start_s[0], 0.0, 0.06);
  expect_feasible_schedule(p, r);
}

TEST(IlpModelTest, CanSolveExactlyGuards) {
  IlpProblem p = two_machine_problem();
  EXPECT_TRUE(can_solve_exactly(p));
  EXPECT_FALSE(can_solve_exactly(p, /*max_tasks=*/2));
  IlpProblem empty;
  EXPECT_FALSE(can_solve_exactly(empty));
}

TEST(IlpModelTest, ModelVariableLayout) {
  const IlpProblem p = two_machine_problem();
  const lp::Model m = build_ilp_model(p, true);
  const std::size_t T = 4, M = 2;
  // L + T starts + T*M x + C(T,2)*M y.
  EXPECT_EQ(m.var_count(), 1 + T + T * M + (T * (T - 1) / 2) * M);
  EXPECT_TRUE(m.has_integers());
}

// ---------------------------------------------------------------------
// Relax-and-round
// ---------------------------------------------------------------------

TEST(RelaxRoundTest, ProducesFeasibleSchedule) {
  IlpProblem p;
  p.machine_rates = {1000.0, 1500.0};
  for (int i = 0; i < 6; ++i) {
    IlpTask t;
    t.size_mi = 500.0 + 250.0 * i;
    p.tasks.push_back(t);
  }
  p.tasks[2].parents = {0, 1};
  p.tasks[4].parents = {2};
  p.tasks[5].parents = {3};
  const IlpScheduleResult r = solve_relax_round(p);
  ASSERT_TRUE(r.ok());
  expect_feasible_schedule(p, r);
}

TEST(RelaxRoundTest, WithinFactorOfExactOnSmallInstances) {
  Rng rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    IlpProblem p;
    p.machine_rates = {1000.0, 1000.0};
    const int n = static_cast<int>(rng.uniform_int(3, 5));
    for (int i = 0; i < n; ++i) {
      IlpTask t;
      t.size_mi = rng.uniform(500.0, 2000.0);
      if (i > 0 && rng.chance(0.5))
        t.parents.push_back(static_cast<int>(rng.uniform_int(0, i - 1)));
      p.tasks.push_back(t);
    }
    const IlpScheduleResult exact = solve_ilp_schedule(p);
    const IlpScheduleResult rounded = solve_relax_round(p);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(rounded.ok());
    expect_feasible_schedule(p, rounded);
    EXPECT_GE(rounded.makespan_s, exact.makespan_s - 1e-6);
    EXPECT_LE(rounded.makespan_s, exact.makespan_s * 2.0 + 1e-6)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// List scheduling
// ---------------------------------------------------------------------

TEST(ListScheduleTest, FixedPlacementChain) {
  IlpProblem p;
  p.machine_rates = {1000.0};
  for (int i = 0; i < 3; ++i) {
    IlpTask t;
    t.size_mi = 1000.0;
    if (i > 0) t.parents.push_back(i - 1);
    p.tasks.push_back(t);
  }
  std::vector<double> start;
  const double makespan =
      list_schedule_fixed(p, {0, 0, 0}, {0, 1, 2}, start);
  EXPECT_NEAR(makespan, 3.0, 1e-9);
  EXPECT_NEAR(start[2], 2.0, 1e-9);
}

TEST(ListScheduleTest, ParallelMachines) {
  IlpProblem p;
  p.machine_rates = {1000.0, 1000.0};
  for (int i = 0; i < 2; ++i) {
    IlpTask t;
    t.size_mi = 1000.0;
    p.tasks.push_back(t);
  }
  std::vector<double> start;
  const double makespan = list_schedule_fixed(p, {0, 1}, {0, 1}, start);
  EXPECT_NEAR(makespan, 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// Preemption estimation
// ---------------------------------------------------------------------

TEST(EstimatePreemptionsTest, MonotoneInSlack) {
  EXPECT_EQ(estimate_preemptions(10.0, 12.0), 2);   // ratio 1.2
  EXPECT_EQ(estimate_preemptions(10.0, 25.0), 1);   // ratio 2.5
  EXPECT_EQ(estimate_preemptions(10.0, 100.0), 0);  // generous
  EXPECT_EQ(estimate_preemptions(10.0,
                                 std::numeric_limits<double>::infinity()),
            0);
  EXPECT_EQ(estimate_preemptions(0.0, 5.0), 0);
}

}  // namespace
}  // namespace dsp
