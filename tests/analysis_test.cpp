// Tests for the dsp-analyze static rule engine (src/analysis): the rule
// catalog, the workload lint, the schedule constraint check, the audit
// replay, the audit JSON round-trip, and an end-to-end run whose solver
// and preemption artifacts must analyze clean.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/audit_replay.h"
#include "analysis/rules.h"
#include "analysis/schedule_check.h"
#include "analysis/workload_lint.h"
#include "core/dsp_system.h"
#include "core/ilp_model.h"
#include "core/preemption.h"
#include "obs/audit.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using analysis::Report;
using analysis::Severity;
using testing::make_chain_job;
using testing::make_independent_job;

std::vector<std::string> rules_of(const Report& report) {
  std::vector<std::string> out;
  for (const auto& d : report.diagnostics()) out.push_back(d.rule);
  return out;
}

bool has_rule(const Report& report, const std::string& id) {
  for (const auto& d : report.diagnostics())
    if (d.rule == id) return true;
  return false;
}

// ---------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------

TEST(RuleCatalogTest, ContainsEveryDocumentedRule) {
  for (const char* id :
       {"W000", "W001", "W002", "W003", "W004", "W005", "S000", "S001", "S002",
        "S003", "S004", "S005", "P000", "P001", "P002", "P003", "P004"}) {
    const analysis::RuleInfo* rule = analysis::find_rule(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_STREQ(rule->id, id);
    EXPECT_NE(std::string(rule->name), "");
    // Seeded-violation fixtures rely on every rule failing the build.
    EXPECT_EQ(rule->severity, Severity::kError) << id;
  }
  EXPECT_EQ(analysis::find_rule("Z999"), nullptr);
}

TEST(RuleCatalogTest, IdsAreUnique) {
  std::vector<std::string> seen;
  for (const auto& rule : analysis::rule_catalog()) {
    for (const auto& other : seen) EXPECT_NE(other, rule.id);
    seen.emplace_back(rule.id);
  }
}

TEST(ReportTest, FilterDropsOtherRules) {
  Report report;
  report.set_rule_filter({"W003"});
  report.add("W001", "job 1", "cycle");
  report.add("W003", "job 1", "late");
  ASSERT_EQ(report.diagnostics().size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].rule, "W003");
}

// ---------------------------------------------------------------------
// Workload lint (W rules)
// ---------------------------------------------------------------------

TEST(WorkloadLintTest, FeasibleWorkloadIsClean) {
  JobSet jobs;
  jobs.push_back(make_chain_job(1, 3, 1000.0, 0, 60 * kSecond));
  jobs.push_back(make_independent_job(2, 4, 500.0));
  Report report;
  analysis::WorkloadLintOptions options;
  const ClusterSpec cluster = ClusterSpec::uniform(2, 1000.0, 4.0, 2);
  options.cluster = &cluster;
  analysis::lint_workload(jobs, options, report);
  EXPECT_TRUE(report.empty()) << rules_of(report).size();
}

TEST(WorkloadLintTest, TightDeadlineFiresW003) {
  // 3 x 1000 MI at 1000 MIPS needs 3 s; the deadline allows 1 s.
  JobSet jobs;
  jobs.push_back(make_chain_job(1, 3, 1000.0, 0, 1 * kSecond));
  Report report;
  analysis::WorkloadLintOptions options;
  const ClusterSpec cluster = ClusterSpec::uniform(2, 1000.0, 4.0, 2);
  options.cluster = &cluster;
  analysis::lint_workload(jobs, options, report);
  EXPECT_TRUE(has_rule(report, "W003"));
  EXPECT_TRUE(report.has_errors());
}

TEST(WorkloadLintTest, OversizedDemandFiresW004) {
  JobSet jobs;
  Job job = make_independent_job(1, 2, 1000.0);
  job.task(1).demand = Resources{64.0, 512.0, 100.0, 10.0};
  jobs.push_back(std::move(job));
  Report report;
  analysis::WorkloadLintOptions options;
  const ClusterSpec cluster = ClusterSpec::uniform(2, 1000.0, 4.0, 2);
  options.cluster = &cluster;
  analysis::lint_workload(jobs, options, report);
  EXPECT_TRUE(has_rule(report, "W004"));
}

TEST(WorkloadLintTest, InvalidStructureFiresW005) {
  JobSet jobs;
  Job job = make_independent_job(1, 2, 1000.0);
  job.task(0).size_mi = -5.0;
  jobs.push_back(std::move(job));
  Report report;
  analysis::lint_workload(jobs, {}, report);
  EXPECT_TRUE(has_rule(report, "W005"));
}

TEST(WorkloadLintTest, GeneratedWorkloadIsClean) {
  // The synthetic generator must satisfy its own lint against the paper's
  // EC2 profile (deadlines are assigned from feasible critical paths).
  WorkloadConfig cfg;
  cfg.job_count = 20;
  const JobSet jobs = WorkloadGenerator(cfg, 42).generate();
  Report report;
  analysis::WorkloadLintOptions options;
  const ClusterSpec cluster = ClusterSpec::ec2(30);
  options.cluster = &cluster;
  analysis::lint_workload(jobs, options, report);
  for (const auto& d : report.diagnostics())
    ADD_FAILURE() << d.rule << " " << d.subject << ": " << d.message;
}

// ---------------------------------------------------------------------
// Schedule check (S rules)
// ---------------------------------------------------------------------

analysis::ScheduleDoc two_machine_doc() {
  analysis::ScheduleDoc doc;
  doc.problem.machine_rates = {1000.0, 1000.0};
  doc.problem.recovery_s = 0.3;
  IlpTask a;  // 10 s on either machine
  a.size_mi = 10000.0;
  IlpTask b = a;
  b.parents = {0};
  doc.problem.tasks = {a, b};
  doc.machine_of = {0, 1};
  doc.start_s = {0.0, 10.0};
  return doc;
}

TEST(ScheduleCheckTest, ValidScheduleIsClean) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.makespan_s = 20.0;
  doc.has_makespan = true;
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_TRUE(report.empty());
}

TEST(ScheduleCheckTest, PrecedenceViolationFiresS001) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.start_s[1] = 4.0;  // parent completes at 10 s
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"S001"});
}

TEST(ScheduleCheckTest, OverlapFiresS002) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.problem.tasks[1].parents.clear();
  doc.machine_of[1] = 0;
  doc.start_s[1] = 5.0;
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"S002"});
}

TEST(ScheduleCheckTest, MissedDeadlineFiresS003CountingPreemptionPadding) {
  analysis::ScheduleDoc doc = two_machine_doc();
  // Completion = 10 + 10 (exec) + 2 * 0.3 (recoveries) = 20.6 s.
  doc.problem.tasks[1].deadline_s = 20.5;
  doc.problem.tasks[1].n_preempt = 2;
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"S003"});
  // Without the padding the deadline holds.
  doc.problem.tasks[1].n_preempt = 0;
  Report clean;
  analysis::check_schedule(doc, {}, clean);
  EXPECT_TRUE(clean.empty());
}

TEST(ScheduleCheckTest, BadPlacementFiresS004AndSkipsTimeRules) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.machine_of[0] = 5;  // parent unplaced: S001 on the child must not fire
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"S004"});
  doc = two_machine_doc();
  doc.start_s[0] = -1.0;
  Report negative;
  analysis::check_schedule(doc, {}, negative);
  EXPECT_EQ(rules_of(negative), std::vector<std::string>{"S004"});
}

TEST(ScheduleCheckTest, UnderstatedMakespanFiresS005) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.makespan_s = 15.0;  // task 1 completes at 20 s
  doc.has_makespan = true;
  Report report;
  analysis::check_schedule(doc, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"S005"});
}

TEST(ScheduleCheckTest, JsonRoundTripPreservesTheDocument) {
  analysis::ScheduleDoc doc = two_machine_doc();
  doc.problem.tasks[1].deadline_s = 25.0;
  doc.problem.tasks[1].n_preempt = 1;
  doc.makespan_s = 21.0;
  doc.has_makespan = true;
  std::stringstream buf;
  analysis::write_schedule_json(buf, doc);
  analysis::ScheduleDoc back;
  std::string error;
  ASSERT_TRUE(analysis::read_schedule_json(buf, back, &error)) << error;
  ASSERT_EQ(back.problem.tasks.size(), doc.problem.tasks.size());
  EXPECT_EQ(back.problem.machine_rates, doc.problem.machine_rates);
  EXPECT_DOUBLE_EQ(back.problem.recovery_s, doc.problem.recovery_s);
  EXPECT_EQ(back.machine_of, doc.machine_of);
  EXPECT_EQ(back.start_s, doc.start_s);
  EXPECT_TRUE(back.has_makespan);
  EXPECT_DOUBLE_EQ(back.makespan_s, doc.makespan_s);
  EXPECT_EQ(back.problem.tasks[1].parents, doc.problem.tasks[1].parents);
  EXPECT_EQ(back.problem.tasks[1].n_preempt, 1);
  EXPECT_DOUBLE_EQ(back.problem.tasks[1].deadline_s, 25.0);
  // An unset deadline must stay disabled (infinity), not become a number.
  EXPECT_FALSE(std::isfinite(back.problem.tasks[0].deadline_s));
}

TEST(ScheduleCheckTest, SolverOutputAnalyzesClean) {
  // The §III branch-and-bound solution must satisfy its own constraints.
  IlpProblem problem;
  problem.machine_rates = {1000.0, 800.0};
  IlpTask root;
  root.size_mi = 2000.0;
  IlpTask left, right;
  left.size_mi = 1500.0;
  left.parents = {0};
  right.size_mi = 1000.0;
  right.parents = {0};
  problem.tasks = {root, left, right};
  const IlpScheduleResult result = solve_ilp_schedule(problem);
  ASSERT_TRUE(result.ok());
  Report report;
  analysis::check_schedule(analysis::make_schedule_doc(problem, result), {},
                           report);
  for (const auto& d : report.diagnostics())
    ADD_FAILURE() << d.rule << " " << d.subject << ": " << d.message;
}

// ---------------------------------------------------------------------
// Audit replay (P rules)
// ---------------------------------------------------------------------

obs::PreemptDecision base_decision() {
  obs::PreemptDecision d;
  d.time = 1 * kSecond;
  d.node = 0;
  d.candidate = 0;
  d.victim = kInvalidGid;
  d.rho = 0.2;
  d.delta = 0.25;
  d.epsilon = 2 * kSecond;
  d.tau = 60 * kSecond;
  d.pp = true;
  return d;
}

TEST(AuditReplayTest, LegalTrailIsClean) {
  obs::PreemptDecision fire = base_decision();
  fire.victim = 1;
  fire.candidate_priority = 5.0;
  fire.victim_priority = 1.0;
  fire.normalized_gap = 0.8;
  fire.outcome = obs::PreemptOutcome::kFired;
  obs::PreemptDecision suppress = base_decision();
  suppress.time = 2 * kSecond;
  suppress.victim = 1;
  suppress.candidate_priority = 1.1;
  suppress.victim_priority = 1.0;
  suppress.normalized_gap = 0.1;
  suppress.outcome = obs::PreemptOutcome::kSuppressedPP;
  Report report;
  analysis::replay_audit({fire, suppress}, {}, report);
  EXPECT_TRUE(report.empty());
}

TEST(AuditReplayTest, TimeRegressionFiresP000) {
  obs::PreemptDecision a = base_decision();
  a.time = 5 * kSecond;
  obs::PreemptDecision b = base_decision();
  b.time = 4 * kSecond;
  Report report;
  analysis::replay_audit({a, b}, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"P000"});
}

TEST(AuditReplayTest, UnknownGidFiresP000) {
  JobSet jobs;
  jobs.push_back(make_chain_job(1, 3, 1000.0));
  obs::PreemptDecision d = base_decision();
  d.candidate = 17;
  analysis::AuditReplayOptions options;
  options.workload = &jobs;
  Report report;
  analysis::replay_audit({d}, options, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"P000"});
}

TEST(AuditReplayTest, C1ViolationFiresP002OnlyForNonUrgentFires) {
  obs::PreemptDecision d = base_decision();
  d.victim = 1;
  d.candidate_priority = 1.0;
  d.victim_priority = 2.0;
  d.normalized_gap = 0.5;
  d.outcome = obs::PreemptOutcome::kFired;
  Report report;
  analysis::replay_audit({d}, {}, report);
  EXPECT_TRUE(has_rule(report, "P002"));
  // The urgent pass (t^a <= epsilon or t^w >= tau) ignores C1 by design.
  d.urgent = true;
  Report urgent;
  analysis::replay_audit({d}, {}, urgent);
  EXPECT_TRUE(urgent.empty());
}

TEST(AuditReplayTest, DependentCandidateFiresP003) {
  JobSet jobs;
  jobs.push_back(make_chain_job(1, 3, 1000.0));  // 0 -> 1 -> 2
  obs::PreemptDecision d = base_decision();
  d.candidate = 2;
  d.victim = 0;
  d.candidate_priority = 9.0;
  d.victim_priority = 1.0;
  d.normalized_gap = 0.9;
  d.outcome = obs::PreemptOutcome::kFired;
  analysis::AuditReplayOptions options;
  options.workload = &jobs;
  Report report;
  analysis::replay_audit({d}, options, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"P003"});
}

TEST(AuditReplayTest, AncestorWithLowPriorityFiresP001) {
  JobSet jobs;
  jobs.push_back(make_chain_job(1, 3, 1000.0));
  obs::PreemptDecision d = base_decision();
  d.candidate = 0;  // ancestor of the running victim 2
  d.victim = 2;
  d.candidate_priority = 1.0;  // Formula 12 demands it dominate 5.0
  d.victim_priority = 5.0;
  d.normalized_gap = 0.9;
  d.outcome = obs::PreemptOutcome::kFired;
  analysis::AuditReplayOptions options;
  options.workload = &jobs;
  Report report;
  analysis::replay_audit({d}, options, report);
  EXPECT_TRUE(has_rule(report, "P001"));
  // A dominating ancestor priority is legal.
  d.candidate_priority = 9.0;
  Report clean;
  analysis::replay_audit({d}, options, clean);
  EXPECT_TRUE(clean.empty());
}

TEST(AuditReplayTest, PpGateViolationsFireP004) {
  // Fired below rho although the PP filter was on.
  obs::PreemptDecision fired = base_decision();
  fired.victim = 1;
  fired.candidate_priority = 5.0;
  fired.victim_priority = 1.0;
  fired.normalized_gap = 0.05;
  fired.outcome = obs::PreemptOutcome::kFired;
  Report report;
  analysis::replay_audit({fired}, {}, report);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"P004"});
  // Suppressed above rho.
  obs::PreemptDecision sup = fired;
  sup.normalized_gap = 0.9;
  sup.outcome = obs::PreemptOutcome::kSuppressedPP;
  Report above;
  analysis::replay_audit({sup}, {}, above);
  EXPECT_EQ(rules_of(above), std::vector<std::string>{"P004"});
  // With PP disabled a sub-rho fire is legal (DSPW/oPP ablation trails).
  fired.pp = false;
  fired.normalized_gap = 0.0;
  Report disabled;
  analysis::replay_audit({fired}, {}, disabled);
  EXPECT_TRUE(disabled.empty());
}

// ---------------------------------------------------------------------
// Audit JSON round-trip
// ---------------------------------------------------------------------

TEST(AuditJsonTest, RoundTripIsBitExact) {
  obs::PreemptionAuditTrail trail;
  obs::PreemptDecision d = base_decision();
  d.victim = 3;
  d.candidate_priority = 1.0 / 3.0;  // needs 17 significant digits
  d.victim_priority = 0.1;
  d.normalized_gap = 2.0 / 7.0;
  d.outcome = obs::PreemptOutcome::kFired;
  trail.record(d);
  obs::PreemptDecision n = base_decision();
  n.time = 2 * kSecond;
  n.urgent = true;
  n.pp = false;
  n.outcome = obs::PreemptOutcome::kNoVictim;
  trail.record(n);

  std::stringstream buf;
  trail.write_json(buf);
  const obs::AuditParseResult parsed = obs::read_audit_json(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.decisions.size(), 2u);
  const obs::PreemptDecision& back = parsed.decisions[0];
  EXPECT_EQ(back.time, d.time);
  EXPECT_EQ(back.node, d.node);
  EXPECT_EQ(back.candidate, d.candidate);
  EXPECT_EQ(back.victim, d.victim);
  EXPECT_EQ(back.candidate_priority, d.candidate_priority);  // bit-exact
  EXPECT_EQ(back.victim_priority, d.victim_priority);
  EXPECT_EQ(back.normalized_gap, d.normalized_gap);
  EXPECT_EQ(back.rho, d.rho);
  EXPECT_EQ(back.delta, d.delta);
  EXPECT_EQ(back.epsilon, d.epsilon);
  EXPECT_EQ(back.tau, d.tau);
  EXPECT_FALSE(back.urgent);
  EXPECT_TRUE(back.pp);
  EXPECT_EQ(back.outcome, obs::PreemptOutcome::kFired);
  EXPECT_EQ(parsed.decisions[1].victim, kInvalidGid);  // -1 maps back
  EXPECT_TRUE(parsed.decisions[1].urgent);
  EXPECT_FALSE(parsed.decisions[1].pp);
}

TEST(AuditJsonTest, MissingFieldIsAnError) {
  const std::string text =
      "{\"decisions\": [{\"time_us\": 1, \"node\": 0, \"candidate\": 0}]}";
  std::stringstream in(text);
  const obs::AuditParseResult parsed = obs::read_audit_json(in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("victim"), std::string::npos);
}

// ---------------------------------------------------------------------
// End to end: a DSP engine run's audit trail analyzes clean
// ---------------------------------------------------------------------

TEST(AnalysisEndToEndTest, EngineAuditTrailReplaysClean) {
  WorkloadConfig cfg;
  cfg.job_count = 8;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;
  cfg.mem_max = 1.8;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 40.0;
  const JobSet jobs = WorkloadGenerator(cfg, 101).generate();

  DspPreemption policy;
  DspScheduler sched;
  EngineParams params;
  params.period = 1 * kSecond;
  params.epoch = 500 * kMillisecond;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 2), jobs, sched, &policy,
                params);
  obs::PreemptionAuditTrail trail;
  engine.set_audit(&trail);
  engine.run();
  ASSERT_GT(trail.total(), 0u);

  // Through the JSON artifact, exactly as tools/dsp_analyze consumes it.
  std::stringstream buf;
  trail.write_json(buf);
  const obs::AuditParseResult parsed = obs::read_audit_json(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  analysis::AuditReplayOptions options;
  options.workload = &jobs;
  Report report;
  analysis::replay_audit(parsed.decisions, options, report);
  for (const auto& d : report.diagnostics())
    ADD_FAILURE() << d.rule << " " << d.subject << ": " << d.message;
}

// ---------------------------------------------------------------------
// Cluster spec parsing (CLI surface)
// ---------------------------------------------------------------------

TEST(ClusterSpecParseTest, AcceptsTheThreeProfiles) {
  ClusterSpec spec;
  std::string error;
  ASSERT_TRUE(analysis::parse_cluster_spec("ec2:12", spec, &error)) << error;
  EXPECT_EQ(spec.size(), 12u);
  ASSERT_TRUE(analysis::parse_cluster_spec("real:50", spec, &error)) << error;
  EXPECT_EQ(spec.size(), 50u);
  ASSERT_TRUE(analysis::parse_cluster_spec("uniform:4:1000:8:2", spec, &error))
      << error;
  EXPECT_EQ(spec.size(), 4u);
  EXPECT_EQ(spec.total_slots(), 8);
}

TEST(ClusterSpecParseTest, RejectsMalformedSpecs) {
  ClusterSpec spec;
  std::string error;
  EXPECT_FALSE(analysis::parse_cluster_spec("ec2", spec, &error));
  EXPECT_FALSE(analysis::parse_cluster_spec("ec2:zero", spec, &error));
  EXPECT_FALSE(analysis::parse_cluster_spec("moon:4", spec, &error));
  EXPECT_FALSE(analysis::parse_cluster_spec("uniform:4:1000", spec, &error));
  EXPECT_NE(error, "");
}

}  // namespace
}  // namespace dsp
