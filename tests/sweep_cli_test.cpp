// Black-box tests of the tools/dsp_sweep CLI.
//
// The installed binary is driven over small grids: bad flags and tokens
// must fail with usage, the --json report must parse with the documented
// schema, and — the grid runner's determinism contract — the report must
// be byte-identical across --threads settings and across axis order on
// the command line. Binary locations are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace dsp {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& bin, const std::string& args) {
  CliResult result;
  const std::string command = bin + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CliResult sweep(const std::string& args) {
  return run_cli(DSP_SWEEP_BIN, args);
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Small and fast: one cluster, two policies, two seeds = 4 scenarios.
const char* kSmallGrid =
    "--cluster ec2 --sched dsp --policy srpt,none --jobs 8,12 --seeds 42 "
    "--scale 0.02";

TEST(SweepCliTest, UnknownFlagFailsWithUsage) {
  const CliResult r = sweep("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(SweepCliTest, UnknownAxisTokenFails) {
  EXPECT_EQ(sweep("--policy srpt,fcfs").exit_code, 2);
  EXPECT_EQ(sweep("--sched fifo").exit_code, 2);
  EXPECT_EQ(sweep("--cluster palmetto").exit_code, 2);
}

TEST(SweepCliTest, EmptyAxisFails) {
  const CliResult r = sweep("--policy ,");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("at least one value"), std::string::npos);
}

TEST(SweepCliTest, TableListsEveryScenario) {
  const CliResult r = sweep(std::string(kSmallGrid) + " --threads 1");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const char* name : {"ec2-dsp-srpt-j8-s42", "ec2-dsp-srpt-j12-s42",
                           "ec2-dsp-none-j8-s42", "ec2-dsp-none-j12-s42"})
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
}

TEST(SweepCliTest, JsonReportHasDocumentedSchema) {
  const std::string path = tmp_path("sweep_schema.json");
  const CliResult r =
      sweep(std::string(kSmallGrid) + " --threads 1 --json " + path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"scenarios\":4"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  // Wall clock must be zeroed, or the byte-identical contract is void.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_GT(count("\"sim_wall_s\""), 0u);
  EXPECT_EQ(count("\"sim_wall_s\""), count("\"sim_wall_s\":0"));
}

TEST(SweepCliTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::string t1 = tmp_path("sweep_t1.json");
  const std::string t4 = tmp_path("sweep_t4.json");
  ASSERT_EQ(sweep(std::string(kSmallGrid) + " --threads 1 --json " + t1)
                .exit_code,
            0);
  ASSERT_EQ(sweep(std::string(kSmallGrid) + " --threads 4 --json " + t4)
                .exit_code,
            0);
  const std::string a = slurp(t1);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(t4));
}

TEST(SweepCliTest, ReportIsByteIdenticalAcrossAxisOrder) {
  const std::string fwd = tmp_path("sweep_fwd.json");
  const std::string rev = tmp_path("sweep_rev.json");
  ASSERT_EQ(sweep("--cluster ec2 --sched dsp --policy srpt,none "
                  "--jobs 8,12 --seeds 42 --scale 0.02 --threads 2 --json " +
                  fwd)
                .exit_code,
            0);
  ASSERT_EQ(sweep("--cluster ec2 --sched dsp --policy none,srpt "
                  "--jobs 12,8 --seeds 42 --scale 0.02 --threads 2 --json " +
                  rev)
                .exit_code,
            0);
  const std::string a = slurp(fwd);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(rev));
}

}  // namespace
}  // namespace dsp
