// Tests for DSP's offline scheduler (heuristic / relax-round / exact) and
// the Tetris/Aalo baseline schedulers.
#include <gtest/gtest.h>

#include <set>

#include "baselines/aalo.h"
#include "baselines/tetris.h"
#include "core/dsp_scheduler.h"
#include "core/dsp_system.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_fig3_job;
using testing::make_independent_job;

ClusterSpec small_cluster(std::size_t n = 2, int slots = 2) {
  return ClusterSpec::uniform(n, 1800.0, 2.0, slots);
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

JobSet tiny_workload(std::size_t jobs, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;  // fit the 2-slot uniform test nodes
  cfg.mem_max = 1.8;
  return WorkloadGenerator(cfg, seed).generate();
}

// ---------------------------------------------------------------------
// Dependency weights (ranking)
// ---------------------------------------------------------------------

TEST(DependencyWeightTest, LeavesWeighOne) {
  const Job job = make_chain_job(0, 3, 100.0);
  const auto w = DspScheduler::dependency_weights(job, 0.5);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0 + 1.5 * 1.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0 + 1.5 * w[1]);
}

TEST(DependencyWeightTest, Fig3Ordering) {
  // The ranking behind the heuristic must reproduce the Fig. 3 ordering:
  // W(T11) > W(T6) > W(T1).
  const Job job = make_fig3_job(0);
  const auto w = DspScheduler::dependency_weights(job, 0.5);
  EXPECT_GT(w[11], w[5]);
  EXPECT_GT(w[5], w[0]);
}

TEST(DependencyWeightTest, MoreChildrenMoreWeight) {
  Job a(0, 3);
  Job b(1, 3);
  for (TaskIndex t = 0; t < 3; ++t) {
    a.task(t).size_mi = b.task(t).size_mi = 1.0;
    a.task(t).demand = b.task(t).demand = Resources{1, 1, 0, 0};
  }
  a.add_dependency(0, 1);  // one child
  b.add_dependency(0, 1);  // two children
  b.add_dependency(0, 2);
  ASSERT_TRUE(a.finalize(1000.0));
  ASSERT_TRUE(b.finalize(1000.0));
  EXPECT_GT(DspScheduler::dependency_weights(b, 0.5)[0],
            DspScheduler::dependency_weights(a, 0.5)[0]);
}

// ---------------------------------------------------------------------
// Heuristic scheduling through the engine
// ---------------------------------------------------------------------

TEST(DspSchedulerTest, PlacesEveryTaskExactlyOnce) {
  JobSet jobs = tiny_workload(6, 43);
  const std::size_t expected = total_tasks(jobs);
  DspScheduler sched;
  Engine engine(small_cluster(3, 2), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, expected);
  EXPECT_EQ(m.jobs_finished, 6u);
}

TEST(DspSchedulerTest, HeuristicCompletesWithZeroDisorders) {
  JobSet jobs = tiny_workload(6, 47);
  DspScheduler sched;
  DspParams params;
  DspPreemption preempt(params);
  Engine engine(small_cluster(3, 2), std::move(jobs), sched, &preempt,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.disorders, 0u);
}

TEST(DspSchedulerTest, ParallelismBeatsSerialExecution) {
  // 8 independent 1 s tasks on 4 nodes x 2 slots: heuristic must achieve
  // the 1 s optimum (perfect spread).
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 8, 1000.0));
  DspScheduler sched;
  Engine engine(small_cluster(4, 2), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 1 * kSecond);
}

TEST(DspSchedulerTest, PrefersFasterNodes) {
  // Heterogeneous cluster: single task must land on the fast node.
  std::vector<NodeSpec> nodes;
  NodeSpec slow;
  slow.cpu_mips = 500.0;
  slow.mem_gb = 1.0;
  slow.capacity = Resources{4, 4, 720000, 1000};
  slow.slots = 4;
  NodeSpec fast = slow;
  fast.cpu_mips = 4000.0;
  nodes.push_back(slow);
  nodes.push_back(fast);
  ClusterSpec cluster(std::move(nodes));

  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 2000.0));
  DspScheduler sched;
  Engine engine(cluster, std::move(jobs), sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  // Fast node rate: 0.5*4000 + 0.5*1*100 = 2050 MIPS -> < 1 s.
  EXPECT_LT(m.makespan, from_seconds(1.0));
}

TEST(DspSchedulerTest, PlannedStartsRespectDependencies) {
  // Capture placements: a child's planned start must not precede its
  // parent's planned start.
  JobSet jobs;
  jobs.push_back(make_fig3_job(0, 5000.0, 0, 30 * kMinute));
  class CapturingDsp : public DspScheduler {
   public:
    std::vector<TaskPlacement> schedule(const std::vector<JobId>& pending,
                                        Engine& engine) override {
      auto result = DspScheduler::schedule(pending, engine);
      captured = result;
      engine_ptr = &engine;
      return result;
    }
    std::vector<TaskPlacement> captured;
    Engine* engine_ptr = nullptr;
  } sched;
  Engine engine(small_cluster(2, 2), std::move(jobs), sched, nullptr,
                fast_params());
  engine.run();
  ASSERT_FALSE(sched.captured.empty());
  std::vector<SimTime> start_of(19, kNoTime);
  for (const auto& p : sched.captured)
    start_of[sched.engine_ptr->index_of(p.task)] = p.planned_start;
  const Job job = make_fig3_job(0, 5000.0, 0, 30 * kMinute);
  for (TaskIndex t = 0; t < job.task_count(); ++t)
    for (TaskIndex c : job.graph().children(t))
      EXPECT_GE(start_of[c], start_of[t]);
}

TEST(DspSchedulerTest, ExactModeMatchesHeuristicOnTrivial) {
  // A 4-task chain on a 1-node/1-slot cluster: both modes give 4 s.
  auto run_mode = [](ScheduleMode mode) {
    JobSet jobs;
    jobs.push_back(make_chain_job(0, 4, 1000.0));
    DspScheduler::Options opts;
    opts.mode = mode;
    DspScheduler sched(opts);
    Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs),
                  sched, nullptr, fast_params());
    return engine.run().makespan;
  };
  EXPECT_EQ(run_mode(ScheduleMode::kHeuristic), 4 * kSecond);
  EXPECT_EQ(run_mode(ScheduleMode::kExact), 4 * kSecond);
}

TEST(DspSchedulerTest, ExactModeFallsBackWhenTooLarge) {
  JobSet jobs = tiny_workload(3, 53);
  DspScheduler::Options opts;
  opts.mode = ScheduleMode::kExact;
  opts.exact_max_tasks = 4;  // workload is bigger than this
  DspScheduler sched(opts);
  Engine engine(small_cluster(2, 2), std::move(jobs), sched, nullptr,
                fast_params());
  engine.run();
  EXPECT_EQ(sched.last_mode(), ScheduleMode::kHeuristic);
}

TEST(DspSchedulerTest, HeuristicNearExactOnSmallInstances) {
  // Cross-validation: on instances the MILP can solve, the heuristic's
  // realized makespan is within 1.6x of the exact schedule's.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 7919);
    JobSet base;
    Job job(0, 5);
    for (TaskIndex t = 0; t < 5; ++t) {
      job.task(t).size_mi = rng.uniform(500.0, 3000.0);
      job.task(t).demand = Resources{1, 1, 0, 0};
    }
    job.add_dependency(0, 2);
    job.add_dependency(1, 3);
    if (rng.chance(0.5)) job.add_dependency(2, 4);
    ASSERT_TRUE(job.finalize(1000.0));
    base.push_back(std::move(job));

    auto run_mode = [&](ScheduleMode mode) {
      JobSet jobs = base;
      DspScheduler::Options opts;
      opts.mode = mode;
      opts.exact_max_tasks = 6;
      opts.exact_max_machines = 2;
      DspScheduler sched(opts);
      Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 1), std::move(jobs),
                    sched, nullptr, fast_params());
      return engine.run().makespan;
    };
    const SimTime exact = run_mode(ScheduleMode::kExact);
    const SimTime heuristic = run_mode(ScheduleMode::kHeuristic);
    EXPECT_LE(heuristic, exact * 16 / 10 + kSecond) << "seed " << seed;
  }
}

TEST(DspSchedulerTest, RelaxRoundCompletesWorkload) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 4, 1000.0));
  jobs.push_back(make_independent_job(1, 3, 1500.0));
  DspScheduler::Options opts;
  opts.mode = ScheduleMode::kRelaxRound;
  DspScheduler sched(opts);
  Engine engine(small_cluster(2, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 7u);
}

// ---------------------------------------------------------------------
// Tetris
// ---------------------------------------------------------------------

TEST(TetrisTest, AlignmentScoreFavorsComplementaryTasks) {
  const Resources cap{4, 16, 100, 100};
  const Resources avail{4, 2, 100, 100};  // memory nearly exhausted
  const Resources cpu_heavy{3, 0.5, 0, 0};
  const Resources mem_heavy{0.5, 3, 0, 0};
  EXPECT_GT(TetrisScheduler::alignment(avail, cpu_heavy, cap),
            TetrisScheduler::alignment(avail, mem_heavy, cap));
}

TEST(TetrisTest, BothVariantsCompleteWorkload) {
  for (auto dep : {TetrisScheduler::Dependency::kNone,
                   TetrisScheduler::Dependency::kSimple}) {
    JobSet jobs = tiny_workload(4, 59);
    const std::size_t expected = total_tasks(jobs);
    TetrisScheduler sched(dep);
    Engine engine(small_cluster(3, 2), std::move(jobs), sched, nullptr,
                  fast_params());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.tasks_finished, expected);
  }
}

TEST(TetrisTest, SimpleDependencyVariantHasNoDisorders) {
  JobSet jobs = tiny_workload(4, 61);
  TetrisScheduler sched(TetrisScheduler::Dependency::kSimple);
  Engine engine(small_cluster(3, 2), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().disorders, 0u);
}

TEST(TetrisTest, BlindVariantAccumulatesDisorders) {
  // Chains on a single node force the blind packer into unready picks.
  JobSet jobs;
  for (JobId j = 0; j < 4; ++j)
    jobs.push_back(make_chain_job(j, 6, 4000.0, 0));
  TetrisScheduler sched(TetrisScheduler::Dependency::kNone);
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 2), std::move(jobs), sched,
                nullptr, fast_params());
  EXPECT_GT(engine.run().disorders, 0u);
}

TEST(TetrisTest, Names) {
  EXPECT_STREQ(TetrisScheduler(TetrisScheduler::Dependency::kNone).name(),
               "TetrisW/oDep");
  EXPECT_STREQ(TetrisScheduler(TetrisScheduler::Dependency::kSimple).name(),
               "TetrisW/SimDep");
}

// ---------------------------------------------------------------------
// Aalo
// ---------------------------------------------------------------------

TEST(AaloTest, QueueLevelsEscalateWithService) {
  AaloScheduler::Options opts;
  opts.queue_count = 4;
  opts.first_threshold_mi = 100.0;
  opts.threshold_factor = 10.0;
  AaloScheduler aalo(opts);
  EXPECT_EQ(aalo.queue_level(0.0), 0);
  EXPECT_EQ(aalo.queue_level(99.0), 0);
  EXPECT_EQ(aalo.queue_level(100.0), 1);
  EXPECT_EQ(aalo.queue_level(999.0), 1);
  EXPECT_EQ(aalo.queue_level(1000.0), 2);
  EXPECT_EQ(aalo.queue_level(1.0e9), 3);  // clamps at the last queue
}

TEST(AaloTest, CompletesWorkloadWithoutDisorders) {
  JobSet jobs = tiny_workload(5, 67);
  const std::size_t expected = total_tasks(jobs);
  AaloScheduler sched;
  Engine engine(small_cluster(3, 2), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, expected);
  EXPECT_EQ(m.disorders, 0u);
}

TEST(AaloTest, FreshJobOutranksServicedJob) {
  // Job 0 is large and gets serviced first; when job 1 arrives later, its
  // level-0 tasks must be dispatched ahead of job 0's remaining tasks.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 6, 30000.0, 0));
  jobs.push_back(make_independent_job(1, 2, 1000.0, from_seconds(1.5)));
  AaloScheduler::Options opts;
  opts.first_threshold_mi = 20000.0;  // job 0 demotes after its first task
  AaloScheduler sched(opts);
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                nullptr, fast_params());
  const RunMetrics m = engine.run();
  ASSERT_EQ(m.job_waiting_s.size(), 2u);
  // The small job (index 1 completes first -> first waiting entry) must
  // not have waited for all of job 0 (6 x 30 s).
  EXPECT_LT(m.job_waiting_s.front(), 120.0);
}

}  // namespace
}  // namespace dsp
