// srclint scanner tests: every seeded-violation fixture under
// tests/fixtures/srclint fires exactly its own rule, the clean fixture
// fires nothing, and the repository's own src/ tree self-scans clean —
// the determinism/concurrency disciplines the D*/C* packs encode are
// enforced on the code that promises them. Plus black-box coverage of
// the dsp_tidy CLI (exit codes, --rules, --json via json_check).
#include "analysis/srclint.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/rules.h"

namespace {

using dsp::analysis::Report;

std::string fixture(const std::string& name) {
  return std::string(DSP_SRCLINT_FIXTURE_DIR) + "/" + name;
}

/// Rule IDs of every diagnostic in `report`.
std::set<std::string> fired_rules(const Report& report) {
  std::set<std::string> ids;
  for (const auto& d : report.diagnostics()) ids.insert(d.rule);
  return ids;
}

void expect_fires_exactly(const std::string& file, const std::string& rule) {
  Report report;
  std::string error;
  ASSERT_TRUE(dsp::analysis::scan_source_file(fixture(file), report, &error))
      << error;
  EXPECT_EQ(fired_rules(report), std::set<std::string>{rule})
      << file << " should fire " << rule << " and nothing else";
  EXPECT_GE(report.diagnostics().size(), 1u);
  for (const auto& d : report.diagnostics())
    EXPECT_NE(d.subject.find(".cpp:"), std::string::npos)
        << "subject should be path:line, got " << d.subject;
}

TEST(SrclintTest, SeededDeterminismViolations) {
  expect_fires_exactly("d000_libc_random.cpp", "D000");
  expect_fires_exactly("d001_std_random_device.cpp", "D001");
  expect_fires_exactly("d002_wall_clock.cpp", "D002");
  expect_fires_exactly("d003_unordered_iteration.cpp", "D003");
  expect_fires_exactly("d004_thread_outside_pool.cpp", "D004");
  expect_fires_exactly("d005_std_random_engine.cpp", "D005");
}

TEST(SrclintTest, SeededConcurrencyViolations) {
  expect_fires_exactly("c000_unguarded_global.cpp", "C000");
  expect_fires_exactly("c001_io_under_lock.cpp", "C001");
  expect_fires_exactly("c002_raw_new_delete.cpp", "C002");
  expect_fires_exactly("c003_unchecked_index.cpp", "C003");
  expect_fires_exactly("c004_console_io.cpp", "C004");
  expect_fires_exactly("c005_manual_lock.cpp", "C005");
}

TEST(SrclintTest, CleanFixtureFiresNothing) {
  Report report;
  std::string error;
  ASSERT_TRUE(
      dsp::analysis::scan_source_file(fixture("clean.cpp"), report, &error))
      << error;
  EXPECT_TRUE(report.empty()) << [&] {
    std::string all;
    for (const auto& d : report.diagnostics())
      all += d.rule + " " + d.subject + ": " + d.message + "\n";
    return all;
  }();
}

TEST(SrclintTest, RepositorySourceSelfScansClean) {
  // tools/ and bench/ are in scope too: they are sanctioned console-I/O
  // surfaces (C004 exempts them), but every other discipline — no raw
  // new/delete, no ambient randomness, RAII locking — binds there as
  // much as in the library.
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(dsp::analysis::collect_sources(
      {DSP_SRC_DIR, DSP_TOOLS_DIR, DSP_BENCH_DIR}, files, &error))
      << error;
  ASSERT_GT(files.size(), 50u) << "source tree looks truncated";
  Report report;
  for (const std::string& file : files)
    ASSERT_TRUE(dsp::analysis::scan_source_file(file, report, &error))
        << error;
  std::string all;
  for (const auto& d : report.diagnostics())
    all += d.rule + " " + d.subject + ": " + d.message + "\n";
  EXPECT_TRUE(report.empty()) << all;
}

TEST(SrclintTest, EveryPackRuleIsInTheCatalog) {
  for (const char* id : {"D000", "D001", "D002", "D003", "D004", "D005",
                         "C000", "C001", "C002", "C003", "C004", "C005"}) {
    const auto* info = dsp::analysis::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->severity, dsp::analysis::Severity::kError) << id;
  }
}

TEST(SrclintTest, InlineAllowSuppressesOnlyThatLine) {
  Report report;
  dsp::analysis::scan_source("adhoc.cpp",
                             "void f(int* p) {\n"
                             "  delete p;  // dsp-tidy: allow(C002)\n"
                             "  delete p;\n"
                             "}\n",
                             report);
  ASSERT_EQ(report.diagnostics().size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].rule, "C002");
  EXPECT_EQ(report.diagnostics()[0].subject, "adhoc.cpp:3");
}

TEST(SrclintTest, CommentsStringsAndPreprocessorDoNotFire) {
  Report report;
  dsp::analysis::scan_source("adhoc.cpp",
                             "#include <cstdlib>  \n"
                             "// call rand() and printf() all day\n"
                             "/* std::cout << rand(); */\n"
                             "const char* kDoc = \"time(nullptr)\";\n",
                             report);
  EXPECT_TRUE(report.empty());
}

TEST(SrclintTest, HotScopeRulesSkipNonHotSrcPaths) {
  Report report;
  // unordered_map is allowed outside src/core and src/sim.
  dsp::analysis::scan_source(
      "src/obs/cache.cpp", "std::unordered_map<int, int> m;\n", report);
  EXPECT_TRUE(report.empty());
  dsp::analysis::scan_source(
      "src/core/cache.cpp", "std::unordered_map<int, int> m;\n", report);
  EXPECT_EQ(fired_rules(report), std::set<std::string>{"D003"});
}

TEST(SrclintTest, CollectSourcesSortsAndRejectsMissingPaths) {
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(dsp::analysis::collect_sources({DSP_SRCLINT_FIXTURE_DIR}, files,
                                             &error))
      << error;
  ASSERT_GE(files.size(), 13u);  // 12 seeded + clean
  for (std::size_t i = 1; i < files.size(); ++i)
    EXPECT_LT(files[i - 1], files[i]);

  std::vector<std::string> none;
  EXPECT_FALSE(dsp::analysis::collect_sources({fixture("does_not_exist")},
                                              none, &error));
  EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Black-box CLI tests
// ---------------------------------------------------------------------------

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cmd(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CliResult run_tidy(const std::string& args) {
  return run_cmd(std::string(DSP_TIDY_BIN) + " " + args);
}

TEST(DspTidyCliTest, FixtureDirectoryExitsOneNamingEveryRule) {
  const CliResult r = run_tidy(std::string(DSP_SRCLINT_FIXTURE_DIR));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* id : {"D000", "D001", "D002", "D003", "D004", "D005",
                         "C000", "C001", "C002", "C003", "C004", "C005"})
    EXPECT_NE(r.output.find(id), std::string::npos) << id << "\n" << r.output;
}

TEST(DspTidyCliTest, RuleFilterIsolatesOneRule) {
  const CliResult r =
      run_tidy(std::string(DSP_SRCLINT_FIXTURE_DIR) + " --rules D003");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("D003"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("C004"), std::string::npos) << r.output;
}

TEST(DspTidyCliTest, SelfScanOfSrcIsCleanAndJsonValidates) {
  const std::string json = ::testing::TempDir() + "dsp_tidy_out.json";
  const CliResult r =
      run_tidy(std::string(DSP_SRC_DIR) + " --json " + json);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const CliResult check = run_cmd(std::string(DSP_JSON_CHECK_BIN) + " " + json);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  std::remove(json.c_str());
}

TEST(DspTidyCliTest, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_tidy("").exit_code, 2);
  EXPECT_EQ(run_tidy("no/such/path.cpp").exit_code, 2);
  EXPECT_EQ(run_tidy("--rules D000").exit_code, 2);  // no paths
  EXPECT_EQ(
      run_tidy(std::string(DSP_SRCLINT_FIXTURE_DIR) + " --rules Z999").exit_code,
      2);
}

TEST(DspTidyCliTest, RulesListingShowsOnlySourcePacks) {
  const CliResult r = run_tidy("rules");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("D000"), std::string::npos);
  EXPECT_NE(r.output.find("C005"), std::string::npos);
  EXPECT_EQ(r.output.find("W001"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("S001"), std::string::npos) << r.output;
}

}  // namespace
