// Tests for TimelineRecorder's exports: CSV, the ASCII Gantt chart, and
// the round/epoch bookkeeping the Chrome trace exporter relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/recorder.h"
#include "test_util.h"

namespace dsp {
namespace {

using testing::make_independent_job;
using testing::RoundRobinScheduler;

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

/// One small run with the recorder attached.
TimelineRecorder record_run(std::size_t node_count = 2) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 1000.0, 0, 60 * kSecond));
  RoundRobinScheduler sched;
  Engine engine(ClusterSpec::uniform(node_count, 1800.0, 2.0, 2),
                std::move(jobs), sched, nullptr, fast_params());
  TimelineRecorder recorder;
  engine.set_observer(&recorder);
  engine.run();
  return recorder;
}

TEST(RecorderCsvTest, HeaderAndOneRowPerInterval) {
  const TimelineRecorder recorder = record_run();
  ASSERT_FALSE(recorder.intervals().empty());

  std::ostringstream os;
  recorder.write_csv(os);
  const std::string csv = os.str();

  EXPECT_EQ(csv.find("task,node,kind,begin_us,end_us,outcome\n"), 0u);
  const auto rows = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, recorder.intervals().size() + 1);  // header + intervals
  EXPECT_NE(csv.find(",run,"), std::string::npos);
  EXPECT_NE(csv.find("finished"), std::string::npos);
}

TEST(RecorderCsvTest, RowsMatchIntervalFields) {
  const TimelineRecorder recorder = record_run();
  std::ostringstream os;
  recorder.write_csv(os);
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // header
  for (const auto& iv : recorder.intervals()) {
    ASSERT_TRUE(std::getline(in, line));
    std::ostringstream expect;
    expect << iv.task << ',' << iv.node << ',' << to_string(iv.kind) << ','
           << iv.begin << ',' << iv.end;
    EXPECT_EQ(line.rfind(expect.str(), 0), 0u) << line;
  }
}

TEST(RecorderGanttTest, OneRowPerNodeWithMarks) {
  const TimelineRecorder recorder = record_run(2);
  const std::string gantt = recorder.render_gantt(2, 40);

  EXPECT_NE(gantt.find("node  0 |"), std::string::npos);
  EXPECT_NE(gantt.find("node  1 |"), std::string::npos);
  // Productive work shows up as '#'.
  EXPECT_NE(gantt.find('#'), std::string::npos);
  // Footer carries the time span.
  EXPECT_NE(gantt.find(".."), std::string::npos);
}

TEST(RecorderGanttTest, EmptyTimelineRenders) {
  const TimelineRecorder recorder;
  EXPECT_EQ(recorder.render_gantt(3), "(empty timeline)\n");
}

TEST(RecorderRoundsTest, RecordsRoundsAndEpochs) {
  const TimelineRecorder recorder = record_run();
  // The engine fires at least the initial scheduling round, and epochs
  // tick every 500 ms while work is pending.
  ASSERT_FALSE(recorder.rounds().empty());
  EXPECT_EQ(recorder.schedule_rounds(), recorder.rounds().size());
  for (std::size_t i = 1; i < recorder.rounds().size(); ++i)
    EXPECT_GE(recorder.rounds()[i].time, recorder.rounds()[i - 1].time);
  for (std::size_t i = 1; i < recorder.epochs().size(); ++i)
    EXPECT_GT(recorder.epochs()[i], recorder.epochs()[i - 1]);
}

}  // namespace
}  // namespace dsp
