// Flight recorder tests: JSONL schema round-trip, ring-buffer wrap,
// per-kind sampling, the engine's emit wiring, and the determinism
// property dsp_report's diff mode relies on — same-seed runs produce
// bit-identical event streams at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/dsp_scheduler.h"
#include "core/preemption.h"
#include "obs/events.h"
#include "obs/json.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

WorkloadConfig contended_config(std::size_t jobs) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;
  cfg.mem_max = 1.8;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 40.0;
  return cfg;
}

// ---------------------------------------------------------------------
// EventLog unit behavior
// ---------------------------------------------------------------------

TEST(EventLogTest, AppendJsonlMatchesSchema) {
  obs::Event e{.time = 1500000,
               .seq = 7,
               .epoch = 3,
               .kind = obs::EventKind::kTaskDispatch,
               .flags = obs::kEventFlagHoardActivate,
               .job = 2,
               .task = 41,
               .node = 5,
               .a = 0.25};
  std::string line;
  obs::EventLog::append_jsonl(e, line);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  obs::json::Value rec;
  std::string error;
  ASSERT_TRUE(obs::json::parse(line, rec, &error)) << error;
  EXPECT_EQ(rec.find("t")->number, 1500000.0);
  EXPECT_EQ(rec.find("seq")->number, 7.0);
  EXPECT_EQ(rec.find("epoch")->number, 3.0);
  EXPECT_EQ(rec.find("kind")->string, "task_dispatch");
  EXPECT_EQ(rec.find("flags")->number, 1.0);
  EXPECT_EQ(rec.find("job")->number, 2.0);
  EXPECT_EQ(rec.find("task")->number, 41.0);
  EXPECT_EQ(rec.find("task2")->number, -1.0);  // unset ids serialize as -1
  EXPECT_EQ(rec.find("node")->number, 5.0);
  EXPECT_EQ(rec.find("node2")->number, -1.0);
  EXPECT_EQ(rec.find("a")->number, 0.25);
  EXPECT_EQ(rec.find("b")->number, 0.0);
}

TEST(EventLogTest, NonFinitePayloadSerializesAsNull) {
  obs::Event e{.kind = obs::EventKind::kEpoch, .a = NAN, .b = 1.0 / 0.0};
  std::string line;
  obs::EventLog::append_jsonl(e, line);
  EXPECT_NE(line.find("\"a\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"b\":null"), std::string::npos) << line;

  // The reader maps null payloads back to 0.
  std::istringstream in(line);
  const obs::EventParseResult parsed = obs::read_event_log(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].a, 0.0);
  EXPECT_EQ(parsed.events[0].b, 0.0);
}

TEST(EventLogTest, EmitAssignsDenseSequenceAndRingWraps) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i)
    log.emit({.time = i, .kind = obs::EventKind::kTaskFinish,
              .task = static_cast<Gid>(i)});
  EXPECT_EQ(log.accepted(), 10u);

  const std::vector<obs::Event> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 4u);  // ring keeps the newest capacity() events
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].seq, 6 + i);
    EXPECT_EQ(kept[i].task, static_cast<Gid>(6 + i));
  }
}

TEST(EventLogTest, PerKindSamplingKeepsEveryNth) {
  obs::EventLog log(64);
  log.set_sample_every(obs::EventKind::kTaskDispatch, 3);
  for (int i = 0; i < 9; ++i)
    log.emit({.kind = obs::EventKind::kTaskDispatch});
  log.emit({.kind = obs::EventKind::kJobArrival});  // unsampled kind

  // Dispatches 0, 3, 6 survive; the arrival is untouched.
  EXPECT_EQ(log.accepted(), 4u);
  EXPECT_EQ(log.sampled_out(), 6u);
  // seq stays dense over accepted events so diffs line up.
  const std::vector<obs::Event> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.back().seq, 3u);
}

TEST(EventLogTest, ConfigureSamplingParsesAndRejects) {
  obs::EventLog log(8);
  std::string error;
  EXPECT_TRUE(log.configure_sampling("task_dispatch=10, epoch=2", &error))
      << error;
  EXPECT_FALSE(log.configure_sampling("no_such_kind=4", &error));
  EXPECT_NE(error.find("no_such_kind"), std::string::npos);
  EXPECT_FALSE(log.configure_sampling("task_dispatch=zero", &error));
  EXPECT_FALSE(log.configure_sampling("task_dispatch=0", &error));
}

TEST(EventLogTest, SinkRoundTripsThroughReader) {
  const std::string path =
      ::testing::TempDir() + "/events_sink_round_trip.jsonl";
  {
    obs::EventLog log(8);
    ASSERT_TRUE(log.open_sink(path));
    log.emit({.time = 10, .kind = obs::EventKind::kJobArrival, .job = 1,
              .a = 5.0});
    log.emit({.time = 20, .kind = obs::EventKind::kTaskDispatch, .job = 1,
              .task = 3, .node = 2, .a = 0.125});
    log.emit({.time = 30, .kind = obs::EventKind::kTaskMigrate, .task = 3,
              .node = 2, .node2 = 4});
    log.close_sink();  // flushes the batched lines
  }
  const obs::EventParseResult parsed = obs::read_event_log(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.events.size(), 3u);
  EXPECT_EQ(parsed.events[0].kind, obs::EventKind::kJobArrival);
  EXPECT_EQ(parsed.events[1].a, 0.125);
  EXPECT_EQ(parsed.events[2].node2, 4);
  std::remove(path.c_str());
}

TEST(EventLogTest, ReaderNamesTheBadLine) {
  std::istringstream in(
      "{\"t\":1,\"seq\":0,\"epoch\":0,\"kind\":\"epoch\",\"flags\":0,"
      "\"job\":-1,\"task\":-1,\"task2\":-1,\"node\":-1,\"node2\":-1,"
      "\"a\":0,\"b\":0}\n"
      "not json\n");
  const obs::EventParseResult parsed = obs::read_event_log(in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos) << parsed.error;
}

// ---------------------------------------------------------------------
// Engine wiring
// ---------------------------------------------------------------------

/// One contended run with the recorder attached; returns the stream.
std::vector<obs::Event> record_run(int threads, std::uint64_t seed) {
  const JobSet jobs = WorkloadGenerator(contended_config(8), seed).generate();
  DspScheduler sched;
  DspParams params;
  params.threads = threads;
  DspPreemption policy(params);
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 2), jobs, sched, &policy,
                fast_params());
  obs::EventLog log(1 << 14);
  engine.set_event_log(&log);
  engine.run();
  return log.snapshot();
}

TEST(EngineEventsTest, RunEmitsCoherentStream) {
  const std::vector<obs::Event> events = record_run(1, 331);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, obs::EventKind::kRunInfo);

  std::map<obs::EventKind, std::size_t> counts;
  SimTime last_time = -1;
  std::uint64_t expect_seq = 0;
  for (const obs::Event& e : events) {
    ++counts[e.kind];
    EXPECT_GE(e.time, last_time);  // sim time is monotone
    last_time = e.time;
    EXPECT_EQ(e.seq, expect_seq++);  // seq is dense
  }

  const std::size_t total_tasks =
      static_cast<std::size_t>(events.front().task);
  EXPECT_EQ(counts[obs::EventKind::kJobArrival], 8u);
  EXPECT_EQ(counts[obs::EventKind::kJobComplete], 8u);
  // Every task finishes exactly once; dispatches >= finishes because
  // preempted tasks re-dispatch.
  EXPECT_EQ(counts[obs::EventKind::kTaskFinish], total_tasks);
  EXPECT_GE(counts[obs::EventKind::kTaskDispatch], total_tasks);
  EXPECT_GT(counts[obs::EventKind::kEpoch], 0u);
  EXPECT_GT(counts[obs::EventKind::kScheduleRound], 0u);
  // The contended cluster forces Algorithm-1 activity.
  EXPECT_GT(counts[obs::EventKind::kPreemptDecision], 0u);
}

TEST(EngineEventsTest, StreamIsIdenticalAcrossThreadCounts) {
  const std::vector<obs::Event> one = record_run(1, 331);
  const std::vector<obs::Event> four = record_run(4, 331);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    std::string a, b;
    obs::EventLog::append_jsonl(one[i], a);
    obs::EventLog::append_jsonl(four[i], b);
    ASSERT_EQ(a, b) << "event " << i << " diverged";
  }
}

}  // namespace
}  // namespace dsp
