// Property tests: every scheduler x preemption-policy combination must
// produce a physically and logically sound execution timeline, validated
// by the run-invariant checker over the recorded trace.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/aalo.h"
#include "baselines/preempt_baselines.h"
#include "baselines/tetris.h"
#include "core/dsp_system.h"
#include "sim/invariants.h"
#include "sim/recorder.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_independent_job;

JobSet property_workload(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = 8;
  cfg.task_scale = 0.01;
  cfg.min_arrival_rate = 20.0;  // contention so preemption actually fires
  cfg.max_arrival_rate = 30.0;
  return WorkloadGenerator(cfg, seed).generate();
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 5 * kSecond;
  p.epoch = 1 * kSecond;
  return p;
}

struct Combo {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> scheduler;
  std::function<std::unique_ptr<PreemptionPolicy>()> policy;  // may be null
  bool work_conserving;  // false for restart-mode policies
};

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  combos.push_back({"dsp+dsp", [] { return std::make_unique<DspScheduler>(); },
                    [] { return std::make_unique<DspPreemption>(); }, true});
  combos.push_back({"dsp+nopp",
                    [] { return std::make_unique<DspScheduler>(); },
                    [] {
                      DspParams params;
                      params.normalized_pp = false;
                      return std::make_unique<DspPreemption>(params);
                    },
                    true});
  combos.push_back({"dsp+amoeba",
                    [] { return std::make_unique<DspScheduler>(); },
                    [] { return std::make_unique<AmoebaPolicy>(); }, true});
  combos.push_back({"dsp+natjam",
                    [] { return std::make_unique<DspScheduler>(); },
                    [] { return std::make_unique<NatjamPolicy>(); }, true});
  combos.push_back({"dsp+srpt", [] { return std::make_unique<DspScheduler>(); },
                    [] { return std::make_unique<SrptPolicy>(); }, false});
  combos.push_back({"aalo",
                    [] { return std::make_unique<AaloScheduler>(); }, nullptr,
                    true});
  combos.push_back({"tetris-simdep",
                    [] {
                      return std::make_unique<TetrisScheduler>(
                          TetrisScheduler::Dependency::kSimple);
                    },
                    nullptr, true});
  combos.push_back({"tetris-nodep",
                    [] {
                      return std::make_unique<TetrisScheduler>(
                          TetrisScheduler::Dependency::kNone);
                    },
                    nullptr, true});
  return combos;
}

class ComboInvariantTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ComboInvariantTest, TimelineIsSound) {
  const auto [combo_index, seed] = GetParam();
  const Combo combo = all_combos()[combo_index];
  const JobSet jobs = property_workload(static_cast<std::uint64_t>(seed));

  const auto scheduler = combo.scheduler();
  std::unique_ptr<PreemptionPolicy> policy;
  if (combo.policy) policy = combo.policy();

  // EC2 profile: its capacity (2 cores, 4 GB) covers the generator's
  // demand clamps, so every task fits some node.
  const ClusterSpec cluster = ClusterSpec::ec2(3);
  TimelineRecorder recorder;
  Engine engine(cluster, jobs, *scheduler, policy.get(), fast_params());
  engine.set_observer(&recorder);
  const RunMetrics m = engine.run();
  ASSERT_EQ(m.tasks_finished, total_tasks(jobs)) << combo.name;

  InvariantOptions options;
  options.check_work_conservation = combo.work_conserving;
  const auto problems = check_run_invariants(recorder, jobs, cluster, options);
  EXPECT_TRUE(problems.empty())
      << combo.name << ": " << (problems.empty() ? "" : problems.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombosAndSeeds, ComboInvariantTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 8),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Recorder unit tests
// ---------------------------------------------------------------------

TEST(RecorderTest, RecordsSimpleRun) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 1000.0));
  testing::RoundRobinScheduler sched;
  TimelineRecorder recorder;
  EngineParams ep;
  ep.period = 1 * kSecond;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 2), jobs, sched, nullptr,
                ep);
  engine.set_observer(&recorder);
  engine.run();

  // 3 tasks, one run interval each, no overhead (no preemption).
  EXPECT_EQ(recorder.intervals().size(), 3u);
  for (const auto& iv : recorder.intervals()) {
    EXPECT_EQ(iv.kind, IntervalKind::kRun);
    EXPECT_EQ(iv.duration(), 1 * kSecond);
    EXPECT_EQ(iv.outcome, Interval::End::kFinished);
  }
  EXPECT_EQ(recorder.finish_time(0), 1 * kSecond);
  EXPECT_EQ(recorder.finish_time(2), 3 * kSecond);
  EXPECT_EQ(recorder.first_run_start(1), 1 * kSecond);
  EXPECT_EQ(recorder.job_completions().size(), 1u);
  EXPECT_EQ(recorder.schedule_rounds(), 1u);
  EXPECT_DOUBLE_EQ(recorder.busy_seconds_on_node(0), 3.0);
}

TEST(RecorderTest, SplitsOverheadFromProductiveTime) {
  // Force one preemption; the victim's resume shows an overhead interval.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 10000.0));
  testing::RoundRobinScheduler sched;
  class OneShot : public PreemptionPolicy {
   public:
    const char* name() const override { return "OneShot"; }
    void on_epoch(Engine& engine) override {
      if (done_) return;
      if (!engine.running(0).empty() && !engine.waiting(0).empty()) {
        if (engine.try_preempt(0, engine.running(0).front(),
                               engine.waiting(0).front()) == PreemptResult::kOk)
          done_ = true;
      }
    }

   private:
    bool done_ = false;
  } policy;
  TimelineRecorder recorder;
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), jobs, sched, &policy,
                ep);
  engine.set_observer(&recorder);
  engine.run();

  std::size_t overhead_count = 0, preempted_count = 0;
  for (const auto& iv : recorder.intervals()) {
    if (iv.kind == IntervalKind::kOverhead) ++overhead_count;
    if (iv.outcome == Interval::End::kPreempted) ++preempted_count;
  }
  // Incoming task pays ctx switch; victim pays recovery + ctx on resume.
  EXPECT_EQ(overhead_count, 2u);
  EXPECT_GE(preempted_count, 1u);

  const auto problems = check_run_invariants(
      recorder, jobs, ClusterSpec::uniform(1, 1800.0, 2.0, 1));
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(RecorderTest, CsvExportHasHeaderAndRows) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1000.0));
  testing::RoundRobinScheduler sched;
  TimelineRecorder recorder;
  EngineParams ep;
  ep.period = 1 * kSecond;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), jobs, sched, nullptr,
                ep);
  engine.set_observer(&recorder);
  engine.run();

  std::ostringstream out;
  recorder.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("task,node,kind,begin_us,end_us,outcome"),
            std::string::npos);
  EXPECT_NE(csv.find("run"), std::string::npos);
  EXPECT_NE(csv.find("finished"), std::string::npos);
}

TEST(RecorderTest, IntervalKindNames) {
  EXPECT_STREQ(to_string(IntervalKind::kRun), "run");
  EXPECT_STREQ(to_string(IntervalKind::kOverhead), "overhead");
  EXPECT_STREQ(to_string(IntervalKind::kHoard), "hoard");
}

// ---------------------------------------------------------------------
// Invariant checker sensitivity: corrupt timelines must be rejected.
// ---------------------------------------------------------------------

class ForgingRecorder : public TimelineRecorder {
 public:
  using TimelineRecorder::TimelineRecorder;
};

TEST(InvariantCheckerTest, DetectsMissingTask) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1000.0));
  TimelineRecorder empty;
  const auto problems = check_run_invariants(
      empty, jobs, ClusterSpec::uniform(1, 1800.0, 2.0, 1));
  EXPECT_FALSE(problems.empty());
}

TEST(InvariantCheckerTest, DetectsDependencyViolation) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1000.0));
  TimelineRecorder forged;
  // Child (gid 1) runs before parent (gid 0) finishes.
  forged.on_task_start(0, 1, 0, 0);
  forged.on_task_finish(kSecond, 1, 0);
  forged.on_task_start(kSecond, 0, 0, 0);
  forged.on_task_finish(2 * kSecond, 0, 0);
  forged.on_job_complete(2 * kSecond, 0);
  const auto problems = check_run_invariants(
      forged, jobs, ClusterSpec::uniform(1, 1800.0, 2.0, 2));
  bool found = false;
  for (const auto& p : problems)
    if (p.find("before parent") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(InvariantCheckerTest, DetectsSlotOvercommit) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 3, 1000.0));
  TimelineRecorder forged;
  for (Gid g = 0; g < 3; ++g) {
    forged.on_task_start(0, g, 0, 0);
    forged.on_task_finish(kSecond, g, 0);
  }
  forged.on_job_complete(kSecond, 0);
  // Node has 2 slots; 3 concurrent tasks is a violation.
  const auto problems = check_run_invariants(
      forged, jobs, ClusterSpec::uniform(1, 1800.0, 2.0, 2));
  bool found = false;
  for (const auto& p : problems)
    if (p.find("exceed") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(InvariantCheckerTest, DetectsWorkShortfall) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));  // needs 10 s
  TimelineRecorder forged;
  forged.on_task_start(0, 0, 0, 0);
  forged.on_task_finish(kSecond, 0, 0);  // only ran 1 s
  forged.on_job_complete(kSecond, 0);
  const auto problems = check_run_invariants(
      forged, jobs, ClusterSpec::uniform(1, 1800.0, 2.0, 2));
  bool found = false;
  for (const auto& p : problems)
    if (p.find("executed") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dsp
