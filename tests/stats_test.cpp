// Tests for workload statistics and the ASCII Gantt renderer.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/recorder.h"
#include "test_util.h"
#include "trace/stats.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_independent_job;
using testing::RoundRobinScheduler;

TEST(WorkloadStatsTest, EmptyWorkload) {
  const WorkloadStats s = analyze_workload({});
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_EQ(s.tasks, 0u);
}

TEST(WorkloadStatsTest, HandBuiltWorkload) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 1000.0, 0));          // 2 edges, depth 3
  jobs.push_back(make_independent_job(1, 2, 2000.0, kMinute));  // 0 edges
  const WorkloadStats s = analyze_workload(jobs);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_EQ(s.tasks, 5u);
  EXPECT_EQ(s.dependency_edges, 2u);
  EXPECT_DOUBLE_EQ(s.total_work_mi, 3000.0 + 4000.0);
  EXPECT_EQ(s.max_depth, 3);
  EXPECT_DOUBLE_EQ(s.size_min, 1000.0);
  EXPECT_DOUBLE_EQ(s.size_max, 2000.0);
  // 2 of 5 tasks have parents.
  EXPECT_NEAR(s.dependent_fraction, 0.4, 1e-9);
  EXPECT_EQ(s.last_arrival - s.first_arrival, kMinute);
}

TEST(WorkloadStatsTest, MatchesGeneratorShape) {
  WorkloadConfig cfg;
  cfg.job_count = 12;
  cfg.task_scale = 0.02;
  const WorkloadStats s =
      analyze_workload(WorkloadGenerator(cfg, 77).generate());
  EXPECT_EQ(s.jobs, 12u);
  EXPECT_EQ(s.jobs_by_class[0], 4u);
  EXPECT_EQ(s.jobs_by_class[1], 4u);
  EXPECT_EQ(s.jobs_by_class[2], 4u);
  EXPECT_LE(s.max_depth, cfg.max_levels);
  EXPECT_LE(s.max_fanout, cfg.max_fanout);
  EXPECT_GT(s.dependent_fraction, 0.3);  // flat level profile binds deps
  EXPECT_GE(s.size_median, cfg.size_min_mi);
  EXPECT_LE(s.size_median, cfg.size_max_mi);
}

TEST(WorkloadStatsTest, RenderMentionsKeyNumbers) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.02;
  const WorkloadStats s =
      analyze_workload(WorkloadGenerator(cfg, 79).generate());
  const std::string text = s.render();
  EXPECT_NE(text.find("jobs: 6"), std::string::npos);
  EXPECT_NE(text.find("DAG depth"), std::string::npos);
  EXPECT_NE(text.find("total work"), std::string::npos);
}

TEST(GanttTest, RendersNodeRows) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 2000.0));
  RoundRobinScheduler sched;
  TimelineRecorder recorder;
  EngineParams ep;
  ep.period = 1 * kSecond;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 1), jobs, sched, nullptr,
                ep);
  engine.set_observer(&recorder);
  engine.run();

  const std::string gantt = recorder.render_gantt(2, 40);
  EXPECT_NE(gantt.find("node  0 |"), std::string::npos);
  EXPECT_NE(gantt.find("node  1 |"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // running marks
  // Two rows + time footer.
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 3);
}

TEST(GanttTest, EmptyTimeline) {
  TimelineRecorder recorder;
  EXPECT_EQ(recorder.render_gantt(2), "(empty timeline)\n");
}

}  // namespace
}  // namespace dsp
