// Mutation tests for the dynamic run-invariant checker (sim/invariants.h):
// forge a known-good execution timeline through the observer hooks, then
// corrupt it six ways — one per checker rule — and assert that
// check_run_invariants reports each specific violation. This guards the
// checker itself: a checker that stops detecting a class of corruption
// would silently green-light broken engine changes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/invariants.h"
#include "sim/recorder.h"

namespace dsp {
namespace {

constexpr SimTime kTaskTime = 1 * kSecond;  // 1000 MI at the 1000-MIPS rate

// Node rate per Eq. (1): 0.5 * 1800 + 0.5 * 2 * 100 = exactly 1000 MIPS,
// so a 1000-MI task occupies precisely one simulated second.
ClusterSpec two_node_cluster() { return ClusterSpec::uniform(2, 1800.0, 2.0, 2); }

Job make_job(JobId id, std::size_t tasks, double mem, bool chain) {
  Job job(id, tasks);
  for (TaskIndex t = 0; t < tasks; ++t) {
    job.task(t).size_mi = 1000.0;
    job.task(t).demand = Resources{0.5, mem, 10.0, 1.0};
  }
  if (chain)
    for (TaskIndex t = 1; t < tasks; ++t) job.add_dependency(t - 1, t);
  EXPECT_TRUE(job.finalize(1000.0));
  return job;
}

/// Job 0 = chain of two tasks (gids 0, 1); job 1 = two independent tasks
/// (gids 2, 3). Job ids equal their JobSet positions, as the checker's
/// gid map requires.
JobSet standard_workload() {
  JobSet jobs;
  jobs.push_back(make_job(0, 2, 0.5, true));
  jobs.push_back(make_job(1, 2, 0.5, false));
  return jobs;
}

/// The sound baseline timeline every mutation perturbs: tasks 0 and 2 on
/// node 0 with task 3 on node 1 for the first second, then the chain's
/// second task on node 0.
void emit_base(TimelineRecorder& r) {
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 1, 0);
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_task_finish(kTaskTime, 3, 1);
  r.on_job_complete(kTaskTime, 1);
  r.on_task_start(kTaskTime, 1, 0, 0);
  r.on_task_finish(2 * kTaskTime, 1, 0);
  r.on_job_complete(2 * kTaskTime, 0);
}

std::vector<std::string> check(const TimelineRecorder& r, const JobSet& jobs) {
  return check_run_invariants(r, jobs, two_node_cluster());
}

bool mentions(const std::vector<std::string>& problems,
              const std::string& needle) {
  for (const auto& p : problems)
    if (p.find(needle) != std::string::npos) return true;
  return false;
}

TEST(CheckerMutationTest, BaselineTimelineIsSound) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  emit_base(r);
  const auto problems = check(r, jobs);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

// Rule 1: a third concurrent task on a 2-slot node. Demands stay at
// 1.5 cpu / 1.5 GB total, within capacity, so only the slot rule fires.
TEST(CheckerMutationTest, SlotOvercommitIsDetected) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 0, 0);  // mutated: node 1 -> node 0
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_task_finish(kTaskTime, 3, 0);
  r.on_job_complete(kTaskTime, 1);
  r.on_task_start(kTaskTime, 1, 0, 0);
  r.on_task_finish(2 * kTaskTime, 1, 0);
  r.on_job_complete(2 * kTaskTime, 0);
  const auto problems = check(r, jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_TRUE(mentions(problems, "exceed 2 slots")) << problems.front();
}

// Rule 2: two concurrent 1.5-GB tasks on a 2-GB node — within the slot
// count, beyond the memory capacity.
TEST(CheckerMutationTest, ResourceOvercommitIsDetected) {
  JobSet jobs;
  jobs.push_back(make_job(0, 2, 1.5, false));
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 1, 0, 0);  // mutated: co-located despite the memory sum
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 1, 0);
  r.on_job_complete(kTaskTime, 0);
  const auto problems = check(r, jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_TRUE(mentions(problems, "resource overcommit")) << problems.front();
}

// Rule 3: the chain's second task starts half a second before its parent
// completes.
TEST(CheckerMutationTest, DependencyViolationIsDetected) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 1, 0);
  r.on_task_start(kTaskTime / 2, 1, 1, 0);  // mutated: parent still running
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_task_finish(kTaskTime, 3, 1);
  r.on_job_complete(kTaskTime, 1);
  r.on_task_finish(3 * kTaskTime / 2, 1, 1);
  r.on_job_complete(3 * kTaskTime / 2, 0);
  const auto problems = check(r, jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_TRUE(mentions(problems, "before parent")) << problems.front();
}

// Rule 4: task 3's resumed interval begins while its first interval is
// still open. The two pieces still sum to exactly 1000 MI so the work-
// conservation rule stays quiet — only the serialization rule may fire.
TEST(CheckerMutationTest, DoubleOccupancyIsDetected) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 1, 0);
  r.on_task_suspend(7 * kTaskTime / 10, 3, 1, true);
  r.on_task_start(4 * kTaskTime / 10, 3, 1, 0);  // mutated: overlaps above
  r.on_task_finish(7 * kTaskTime / 10, 3, 1);
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_job_complete(kTaskTime, 1);  // job 1's last finish is task 2's
  r.on_task_start(kTaskTime, 1, 0, 0);
  r.on_task_finish(2 * kTaskTime, 1, 0);
  r.on_job_complete(2 * kTaskTime, 0);
  const auto problems = check(r, jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_TRUE(mentions(problems, "occupies two slots at once"))
      << problems.front();
}

// Rule 5, both halves: a completion record that disagrees with the last
// task finish, and a job with no completion record at all.
TEST(CheckerMutationTest, CompletionRecordCorruptionIsDetected) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 1, 0);
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_task_finish(kTaskTime, 3, 1);
  // mutated: job 1's completion record dropped entirely
  r.on_task_start(kTaskTime, 1, 0, 0);
  r.on_task_finish(2 * kTaskTime, 1, 0);
  r.on_job_complete(3 * kTaskTime, 0);  // mutated: half a run too late
  const auto problems = check(r, jobs);
  EXPECT_TRUE(mentions(problems, "has no completion record"))
      << (problems.empty() ? "" : problems.front());
  EXPECT_TRUE(mentions(problems, "!= last task finish"))
      << (problems.empty() ? "" : problems.front());
}

// Rule 6: task 3 finishes after only 0.4 s of productive time — 400 MI
// executed against a 1000-MI size.
TEST(CheckerMutationTest, LostWorkIsDetected) {
  const JobSet jobs = standard_workload();
  TimelineRecorder r;
  r.on_task_start(0, 0, 0, 0);
  r.on_task_start(0, 2, 0, 0);
  r.on_task_start(0, 3, 1, 0);
  r.on_task_finish(kTaskTime, 0, 0);
  r.on_task_finish(kTaskTime, 2, 0);
  r.on_task_finish(4 * kTaskTime / 10, 3, 1);  // mutated: early finish
  r.on_job_complete(kTaskTime, 1);
  r.on_task_start(kTaskTime, 1, 0, 0);
  r.on_task_finish(2 * kTaskTime, 1, 0);
  r.on_job_complete(2 * kTaskTime, 0);
  const auto problems = check(r, jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_TRUE(mentions(problems, "executed 400.0 MI")) << problems.front();
  // The same timeline passes once work conservation is waived, as it is
  // for restart-mode (SRPT) runs.
  InvariantOptions options;
  options.check_work_conservation = false;
  EXPECT_TRUE(
      check_run_invariants(r, jobs, two_node_cluster(), options).empty());
}

}  // namespace
}  // namespace dsp
