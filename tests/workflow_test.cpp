// Tests for cross-job dependencies (§VI future work): workflow edges
// between whole jobs gate the successor's tasks.
#include <gtest/gtest.h>

#include "core/dsp_system.h"
#include "sim/engine.h"
#include "sim/invariants.h"
#include "sim/recorder.h"
#include "test_util.h"

namespace dsp {
namespace {

using testing::make_independent_job;
using testing::RoundRobinScheduler;

ClusterSpec wide_cluster() { return ClusterSpec::uniform(2, 1800.0, 2.0, 4); }

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

TEST(WorkflowTest, SuccessorWaitsForPredecessor) {
  // Two 2-task jobs (1 s tasks), plenty of slots. Independently they run
  // in ~1 s; with job 0 -> job 1, job 1 starts only after job 0 completes.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 1000.0));
  jobs.push_back(make_independent_job(1, 2, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(wide_cluster(), std::move(jobs), sched, nullptr, fast_params());
  ASSERT_TRUE(engine.add_job_dependency(0, 1));
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 4u);
  EXPECT_EQ(m.makespan, 2 * kSecond);  // serialized by the workflow edge
}

TEST(WorkflowTest, WithoutEdgeJobsOverlap) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 1000.0));
  jobs.push_back(make_independent_job(1, 2, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(wide_cluster(), std::move(jobs), sched, nullptr, fast_params());
  EXPECT_EQ(engine.run().makespan, 1 * kSecond);
}

TEST(WorkflowTest, ChainOfThreeJobs) {
  JobSet jobs;
  for (JobId j = 0; j < 3; ++j)
    jobs.push_back(make_independent_job(j, 2, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(wide_cluster(), std::move(jobs), sched, nullptr, fast_params());
  ASSERT_TRUE(engine.add_job_dependency(0, 1));
  ASSERT_TRUE(engine.add_job_dependency(1, 2));
  EXPECT_EQ(engine.run().makespan, 3 * kSecond);
}

TEST(WorkflowTest, DiamondWorkflow) {
  // 0 -> {1, 2} -> 3: middle jobs overlap.
  JobSet jobs;
  for (JobId j = 0; j < 4; ++j)
    jobs.push_back(make_independent_job(j, 2, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(wide_cluster(), std::move(jobs), sched, nullptr, fast_params());
  ASSERT_TRUE(engine.add_job_dependency(0, 1));
  ASSERT_TRUE(engine.add_job_dependency(0, 2));
  ASSERT_TRUE(engine.add_job_dependency(1, 3));
  ASSERT_TRUE(engine.add_job_dependency(2, 3));
  EXPECT_EQ(engine.run().makespan, 3 * kSecond);
}

TEST(WorkflowTest, RejectsCycles) {
  JobSet jobs;
  for (JobId j = 0; j < 3; ++j)
    jobs.push_back(make_independent_job(j, 1, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(wide_cluster(), std::move(jobs), sched, nullptr, fast_params());
  EXPECT_TRUE(engine.add_job_dependency(0, 1));
  EXPECT_TRUE(engine.add_job_dependency(1, 2));
  EXPECT_FALSE(engine.add_job_dependency(2, 0));  // cycle
  EXPECT_FALSE(engine.add_job_dependency(1, 1));  // self-edge
  // Still completes (the cyclic edges were refused).
  EXPECT_EQ(engine.run().tasks_finished, 3u);
}

TEST(WorkflowTest, ReadinessReflectsJobGating) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 30000.0));
  jobs.push_back(make_independent_job(1, 1, 1000.0));
  RoundRobinScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (engine.now() < 10 * kSecond) {
        const Gid successor_task = engine.gid(1, 0);
        saw_blocked = saw_blocked || !engine.is_ready(successor_task);
        preds = std::max(preds, engine.unfinished_predecessor_jobs(1));
      }
    }
    bool saw_blocked = false;
    std::uint32_t preds = 0;
  } probe;
  Engine engine(wide_cluster(), std::move(jobs), sched, &probe, fast_params());
  ASSERT_TRUE(engine.add_job_dependency(0, 1));
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 2u);
  EXPECT_TRUE(probe.saw_blocked);
  EXPECT_EQ(probe.preds, 1u);
}

TEST(WorkflowTest, DspCompletesWorkflowsWithSoundTimeline) {
  JobSet jobs;
  for (JobId j = 0; j < 5; ++j)
    jobs.push_back(make_independent_job(j, 3, 2000.0, j * 100 * kMillisecond));
  DspScheduler sched;
  DspPreemption policy;
  TimelineRecorder recorder;
  Engine engine(wide_cluster(), jobs, sched, &policy, fast_params());
  engine.set_observer(&recorder);
  ASSERT_TRUE(engine.add_job_dependency(0, 2));
  ASSERT_TRUE(engine.add_job_dependency(1, 2));
  ASSERT_TRUE(engine.add_job_dependency(2, 4));
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 15u);
  EXPECT_EQ(m.disorders, 0u);

  const auto problems =
      check_run_invariants(recorder, jobs, wide_cluster());
  EXPECT_TRUE(problems.empty()) << problems.front();

  // Workflow order: job 2's first task starts after jobs 0 and 1 finish.
  SimTime job0_done = 0, job1_done = 0;
  for (const auto& [t, j] : recorder.job_completions()) {
    if (j == 0) job0_done = t;
    if (j == 1) job1_done = t;
  }
  SimTime job2_first = kMaxTime;
  for (TaskIndex t = 0; t < 3; ++t)
    job2_first = std::min(job2_first, recorder.first_run_start(engine.gid(2, t)));
  EXPECT_GE(job2_first, std::max(job0_done, job1_done));
}

}  // namespace
}  // namespace dsp
