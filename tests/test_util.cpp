#include "test_util.h"

#include <cassert>

namespace dsp::testing {
namespace {

void fill_uniform(Job& job, double size_mi) {
  for (TaskIndex t = 0; t < job.task_count(); ++t) {
    Task& task = job.task(t);
    task.size_mi = size_mi;
    // Small memory footprint so slot count, not memory, bounds concurrency
    // on the 2 GB test nodes.
    task.demand = Resources{1.0, 0.4, 0.02, 0.02};
  }
}

Job finish(Job job, SimTime arrival, SimTime deadline) {
  job.set_arrival(arrival);
  job.set_deadline(deadline);
  const bool ok = job.finalize(kTestRate);
  assert(ok);
  (void)ok;
  return job;
}

}  // namespace

Job make_independent_job(JobId id, std::size_t n, double size_mi,
                         SimTime arrival, SimTime deadline) {
  Job job(id, n);
  fill_uniform(job, size_mi);
  return finish(std::move(job), arrival, deadline);
}

Job make_chain_job(JobId id, std::size_t n, double size_mi, SimTime arrival,
                   SimTime deadline) {
  Job job(id, n);
  fill_uniform(job, size_mi);
  for (TaskIndex t = 1; t < n; ++t)
    job.add_dependency(t - 1, t);
  return finish(std::move(job), arrival, deadline);
}

Job make_diamond_job(JobId id, double size_mi, SimTime arrival,
                     SimTime deadline) {
  Job job(id, 4);
  fill_uniform(job, size_mi);
  job.add_dependency(0, 1);
  job.add_dependency(0, 2);
  job.add_dependency(1, 3);
  job.add_dependency(2, 3);
  return finish(std::move(job), arrival, deadline);
}

Job make_fig2_job(JobId id, double size_mi, SimTime arrival, SimTime deadline) {
  Job job(id, 7);
  fill_uniform(job, size_mi);
  job.add_dependency(0, 1);
  job.add_dependency(0, 2);
  job.add_dependency(1, 3);
  job.add_dependency(1, 4);
  job.add_dependency(2, 5);
  job.add_dependency(2, 6);
  return finish(std::move(job), arrival, deadline);
}

Job make_fig3_job(JobId id, double size_mi, SimTime arrival, SimTime deadline) {
  // Tasks: A=0 children 1..4; B=5 children 6..9, grandchild 10 under 6;
  //        C=11 children 12..15, grandchildren 16..18 under 12,13,14.
  Job job(id, 19);
  fill_uniform(job, size_mi);
  for (TaskIndex c = 1; c <= 4; ++c) job.add_dependency(0, c);
  for (TaskIndex c = 6; c <= 9; ++c) job.add_dependency(5, c);
  job.add_dependency(6, 10);
  for (TaskIndex c = 12; c <= 15; ++c) job.add_dependency(11, c);
  job.add_dependency(12, 16);
  job.add_dependency(13, 17);
  job.add_dependency(14, 18);
  return finish(std::move(job), arrival, deadline);
}

std::vector<TaskPlacement> RoundRobinScheduler::schedule(
    const std::vector<JobId>& jobs, Engine& engine) {
  std::vector<TaskPlacement> placements;
  std::vector<double> backlog(engine.node_count());
  for (std::size_t k = 0; k < engine.node_count(); ++k)
    backlog[k] = engine.node_backlog_mi(static_cast<int>(k));
  SimTime seq = 0;
  for (JobId j : jobs) {
    const Job& job = engine.job(j);
    for (TaskIndex t : job.graph().topo_order()) {
      int best = -1;
      for (std::size_t k = 0; k < engine.node_count(); ++k) {
        if (!engine.cluster().node(k).capacity.fits(job.task(t).demand)) continue;
        if (best < 0 || backlog[k] < backlog[static_cast<std::size_t>(best)])
          best = static_cast<int>(k);
      }
      if (best < 0) continue;
      backlog[static_cast<std::size_t>(best)] += job.task(t).size_mi;
      placements.push_back(
          TaskPlacement{engine.gid(j, t), best, engine.now() + seq++});
    }
  }
  return placements;
}

std::vector<TaskPlacement> PinnedScheduler::schedule(
    const std::vector<JobId>& jobs, Engine& engine) {
  std::vector<TaskPlacement> placements;
  SimTime seq = 0;
  for (JobId j : jobs) {
    const Job& job = engine.job(j);
    for (TaskIndex t : job.graph().topo_order())
      placements.push_back(
          TaskPlacement{engine.gid(j, t), node_, engine.now() + seq++});
  }
  return placements;
}

}  // namespace dsp::testing
